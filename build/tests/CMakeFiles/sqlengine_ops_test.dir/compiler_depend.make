# Empty compiler generated dependencies file for sqlengine_ops_test.
# This may be replaced when dependencies are built.
