file(REMOVE_RECURSE
  "CMakeFiles/sqlengine_ops_test.dir/sqlengine_ops_test.cc.o"
  "CMakeFiles/sqlengine_ops_test.dir/sqlengine_ops_test.cc.o.d"
  "sqlengine_ops_test"
  "sqlengine_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlengine_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
