file(REMOVE_RECURSE
  "CMakeFiles/sqlengine_value_test.dir/sqlengine_value_test.cc.o"
  "CMakeFiles/sqlengine_value_test.dir/sqlengine_value_test.cc.o.d"
  "sqlengine_value_test"
  "sqlengine_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlengine_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
