# Empty dependencies file for sqlengine_value_test.
# This may be replaced when dependencies are built.
