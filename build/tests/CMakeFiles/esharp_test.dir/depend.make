# Empty dependencies file for esharp_test.
# This may be replaced when dependencies are built.
