file(REMOVE_RECURSE
  "CMakeFiles/esharp_test.dir/esharp_test.cc.o"
  "CMakeFiles/esharp_test.dir/esharp_test.cc.o.d"
  "esharp_test"
  "esharp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
