file(REMOVE_RECURSE
  "CMakeFiles/cross_module_test.dir/cross_module_test.cc.o"
  "CMakeFiles/cross_module_test.dir/cross_module_test.cc.o.d"
  "cross_module_test"
  "cross_module_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_module_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
