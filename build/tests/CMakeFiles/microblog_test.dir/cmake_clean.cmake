file(REMOVE_RECURSE
  "CMakeFiles/microblog_test.dir/microblog_test.cc.o"
  "CMakeFiles/microblog_test.dir/microblog_test.cc.o.d"
  "microblog_test"
  "microblog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microblog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
