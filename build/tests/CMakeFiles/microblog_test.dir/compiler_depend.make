# Empty compiler generated dependencies file for microblog_test.
# This may be replaced when dependencies are built.
