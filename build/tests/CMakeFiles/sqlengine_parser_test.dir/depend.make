# Empty dependencies file for sqlengine_parser_test.
# This may be replaced when dependencies are built.
