file(REMOVE_RECURSE
  "CMakeFiles/sqlengine_parser_test.dir/sqlengine_parser_test.cc.o"
  "CMakeFiles/sqlengine_parser_test.dir/sqlengine_parser_test.cc.o.d"
  "sqlengine_parser_test"
  "sqlengine_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlengine_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
