file(REMOVE_RECURSE
  "CMakeFiles/sqlengine_parallel_test.dir/sqlengine_parallel_test.cc.o"
  "CMakeFiles/sqlengine_parallel_test.dir/sqlengine_parallel_test.cc.o.d"
  "sqlengine_parallel_test"
  "sqlengine_parallel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlengine_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
