# Empty compiler generated dependencies file for sqlengine_parallel_test.
# This may be replaced when dependencies are built.
