file(REMOVE_RECURSE
  "CMakeFiles/esharp_cli.dir/esharp_cli.cpp.o"
  "CMakeFiles/esharp_cli.dir/esharp_cli.cpp.o.d"
  "esharp_cli"
  "esharp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
