# Empty dependencies file for esharp_cli.
# This may be replaced when dependencies are built.
