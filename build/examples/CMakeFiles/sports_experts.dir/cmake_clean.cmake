file(REMOVE_RECURSE
  "CMakeFiles/sports_experts.dir/sports_experts.cpp.o"
  "CMakeFiles/sports_experts.dir/sports_experts.cpp.o.d"
  "sports_experts"
  "sports_experts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sports_experts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
