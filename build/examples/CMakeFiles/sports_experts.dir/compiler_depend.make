# Empty compiler generated dependencies file for sports_experts.
# This may be replaced when dependencies are built.
