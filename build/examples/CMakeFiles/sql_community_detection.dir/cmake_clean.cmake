file(REMOVE_RECURSE
  "CMakeFiles/sql_community_detection.dir/sql_community_detection.cpp.o"
  "CMakeFiles/sql_community_detection.dir/sql_community_detection.cpp.o.d"
  "sql_community_detection"
  "sql_community_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_community_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
