# Empty dependencies file for sql_community_detection.
# This may be replaced when dependencies are built.
