file(REMOVE_RECURSE
  "CMakeFiles/qna_experts.dir/qna_experts.cpp.o"
  "CMakeFiles/qna_experts.dir/qna_experts.cpp.o.d"
  "qna_experts"
  "qna_experts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qna_experts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
