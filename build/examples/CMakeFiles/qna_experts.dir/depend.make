# Empty dependencies file for qna_experts.
# This may be replaced when dependencies are built.
