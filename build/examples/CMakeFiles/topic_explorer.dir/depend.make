# Empty dependencies file for topic_explorer.
# This may be replaced when dependencies are built.
