file(REMOVE_RECURSE
  "CMakeFiles/topic_explorer.dir/topic_explorer.cpp.o"
  "CMakeFiles/topic_explorer.dir/topic_explorer.cpp.o.d"
  "topic_explorer"
  "topic_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topic_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
