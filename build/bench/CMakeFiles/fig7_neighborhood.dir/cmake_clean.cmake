file(REMOVE_RECURSE
  "CMakeFiles/fig7_neighborhood.dir/fig7_neighborhood.cc.o"
  "CMakeFiles/fig7_neighborhood.dir/fig7_neighborhood.cc.o.d"
  "fig7_neighborhood"
  "fig7_neighborhood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_neighborhood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
