# Empty compiler generated dependencies file for fig7_neighborhood.
# This may be replaced when dependencies are built.
