file(REMOVE_RECURSE
  "CMakeFiles/fig8_experts_per_query.dir/fig8_experts_per_query.cc.o"
  "CMakeFiles/fig8_experts_per_query.dir/fig8_experts_per_query.cc.o.d"
  "fig8_experts_per_query"
  "fig8_experts_per_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_experts_per_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
