# Empty dependencies file for fig8_experts_per_query.
# This may be replaced when dependencies are built.
