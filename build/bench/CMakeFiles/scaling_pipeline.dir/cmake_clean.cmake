file(REMOVE_RECURSE
  "CMakeFiles/scaling_pipeline.dir/scaling_pipeline.cc.o"
  "CMakeFiles/scaling_pipeline.dir/scaling_pipeline.cc.o.d"
  "scaling_pipeline"
  "scaling_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
