# Empty dependencies file for scaling_pipeline.
# This may be replaced when dependencies are built.
