file(REMOVE_RECURSE
  "CMakeFiles/fig9_zscore_tradeoff.dir/fig9_zscore_tradeoff.cc.o"
  "CMakeFiles/fig9_zscore_tradeoff.dir/fig9_zscore_tradeoff.cc.o.d"
  "fig9_zscore_tradeoff"
  "fig9_zscore_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_zscore_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
