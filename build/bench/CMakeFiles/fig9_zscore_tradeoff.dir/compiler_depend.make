# Empty compiler generated dependencies file for fig9_zscore_tradeoff.
# This may be replaced when dependencies are built.
