file(REMOVE_RECURSE
  "../lib/libesharp_bench_common.a"
)
