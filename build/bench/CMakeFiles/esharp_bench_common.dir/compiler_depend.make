# Empty compiler generated dependencies file for esharp_bench_common.
# This may be replaced when dependencies are built.
