file(REMOVE_RECURSE
  "../lib/libesharp_bench_common.a"
  "../lib/libesharp_bench_common.pdb"
  "CMakeFiles/esharp_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/esharp_bench_common.dir/bench_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
