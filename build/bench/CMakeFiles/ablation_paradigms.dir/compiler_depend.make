# Empty compiler generated dependencies file for ablation_paradigms.
# This may be replaced when dependencies are built.
