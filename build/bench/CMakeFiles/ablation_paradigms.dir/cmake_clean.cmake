file(REMOVE_RECURSE
  "CMakeFiles/ablation_paradigms.dir/ablation_paradigms.cc.o"
  "CMakeFiles/ablation_paradigms.dir/ablation_paradigms.cc.o.d"
  "ablation_paradigms"
  "ablation_paradigms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_paradigms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
