file(REMOVE_RECURSE
  "CMakeFiles/ablation_refresh.dir/ablation_refresh.cc.o"
  "CMakeFiles/ablation_refresh.dir/ablation_refresh.cc.o.d"
  "ablation_refresh"
  "ablation_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
