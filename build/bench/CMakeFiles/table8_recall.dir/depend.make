# Empty dependencies file for table8_recall.
# This may be replaced when dependencies are built.
