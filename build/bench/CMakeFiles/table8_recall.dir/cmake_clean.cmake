file(REMOVE_RECURSE
  "CMakeFiles/table8_recall.dir/table8_recall.cc.o"
  "CMakeFiles/table8_recall.dir/table8_recall.cc.o.d"
  "table8_recall"
  "table8_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
