# Empty dependencies file for table9_resources.
# This may be replaced when dependencies are built.
