file(REMOVE_RECURSE
  "CMakeFiles/table9_resources.dir/table9_resources.cc.o"
  "CMakeFiles/table9_resources.dir/table9_resources.cc.o.d"
  "table9_resources"
  "table9_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
