file(REMOVE_RECURSE
  "CMakeFiles/tables2to7_examples.dir/tables2to7_examples.cc.o"
  "CMakeFiles/tables2to7_examples.dir/tables2to7_examples.cc.o.d"
  "tables2to7_examples"
  "tables2to7_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tables2to7_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
