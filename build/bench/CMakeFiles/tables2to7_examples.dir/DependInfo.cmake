
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tables2to7_examples.cc" "bench/CMakeFiles/tables2to7_examples.dir/tables2to7_examples.cc.o" "gcc" "bench/CMakeFiles/tables2to7_examples.dir/tables2to7_examples.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/esharp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/esharp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/esharp/CMakeFiles/esharp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/expert/CMakeFiles/esharp_expert.dir/DependInfo.cmake"
  "/root/repo/build/src/microblog/CMakeFiles/esharp_microblog.dir/DependInfo.cmake"
  "/root/repo/build/src/qna/CMakeFiles/esharp_qna.dir/DependInfo.cmake"
  "/root/repo/build/src/community/CMakeFiles/esharp_community.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/esharp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/querylog/CMakeFiles/esharp_querylog.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlengine/CMakeFiles/esharp_sqlengine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/esharp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
