# Empty compiler generated dependencies file for tables2to7_examples.
# This may be replaced when dependencies are built.
