# Empty dependencies file for fig10_impurity.
# This may be replaced when dependencies are built.
