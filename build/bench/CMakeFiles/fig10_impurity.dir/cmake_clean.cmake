file(REMOVE_RECURSE
  "CMakeFiles/fig10_impurity.dir/fig10_impurity.cc.o"
  "CMakeFiles/fig10_impurity.dir/fig10_impurity.cc.o.d"
  "fig10_impurity"
  "fig10_impurity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_impurity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
