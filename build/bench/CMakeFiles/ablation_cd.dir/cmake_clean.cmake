file(REMOVE_RECURSE
  "CMakeFiles/ablation_cd.dir/ablation_cd.cc.o"
  "CMakeFiles/ablation_cd.dir/ablation_cd.cc.o.d"
  "ablation_cd"
  "ablation_cd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
