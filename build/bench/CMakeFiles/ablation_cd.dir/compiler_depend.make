# Empty compiler generated dependencies file for ablation_cd.
# This may be replaced when dependencies are built.
