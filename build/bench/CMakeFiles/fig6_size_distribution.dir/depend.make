# Empty dependencies file for fig6_size_distribution.
# This may be replaced when dependencies are built.
