file(REMOVE_RECURSE
  "CMakeFiles/fig6_size_distribution.dir/fig6_size_distribution.cc.o"
  "CMakeFiles/fig6_size_distribution.dir/fig6_size_distribution.cc.o.d"
  "fig6_size_distribution"
  "fig6_size_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_size_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
