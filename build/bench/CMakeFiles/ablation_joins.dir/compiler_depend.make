# Empty compiler generated dependencies file for ablation_joins.
# This may be replaced when dependencies are built.
