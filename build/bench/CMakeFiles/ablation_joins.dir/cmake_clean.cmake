file(REMOVE_RECURSE
  "CMakeFiles/ablation_joins.dir/ablation_joins.cc.o"
  "CMakeFiles/ablation_joins.dir/ablation_joins.cc.o.d"
  "ablation_joins"
  "ablation_joins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
