file(REMOVE_RECURSE
  "libesharp_microblog.a"
)
