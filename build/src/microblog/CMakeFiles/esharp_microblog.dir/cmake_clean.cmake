file(REMOVE_RECURSE
  "CMakeFiles/esharp_microblog.dir/corpus.cc.o"
  "CMakeFiles/esharp_microblog.dir/corpus.cc.o.d"
  "CMakeFiles/esharp_microblog.dir/generator.cc.o"
  "CMakeFiles/esharp_microblog.dir/generator.cc.o.d"
  "libesharp_microblog.a"
  "libesharp_microblog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharp_microblog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
