# Empty dependencies file for esharp_microblog.
# This may be replaced when dependencies are built.
