# CMake generated Testfile for 
# Source directory: /root/repo/src/qna
# Build directory: /root/repo/build/src/qna
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
