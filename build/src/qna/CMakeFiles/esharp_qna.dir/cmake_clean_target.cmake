file(REMOVE_RECURSE
  "libesharp_qna.a"
)
