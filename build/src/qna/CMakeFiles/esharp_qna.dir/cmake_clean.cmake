file(REMOVE_RECURSE
  "CMakeFiles/esharp_qna.dir/corpus.cc.o"
  "CMakeFiles/esharp_qna.dir/corpus.cc.o.d"
  "CMakeFiles/esharp_qna.dir/detector.cc.o"
  "CMakeFiles/esharp_qna.dir/detector.cc.o.d"
  "libesharp_qna.a"
  "libesharp_qna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharp_qna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
