# Empty compiler generated dependencies file for esharp_qna.
# This may be replaced when dependencies are built.
