file(REMOVE_RECURSE
  "CMakeFiles/esharp_graph.dir/builder.cc.o"
  "CMakeFiles/esharp_graph.dir/builder.cc.o.d"
  "CMakeFiles/esharp_graph.dir/graph.cc.o"
  "CMakeFiles/esharp_graph.dir/graph.cc.o.d"
  "libesharp_graph.a"
  "libesharp_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
