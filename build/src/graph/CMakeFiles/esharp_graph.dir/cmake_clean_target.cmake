file(REMOVE_RECURSE
  "libesharp_graph.a"
)
