# Empty dependencies file for esharp_graph.
# This may be replaced when dependencies are built.
