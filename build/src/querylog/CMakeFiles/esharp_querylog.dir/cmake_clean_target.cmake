file(REMOVE_RECURSE
  "libesharp_querylog.a"
)
