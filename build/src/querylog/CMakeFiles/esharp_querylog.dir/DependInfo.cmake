
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/querylog/generator.cc" "src/querylog/CMakeFiles/esharp_querylog.dir/generator.cc.o" "gcc" "src/querylog/CMakeFiles/esharp_querylog.dir/generator.cc.o.d"
  "/root/repo/src/querylog/log.cc" "src/querylog/CMakeFiles/esharp_querylog.dir/log.cc.o" "gcc" "src/querylog/CMakeFiles/esharp_querylog.dir/log.cc.o.d"
  "/root/repo/src/querylog/universe.cc" "src/querylog/CMakeFiles/esharp_querylog.dir/universe.cc.o" "gcc" "src/querylog/CMakeFiles/esharp_querylog.dir/universe.cc.o.d"
  "/root/repo/src/querylog/variants.cc" "src/querylog/CMakeFiles/esharp_querylog.dir/variants.cc.o" "gcc" "src/querylog/CMakeFiles/esharp_querylog.dir/variants.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/esharp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlengine/CMakeFiles/esharp_sqlengine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
