# Empty compiler generated dependencies file for esharp_querylog.
# This may be replaced when dependencies are built.
