file(REMOVE_RECURSE
  "CMakeFiles/esharp_querylog.dir/generator.cc.o"
  "CMakeFiles/esharp_querylog.dir/generator.cc.o.d"
  "CMakeFiles/esharp_querylog.dir/log.cc.o"
  "CMakeFiles/esharp_querylog.dir/log.cc.o.d"
  "CMakeFiles/esharp_querylog.dir/universe.cc.o"
  "CMakeFiles/esharp_querylog.dir/universe.cc.o.d"
  "CMakeFiles/esharp_querylog.dir/variants.cc.o"
  "CMakeFiles/esharp_querylog.dir/variants.cc.o.d"
  "libesharp_querylog.a"
  "libesharp_querylog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharp_querylog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
