# Empty dependencies file for esharp_eval.
# This may be replaced when dependencies are built.
