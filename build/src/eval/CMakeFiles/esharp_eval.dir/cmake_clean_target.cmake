file(REMOVE_RECURSE
  "libesharp_eval.a"
)
