file(REMOVE_RECURSE
  "CMakeFiles/esharp_eval.dir/crowd.cc.o"
  "CMakeFiles/esharp_eval.dir/crowd.cc.o.d"
  "CMakeFiles/esharp_eval.dir/harness.cc.o"
  "CMakeFiles/esharp_eval.dir/harness.cc.o.d"
  "CMakeFiles/esharp_eval.dir/metrics.cc.o"
  "CMakeFiles/esharp_eval.dir/metrics.cc.o.d"
  "CMakeFiles/esharp_eval.dir/query_sets.cc.o"
  "CMakeFiles/esharp_eval.dir/query_sets.cc.o.d"
  "CMakeFiles/esharp_eval.dir/tasks.cc.o"
  "CMakeFiles/esharp_eval.dir/tasks.cc.o.d"
  "libesharp_eval.a"
  "libesharp_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharp_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
