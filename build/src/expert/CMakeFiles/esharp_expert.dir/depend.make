# Empty dependencies file for esharp_expert.
# This may be replaced when dependencies are built.
