file(REMOVE_RECURSE
  "CMakeFiles/esharp_expert.dir/cluster_filter.cc.o"
  "CMakeFiles/esharp_expert.dir/cluster_filter.cc.o.d"
  "CMakeFiles/esharp_expert.dir/detector.cc.o"
  "CMakeFiles/esharp_expert.dir/detector.cc.o.d"
  "libesharp_expert.a"
  "libesharp_expert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharp_expert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
