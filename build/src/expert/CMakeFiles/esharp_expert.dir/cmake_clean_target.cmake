file(REMOVE_RECURSE
  "libesharp_expert.a"
)
