file(REMOVE_RECURSE
  "CMakeFiles/esharp_common.dir/file_io.cc.o"
  "CMakeFiles/esharp_common.dir/file_io.cc.o.d"
  "CMakeFiles/esharp_common.dir/rng.cc.o"
  "CMakeFiles/esharp_common.dir/rng.cc.o.d"
  "CMakeFiles/esharp_common.dir/sparse_vector.cc.o"
  "CMakeFiles/esharp_common.dir/sparse_vector.cc.o.d"
  "CMakeFiles/esharp_common.dir/stats.cc.o"
  "CMakeFiles/esharp_common.dir/stats.cc.o.d"
  "CMakeFiles/esharp_common.dir/status.cc.o"
  "CMakeFiles/esharp_common.dir/status.cc.o.d"
  "CMakeFiles/esharp_common.dir/strings.cc.o"
  "CMakeFiles/esharp_common.dir/strings.cc.o.d"
  "CMakeFiles/esharp_common.dir/thread_pool.cc.o"
  "CMakeFiles/esharp_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/esharp_common.dir/timer.cc.o"
  "CMakeFiles/esharp_common.dir/timer.cc.o.d"
  "libesharp_common.a"
  "libesharp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
