# Empty dependencies file for esharp_common.
# This may be replaced when dependencies are built.
