file(REMOVE_RECURSE
  "libesharp_common.a"
)
