# Empty dependencies file for esharp_core.
# This may be replaced when dependencies are built.
