file(REMOVE_RECURSE
  "libesharp_core.a"
)
