file(REMOVE_RECURSE
  "CMakeFiles/esharp_core.dir/esharp.cc.o"
  "CMakeFiles/esharp_core.dir/esharp.cc.o.d"
  "CMakeFiles/esharp_core.dir/pipeline.cc.o"
  "CMakeFiles/esharp_core.dir/pipeline.cc.o.d"
  "libesharp_core.a"
  "libesharp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
