file(REMOVE_RECURSE
  "libesharp_community.a"
)
