file(REMOVE_RECURSE
  "CMakeFiles/esharp_community.dir/label_propagation.cc.o"
  "CMakeFiles/esharp_community.dir/label_propagation.cc.o.d"
  "CMakeFiles/esharp_community.dir/louvain.cc.o"
  "CMakeFiles/esharp_community.dir/louvain.cc.o.d"
  "CMakeFiles/esharp_community.dir/modularity.cc.o"
  "CMakeFiles/esharp_community.dir/modularity.cc.o.d"
  "CMakeFiles/esharp_community.dir/newman.cc.o"
  "CMakeFiles/esharp_community.dir/newman.cc.o.d"
  "CMakeFiles/esharp_community.dir/parallel_cd.cc.o"
  "CMakeFiles/esharp_community.dir/parallel_cd.cc.o.d"
  "CMakeFiles/esharp_community.dir/sql_cd.cc.o"
  "CMakeFiles/esharp_community.dir/sql_cd.cc.o.d"
  "CMakeFiles/esharp_community.dir/sql_cd_text.cc.o"
  "CMakeFiles/esharp_community.dir/sql_cd_text.cc.o.d"
  "CMakeFiles/esharp_community.dir/store.cc.o"
  "CMakeFiles/esharp_community.dir/store.cc.o.d"
  "libesharp_community.a"
  "libesharp_community.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharp_community.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
