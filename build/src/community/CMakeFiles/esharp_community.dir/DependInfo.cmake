
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/community/label_propagation.cc" "src/community/CMakeFiles/esharp_community.dir/label_propagation.cc.o" "gcc" "src/community/CMakeFiles/esharp_community.dir/label_propagation.cc.o.d"
  "/root/repo/src/community/louvain.cc" "src/community/CMakeFiles/esharp_community.dir/louvain.cc.o" "gcc" "src/community/CMakeFiles/esharp_community.dir/louvain.cc.o.d"
  "/root/repo/src/community/modularity.cc" "src/community/CMakeFiles/esharp_community.dir/modularity.cc.o" "gcc" "src/community/CMakeFiles/esharp_community.dir/modularity.cc.o.d"
  "/root/repo/src/community/newman.cc" "src/community/CMakeFiles/esharp_community.dir/newman.cc.o" "gcc" "src/community/CMakeFiles/esharp_community.dir/newman.cc.o.d"
  "/root/repo/src/community/parallel_cd.cc" "src/community/CMakeFiles/esharp_community.dir/parallel_cd.cc.o" "gcc" "src/community/CMakeFiles/esharp_community.dir/parallel_cd.cc.o.d"
  "/root/repo/src/community/sql_cd.cc" "src/community/CMakeFiles/esharp_community.dir/sql_cd.cc.o" "gcc" "src/community/CMakeFiles/esharp_community.dir/sql_cd.cc.o.d"
  "/root/repo/src/community/sql_cd_text.cc" "src/community/CMakeFiles/esharp_community.dir/sql_cd_text.cc.o" "gcc" "src/community/CMakeFiles/esharp_community.dir/sql_cd_text.cc.o.d"
  "/root/repo/src/community/store.cc" "src/community/CMakeFiles/esharp_community.dir/store.cc.o" "gcc" "src/community/CMakeFiles/esharp_community.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/esharp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/esharp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlengine/CMakeFiles/esharp_sqlengine.dir/DependInfo.cmake"
  "/root/repo/build/src/querylog/CMakeFiles/esharp_querylog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
