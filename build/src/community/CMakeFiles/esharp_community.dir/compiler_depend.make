# Empty compiler generated dependencies file for esharp_community.
# This may be replaced when dependencies are built.
