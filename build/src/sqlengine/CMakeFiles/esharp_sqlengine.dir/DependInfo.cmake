
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqlengine/aggregates.cc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/aggregates.cc.o" "gcc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/aggregates.cc.o.d"
  "/root/repo/src/sqlengine/catalog.cc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/catalog.cc.o" "gcc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/catalog.cc.o.d"
  "/root/repo/src/sqlengine/expression.cc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/expression.cc.o" "gcc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/expression.cc.o.d"
  "/root/repo/src/sqlengine/operators.cc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/operators.cc.o" "gcc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/operators.cc.o.d"
  "/root/repo/src/sqlengine/parallel.cc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/parallel.cc.o" "gcc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/parallel.cc.o.d"
  "/root/repo/src/sqlengine/parser.cc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/parser.cc.o" "gcc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/parser.cc.o.d"
  "/root/repo/src/sqlengine/plan.cc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/plan.cc.o" "gcc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/plan.cc.o.d"
  "/root/repo/src/sqlengine/schema.cc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/schema.cc.o" "gcc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/schema.cc.o.d"
  "/root/repo/src/sqlengine/table.cc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/table.cc.o" "gcc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/table.cc.o.d"
  "/root/repo/src/sqlengine/value.cc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/value.cc.o" "gcc" "src/sqlengine/CMakeFiles/esharp_sqlengine.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/esharp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
