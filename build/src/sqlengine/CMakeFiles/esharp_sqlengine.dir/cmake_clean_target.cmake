file(REMOVE_RECURSE
  "libesharp_sqlengine.a"
)
