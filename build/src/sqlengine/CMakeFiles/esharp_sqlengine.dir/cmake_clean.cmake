file(REMOVE_RECURSE
  "CMakeFiles/esharp_sqlengine.dir/aggregates.cc.o"
  "CMakeFiles/esharp_sqlengine.dir/aggregates.cc.o.d"
  "CMakeFiles/esharp_sqlengine.dir/catalog.cc.o"
  "CMakeFiles/esharp_sqlengine.dir/catalog.cc.o.d"
  "CMakeFiles/esharp_sqlengine.dir/expression.cc.o"
  "CMakeFiles/esharp_sqlengine.dir/expression.cc.o.d"
  "CMakeFiles/esharp_sqlengine.dir/operators.cc.o"
  "CMakeFiles/esharp_sqlengine.dir/operators.cc.o.d"
  "CMakeFiles/esharp_sqlengine.dir/parallel.cc.o"
  "CMakeFiles/esharp_sqlengine.dir/parallel.cc.o.d"
  "CMakeFiles/esharp_sqlengine.dir/parser.cc.o"
  "CMakeFiles/esharp_sqlengine.dir/parser.cc.o.d"
  "CMakeFiles/esharp_sqlengine.dir/plan.cc.o"
  "CMakeFiles/esharp_sqlengine.dir/plan.cc.o.d"
  "CMakeFiles/esharp_sqlengine.dir/schema.cc.o"
  "CMakeFiles/esharp_sqlengine.dir/schema.cc.o.d"
  "CMakeFiles/esharp_sqlengine.dir/table.cc.o"
  "CMakeFiles/esharp_sqlengine.dir/table.cc.o.d"
  "CMakeFiles/esharp_sqlengine.dir/value.cc.o"
  "CMakeFiles/esharp_sqlengine.dir/value.cc.o.d"
  "libesharp_sqlengine.a"
  "libesharp_sqlengine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharp_sqlengine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
