# Empty dependencies file for esharp_sqlengine.
# This may be replaced when dependencies are built.
