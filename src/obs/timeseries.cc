#include "obs/timeseries.h"

#include <algorithm>
#include <chrono>

#include "common/strings.h"
#include "obs/obs.h"

namespace esharp::obs {

namespace {

std::string JsonNumber(double v) {
  if (!(v == v) || v > 1e308 || v < -1e308) return "0";
  return StrFormat("%.12g", v);
}

const char* KindName(int kind) {
  switch (kind) {
    case 0: return "gauge";
    case 1: return "rate";
    case 2: return "quantile";
  }
  return "unknown";
}

}  // namespace

TimeSeriesStore::TimeSeriesStore(TimeSeriesOptions options)
    : options_(std::move(options)) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.sample_period_seconds <= 0) options_.sample_period_seconds = 1.0;
}

TimeSeriesStore::~TimeSeriesStore() { Stop(); }

double TimeSeriesStore::Now() const {
  return options_.clock ? options_.clock() : NowSeconds();
}

MetricsRegistry& TimeSeriesStore::Registry() const {
  return options_.registry != nullptr ? *options_.registry
                                      : MetricsRegistry::Global();
}

void TimeSeriesStore::Push(Series& series, double time, double value) {
  TimeSeriesPoint point{time, value};
  if (series.ring.size() < options_.capacity) {
    series.ring.push_back(point);
  } else {
    series.ring[series.head] = point;
    series.head = (series.head + 1) % options_.capacity;
  }
}

void TimeSeriesStore::RecordGauge(const std::string& key, Kind kind,
                                  double time, double value) {
  Series& series = series_[key];
  series.kind = kind;
  Push(series, time, value);
}

void TimeSeriesStore::RecordCounter(const std::string& key, double time,
                                    double cumulative) {
  Series& series = series_[key];
  series.kind = Kind::kRate;
  if (series.has_prev) {
    double dt = time - series.prev_time;
    if (dt > 0) {
      // A cumulative reading below the previous one means the counter was
      // reset (a restart, a ResetAll): the new total IS the delta since
      // the reset, not a negative rate.
      double delta = cumulative >= series.prev_value
                         ? cumulative - series.prev_value
                         : cumulative;
      Push(series, time, delta / dt);
    }
  }
  // The first observation only establishes the baseline: a rate needs two
  // cumulative readings.
  series.has_prev = true;
  series.prev_value = cumulative;
  series.prev_time = time;
}

void TimeSeriesStore::Sample() {
#if ESHARP_OBS_ENABLED
  double now = Now();
  RegistrySample sample = Registry().SampleAll();
  std::lock_guard<std::mutex> lock(mu_);
  for (const SampledGauge& g : sample.gauges) {
    RecordGauge(g.key, Kind::kGauge, now, g.value);
  }
  for (const SampledCounter& c : sample.counters) {
    RecordCounter(c.key, now, static_cast<double>(c.value));
  }
  for (const SampledHistogram& h : sample.histograms) {
    RecordGauge(h.key + ".p50", Kind::kQuantile, now, h.snapshot.p50);
    RecordGauge(h.key + ".p95", Kind::kQuantile, now, h.snapshot.p95);
    RecordGauge(h.key + ".p99", Kind::kQuantile, now, h.snapshot.p99);
  }
  ++samples_;
#endif
}

void TimeSeriesStore::Start(double period_seconds) {
#if ESHARP_OBS_ENABLED
  double period = period_seconds > 0 ? period_seconds
                                     : options_.sample_period_seconds;
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  poll_thread_ = std::thread([this, period] {
    std::unique_lock<std::mutex> lock(thread_mu_);
    while (!stop_requested_) {
      lock.unlock();
      Sample();
      lock.lock();
      stop_cv_.wait_for(lock,
                        std::chrono::duration<double>(std::max(0.001, period)),
                        [this] { return stop_requested_; });
    }
  });
#else
  (void)period_seconds;
#endif
}

void TimeSeriesStore::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!running_) return;
    stop_requested_ = true;
    running_ = false;
    to_join = std::move(poll_thread_);
  }
  stop_cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

bool TimeSeriesStore::running() const {
  std::lock_guard<std::mutex> lock(thread_mu_);
  return running_;
}

std::vector<TimeSeriesPoint> TimeSeriesStore::OrderedLocked(
    const Series& series) const {
  std::vector<TimeSeriesPoint> out;
  out.reserve(series.ring.size());
  size_t n = series.ring.size();
  size_t start = n < options_.capacity ? 0 : series.head;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(series.ring[(start + i) % n]);
  }
  return out;
}

std::vector<std::string> TimeSeriesStore::SeriesNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [key, series] : series_) out.push_back(key);
  return out;
}

std::vector<TimeSeriesPoint> TimeSeriesStore::Range(
    const std::string& series, double window_seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end()) return {};
  std::vector<TimeSeriesPoint> points = OrderedLocked(it->second);
  if (window_seconds > 0 && !points.empty()) {
    double cutoff = points.back().time_seconds - window_seconds;
    points.erase(std::remove_if(points.begin(), points.end(),
                                [cutoff](const TimeSeriesPoint& p) {
                                  return p.time_seconds < cutoff;
                                }),
                 points.end());
  }
  return points;
}

SeriesWindowStats TimeSeriesStore::Window(const std::string& series,
                                          double window_seconds) const {
  std::vector<TimeSeriesPoint> points = Range(series, window_seconds);
  SeriesWindowStats stats;
  for (const TimeSeriesPoint& p : points) {
    if (stats.count == 0) {
      stats.min = stats.max = p.value;
    } else {
      stats.min = std::min(stats.min, p.value);
      stats.max = std::max(stats.max, p.value);
    }
    stats.avg += p.value;
    stats.last = p.value;
    ++stats.count;
  }
  if (stats.count > 0) stats.avg /= static_cast<double>(stats.count);
  return stats;
}

std::string TimeSeriesStore::RenderJsonFiltered(
    const std::function<bool(const std::string&)>& keep,
    double window_seconds) const {
  std::vector<std::string> names = SeriesNames();
  std::string out = StrFormat(
      "{\"window_seconds\":%s,\"samples_taken\":%llu,\"series\":[",
      JsonNumber(window_seconds).c_str(),
      static_cast<unsigned long long>(samples_taken()));
  bool first = true;
  for (const std::string& name : names) {
    if (!keep(name)) continue;
    Kind kind;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = series_.find(name);
      if (it == series_.end()) continue;
      kind = it->second.kind;
    }
    std::vector<TimeSeriesPoint> points = Range(name, window_seconds);
    SeriesWindowStats stats;
    for (const TimeSeriesPoint& p : points) {
      if (stats.count == 0) {
        stats.min = stats.max = p.value;
      } else {
        stats.min = std::min(stats.min, p.value);
        stats.max = std::max(stats.max, p.value);
      }
      stats.avg += p.value;
      stats.last = p.value;
      ++stats.count;
    }
    if (stats.count > 0) stats.avg /= static_cast<double>(stats.count);
    out += first ? "\n" : ",\n";
    first = false;
    // Series ids are registry keys: escape the quotes label values carry.
    std::string escaped;
    escaped.reserve(name.size());
    for (char c : name) {
      if (c == '\\' || c == '"') escaped.push_back('\\');
      escaped.push_back(c);
    }
    out += StrFormat(
        "  {\"id\":\"%s\",\"kind\":\"%s\",\"stats\":{\"count\":%zu,"
        "\"min\":%s,\"max\":%s,\"avg\":%s,\"last\":%s},\"points\":[",
        escaped.c_str(), KindName(static_cast<int>(kind)), stats.count,
        JsonNumber(stats.min).c_str(), JsonNumber(stats.max).c_str(),
        JsonNumber(stats.avg).c_str(), JsonNumber(stats.last).c_str());
    for (size_t i = 0; i < points.size(); ++i) {
      if (i > 0) out += ",";
      out += "[" + JsonNumber(points[i].time_seconds) + "," +
             JsonNumber(points[i].value) + "]";
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

std::string TimeSeriesStore::RenderJson(const std::string& metric_filter,
                                        double window_seconds) const {
  return RenderJsonFiltered(
      [&metric_filter](const std::string& name) {
        return metric_filter.empty() ||
               name.find(metric_filter) != std::string::npos;
      },
      window_seconds);
}

std::string TimeSeriesStore::RenderJsonPrefixes(
    const std::vector<std::string>& prefixes, double window_seconds) const {
  return RenderJsonFiltered(
      [&prefixes](const std::string& name) {
        if (prefixes.empty()) return true;
        for (const std::string& prefix : prefixes) {
          if (name.rfind(prefix, 0) == 0) return true;
        }
        return false;
      },
      window_seconds);
}

uint64_t TimeSeriesStore::samples_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

size_t TimeSeriesStore::num_series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

}  // namespace esharp::obs
