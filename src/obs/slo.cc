#include "obs/slo.h"

#include <algorithm>
#include <chrono>

#include "common/strings.h"
#include "obs/metrics.h"

namespace esharp::obs {

SloWatchdog::SloWatchdog() : SloWatchdog(Options()) {}

SloWatchdog::SloWatchdog(Options options) : options_(std::move(options)) {
  if (options_.recovery_fraction <= 0 || options_.recovery_fraction > 1) {
    options_.recovery_fraction = 0.8;
  }
}

SloWatchdog::~SloWatchdog() { Stop(); }

double SloWatchdog::Now() const {
  return options_.clock ? options_.clock() : NowSeconds();
}

void SloWatchdog::AddObjective(SloObjective objective) {
  auto tracked = std::make_unique<Tracked>();
  if (objective.target <= 0) objective.target = 1e-9;
  tracked->state.name = objective.name;
  tracked->objective = std::move(objective);
  std::lock_guard<std::mutex> lock(mu_);
  tracked_.push_back(std::move(tracked));
}

void SloWatchdog::AddAlertCallback(
    std::function<void(const SloState&)> callback) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_.push_back(std::move(callback));
}

double SloWatchdog::WindowBurn(const Tracked& t, double window, double now) {
  if (t.samples.empty()) return 0;
  const Sample& newest = t.samples.back();
  // Window boundary: the oldest sample not older than `window` (falling
  // back to the oldest retained one, so a young watchdog still evaluates).
  const Sample* boundary = &t.samples.front();
  for (const Sample& s : t.samples) {
    if (now - s.time <= window) {
      boundary = &s;
      break;
    }
    boundary = &s;
  }
  if (t.objective.kind == SloObjective::Kind::kRatio) {
    double delta_total = newest.total - boundary->total;
    if (delta_total <= 0) return 0;
    double delta_bad = std::max(0.0, newest.bad - boundary->bad);
    return (delta_bad / delta_total) / t.objective.target;
  }
  // kValue: mean of the readings inside the window.
  double sum = 0;
  size_t n = 0;
  for (const Sample& s : t.samples) {
    if (now - s.time <= window) {
      sum += s.value;
      ++n;
    }
  }
  if (n == 0) {
    sum = newest.value;
    n = 1;
  }
  return (sum / static_cast<double>(n)) / t.objective.target;
}

void SloWatchdog::Tick() {
  double now = Now();
  std::vector<std::pair<SloState, bool>> transitions;  // state, is_breach
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& tracked : tracked_) {
      Tracked& t = *tracked;
      Sample sample;
      sample.time = now;
      if (t.objective.kind == SloObjective::Kind::kRatio) {
        sample.bad = t.objective.bad ? t.objective.bad() : 0;
        sample.total = t.objective.total ? t.objective.total() : 0;
      } else {
        sample.value = t.objective.value ? t.objective.value() : 0;
      }
      t.samples.push_back(sample);
      // Retain a little beyond the long window so its boundary sample
      // survives between ticks.
      double horizon = t.objective.long_window_seconds * 1.5 + 1.0;
      while (t.samples.size() > 2 && now - t.samples.front().time > horizon) {
        t.samples.pop_front();
      }

      t.state.short_burn =
          WindowBurn(t, t.objective.short_window_seconds, now);
      t.state.long_burn = WindowBurn(t, t.objective.long_window_seconds, now);
      bool was_breached = t.state.breached;
      if (!was_breached) {
        // Breach: both windows burning past the threshold — fast signal
        // confirmed by the sustained one.
        if (t.state.short_burn >= t.objective.burn_threshold &&
            t.state.long_burn >= t.objective.burn_threshold) {
          t.state.breached = true;
        }
      } else {
        // Recover with hysteresis: both windows clearly back under budget.
        double recover_at =
            t.objective.burn_threshold * options_.recovery_fraction;
        if (t.state.short_burn < recover_at &&
            t.state.long_burn < recover_at) {
          t.state.breached = false;
        }
      }
      if (t.state.breached != was_breached) {
        t.state.since_seconds = now;
        transitions.emplace_back(t.state, t.state.breached);
      }
    }
  }
  // Emit outside mu_ so callbacks and the event log can re-enter the
  // watchdog (Snapshot from an alert handler) without deadlocking.
  for (const auto& [state, is_breach] : transitions) {
    EventLog* events =
        options_.events != nullptr ? options_.events : &EventLog::Global();
    // Burn rates ride the message too: an operator reading a bundle's
    // event list sees how hard the budget was burning without unpacking
    // the structured fields.
    std::string burns = StrFormat(" (burn short %.2fx long %.2fx)",
                                  state.short_burn, state.long_burn);
    events->Add(is_breach ? LogLevel::kERROR : LogLevel::kINFO, "slo",
                (is_breach ? "SLO breach: " + state.name
                           : "SLO recovered: " + state.name) +
                    burns,
                {{"objective", state.name},
                 {"short_burn", StrFormat("%.3f", state.short_burn)},
                 {"long_burn", StrFormat("%.3f", state.long_burn)}});
    std::vector<std::function<void(const SloState&)>> callbacks;
    {
      std::lock_guard<std::mutex> lock(mu_);
      callbacks = callbacks_;
    }
    for (const auto& callback : callbacks) callback(state);
  }
}

void SloWatchdog::Start(double period_seconds) {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  poll_thread_ = std::thread([this, period_seconds] {
    std::unique_lock<std::mutex> lock(thread_mu_);
    while (!stop_requested_) {
      lock.unlock();
      Tick();
      lock.lock();
      stop_cv_.wait_for(
          lock, std::chrono::duration<double>(std::max(0.01, period_seconds)),
          [this] { return stop_requested_; });
    }
  });
}

void SloWatchdog::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!running_) return;
    stop_requested_ = true;
    running_ = false;
    to_join = std::move(poll_thread_);
  }
  stop_cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

bool SloWatchdog::healthy() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& tracked : tracked_) {
    if (tracked->state.breached) return false;
  }
  return true;
}

std::vector<SloState> SloWatchdog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SloState> out;
  out.reserve(tracked_.size());
  for (const auto& tracked : tracked_) out.push_back(tracked->state);
  return out;
}

std::string SloWatchdog::RenderText() const {
  std::vector<SloState> states = Snapshot();
  std::string out;
  if (states.empty()) return "no objectives registered\n";
  for (const SloState& s : states) {
    out += StrFormat("%-28s %-8s burn short %7.3f  long %7.3f\n",
                     s.name.c_str(), s.breached ? "BREACH" : "ok",
                     s.short_burn, s.long_burn);
  }
  return out;
}

}  // namespace esharp::obs
