#ifndef ESHARP_OBS_OBS_H_
#define ESHARP_OBS_OBS_H_

/// \file Umbrella header for the observability subsystem: the metrics
/// registry, tracing, and leveled logging, plus the macros instrumented
/// code uses. Building with -DESHARP_OBS_OFF=ON compiles the span/metric
/// macros below to no-ops (the registry, tracer and logger classes stay
/// available — only inline call sites disappear).

#include "obs/event_log.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

#if defined(ESHARP_OBS_OFF)
#define ESHARP_OBS_ENABLED 0
#else
#define ESHARP_OBS_ENABLED 1
#endif

#if ESHARP_OBS_ENABLED

/// Declares `var` as a span on `tracer` (null-tolerant) parented under
/// `parent` (a `const Span*`, may be null). Ends at scope exit.
#define ESHARP_SPAN(var, tracer, name, parent) \
  ::esharp::obs::Span var =                    \
      ::esharp::obs::StartSpan((tracer), (name), (parent))

/// Annotates a span declared with ESHARP_SPAN.
#define ESHARP_SPAN_ANNOTATE(span, key, value) (span).Annotate((key), (value))

/// Bumps a cached `obs::Counter*` (null-tolerant).
#define ESHARP_COUNTER_ADD(counter, delta)                  \
  do {                                                      \
    if ((counter) != nullptr) (counter)->Increment(delta);  \
  } while (0)

#else  // ESHARP_OBS_ENABLED

#define ESHARP_SPAN(var, tracer, name, parent) \
  [[maybe_unused]] ::esharp::obs::Span var
#define ESHARP_SPAN_ANNOTATE(span, key, value) \
  do {                                         \
    (void)sizeof((span));                      \
  } while (0)
#define ESHARP_COUNTER_ADD(counter, delta) \
  do {                                     \
    (void)sizeof((counter));               \
  } while (0)

#endif  // ESHARP_OBS_ENABLED

#endif  // ESHARP_OBS_OBS_H_
