#include "obs/trace_context.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/hash.h"
#include "common/strings.h"

namespace esharp::obs {

namespace {

/// Parses exactly `n` lowercase-or-uppercase hex digits starting at `p`.
/// Returns false on any non-hex character.
bool ParseHex(const char* p, size_t n, uint64_t* out) {
  uint64_t v = 0;
  for (size_t i = 0; i < n; ++i) {
    char c = p[i];
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
    v = (v << 4) | digit;
  }
  *out = v;
  return true;
}

/// One fresh 64-bit value per call: a process-local counter mixed with the
/// steady clock and a per-thread address, so concurrent roots in one
/// process and roots minted by different processes diverge immediately.
uint64_t Entropy64() {
  static std::atomic<uint64_t> counter{0};
  uint64_t ticks = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  uint64_t seq = counter.fetch_add(1, std::memory_order_relaxed);
  uint64_t tid =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  static const int process_anchor = 0;
  uint64_t aslr = reinterpret_cast<uint64_t>(&process_anchor);
  return Mix64(HashCombine(Mix64(ticks ^ aslr), Mix64(seq) ^ tid));
}

uint64_t NonZero(uint64_t v) { return v == 0 ? 1 : v; }

}  // namespace

TraceContext TraceContext::NewRoot(bool sampled) {
  TraceContext ctx;
  ctx.trace_hi = NonZero(Entropy64());
  ctx.trace_lo = NonZero(Entropy64());
  ctx.span_id = NonZero(Entropy64());
  ctx.sampled = sampled;
  return ctx;
}

TraceContext TraceContext::Child(uint64_t child_index) const {
  TraceContext child = *this;
  // Pure integer derivation — no clock, no counter — so it is replayable
  // and identical on every platform (golden-pinned in tracing_test.cc).
  child.span_id =
      NonZero(Mix64(HashCombine(HashCombine(trace_lo, span_id), child_index)));
  return child;
}

std::string TraceContext::ToHeader() const {
  return StrFormat("00-%016llx%016llx-%016llx-%02x",
                   static_cast<unsigned long long>(trace_hi),
                   static_cast<unsigned long long>(trace_lo),
                   static_cast<unsigned long long>(span_id),
                   sampled ? 1u : 0u);
}

std::string TraceContext::TraceIdHex() const {
  return StrFormat("%016llx%016llx", static_cast<unsigned long long>(trace_hi),
                   static_cast<unsigned long long>(trace_lo));
}

Result<TraceContext> TraceContext::FromHeader(std::string_view header) {
  // 00-{32 hex}-{16 hex}-{2 hex}: 2 + 1 + 32 + 1 + 16 + 1 + 2 = 55.
  if (header.size() != 55) {
    return Status::InvalidArgument("trace header length ", header.size(),
                                   ", want 55");
  }
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') {
    return Status::InvalidArgument("trace header delimiters misplaced");
  }
  const char* p = header.data();
  uint64_t version = 0;
  if (!ParseHex(p, 2, &version)) {
    return Status::InvalidArgument("trace header version not hex");
  }
  if (version != 0) {
    // Future versions may append fields; until one exists, treat them as
    // unparseable rather than guessing at their layout.
    return Status::InvalidArgument("unsupported trace header version ",
                                   version);
  }
  TraceContext ctx;
  uint64_t flags = 0;
  if (!ParseHex(p + 3, 16, &ctx.trace_hi) ||
      !ParseHex(p + 19, 16, &ctx.trace_lo) ||
      !ParseHex(p + 36, 16, &ctx.span_id) || !ParseHex(p + 53, 2, &flags)) {
    return Status::InvalidArgument("trace header has non-hex id digits");
  }
  ctx.sampled = (flags & 1u) != 0;
  if (!ctx.valid()) {
    return Status::InvalidArgument("trace header carries zero ids");
  }
  return ctx;
}

TraceContext TraceContext::FromHeaderOrRoot(std::string_view header,
                                            bool sampled_default) {
  Result<TraceContext> parsed = FromHeader(header);
  if (parsed.ok()) return parsed.ValueOrDie();
  return NewRoot(sampled_default);
}

}  // namespace esharp::obs
