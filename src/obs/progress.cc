#include "obs/progress.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/metrics.h"

namespace esharp::obs {

namespace {

std::string JsonEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

JobProgressRegistry::Job::~Job() {
  if (!finished_) registry_->Finish(id_, "aborted");
}

void JobProgressRegistry::Job::SetStage(const std::string& stage) {
  if (!finished_) registry_->Update(id_, &stage, nullptr);
}

void JobProgressRegistry::Job::SetFraction(double fraction) {
  if (finished_) return;
  double clamped = std::min(1.0, std::max(0.0, fraction));
  registry_->Update(id_, nullptr, &clamped);
}

void JobProgressRegistry::Job::Finish(const std::string& outcome) {
  if (finished_) return;
  finished_ = true;
  registry_->Finish(id_, outcome);
}

JobProgressRegistry& JobProgressRegistry::Global() {
  static JobProgressRegistry* registry = new JobProgressRegistry();
  return *registry;
}

JobProgressRegistry::JobProgressRegistry(size_t max_finished)
    : max_finished_(max_finished) {}

std::unique_ptr<JobProgressRegistry::Job> JobProgressRegistry::Start(
    const std::string& name) {
  JobSnapshot job;
  job.name = name;
  job.stage = "started";
  job.started_seconds = NowSeconds();
  job.updated_seconds = job.started_seconds;
  std::lock_guard<std::mutex> lock(mu_);
  job.id = next_id_++;
  uint64_t id = job.id;
  active_.emplace(id, std::move(job));
  return std::unique_ptr<Job>(new Job(this, id));
}

void JobProgressRegistry::Update(uint64_t id, const std::string* stage,
                                 const double* fraction) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(id);
  if (it == active_.end()) return;
  if (stage != nullptr) it->second.stage = *stage;
  if (fraction != nullptr) it->second.fraction = *fraction;
  it->second.updated_seconds = NowSeconds();
}

void JobProgressRegistry::Finish(uint64_t id, const std::string& outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(id);
  if (it == active_.end()) return;
  JobSnapshot job = std::move(it->second);
  active_.erase(it);
  job.finished = true;
  job.outcome = outcome;
  job.updated_seconds = NowSeconds();
  if (job.fraction >= 0 && outcome == "ok") job.fraction = 1.0;
  finished_.push_back(std::move(job));
  while (finished_.size() > max_finished_) finished_.pop_front();
}

std::vector<JobProgressRegistry::JobSnapshot> JobProgressRegistry::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobSnapshot> out;
  out.reserve(active_.size() + finished_.size());
  for (const auto& [id, job] : active_) out.push_back(job);
  for (const JobSnapshot& job : finished_) out.push_back(job);
  return out;
}

size_t JobProgressRegistry::num_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_.size();
}

std::string JobProgressRegistry::RenderText() const {
  std::vector<JobSnapshot> jobs = Snapshot();
  std::string out =
      StrFormat("%zu jobs (%zu active)\n", jobs.size(), num_active());
  for (const JobSnapshot& j : jobs) {
    std::string progress =
        j.fraction >= 0 ? StrFormat("%5.1f%%", 100.0 * j.fraction) : "     -";
    out += StrFormat("#%-4llu %-24s %-10s %s %s  %.3fs\n",
                     static_cast<unsigned long long>(j.id), j.name.c_str(),
                     j.finished ? j.outcome.c_str() : "running",
                     progress.c_str(), j.stage.c_str(),
                     j.updated_seconds - j.started_seconds);
  }
  return out;
}

std::string JobProgressRegistry::RenderJson() const {
  std::vector<JobSnapshot> jobs = Snapshot();
  std::string out = "{\"jobs\":[";
  bool first = true;
  for (const JobSnapshot& j : jobs) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat(
        "  {\"id\":%llu,\"name\":\"%s\",\"stage\":\"%s\",\"fraction\":%.4f,"
        "\"started\":%.6f,\"updated\":%.6f,\"finished\":%s,\"outcome\":\"%s\"}",
        static_cast<unsigned long long>(j.id), JsonEscape(j.name).c_str(),
        JsonEscape(j.stage).c_str(), j.fraction, j.started_seconds,
        j.updated_seconds, j.finished ? "true" : "false",
        JsonEscape(j.outcome).c_str());
  }
  out += "\n]}\n";
  return out;
}

}  // namespace esharp::obs
