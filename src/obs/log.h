#ifndef ESHARP_OBS_LOG_H_
#define ESHARP_OBS_LOG_H_

#include <functional>
#include <sstream>
#include <string>

namespace esharp::obs {

enum class LogLevel { kDEBUG = 0, kINFO = 1, kWARN = 2, kERROR = 3 };

const char* LogLevelName(LogLevel level);

/// \brief Where finished log lines go. Receives the fully formatted line
/// (no trailing newline) plus the parsed pieces for structured sinks.
using LogSink = std::function<void(LogLevel level, const std::string& line)>;

/// Replaces the process log sink. Pass nullptr to restore the default
/// (stderr). Thread-safe; returns nothing — tests capture via a lambda.
void SetLogSink(LogSink sink);

/// Lines below `level` are dropped before formatting. Default kINFO.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

/// \brief One log statement: streams into an ostringstream, emits on
/// destruction. Use via ESHARP_LOG(WARN) << "..."; not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace esharp::obs

/// ESHARP_LOG(WARN) << "snapshot stale for " << secs << "s";
/// The token paste (kWARN etc.) keeps DEBUG/ERROR usable even when some
/// header defines them as macros.
#define ESHARP_LOG(severity)                                        \
  ::esharp::obs::LogMessage(::esharp::obs::LogLevel::k##severity, \
                            __FILE__, __LINE__)                     \
      .stream()

#endif  // ESHARP_OBS_LOG_H_
