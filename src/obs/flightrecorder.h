#ifndef ESHARP_OBS_FLIGHTRECORDER_H_
#define ESHARP_OBS_FLIGHTRECORDER_H_

/// \file Incident flight recorder: when something goes wrong — an SLO
/// breach, a shard dropping to kDown, an operator hitting
/// /incidentz?trigger= — the evidence around the incident (metric
/// trajectories, the event ring, slow-query profiles, a statusz text
/// snapshot) is dumped to disk as one timestamped JSON bundle, before the
/// bounded in-process rings overwrite it. Retention is bounded: the
/// recorder keeps the last `max_bundles` files and deletes older ones, so
/// a flapping SLO can never fill a disk.
///
/// Bundles are written atomically (temp file + rename): a reader never
/// observes a half-written bundle. Under -DESHARP_OBS_OFF=ON, Trigger()
/// is a no-op returning Unavailable — no file I/O, no allocation beyond
/// the Status.

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/event_log.h"
#include "obs/profile.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

namespace esharp::obs {

/// \brief One bundle on disk, as listed by /incidentz.
struct IncidentBundleInfo {
  std::string path;
  std::string reason;
  uint64_t sequence = 0;
  int64_t captured_unix_ms = 0;
  size_t size_bytes = 0;
};

struct FlightRecorderOptions {
  /// Directory bundles land in (created if missing, single level). Must
  /// be non-empty.
  std::string dir;
  /// Bundles kept on disk; triggering the (K+1)-th deletes the oldest.
  size_t max_bundles = 8;
  /// Debounce: triggers closer than this to the previous *written* bundle
  /// are suppressed (a flapping SLO breaches every tick; one bundle per
  /// episode is the useful granularity). 0 disables.
  double min_interval_seconds = 30;
  /// Trailing window of time series captured into each bundle (0 = all
  /// retained points).
  double window_seconds = 300;
  /// Series-id prefixes captured from `timeseries` (empty = every
  /// series). Bounding the bundle to the metrics that matter keeps its
  /// size stable as instrumentation grows.
  std::vector<std::string> metric_allowlist;
  /// Sources. Null members skip that bundle section (events falls back to
  /// EventLog::Global()). All must outlive the recorder.
  const TimeSeriesStore* timeseries = nullptr;
  EventLog* events = nullptr;
  const SlowQueryLog* slow_queries = nullptr;
  /// Free-form status snapshot (e.g. the shard table or a /statusz
  /// overview), captured as an escaped string.
  std::function<std::string()> statusz;
  /// Test seams: monotone clock (debounce) and wall clock (file stamps).
  std::function<double()> clock;
  std::function<int64_t()> wall_clock_ms;
};

/// \brief The recorder. Trigger() is thread-safe and may be called from
/// alert callbacks, health-transition hooks and debugz handlers
/// concurrently; one bundle is written at a time.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Dumps one bundle now. Returns its path, or:
  ///   Unavailable        — observability compiled out, or debounced;
  ///   FailedPrecondition — no directory configured;
  ///   IOError            — the write failed.
  Result<std::string> Trigger(const std::string& reason,
                              const std::string& detail = "");

  /// Bundles currently retained, oldest first. Includes bundles found in
  /// `dir` at construction (a restarted process keeps its history).
  std::vector<IncidentBundleInfo> Bundles() const;

  /// JSON listing for /incidentz?format=json.
  std::string RenderJson() const;

  /// Adapter for SloWatchdog::AddAlertCallback: triggers a bundle on
  /// every breach transition (recoveries only log). The recorder must
  /// outlive the watchdog.
  std::function<void(const SloState&)> SloAlertHook();

  uint64_t written() const;     ///< Bundles written by this instance.
  uint64_t suppressed() const;  ///< Triggers debounced away.
  const FlightRecorderOptions& options() const { return options_; }

 private:
  double Now() const;
  int64_t WallMs() const;
  EventLog& Events() const;
  std::string BuildBundleJson(const std::string& reason,
                              const std::string& detail, uint64_t sequence,
                              int64_t wall_ms) const;
  void ScanExisting();
  void EnforceRetentionLocked();

  FlightRecorderOptions options_;
  mutable std::mutex mu_;
  std::vector<IncidentBundleInfo> bundles_;  // oldest first
  double last_written_time_ = 0;
  bool has_written_ = false;
  uint64_t next_sequence_ = 1;
  uint64_t written_ = 0;
  uint64_t suppressed_ = 0;
};

}  // namespace esharp::obs

#endif  // ESHARP_OBS_FLIGHTRECORDER_H_
