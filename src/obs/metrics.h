#ifndef ESHARP_OBS_METRICS_H_
#define ESHARP_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/status.h"

namespace esharp::obs {

/// \brief Metric labels: a small set of key/value dimensions
/// (`{"stage","extract"}`). Kept sorted by key inside the registry so two
/// call sites with the same labels in different order share one instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonic counter, sharded across cache lines so concurrent
/// writers on the hot serving path never contend on one atomic. Reads sum
/// the shards (eventually consistent between increments, exact at rest).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Sum over shards.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kNumShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  /// Each thread sticks to one shard (round-robin assignment on first use),
  /// so increments are uncontended as long as threads <= shards.
  static size_t ShardIndex() {
    static std::atomic<size_t> next{0};
    thread_local size_t index =
        next.fetch_add(1, std::memory_order_relaxed) % kNumShards;
    return index;
  }
  std::array<Shard, kNumShards> shards_;
};

/// \brief Last-writer-wins double value (queue depths, stage seconds,
/// bench results).
class Gauge {
 public:
  void Set(double v) { bits_.store(Encode(v), std::memory_order_relaxed); }

  void Add(double delta) {
    uint64_t observed = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(observed,
                                        Encode(Decode(observed) + delta),
                                        std::memory_order_relaxed)) {
    }
  }

  double Value() const {
    return Decode(bits_.load(std::memory_order_relaxed));
  }

  void Reset() { Set(0.0); }

 private:
  static uint64_t Encode(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double Decode(uint64_t bits) {
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::atomic<uint64_t> bits_{0};
};

/// \brief Point-in-time view of a histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  double mean = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// \brief One exemplar: a concrete observation a histogram bucket can
/// point at — typically a trace id, so the p99 bucket in /varz links to
/// the /queryz profile of an actual slow query instead of an anonymous
/// quantile.
struct Exemplar {
  double le_seconds = 0;  ///< Bucket upper bound (inf rendered as 1e300).
  double value_seconds = 0;
  std::string label;  ///< Trace id (32 hex) or other correlation key.
};

/// \brief Thread-safe latency distribution: `common/stats.h`
/// LatencyHistogram behind a mutex. The lock is held for a few bucket
/// increments; callers that cannot afford even that shard externally.
///
/// Observations may carry an exemplar label; the histogram keeps the
/// latest labeled observation per decade bucket (1ms/10ms/100ms/1s/inf),
/// exported in the JSON snapshot.
class Histogram {
 public:
  void Observe(double seconds) { Observe(seconds, {}); }

  void Observe(double seconds, std::string_view exemplar_label) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Add(seconds);
    if (!exemplar_label.empty()) {
      size_t bucket = 0;
      while (bucket + 1 < kExemplarBuckets &&
             seconds > kExemplarUpperSeconds[bucket]) {
        ++bucket;
      }
      exemplars_[bucket].le_seconds = kExemplarUpperSeconds[bucket];
      exemplars_[bucket].value_seconds = seconds;
      exemplars_[bucket].label = std::string(exemplar_label);
    }
  }

  /// Buckets that have seen a labeled observation, ascending by bound.
  std::vector<Exemplar> Exemplars() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Exemplar> out;
    for (const Exemplar& e : exemplars_) {
      if (!e.label.empty()) out.push_back(e);
    }
    return out;
  }

  HistogramSnapshot Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    HistogramSnapshot s;
    s.count = hist_.count();
    s.mean = hist_.Mean();
    s.max = hist_.Max();
    s.p50 = hist_.Percentile(50);
    s.p95 = hist_.Percentile(95);
    s.p99 = hist_.Percentile(99);
    return s;
  }

  double Percentile(double p) const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_.Percentile(p);
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Reset();
    for (Exemplar& e : exemplars_) e = Exemplar{};
  }

 private:
  static constexpr size_t kExemplarBuckets = 5;
  static constexpr double kExemplarUpperSeconds[kExemplarBuckets] = {
      0.001, 0.01, 0.1, 1.0, 1e300};

  mutable std::mutex mu_;
  LatencyHistogram hist_;
  std::array<Exemplar, kExemplarBuckets> exemplars_;
};

/// \brief One instrument's point-in-time reading, as returned by
/// MetricsRegistry::SampleAll. `key` is the registry's interning key —
/// `name{label="value",...}` with sorted labels — stable across samples,
/// so periodic samplers (obs/timeseries.h) can use it as a series id.
struct SampledCounter {
  std::string key;
  std::string name;
  uint64_t value = 0;
};
struct SampledGauge {
  std::string key;
  std::string name;
  double value = 0;
};
struct SampledHistogram {
  std::string key;
  std::string name;
  HistogramSnapshot snapshot;
};

/// \brief One full walk of a registry: every instrument of every kind,
/// read at (approximately) one instant. The input of the time-series
/// sampler and of offline snapshot differs.
struct RegistrySample {
  std::vector<SampledCounter> counters;
  std::vector<SampledGauge> gauges;
  std::vector<SampledHistogram> histograms;
};

/// \brief Process-wide registry of named instruments.
///
/// `Get*` interns an instrument under (name, labels) and returns a stable
/// pointer: instruments are never deleted, so callers cache the pointer
/// once and record lock-free afterwards. All methods are thread-safe.
///
/// Two exporters ship with the registry: Prometheus text exposition
/// (`ExportPrometheus`) and a JSON snapshot (`ExportJson` /
/// `WriteJsonFile`) whose schema is documented in EXPERIMENTS.md.
class MetricsRegistry {
 public:
  /// The process-wide instance almost every caller wants. Separate
  /// instances exist for tests and for bench runs that export their own
  /// snapshot files.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {});

  /// Prometheus text exposition: counters/gauges as single samples,
  /// histograms as summary-style quantile samples plus _count/_sum-like
  /// mean and max samples. Metric names are sanitized ('.' and '-' map to
  /// '_'); label values are escaped.
  std::string ExportPrometheus() const;

  /// JSON snapshot:
  ///   {"captured_unix_ms":<wall clock>,
  ///    "counters":[{"name":...,"labels":{...},"value":N}, ...],
  ///    "gauges":[...same, value double...],
  ///    "histograms":[{"name":...,"labels":{...},"count":N,"mean":..,
  ///                   "max":..,"p50":..,"p95":..,"p99":..}, ...]}
  /// The wall-clock stamp makes two offline dumps orderable.
  std::string ExportJson() const;

  /// Reads every instrument once (map order, keys sorted). The walk holds
  /// the registry mutex but reads each instrument lock-free (counters,
  /// gauges) or under its own short lock (histograms).
  RegistrySample SampleAll() const;

  /// Writes ExportJson() to `path`.
  Status WriteJsonFile(const std::string& path) const;

  /// Zeroes every instrument (pointers stay valid). Tests and bench loops.
  void ResetAll();

  /// Number of registered instruments (all kinds).
  size_t size() const;

 private:
  /// Key = name + rendered sorted labels; value keeps the parsed pieces
  /// for the exporters.
  template <typename T>
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<T> instrument;
  };

  template <typename T>
  T* GetOrCreate(std::map<std::string, Entry<T>>& family,
                 const std::string& name, Labels labels);

  mutable std::mutex mu_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
};

/// \brief Renders the whole global registry as one human-readable (and
/// Prometheus-scrapable) block: the single pane of glass over the offline
/// pipeline, SQL engine and serving layer.
std::string DumpAll();

/// \brief Seconds since a fixed process-local epoch (steady clock). The
/// shared time base of metrics windows and trace timestamps.
double NowSeconds();

/// \brief Wall-clock milliseconds since the Unix epoch — the
/// `captured_unix_ms` stamp of exported snapshots and incident bundles.
/// Distinct from NowSeconds(): comparable across processes and restarts,
/// but not monotone.
int64_t WallUnixMillis();

}  // namespace esharp::obs

#endif  // ESHARP_OBS_METRICS_H_
