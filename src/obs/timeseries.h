#ifndef ESHARP_OBS_TIMESERIES_H_
#define ESHARP_OBS_TIMESERIES_H_

/// \file Bounded in-process metric history. A TimeSeriesStore walks a
/// MetricsRegistry on a fixed cadence — a background thread in
/// production, manual Sample() calls with an injected clock in tests —
/// and keeps, per instrument, a fixed-size ring of points:
///
///   * gauges      — the raw reading;
///   * counters    — the per-second rate over the sampling interval
///                   (delta / dt), with counter resets (a restart, a
///                   ResetAll) treated as a fresh start rather than a
///                   huge negative spike;
///   * histograms  — decomposed into three companion series, `<key>.p50`,
///                   `<key>.p95`, `<key>.p99`, each carrying that
///                   quantile's trajectory.
///
/// The rings make incidents diagnosable after the fact: /graphz renders
/// them as sparklines, range queries serve offline analysis, and the
/// flight recorder (obs/flightrecorder.h) snapshots them into incident
/// bundles. Memory is bounded by capacity * live series and never grows
/// per-sample.
///
/// Under -DESHARP_OBS_OFF=ON, Sample() and Start() compile to no-ops (no
/// thread is spawned, no ring is populated); the class itself stays
/// available so wiring code needs no #ifdefs.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace esharp::obs {

/// \brief One retained sample of one series.
struct TimeSeriesPoint {
  double time_seconds = 0;  ///< Clock time base (obs::NowSeconds()).
  double value = 0;
};

/// \brief Windowed aggregation of one series (min/max/avg/last over the
/// points inside the window). `count == 0` means no points matched.
struct SeriesWindowStats {
  size_t count = 0;
  double min = 0;
  double max = 0;
  double avg = 0;
  double last = 0;
};

struct TimeSeriesOptions {
  /// Points retained per series; older points are overwritten ring-wise.
  /// The default holds 10 minutes at the default 1 s cadence.
  size_t capacity = 600;
  /// Background cadence of Start() when no period is passed.
  double sample_period_seconds = 1.0;
  /// Registry to walk (null = MetricsRegistry::Global()).
  MetricsRegistry* registry = nullptr;
  /// Test seam: replaces obs::NowSeconds. Must be monotone.
  std::function<double()> clock;
};

/// \brief The sampler + ring store. All methods are thread-safe; Sample()
/// may run concurrently with every query method.
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(TimeSeriesOptions options = {});
  ~TimeSeriesStore();  ///< Stops the sampling thread, if started.

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// Takes one sample of every instrument now. Drive this directly from
  /// tests (with an injected clock) or let Start()'s thread call it.
  void Sample();

  /// Spawns a thread calling Sample() every `period_seconds` (<= 0 uses
  /// options.sample_period_seconds). Idempotent.
  void Start(double period_seconds = 0);

  /// Stops and joins the sampling thread. Safe when never started.
  void Stop();

  bool running() const;

  /// Series ids currently retained, sorted. Gauge/counter ids equal the
  /// registry key (`name{labels}`); histogram quantile series append
  /// `.p50` / `.p95` / `.p99`.
  std::vector<std::string> SeriesNames() const;

  /// Points of `series` inside the trailing `window_seconds` (0 = all
  /// retained), oldest first. Empty when the series is unknown.
  std::vector<TimeSeriesPoint> Range(const std::string& series,
                                     double window_seconds = 0) const;

  /// min/max/avg/last over the same range.
  SeriesWindowStats Window(const std::string& series,
                           double window_seconds = 0) const;

  /// JSON range query (the /graphz?format=json payload and the flight
  /// recorder's bundle section): every series whose id contains
  /// `metric_filter` (empty = all), with its windowed stats and points:
  ///   {"window_seconds":W,"samples_taken":N,"series":[
  ///     {"id":"...","kind":"gauge|rate|quantile",
  ///      "stats":{"count":..,"min":..,"max":..,"avg":..,"last":..},
  ///      "points":[[t,v],...]}, ...]}
  std::string RenderJson(const std::string& metric_filter = "",
                         double window_seconds = 0) const;

  /// Same, but keeping only series whose id starts with one of
  /// `prefixes` (empty list = all) — the flight recorder's allowlist cut.
  std::string RenderJsonPrefixes(const std::vector<std::string>& prefixes,
                                 double window_seconds = 0) const;

  /// Total Sample() walks performed (0 under -DESHARP_OBS_OFF).
  uint64_t samples_taken() const;
  size_t num_series() const;
  size_t capacity() const { return options_.capacity; }
  const TimeSeriesOptions& options() const { return options_; }

 private:
  enum class Kind { kGauge, kRate, kQuantile };
  /// One ring plus the counter-delta state feeding it.
  struct Series {
    Kind kind = Kind::kGauge;
    std::vector<TimeSeriesPoint> ring;  // grows to capacity, then wraps
    size_t head = 0;                    // next overwrite position once full
    // Counter series only: the previous cumulative reading, so each
    // sample stores a rate (delta/dt) instead of the raw total.
    bool has_prev = false;
    double prev_value = 0;
    double prev_time = 0;
  };

  double Now() const;
  MetricsRegistry& Registry() const;
  void Push(Series& series, double time, double value);
  void RecordGauge(const std::string& key, Kind kind, double time,
                   double value);
  void RecordCounter(const std::string& key, double time, double cumulative);
  std::vector<TimeSeriesPoint> OrderedLocked(const Series& series) const;
  std::string RenderJsonFiltered(
      const std::function<bool(const std::string&)>& keep,
      double window_seconds) const;

  TimeSeriesOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Series> series_;
  uint64_t samples_ = 0;

  mutable std::mutex thread_mu_;
  std::thread poll_thread_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace esharp::obs

#endif  // ESHARP_OBS_TIMESERIES_H_
