#include "obs/metrics.h"

#include <algorithm>
#include <chrono>

#include "common/file_io.h"
#include "common/strings.h"

namespace esharp::obs {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names
/// ("serving.completed") map dots and dashes to underscores.
std::string SanitizeMetricName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string JsonEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// `{k1="v1",k2="v2"}`, empty string for no labels; extras appended inside
/// the braces (the quantile label of histogram samples).
std::string PromLabels(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += SanitizeMetricName(k) + "=\"" + EscapeLabelValue(v) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
  }
  out += "}";
  return out;
}

/// Doubles rendered with enough digits to round-trip typical values; JSON
/// has no infinity/nan, clamp those to 0 (they never occur in practice).
std::string JsonNumber(double v) {
  if (!(v == v) || v > 1e308 || v < -1e308) return "0";
  std::string s = StrFormat("%.12g", v);
  return s;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

template <typename T>
T* MetricsRegistry::GetOrCreate(std::map<std::string, Entry<T>>& family,
                                const std::string& name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string key = name + PromLabels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = family.find(key);
  if (it == family.end()) {
    Entry<T> entry;
    entry.name = name;
    entry.labels = std::move(labels);
    entry.instrument = std::make_unique<T>();
    it = family.emplace(std::move(key), std::move(entry)).first;
  }
  return it->second.instrument.get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  return GetOrCreate(counters_, name, labels);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  return GetOrCreate(gauges_, name, labels);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels) {
  return GetOrCreate(histograms_, name, labels);
}

std::string MetricsRegistry::ExportPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Wall-clock stamp as a comment line, so two saved scrapes are
  // orderable offline without relying on file mtimes.
  std::string out = StrFormat("# captured_unix_ms %lld\n",
                              static_cast<long long>(WallUnixMillis()));
  std::string last_type_line;
  auto type_line = [&](const std::string& name, const char* type) {
    std::string line = "# TYPE " + SanitizeMetricName(name) + " " + type + "\n";
    // Families are map-ordered, so equal names are adjacent; emit the TYPE
    // header once per family.
    if (line != last_type_line) {
      out += line;
      last_type_line = line;
    }
  };
  for (const auto& [key, e] : counters_) {
    type_line(e.name, "counter");
    out += SanitizeMetricName(e.name) + PromLabels(e.labels) + " " +
           StrFormat("%llu", static_cast<unsigned long long>(
                                 e.instrument->Value())) +
           "\n";
  }
  for (const auto& [key, e] : gauges_) {
    type_line(e.name, "gauge");
    out += SanitizeMetricName(e.name) + PromLabels(e.labels) + " " +
           StrFormat("%.12g", e.instrument->Value()) + "\n";
  }
  for (const auto& [key, e] : histograms_) {
    type_line(e.name, "summary");
    HistogramSnapshot s = e.instrument->Snapshot();
    std::string base = SanitizeMetricName(e.name);
    out += base + PromLabels(e.labels, "quantile=\"0.5\"") + " " +
           StrFormat("%.12g", s.p50) + "\n";
    out += base + PromLabels(e.labels, "quantile=\"0.95\"") + " " +
           StrFormat("%.12g", s.p95) + "\n";
    out += base + PromLabels(e.labels, "quantile=\"0.99\"") + " " +
           StrFormat("%.12g", s.p99) + "\n";
    out += base + "_count" + PromLabels(e.labels) + " " +
           StrFormat("%llu", static_cast<unsigned long long>(s.count)) + "\n";
    out += base + "_sum" + PromLabels(e.labels) + " " +
           StrFormat("%.12g", s.mean * static_cast<double>(s.count)) + "\n";
    out += base + "_max" + PromLabels(e.labels) + " " +
           StrFormat("%.12g", s.max) + "\n";
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Top-level stamp (no "name" on its line, so bench_diff's line scanner
  // skips it) ordering two offline dumps of the same process.
  std::string out = StrFormat("{\n  \"captured_unix_ms\": %lld,\n  \"counters\": [",
                              static_cast<long long>(WallUnixMillis()));
  bool first = true;
  for (const auto& [key, e] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\":\"" + JsonEscape(e.name) +
           "\",\"labels\":" + JsonLabels(e.labels) + ",\"value\":" +
           StrFormat("%llu",
                     static_cast<unsigned long long>(e.instrument->Value())) +
           "}";
  }
  out += "\n  ],\n  \"gauges\": [";
  first = true;
  for (const auto& [key, e] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\":\"" + JsonEscape(e.name) +
           "\",\"labels\":" + JsonLabels(e.labels) +
           ",\"value\":" + JsonNumber(e.instrument->Value()) + "}";
  }
  out += "\n  ],\n  \"histograms\": [";
  first = true;
  for (const auto& [key, e] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    HistogramSnapshot s = e.instrument->Snapshot();
    out += "    {\"name\":\"" + JsonEscape(e.name) +
           "\",\"labels\":" + JsonLabels(e.labels) +
           ",\"count\":" + StrFormat("%llu", static_cast<unsigned long long>(
                                                 s.count)) +
           ",\"mean\":" + JsonNumber(s.mean) + ",\"max\":" + JsonNumber(s.max) +
           ",\"p50\":" + JsonNumber(s.p50) + ",\"p95\":" + JsonNumber(s.p95) +
           ",\"p99\":" + JsonNumber(s.p99);
    // Exemplar keys ("le"/"at"/"trace") deliberately avoid the summary
    // field names above: bench_diff parses these lines with per-key
    // scans, and a nested "value" or "p99" would corrupt its metric map.
    std::vector<Exemplar> exemplars = e.instrument->Exemplars();
    if (!exemplars.empty()) {
      out += ",\"exemplars\":[";
      for (size_t i = 0; i < exemplars.size(); ++i) {
        if (i > 0) out += ",";
        out += "{\"le\":" + JsonNumber(exemplars[i].le_seconds) +
               ",\"at\":" + JsonNumber(exemplars[i].value_seconds) +
               ",\"trace\":\"" + JsonEscape(exemplars[i].label) + "\"}";
      }
      out += "]";
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

Status MetricsRegistry::WriteJsonFile(const std::string& path) const {
  return WriteStringToFile(path, ExportJson());
}

RegistrySample MetricsRegistry::SampleAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySample sample;
  sample.counters.reserve(counters_.size());
  for (const auto& [key, e] : counters_) {
    sample.counters.push_back({key, e.name, e.instrument->Value()});
  }
  sample.gauges.reserve(gauges_.size());
  for (const auto& [key, e] : gauges_) {
    sample.gauges.push_back({key, e.name, e.instrument->Value()});
  }
  sample.histograms.reserve(histograms_.size());
  for (const auto& [key, e] : histograms_) {
    sample.histograms.push_back({key, e.name, e.instrument->Snapshot()});
  }
  return sample;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, e] : counters_) e.instrument->Reset();
  for (auto& [key, e] : gauges_) e.instrument->Reset();
  for (auto& [key, e] : histograms_) e.instrument->Reset();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::string DumpAll() { return MetricsRegistry::Global().ExportPrometheus(); }

int64_t WallUnixMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

double NowSeconds() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

}  // namespace esharp::obs
