#include "obs/log.h"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <string_view>

#include "common/strings.h"

namespace esharp::obs {

namespace {

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

LogSink& SinkSlot() {
  static LogSink sink;
  return sink;
}

std::atomic<int>& MinLevelSlot() {
  static std::atomic<int> level{static_cast<int>(LogLevel::kINFO)};
  return level;
}

/// "src/serving/engine.cc" -> "serving"; "tests/obs_test.cc" -> "tests".
/// The tag names the subsystem, not the file — grep-friendly and stable
/// across renames inside a directory.
std::string_view SubsystemTag(std::string_view path) {
  size_t src = path.rfind("src/");
  if (src != std::string_view::npos) {
    std::string_view rest = path.substr(src + 4);
    size_t slash = rest.find('/');
    if (slash != std::string_view::npos) return rest.substr(0, slash);
  }
  for (std::string_view top : {"bench/", "tests/", "examples/", "tools/"}) {
    size_t at = path.rfind(top);
    if (at != std::string_view::npos) return top.substr(0, top.size() - 1);
  }
  size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

std::string Timestamp() {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm{};
  gmtime_r(&ts.tv_sec, &tm);
  return StrFormat("%04d-%02d-%02dT%02d:%02d:%02d.%03ldZ", tm.tm_year + 1900,
                   tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min,
                   tm.tm_sec, ts.tv_nsec / 1000000);
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDEBUG: return "DEBUG";
    case LogLevel::kINFO: return "INFO";
    case LogLevel::kWARN: return "WARN";
    case LogLevel::kERROR: return "ERROR";
  }
  return "?";
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

void SetMinLogLevel(LogLevel level) {
  MinLevelSlot().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(
      MinLevelSlot().load(std::memory_order_relaxed));
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      MinLevelSlot().load(std::memory_order_relaxed)) {
    return;
  }
  std::string_view tag = SubsystemTag(file_);
  std::string line = StrFormat(
      "%s %-5s [%.*s] %s (%s:%d)", Timestamp().c_str(), LogLevelName(level_),
      static_cast<int>(tag.size()), tag.data(), stream_.str().c_str(), file_,
      line_);
  std::lock_guard<std::mutex> lock(SinkMutex());
  LogSink& sink = SinkSlot();
  if (sink) {
    sink(level_, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace esharp::obs
