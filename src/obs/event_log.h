#ifndef ESHARP_OBS_EVENT_LOG_H_
#define ESHARP_OBS_EVENT_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/log.h"

namespace esharp::obs {

/// \brief One structured operational event: a snapshot swap, an SLO breach,
/// a pipeline stage transition. Unlike a log line, an event keeps its
/// key/value fields parsed, so /eventz can render them as columns and the
/// JSON export stays machine-readable.
struct Event {
  double time_seconds = 0;  ///< obs::NowSeconds() time base.
  LogLevel severity = LogLevel::kINFO;
  std::string source;   ///< Emitting subsystem ("serving", "slo", ...).
  std::string message;  ///< Human-readable summary.
  std::vector<std::pair<std::string, std::string>> fields;
  uint64_t sequence = 0;  ///< Monotonic per-log sequence number.
};

/// \brief Filter over the retained events, driving /eventz's `?level=`
/// severity cut and `?after=` cursor pagination. The JSON render reports
/// the last returned sequence as `next_after`, so a poller passes it back
/// and only ever sees each event once.
struct EventFilter {
  LogLevel min_severity = LogLevel::kDEBUG;  ///< Keep events >= this.
  uint64_t after_sequence = 0;  ///< Keep events with sequence > this.
  size_t limit = 0;             ///< Keep only the newest N (0 = all).
};

/// Parses "debug"/"info"/"warn"/"warning"/"error" (any case) into `out`.
bool ParseLogLevel(const std::string& name, LogLevel* out);

/// \brief Bounded ring buffer of operational events, the backing store of
/// the /eventz endpoint. Thread-safe. When full, the oldest event is
/// overwritten and `dropped()` advances — a long-lived process never grows
/// its event storage, mirroring the Tracer's capped ring.
class EventLog {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  /// The process-wide log most emitters want; separate instances exist for
  /// tests.
  static EventLog& Global();

  explicit EventLog(size_t capacity = kDefaultCapacity);

  /// Appends one event (timestamped now).
  void Add(LogLevel severity, const std::string& source,
           const std::string& message,
           std::vector<std::pair<std::string, std::string>> fields = {});

  /// Snapshot in chronological order (oldest first).
  std::vector<Event> Events() const;

  /// Snapshot restricted by `filter`, chronological.
  std::vector<Event> Filtered(const EventFilter& filter) const;

  /// Events overwritten because the ring was full.
  uint64_t dropped() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Drops all retained events (sequence numbers keep advancing).
  void Clear();

  /// Renders the retained events as a plain-text table (newest last).
  std::string RenderText() const { return RenderText(EventFilter{}); }
  std::string RenderText(const EventFilter& filter) const;

  /// Renders {"dropped":N,"next_after":S,"events":[{...}, ...]} (oldest
  /// first). `next_after` is the cursor for the next poll (== the filter's
  /// after_sequence when nothing matched).
  std::string RenderJson() const { return RenderJson(EventFilter{}); }
  std::string RenderJson(const EventFilter& filter) const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Event> ring_;  // grows to capacity_, then wraps at head_
  size_t head_ = 0;          // next overwrite position once full
  uint64_t next_sequence_ = 1;
  uint64_t dropped_ = 0;
};

}  // namespace esharp::obs

#endif  // ESHARP_OBS_EVENT_LOG_H_
