#ifndef ESHARP_OBS_PROFILE_H_
#define ESHARP_OBS_PROFILE_H_

/// \file Per-query profiles and the bounded slow-query log.
///
/// A QueryProfile is the stitched cross-process picture of ONE query: the
/// router's own stages plus one lane per shard, each lane holding every
/// attempt (primary and hedge) the router launched there, with the shard's
/// piggybacked timing breakdown when the attempt answered. It is the
/// "which shard made this query slow, and was it the hedge or the
/// primary?" answer, exportable as a Chrome/Perfetto trace with one lane
/// per shard.
///
/// The SlowQueryLog retains a bounded set of profiles — the top-K slowest
/// plus a ring of recent ones — and backs the /queryz debugz endpoint.
/// Profiles never hold the result payload (no expert lists), only timing,
/// attribution and the query text, so the log's footprint is a few KB per
/// entry regardless of answer size.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace_context.h"

namespace esharp::obs {

class DebugServer;  // obs/debugz.h; only needed by MountQueryz

/// \brief One named interval inside a profile, relative to the query's
/// admission (milliseconds).
struct ProfileStage {
  std::string name;
  double start_ms = 0;
  double dur_ms = 0;
};

/// \brief One attempt the router launched against one shard. A lane holds
/// one of these for the primary and, when the hedge trigger fired, a
/// second for the hedge.
struct LaneAttempt {
  bool hedge = false;
  /// True when this attempt's evidence is the one the answer used (the
  /// first finisher per shard wins; a hedge with won=true is a hedge win).
  bool won = false;
  /// "ok", "error", or "outstanding" (still running when the router
  /// stopped gathering — the deadline attribution for a lane that never
  /// answered).
  std::string outcome = "outstanding";
  /// Error detail when outcome == "error" (shard status message).
  std::string detail;
  double start_ms = 0;  ///< Launch offset from query admission.
  double dur_ms = 0;    ///< 0 while outstanding.
  /// Budget the router granted this attempt (shard_deadline_fraction of
  /// the remaining client budget at launch); 0 = none.
  double deadline_ms = 0;
  /// Shard-side breakdown piggybacked on the evidence response (all 0 when
  /// the attempt failed before the shard answered).
  double queue_ms = 0;
  double expand_ms = 0;
  double detect_ms = 0;
  size_t candidates = 0;
  bool has_breakdown = false;
};

/// \brief One shard's lane in the profile. Present for every shard the
/// query scattered to — a dead or timed-out shard keeps its lane with an
/// annotation, it does not silently vanish from the picture.
struct ProfileLane {
  std::string name;
  /// Why this lane contributed nothing ("" when it answered).
  std::string annotation;
  std::vector<LaneAttempt> attempts;
};

/// \brief The stitched cross-process profile of one routed query.
struct QueryProfile {
  TraceContext trace;
  std::string query;
  /// "ok", "degraded", "timeout", "error".
  std::string outcome;
  double total_ms = 0;
  double merge_ms = 0;
  double deadline_ms = 0;  ///< Client budget; 0 = none.
  size_t shards_total = 0;
  size_t shards_answered = 0;
  size_t hedges_fired = 0;
  bool degraded = false;
  std::vector<ProfileStage> stages;  ///< Router-side (gather, merge_rank).
  std::vector<ProfileLane> lanes;    ///< One per shard, scatter order.
  double recorded_at_seconds = 0;    ///< obs::NowSeconds() time base.

  /// Chrome trace JSON for this one query: tid 0 is the router lane, tid
  /// i+1 is shard lane i (thread_name metadata carries the shard names).
  /// Attempts render as complete events with hedge/won/deadline/outcome
  /// args; an answered attempt nests its shard-side queue/expand/detect
  /// breakdown inside itself. Loads in chrome://tracing and Perfetto.
  std::string ExportChromeJson() const;
};

struct SlowQueryLogOptions {
  /// Slowest profiles retained (by total_ms), a bounded leaderboard.
  size_t top_k = 16;
  /// Most recent profiles retained regardless of latency, a ring.
  size_t recent = 32;
};

/// \brief Bounded retention of query profiles: the top-K slowest plus a
/// ring of recent ones. Thread-safe; entries are shared_ptr<const ...> so
/// a /queryz render never blocks or races recording. Never stores result
/// payloads — see the file comment.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(SlowQueryLogOptions options = {});

  void Record(std::shared_ptr<const QueryProfile> profile);

  /// Slowest first.
  std::vector<std::shared_ptr<const QueryProfile>> TopK() const;

  /// Newest first.
  std::vector<std::shared_ptr<const QueryProfile>> Recent() const;

  /// Profile whose 32-hex trace id matches, or nullptr. Also accepts a
  /// full "00-...-...-.." header (the id is extracted).
  std::shared_ptr<const QueryProfile> Find(std::string_view trace_id) const;

  /// Profiles recorded since construction (retention is bounded; this is
  /// not).
  uint64_t recorded() const;

  const SlowQueryLogOptions& options() const { return options_; }

  /// {"recorded":N,"top":[...],"recent":[...]} — the /queryz?format=json
  /// body. Each entry is a summary (trace id, query, outcome, totals, per
  /// lane attempt outcomes), not the full Chrome trace.
  std::string RenderJson() const;

 private:
  SlowQueryLogOptions options_;
  mutable std::mutex mu_;
  /// Sorted descending by total_ms, size <= top_k.
  std::vector<std::shared_ptr<const QueryProfile>> top_;
  std::vector<std::shared_ptr<const QueryProfile>> recent_;  // ring
  size_t recent_pos_ = 0;
  uint64_t recorded_ = 0;
};

/// \brief Mounts /queryz on `server`: an HTML table of the slowest and
/// most recent queries (?format=json for machines), and
/// ?trace=<32-hex id> to download one query's stitched Chrome trace. The
/// log must outlive the server.
void MountQueryz(DebugServer* server, const SlowQueryLog* log);

}  // namespace esharp::obs

#endif  // ESHARP_OBS_PROFILE_H_
