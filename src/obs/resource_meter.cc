#include "obs/resource_meter.h"

#include "common/strings.h"
#include "common/timer.h"
#include "obs/obs.h"

namespace esharp {

ResourceMeter::ResourceMeter(const ResourceMeter& other) { *this = other; }

ResourceMeter& ResourceMeter::operator=(const ResourceMeter& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  order_ = other.order_;
  stages_ = other.stages_;
  return *this;
}

ResourceMeter::StageEntry& ResourceMeter::GetOrCreate(
    const std::string& stage) {
  auto it = stages_.find(stage);
  if (it == stages_.end()) {
    order_.push_back(stage);
    StageEntry entry;
#if ESHARP_OBS_ENABLED
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    obs::Labels labels{{"stage", stage}};
    entry.g_seconds = registry.GetGauge("resource.seconds", labels);
    entry.g_bytes_read = registry.GetGauge("resource.bytes_read", labels);
    entry.g_bytes_written =
        registry.GetGauge("resource.bytes_written", labels);
    entry.g_rows_read = registry.GetGauge("resource.rows_read", labels);
    entry.g_rows_written = registry.GetGauge("resource.rows_written", labels);
    entry.g_parallelism = registry.GetGauge("resource.parallelism", labels);
#endif
    it = stages_.emplace(stage, std::move(entry)).first;
  }
  return it->second;
}

void ResourceMeter::Publish(const StageEntry& entry) {
  if (entry.g_seconds == nullptr) return;
  const StageStats& s = entry.stats;
  entry.g_seconds->Set(s.seconds);
  entry.g_bytes_read->Set(static_cast<double>(s.bytes_read));
  entry.g_bytes_written->Set(static_cast<double>(s.bytes_written));
  entry.g_rows_read->Set(static_cast<double>(s.rows_read));
  entry.g_rows_written->Set(static_cast<double>(s.rows_written));
  entry.g_parallelism->Set(static_cast<double>(s.parallelism));
}

void ResourceMeter::Record(const std::string& stage, const StageStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  StageEntry& e = GetOrCreate(stage);
  e.stats.seconds += stats.seconds;
  e.stats.bytes_read += stats.bytes_read;
  e.stats.bytes_written += stats.bytes_written;
  e.stats.rows_read += stats.rows_read;
  e.stats.rows_written += stats.rows_written;
  e.stats.parallelism = stats.parallelism;
  Publish(e);
}

void ResourceMeter::AddTime(const std::string& stage, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  StageEntry& e = GetOrCreate(stage);
  e.stats.seconds += seconds;
  Publish(e);
}

void ResourceMeter::AddIO(const std::string& stage, uint64_t bytes_read,
                          uint64_t bytes_written) {
  std::lock_guard<std::mutex> lock(mu_);
  StageEntry& e = GetOrCreate(stage);
  e.stats.bytes_read += bytes_read;
  e.stats.bytes_written += bytes_written;
  Publish(e);
}

void ResourceMeter::AddRows(const std::string& stage, uint64_t rows_read,
                            uint64_t rows_written) {
  std::lock_guard<std::mutex> lock(mu_);
  StageEntry& e = GetOrCreate(stage);
  e.stats.rows_read += rows_read;
  e.stats.rows_written += rows_written;
  Publish(e);
}

void ResourceMeter::SetParallelism(const std::string& stage,
                                   size_t parallelism) {
  std::lock_guard<std::mutex> lock(mu_);
  StageEntry& e = GetOrCreate(stage);
  e.stats.parallelism = parallelism;
  Publish(e);
}

ResourceMeter::StageStats ResourceMeter::Get(const std::string& stage) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stages_.find(stage);
  if (it == stages_.end()) return StageStats{};
  return it->second.stats;
}

std::vector<std::string> ResourceMeter::StageNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return order_;
}

std::string ResourceMeter::ToTable() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out =
      StrFormat("%-12s %8s %12s %12s %12s %12s %12s\n", "Step", "Workers",
                "Runtime", "Read", "Write", "RowsIn", "RowsOut");
  for (const std::string& name : order_) {
    const StageStats& s = stages_.at(name).stats;
    out += StrFormat("%-12s %8zu %10.3fs %12s %12s %12llu %12llu\n",
                     name.c_str(), s.parallelism, s.seconds,
                     HumanBytes(s.bytes_read).c_str(),
                     HumanBytes(s.bytes_written).c_str(),
                     static_cast<unsigned long long>(s.rows_read),
                     static_cast<unsigned long long>(s.rows_written));
  }
  return out;
}

}  // namespace esharp
