#ifndef ESHARP_OBS_TRACE_CONTEXT_H_
#define ESHARP_OBS_TRACE_CONTEXT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace esharp::obs {

/// \brief Dapper-style trace context: the identity one query keeps as it
/// crosses process boundaries. A 128-bit trace id names the whole query
/// (router request plus every shard attempt it fans out into), a 64-bit
/// span id names the position within that query's tree, and the sampling
/// bit tells downstream processes whether to spend effort on detail.
///
/// Child derivation is deterministic (pure integer mixing over the parent
/// ids and a child index — see Child()), so the router and a replayed
/// trace agree on every span id without coordination, and the codec golden
/// values in tests/tracing_test.cc pin the scheme cross-platform exactly
/// like common/partitioner.h pins the shard router.
///
/// The wire form follows the W3C traceparent shape:
///
///   00-<32 hex trace id>-<16 hex span id>-<2 hex flags>
///
/// (version "00", flags bit 0 = sampled; 55 chars total). Decoding is
/// strict — any malformed, truncated or zero-id header is rejected so the
/// caller can fall back to a fresh root (FromHeaderOrRoot) instead of
/// propagating a poisoned id.
struct TraceContext {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  bool sampled = true;

  /// A context is valid when both the 128-bit trace id and the span id are
  /// nonzero (all-zero ids are the W3C "absent" sentinel).
  bool valid() const { return (trace_hi | trace_lo) != 0 && span_id != 0; }

  /// Mints a fresh root context with a process-unique trace id (clock,
  /// counter and address-space entropy mixed through Mix64 — no PRNG state
  /// to seed or contend on).
  static TraceContext NewRoot(bool sampled = true);

  /// Deterministic child: same trace id, child span id derived from
  /// (trace_lo, span_id, child_index) by pure integer mixing. Two routers
  /// replaying the same scatter produce identical span ids; the derivation
  /// is pinned by golden values in the test suite.
  TraceContext Child(uint64_t child_index) const;

  /// "00-<32 hex>-<16 hex>-<2 hex>" (55 chars).
  std::string ToHeader() const;

  /// The 32-hex-digit trace id alone: the /queryz lookup key and the value
  /// of "trace" annotations on spans and histogram exemplars.
  std::string TraceIdHex() const;

  /// Strict parse of ToHeader()'s format. Errors (InvalidArgument) on
  /// anything but a well-formed version-00 header with nonzero ids.
  static Result<TraceContext> FromHeader(std::string_view header);

  /// Lenient entry point for the wire: a well-formed header is adopted,
  /// anything else (missing, truncated, corrupt, zero ids) yields a fresh
  /// root — never a crash, never a poisoned id.
  static TraceContext FromHeaderOrRoot(std::string_view header,
                                       bool sampled_default = true);

  bool operator==(const TraceContext& other) const {
    return trace_hi == other.trace_hi && trace_lo == other.trace_lo &&
           span_id == other.span_id && sampled == other.sampled;
  }
  bool operator!=(const TraceContext& other) const {
    return !(*this == other);
  }

  /// True when `other` names the same 128-bit trace (span ids may differ).
  bool SameTrace(const TraceContext& other) const {
    return trace_hi == other.trace_hi && trace_lo == other.trace_lo;
  }
};

}  // namespace esharp::obs

#endif  // ESHARP_OBS_TRACE_CONTEXT_H_
