#ifndef ESHARP_OBS_TRACE_H_
#define ESHARP_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace esharp::obs {

class Tracer;

/// \brief One finished span, as stored by the Tracer and rendered to the
/// Chrome trace. Timestamps are microseconds on the obs::NowSeconds() time
/// base; `tid` is a small dense id assigned per OS thread.
struct TraceEvent {
  std::string name;
  uint64_t id = 0;
  uint64_t parent_id = 0;  ///< 0 = root.
  /// 128-bit distributed trace id (obs::TraceContext); 0/0 when the span
  /// belongs to no cross-process trace. Lets one query's spans be pulled
  /// out of a shared per-engine ring even when the ring interleaves many
  /// concurrent requests — and, because the id crosses the shard wire,
  /// correlates router spans with the shard spans they fanned out into.
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  double start_us = 0;
  double dur_us = 0;
  uint32_t tid = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// \brief RAII timing span. Created via Tracer::StartSpan (or the
/// StartSpan free function, which tolerates a null tracer and hands back an
/// inert span). The span records itself into the tracer when it ends —
/// either explicitly via End() or on destruction. Movable, not copyable.
///
/// A span is used from one thread at a time; passing `&span` as the parent
/// of spans started on other threads is fine (only the id is read).
class Span {
 public:
  Span() = default;  ///< Inert span: Annotate/End are no-ops.
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value annotation (rendered under "args" in the trace).
  void Annotate(const std::string& key, const std::string& value);
  void Annotate(const std::string& key, double value);
  void Annotate(const std::string& key, int64_t value);

  /// Stops the clock and records the event. Idempotent.
  void End();

  /// Tags this span with a distributed trace id. Child spans started with
  /// this span as parent inherit the tag automatically, so one SetTrace on
  /// the request root covers the whole in-process tree.
  void SetTrace(uint64_t trace_hi, uint64_t trace_lo) {
    trace_hi_ = trace_hi;
    trace_lo_ = trace_lo;
  }

  /// Unique id within the tracer (0 for an inert span).
  uint64_t id() const { return id_; }
  uint64_t trace_hi() const { return trace_hi_; }
  uint64_t trace_lo() const { return trace_lo_; }
  bool active() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::string name, uint64_t id, uint64_t parent_id,
       double start_us)
      : tracer_(tracer),
        name_(std::move(name)),
        id_(id),
        parent_id_(parent_id),
        start_us_(start_us) {}

  Tracer* tracer_ = nullptr;
  std::string name_;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t trace_hi_ = 0;
  uint64_t trace_lo_ = 0;
  double start_us_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// \brief Collects spans for one request or one offline job and renders
/// them as Chrome `about:tracing` / Perfetto-loadable JSON. Thread-safe:
/// spans may start, end and annotate concurrently from pool workers.
///
/// Storage is a capped ring: once `max_events` spans are retained the
/// oldest is overwritten, so a long-lived per-engine tracer under sustained
/// traffic keeps the most recent window instead of growing without bound.
/// Overwrites advance `dropped()` and the global `trace.events_dropped`
/// registry counter.
class Tracer {
 public:
  /// Default ring capacity: ~64k events, a few MB — hours of serving
  /// traffic at trace-worthy rates, minutes at full firehose.
  static constexpr size_t kDefaultMaxEvents = 65536;

  explicit Tracer(size_t max_events = kDefaultMaxEvents);

  /// Starts a span now. `parent` may be null (root span) or a span from
  /// any thread; only its id is captured.
  Span StartSpan(const std::string& name, const Span* parent = nullptr);

  /// Starts a span whose clock began at `start_seconds` (NowSeconds()
  /// time base). Used to open the "request" span retroactively at submit
  /// time once the worker picks the request up.
  Span StartSpanAt(const std::string& name, const Span* parent,
                   double start_seconds);

  /// Records an already-finished interval as a span (e.g. queue wait
  /// measured by a Timer). Returns the new span's id.
  uint64_t RecordSpan(
      const std::string& name, const Span* parent, double start_seconds,
      double end_seconds,
      std::vector<std::pair<std::string, std::string>> args = {});

  /// Snapshot of all finished spans so far (tests, custom renderers).
  std::vector<TraceEvent> Events() const;

  /// Chrome trace JSON: {"displayTimeUnit":"ms","traceEvents":[...]}
  /// with complete ("ph":"X") events. Loads in chrome://tracing and
  /// https://ui.perfetto.dev.
  std::string ExportChromeJson() const;

  /// Writes ExportChromeJson() to `path`.
  Status WriteChromeJsonFile(const std::string& path) const;

  /// Drops all recorded events and zeroes dropped() (span ids keep
  /// advancing).
  void Reset();

  size_t size() const;
  size_t max_events() const { return max_events_; }

  /// Events overwritten because the ring was full (since the last Reset).
  uint64_t dropped() const;

 private:
  friend class Span;
  void Record(TraceEvent event);
  uint32_t CurrentTid();

  const size_t max_events_;
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;  // grows to max_events_, then wraps
  size_t head_ = 0;                 // next overwrite position once full
  uint64_t dropped_ = 0;
  std::map<std::thread::id, uint32_t> tids_;
};

/// \brief Null-tolerant span start: returns an inert span when `tracer` is
/// null, so instrumented code needs no branches.
Span StartSpan(Tracer* tracer, const std::string& name,
               const Span* parent = nullptr);

}  // namespace esharp::obs

#endif  // ESHARP_OBS_TRACE_H_
