#ifndef ESHARP_OBS_DEBUGZ_H_
#define ESHARP_OBS_DEBUGZ_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace esharp::obs {

class TimeSeriesStore;   // obs/timeseries.h
class FlightRecorder;    // obs/flightrecorder.h

/// \brief One parsed HTTP request, as handed to a Handler. Only the pieces
/// debug endpoints need: method, path, and decoded query parameters.
struct HttpRequest {
  std::string method;  ///< "GET" (the only method the server accepts).
  std::string path;    ///< "/tracez" — no query string.
  std::vector<std::pair<std::string, std::string>> params;

  /// First value of `key`, or `fallback`.
  std::string Param(const std::string& key,
                    const std::string& fallback = "") const;
};

/// \brief One response. Handlers fill body/content_type and optionally the
/// status; the server adds the framing headers.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// \brief What one HttpGet returned.
struct HttpResponseData {
  int status = 0;
  std::string content_type;
  std::string body;
};

/// \brief Minimal blocking HTTP/1.1 GET client for tests and benches that
/// scrape a DebugServer (no external dependency, IPv4 only).
Result<HttpResponseData> HttpGet(const std::string& host, int port,
                                 const std::string& path,
                                 double timeout_seconds = 5.0);

struct DebugServerOptions {
  /// TCP port; 0 picks an ephemeral one (read it back via port()).
  int port = 0;
  /// Bind address. The default only accepts local connections — a debug
  /// server exposes internals and should not face the open network.
  std::string bind_address = "127.0.0.1";
  /// Worker threads serving parsed connections (the accept loop is its own
  /// thread).
  size_t num_workers = 2;
  /// Connections in flight (queued + executing) beyond which new ones are
  /// answered 503 inline — scrapes must never pile up behind a slow
  /// handler and starve the process they are observing.
  size_t max_in_flight = 8;
  /// Per-connection socket read/write timeout.
  double io_timeout_seconds = 5.0;
};

/// \brief Dependency-free embedded HTTP/1.1 server: a blocking accept loop
/// plus a bounded common::ThreadPool of workers. Built for statusz-style
/// debug endpoints: GET only, one request per connection, bounded request
/// size, every handler response sent with Connection: close.
///
/// Lifecycle: construct, Handle() your endpoints, Start(), Stop() (also in
/// the destructor). Handlers run on worker threads concurrently with
/// Handle() registrations and must be thread-safe. Serving stats are
/// published as debugz.* instruments in the global MetricsRegistry.
class DebugServer {
 public:
  explicit DebugServer(DebugServerOptions options = {});
  ~DebugServer();

  DebugServer(const DebugServer&) = delete;
  DebugServer& operator=(const DebugServer&) = delete;

  /// Registers `handler` for exact `path` matches (replaces any previous
  /// one). Thread-safe; may be called before or after Start().
  void Handle(const std::string& path, HttpHandler handler);

  /// Binds, listens and spawns the accept loop. IOError when the port is
  /// taken.
  Status Start();

  /// Stops accepting, drains workers and joins. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves option port 0 to the ephemeral pick); 0
  /// before Start().
  int port() const { return port_.load(std::memory_order_acquire); }

  /// Registered paths, sorted (the "/" index page).
  std::vector<std::string> paths() const;

  const DebugServerOptions& options() const { return options_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request);

  DebugServerOptions options_;
  mutable std::mutex handlers_mu_;
  std::map<std::string, HttpHandler> handlers_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<int> port_{0};
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> workers_;
  std::atomic<size_t> connections_in_flight_{0};

  // Cached global-registry instruments.
  Counter* requests_ = nullptr;
  Counter* shed_ = nullptr;
  Counter* errors_ = nullptr;
  Histogram* handler_seconds_ = nullptr;
};

// ---------------------------------------------------------------------------
// The statusz endpoint family.

/// \brief One liveness/readiness verdict.
struct ProbeResult {
  bool ok = true;
  std::string detail;
};
using Probe = std::function<ProbeResult()>;

/// \brief Rows of the /tracez "active requests" table.
struct ActiveEntry {
  uint64_t id = 0;
  std::string name;   ///< e.g. the query text.
  std::string stage;  ///< "expand", "detect", ...
  double elapsed_ms = 0;
};

/// \brief Rows of the /tracez "recent samples" table, one finished request.
struct SampleEntry {
  std::string name;
  std::string outcome;
  double total_ms = 0;
  double age_seconds = 0;  ///< Since the request finished.
  std::string detail;      ///< Free-form ("expand 0.2ms detect 1.1ms ...").
};

/// \brief Sources behind the standard endpoints. Null members disable the
/// corresponding endpoint (or fall back to the process-wide instance where
/// one exists).
struct StatuszOptions {
  MetricsRegistry* registry = nullptr;        ///< null = Global().
  EventLog* events = nullptr;                 ///< null = EventLog::Global().
  JobProgressRegistry* progress = nullptr;    ///< null = Global().
  Tracer* tracer = nullptr;                   ///< /tracez?format=json source.
  SloWatchdog* watchdog = nullptr;            ///< /statusz SLO table, /readyz.
  std::string build_info;                     ///< /statusz header line.
  /// Named readiness probes: /readyz is 200 only when every probe (and the
  /// watchdog, when set) passes. Liveness (/healthz) is implicit: the
  /// process answered.
  std::vector<std::pair<std::string, Probe>> readiness;
  /// Extra /statusz overview lines (snapshot version, qps/p99, ...).
  std::function<std::string()> overview;
  /// /tracez live tables; null leaves the sections empty.
  std::function<std::vector<ActiveEntry>()> active_requests;
  std::function<std::vector<SampleEntry>()> request_samples;
  /// /graphz source: sampled metric history rendered as sparklines (HTML)
  /// or range queries (?format=json&metric=…&window=…). Null disables the
  /// endpoint. Must outlive the server.
  TimeSeriesStore* timeseries = nullptr;
  /// /incidentz source: bundle listing plus ?trigger=<reason> manual
  /// dumps. Null disables the endpoint. Must outlive the server.
  FlightRecorder* recorder = nullptr;
};

/// \brief Mounts the standard endpoint family on `server`:
///   /metrics    Prometheus text exposition of the registry
///   /varz       JSON snapshot of the registry
///   /healthz    liveness (always 200 while the server answers)
///   /readyz     readiness (503 + failing probe names until all pass)
///   /statusz    overview: build info, uptime, probes, SLO burn, links
///   /tracez     active requests + latency-bucketed samples (HTML;
///               ?format=json streams the tracer's Chrome JSON)
///   /eventz     the bounded structured event log (HTML; ?format=json;
///               ?level= severity floor, ?after= sequence cursor,
///               ?limit= newest-N cap)
///   /progressz  job progress (HTML; ?format=json)
///   /graphz     sparklines over the time-series store (when wired;
///               ?metric= substring filter, ?window= seconds,
///               ?format=json range queries)
///   /incidentz  flight-recorder bundle listing (when wired;
///               ?trigger=<reason> dumps a bundle now; ?format=json)
/// plus an index page at /.
void MountStatusz(DebugServer* server, StatuszOptions options);

}  // namespace esharp::obs

#endif  // ESHARP_OBS_DEBUGZ_H_
