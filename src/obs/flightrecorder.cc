#include "obs/flightrecorder.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>

#include "common/file_io.h"
#include "common/strings.h"
#include "obs/obs.h"

namespace esharp::obs {

namespace {

std::string JsonEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// "incident-000042-1723111111000.json" -> (42, 1723111111000). False when
/// the name is not a bundle file.
bool ParseBundleName(const std::string& name, uint64_t* sequence,
                     int64_t* wall_ms) {
  unsigned long long seq = 0;
  long long ms = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "incident-%llu-%lld.json%n", &seq, &ms,
                  &consumed) != 2 ||
      static_cast<size_t>(consumed) != name.size()) {
    return false;
  }
  *sequence = seq;
  *wall_ms = ms;
  return true;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(std::move(options)) {
  if (options_.max_bundles == 0) options_.max_bundles = 1;
#if ESHARP_OBS_ENABLED
  if (!options_.dir.empty()) {
    ::mkdir(options_.dir.c_str(), 0755);  // EEXIST is fine
    ScanExisting();
  }
#endif
}

double FlightRecorder::Now() const {
  return options_.clock ? options_.clock() : NowSeconds();
}

int64_t FlightRecorder::WallMs() const {
  return options_.wall_clock_ms ? options_.wall_clock_ms() : WallUnixMillis();
}

EventLog& FlightRecorder::Events() const {
  return options_.events != nullptr ? *options_.events : EventLog::Global();
}

void FlightRecorder::ScanExisting() {
  DIR* dir = ::opendir(options_.dir.c_str());
  if (dir == nullptr) return;
  std::vector<IncidentBundleInfo> found;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    IncidentBundleInfo info;
    if (!ParseBundleName(name, &info.sequence, &info.captured_unix_ms)) {
      continue;
    }
    info.path = options_.dir + "/" + name;
    struct stat st;
    if (::stat(info.path.c_str(), &st) == 0) {
      info.size_bytes = static_cast<size_t>(st.st_size);
    }
    found.push_back(std::move(info));
  }
  ::closedir(dir);
  std::sort(found.begin(), found.end(),
            [](const IncidentBundleInfo& a, const IncidentBundleInfo& b) {
              return a.sequence < b.sequence;
            });
  std::lock_guard<std::mutex> lock(mu_);
  bundles_ = std::move(found);
  if (!bundles_.empty()) {
    next_sequence_ = bundles_.back().sequence + 1;
  }
  EnforceRetentionLocked();
}

void FlightRecorder::EnforceRetentionLocked() {
  while (bundles_.size() > options_.max_bundles) {
    std::remove(bundles_.front().path.c_str());
    bundles_.erase(bundles_.begin());
  }
}

std::string FlightRecorder::BuildBundleJson(const std::string& reason,
                                            const std::string& detail,
                                            uint64_t sequence,
                                            int64_t wall_ms) const {
  std::string out = StrFormat(
      "{\n\"reason\":\"%s\",\n\"detail\":\"%s\",\n\"sequence\":%llu,\n"
      "\"captured_unix_ms\":%lld,\n\"time_seconds\":%.6f,\n"
      "\"window_seconds\":%g,\n",
      JsonEscape(reason).c_str(), JsonEscape(detail).c_str(),
      static_cast<unsigned long long>(sequence),
      static_cast<long long>(wall_ms), Now(), options_.window_seconds);
  out += "\"timeseries\":";
  if (options_.timeseries != nullptr) {
    out += options_.timeseries->RenderJsonPrefixes(options_.metric_allowlist,
                                                   options_.window_seconds);
  } else {
    out += "null\n";
  }
  out += ",\n\"events\":";
  out += Events().RenderJson();
  out += ",\n\"slow_queries\":";
  if (options_.slow_queries != nullptr) {
    out += options_.slow_queries->RenderJson();
  } else {
    out += "null\n";
  }
  out += ",\n\"statusz\":";
  if (options_.statusz) {
    out += "\"" + JsonEscape(options_.statusz()) + "\"";
  } else {
    out += "null";
  }
  out += "\n}\n";
  return out;
}

Result<std::string> FlightRecorder::Trigger(const std::string& reason,
                                            const std::string& detail) {
#if !ESHARP_OBS_ENABLED
  (void)reason;
  (void)detail;
  return Status::Unavailable("flight recorder disabled (ESHARP_OBS_OFF)");
#else
  if (options_.dir.empty()) {
    return Status::FailedPrecondition("flight recorder has no directory");
  }
  uint64_t sequence;
  int64_t wall_ms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    double now = Now();
    if (options_.min_interval_seconds > 0 && has_written_ &&
        now - last_written_time_ < options_.min_interval_seconds) {
      ++suppressed_;
      return Status::Unavailable(
          "incident trigger debounced (", reason, "): last bundle ",
          StrFormat("%.1f", now - last_written_time_), "s ago");
    }
    sequence = next_sequence_++;
    wall_ms = WallMs();
    // Claim the debounce slot before the (slow) serialize + write, so a
    // storm of concurrent triggers produces one bundle, not one each.
    has_written_ = true;
    last_written_time_ = now;
  }

  std::string bundle = BuildBundleJson(reason, detail, sequence, wall_ms);
  std::string path =
      options_.dir + StrFormat("/incident-%06llu-%lld.json",
                               static_cast<unsigned long long>(sequence),
                               static_cast<long long>(wall_ms));
  // Atomic publish: write the temp file, then rename into place. A
  // concurrent reader sees either no bundle or a complete one.
  std::string tmp = path + ".tmp";
  Status written = WriteStringToFile(tmp, bundle);
  if (!written.ok()) return written;
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("rename failed for ", path);
  }

  IncidentBundleInfo info;
  info.path = path;
  info.reason = reason;
  info.sequence = sequence;
  info.captured_unix_ms = wall_ms;
  info.size_bytes = bundle.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    bundles_.push_back(std::move(info));
    ++written_;
    EnforceRetentionLocked();
  }
  Events().Add(LogLevel::kINFO, "flightrecorder",
               "incident bundle written: " + reason,
               {{"path", path}, {"detail", detail}});
  return path;
#endif
}

std::vector<IncidentBundleInfo> FlightRecorder::Bundles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bundles_;
}

std::string FlightRecorder::RenderJson() const {
  std::vector<IncidentBundleInfo> bundles = Bundles();
  std::string out = StrFormat(
      "{\"dir\":\"%s\",\"max_bundles\":%zu,\"written\":%llu,"
      "\"suppressed\":%llu,\"bundles\":[",
      JsonEscape(options_.dir).c_str(), options_.max_bundles,
      static_cast<unsigned long long>(written()),
      static_cast<unsigned long long>(suppressed()));
  bool first = true;
  for (const IncidentBundleInfo& b : bundles) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat(
        "  {\"path\":\"%s\",\"reason\":\"%s\",\"sequence\":%llu,"
        "\"captured_unix_ms\":%lld,\"size_bytes\":%zu}",
        JsonEscape(b.path).c_str(), JsonEscape(b.reason).c_str(),
        static_cast<unsigned long long>(b.sequence),
        static_cast<long long>(b.captured_unix_ms), b.size_bytes);
  }
  out += "\n]}\n";
  return out;
}

std::function<void(const SloState&)> FlightRecorder::SloAlertHook() {
  return [this](const SloState& state) {
    if (!state.breached) return;  // recoveries are already in the event log
    (void)Trigger("slo_breach:" + state.name,
                  StrFormat("burn short %.2fx long %.2fx", state.short_burn,
                            state.long_burn));
  };
}

uint64_t FlightRecorder::written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return written_;
}

uint64_t FlightRecorder::suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_;
}

}  // namespace esharp::obs
