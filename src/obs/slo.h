#ifndef ESHARP_OBS_SLO_H_
#define ESHARP_OBS_SLO_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"

namespace esharp::obs {

/// \brief One declarative service-level objective, evaluated by the
/// SloWatchdog over rolling windows.
///
/// Two shapes:
///  * kRatio — `bad` / `total` are cumulative counters (errors vs. requests,
///    shed vs. offered). The objective's `target` is the tolerated bad
///    fraction (the error budget); the burn rate over a window is
///    (delta_bad / delta_total) / target — 1.0 means burning budget exactly
///    as fast as tolerated, 10 means ten times too fast.
///  * kValue — `value` is an instantaneous reading (a p99 latency in
///    seconds, a queue depth). `target` is the tolerated level; the burn
///    rate over a window is mean(value) / target.
struct SloObjective {
  std::string name;
  enum class Kind { kRatio, kValue };
  Kind kind = Kind::kRatio;

  /// kRatio sources: cumulative, monotone counts sampled at each Tick().
  std::function<double()> bad;
  std::function<double()> total;
  /// kValue source: current reading sampled at each Tick().
  std::function<double()> value;

  /// Tolerated bad-fraction (kRatio) or level (kValue). Must be > 0.
  double target = 0.01;

  /// Multi-window evaluation (Google SRE burn-rate alerting): the short
  /// window reacts fast, the long window confirms the burn is sustained —
  /// an objective breaches only when BOTH windows exceed burn_threshold.
  double short_window_seconds = 60;
  double long_window_seconds = 300;
  double burn_threshold = 1.0;
};

/// \brief Point-in-time evaluation of one objective.
struct SloState {
  std::string name;
  double short_burn = 0;
  double long_burn = 0;
  bool breached = false;
  /// Time of the last ok->breached or breached->ok transition
  /// (obs::NowSeconds() base; 0 = never evaluated).
  double since_seconds = 0;
};

/// \brief Evaluates SLO objectives over multi-window rolling burn rates and
/// turns sustained burns into operational signals: an event in the EventLog,
/// a registered alert callback, and a flipped `healthy()` bit that readiness
/// probes (the /readyz endpoint) incorporate.
///
/// Drive it either manually — Tick() from tests with an injected clock — or
/// with Start(period), which spawns a polling thread. Breach and recovery
/// have hysteresis: an objective recovers only when both windows fall below
/// burn_threshold * recovery_fraction. All methods are thread-safe.
class SloWatchdog {
 public:
  struct Options {
    /// Breach/recovery events are appended here (null = EventLog::Global()).
    EventLog* events = nullptr;
    /// Test seam: replaces obs::NowSeconds. Must be monotone.
    std::function<double()> clock;
    /// Recovery hysteresis factor in (0, 1].
    double recovery_fraction = 0.8;
  };

  SloWatchdog();  ///< Default Options.
  explicit SloWatchdog(Options options);
  ~SloWatchdog();  ///< Stops the polling thread, if started.

  SloWatchdog(const SloWatchdog&) = delete;
  SloWatchdog& operator=(const SloWatchdog&) = delete;

  /// Registers an objective. Objectives may be added while ticking.
  void AddObjective(SloObjective objective);

  /// Called on every breach (breached=true) and recovery (breached=false)
  /// transition, from the ticking thread. Must be thread-safe.
  void AddAlertCallback(std::function<void(const SloState&)> callback);

  /// Samples every source and re-evaluates every objective now.
  void Tick();

  /// Spawns a thread calling Tick() every `period_seconds`. Idempotent.
  void Start(double period_seconds = 1.0);

  /// Stops and joins the polling thread. Safe when never started.
  void Stop();

  /// False while any objective is breached — the readiness signal.
  bool healthy() const;

  /// Current evaluation of every objective.
  std::vector<SloState> Snapshot() const;

  /// Plain-text table for /statusz.
  std::string RenderText() const;

 private:
  struct Sample {
    double time = 0;
    double bad = 0;
    double total = 0;
    double value = 0;
  };
  struct Tracked {
    SloObjective objective;
    std::deque<Sample> samples;
    SloState state;
  };

  double Now() const;
  /// Burn rate of `t` over the trailing `window` seconds ending at `now`.
  static double WindowBurn(const Tracked& t, double window, double now);

  Options options_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Tracked>> tracked_;
  std::vector<std::function<void(const SloState&)>> callbacks_;

  std::mutex thread_mu_;
  std::thread poll_thread_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace esharp::obs

#endif  // ESHARP_OBS_SLO_H_
