#ifndef ESHARP_OBS_RESOURCE_METER_H_
#define ESHARP_OBS_RESOURCE_METER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace esharp {

namespace obs {
class Gauge;
}  // namespace obs

/// \brief Per-stage resource accounting for the pipeline (Table 9).
///
/// Each offline/online stage records wall time, bytes read, bytes written and
/// the degree of parallelism used (our stand-in for the paper's VM counts).
///
/// Thread-safe: pool workers in the SQL engine and clustering backends
/// account into the same meter concurrently. Every mutation also mirrors the
/// stage totals into the global obs::MetricsRegistry as
/// `resource.{seconds,bytes_read,bytes_written,rows_read,rows_written,
/// parallelism}{stage="..."}` gauges (last writer wins when several meters
/// share a stage name), so `obs::DumpAll()` shows Table 9 alongside the
/// serving metrics. Copyable — experiment harnesses hold meters by value.
class ResourceMeter {
 public:
  struct StageStats {
    double seconds = 0;
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    uint64_t rows_read = 0;
    uint64_t rows_written = 0;
    size_t parallelism = 1;
  };

  ResourceMeter() = default;
  ResourceMeter(const ResourceMeter& other);
  ResourceMeter& operator=(const ResourceMeter& other);

  /// Accumulates stats for a named stage (creates it on first use).
  void Record(const std::string& stage, const StageStats& stats);

  /// Adds elapsed time to a stage.
  void AddTime(const std::string& stage, double seconds);

  /// Adds IO volume to a stage.
  void AddIO(const std::string& stage, uint64_t bytes_read,
             uint64_t bytes_written);

  /// Adds row counts to a stage.
  void AddRows(const std::string& stage, uint64_t rows_read,
               uint64_t rows_written);

  /// Sets the parallelism used by a stage.
  void SetParallelism(const std::string& stage, size_t parallelism);

  /// Stats for one stage (default-constructed if absent).
  StageStats Get(const std::string& stage) const;

  /// Stage names in insertion order.
  std::vector<std::string> StageNames() const;

  /// Renders a Table 9-style report.
  std::string ToTable() const;

 private:
  struct StageEntry {
    StageStats stats;
    /// Cached global-registry mirrors (null when obs is compiled out).
    obs::Gauge* g_seconds = nullptr;
    obs::Gauge* g_bytes_read = nullptr;
    obs::Gauge* g_bytes_written = nullptr;
    obs::Gauge* g_rows_read = nullptr;
    obs::Gauge* g_rows_written = nullptr;
    obs::Gauge* g_parallelism = nullptr;
  };

  /// Callers hold mu_.
  StageEntry& GetOrCreate(const std::string& stage);
  static void Publish(const StageEntry& entry);

  mutable std::mutex mu_;
  std::vector<std::string> order_;
  std::map<std::string, StageEntry> stages_;
};

}  // namespace esharp

#endif  // ESHARP_OBS_RESOURCE_METER_H_
