#include "obs/trace.h"

#include <algorithm>

#include "common/file_io.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace esharp::obs {

namespace {

std::string JsonEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    name_ = std::move(other.name_);
    id_ = other.id_;
    parent_id_ = other.parent_id_;
    trace_hi_ = other.trace_hi_;
    trace_lo_ = other.trace_lo_;
    start_us_ = other.start_us_;
    args_ = std::move(other.args_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::Annotate(const std::string& key, const std::string& value) {
  if (tracer_ == nullptr) return;
  args_.emplace_back(key, value);
}

void Span::Annotate(const std::string& key, double value) {
  if (tracer_ == nullptr) return;
  args_.emplace_back(key, StrFormat("%.6g", value));
}

void Span::Annotate(const std::string& key, int64_t value) {
  if (tracer_ == nullptr) return;
  args_.emplace_back(key, StrFormat("%lld", static_cast<long long>(value)));
}

void Span::End() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  TraceEvent event;
  event.name = std::move(name_);
  event.id = id_;
  event.parent_id = parent_id_;
  event.trace_hi = trace_hi_;
  event.trace_lo = trace_lo_;
  event.start_us = start_us_;
  event.dur_us = NowSeconds() * 1e6 - start_us_;
  event.tid = tracer->CurrentTid();
  event.args = std::move(args_);
  tracer->Record(std::move(event));
}

Tracer::Tracer(size_t max_events)
    : max_events_(max_events == 0 ? 1 : max_events) {}

Span Tracer::StartSpan(const std::string& name, const Span* parent) {
  return StartSpanAt(name, parent, NowSeconds());
}

Span Tracer::StartSpanAt(const std::string& name, const Span* parent,
                         double start_seconds) {
  uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  uint64_t parent_id = parent != nullptr ? parent->id() : 0;
  Span span(this, name, id, parent_id, start_seconds * 1e6);
  // Children ride their parent's distributed trace: SetTrace on the
  // request root propagates through the whole in-process tree for free.
  if (parent != nullptr) span.SetTrace(parent->trace_hi(), parent->trace_lo());
  return span;
}

uint64_t Tracer::RecordSpan(
    const std::string& name, const Span* parent, double start_seconds,
    double end_seconds,
    std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent event;
  event.name = name;
  event.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  event.parent_id = parent != nullptr ? parent->id() : 0;
  if (parent != nullptr) {
    event.trace_hi = parent->trace_hi();
    event.trace_lo = parent->trace_lo();
  }
  event.start_us = start_seconds * 1e6;
  event.dur_us = (end_seconds - start_seconds) * 1e6;
  event.tid = CurrentTid();
  event.args = std::move(args);
  uint64_t id = event.id;
  Record(std::move(event));
  return id;
}

void Tracer::Record(TraceEvent event) {
  if (event.dur_us < 0) event.dur_us = 0;
  bool overwrote = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() < max_events_) {
      events_.push_back(std::move(event));
    } else {
      events_[head_] = std::move(event);
      head_ = (head_ + 1) % max_events_;
      ++dropped_;
      overwrote = true;
    }
  }
  if (overwrote) {
    // Cached once: registry instruments are never deleted.
    static Counter* dropped_counter =
        MetricsRegistry::Global().GetCounter("trace.events_dropped");
    dropped_counter->Increment();
  }
}

uint32_t Tracer::CurrentTid() {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      tids_.emplace(std::this_thread::get_id(),
                    static_cast<uint32_t>(tids_.size() + 1));
  return it->second;
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Unwrap the ring into record order (oldest first).
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string Tracer::ExportChromeJson() const {
  std::vector<TraceEvent> events = Events();
  // Chrome renders nesting from ts/dur overlap per tid; sorting by start
  // keeps the file stable and diffable.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_us < b.start_us;
                   });
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat(
        "  {\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":1,\"tid\":%u,\"args\":{\"id\":%llu,\"parent\":%llu",
        JsonEscape(e.name).c_str(), e.start_us, e.dur_us, e.tid,
        static_cast<unsigned long long>(e.id),
        static_cast<unsigned long long>(e.parent_id));
    if ((e.trace_hi | e.trace_lo) != 0) {
      out += StrFormat(",\"trace\":\"%016llx%016llx\"",
                       static_cast<unsigned long long>(e.trace_hi),
                       static_cast<unsigned long long>(e.trace_lo));
    }
    for (const auto& [k, v] : e.args) {
      out += ",\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

Status Tracer::WriteChromeJsonFile(const std::string& path) const {
  return WriteStringToFile(path, ExportChromeJson());
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  head_ = 0;
  dropped_ = 0;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

Span StartSpan(Tracer* tracer, const std::string& name, const Span* parent) {
  if (tracer == nullptr) return Span();
  return tracer->StartSpan(name, parent);
}

}  // namespace esharp::obs
