#ifndef ESHARP_OBS_PROGRESS_H_
#define ESHARP_OBS_PROGRESS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace esharp::obs {

/// \brief Live progress of long-running jobs (the weekly offline pipeline,
/// bench sweeps), the backing store of the /progressz endpoint. A job
/// reports a coarse stage name plus an optional completion fraction; the
/// registry keeps every active job and a bounded ring of recently finished
/// ones. Thread-safe.
class JobProgressRegistry {
 public:
  struct JobSnapshot {
    uint64_t id = 0;
    std::string name;
    std::string stage;
    double fraction = -1;  ///< [0,1]; < 0 when the job reports no fraction.
    double started_seconds = 0;  ///< obs::NowSeconds() time base.
    double updated_seconds = 0;
    bool finished = false;
    std::string outcome;  ///< "ok", "error: ...", "aborted" (dropped handle).
  };

  /// \brief RAII handle of one registered job. Updates are forwarded to the
  /// registry; dropping the handle without Finish() marks the job
  /// "aborted" (an error return path unwound through it).
  class Job {
   public:
    ~Job();
    Job(const Job&) = delete;
    Job& operator=(const Job&) = delete;

    void SetStage(const std::string& stage);
    /// Clamped to [0,1].
    void SetFraction(double fraction);
    void Finish(const std::string& outcome = "ok");

   private:
    friend class JobProgressRegistry;
    Job(JobProgressRegistry* registry, uint64_t id)
        : registry_(registry), id_(id) {}
    JobProgressRegistry* registry_;
    uint64_t id_;
    bool finished_ = false;
  };

  /// The process-wide registry /progressz serves from.
  static JobProgressRegistry& Global();

  explicit JobProgressRegistry(size_t max_finished = 32);

  /// Registers a job and returns its handle.
  std::unique_ptr<Job> Start(const std::string& name);

  /// Active jobs (start order), then recently finished ones (oldest first).
  std::vector<JobSnapshot> Snapshot() const;

  size_t num_active() const;

  std::string RenderText() const;
  std::string RenderJson() const;

 private:
  friend class Job;
  void Update(uint64_t id, const std::string* stage, const double* fraction);
  void Finish(uint64_t id, const std::string& outcome);

  const size_t max_finished_;
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, JobSnapshot> active_;  // map: stable start order
  std::deque<JobSnapshot> finished_;
};

}  // namespace esharp::obs

#endif  // ESHARP_OBS_PROGRESS_H_
