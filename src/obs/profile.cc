#include "obs/profile.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/debugz.h"

namespace esharp::obs {

namespace {

std::string JsonEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string HtmlEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Emits one complete ("ph":"X") event. `ts`/`dur` are milliseconds
/// relative to query admission; Chrome wants microseconds.
void AppendEvent(std::string* out, bool* first, const std::string& name,
                 uint32_t tid, double start_ms, double dur_ms,
                 const std::string& args_json) {
  *out += *first ? "\n" : ",\n";
  *first = false;
  *out += StrFormat(
      "  {\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
      "\"pid\":1,\"tid\":%u,\"args\":{%s}}",
      JsonEscape(name).c_str(), start_ms * 1e3, dur_ms * 1e3, tid,
      args_json.c_str());
}

void AppendThreadName(std::string* out, bool* first, uint32_t tid,
                      const std::string& name) {
  *out += *first ? "\n" : ",\n";
  *first = false;
  *out += StrFormat(
      "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
      "\"args\":{\"name\":\"%s\"}}",
      tid, JsonEscape(name).c_str());
}

std::string SummaryJson(const QueryProfile& p) {
  std::string out = StrFormat(
      "{\"trace\":\"%s\",\"query\":\"%s\",\"outcome\":\"%s\","
      "\"total_ms\":%.3f,\"merge_ms\":%.3f,\"deadline_ms\":%.3f,"
      "\"shards_total\":%zu,\"shards_answered\":%zu,\"hedges_fired\":%zu,"
      "\"degraded\":%s,\"lanes\":[",
      p.trace.TraceIdHex().c_str(), JsonEscape(p.query).c_str(),
      JsonEscape(p.outcome).c_str(), p.total_ms, p.merge_ms, p.deadline_ms,
      p.shards_total, p.shards_answered, p.hedges_fired,
      p.degraded ? "true" : "false");
  for (size_t i = 0; i < p.lanes.size(); ++i) {
    const ProfileLane& lane = p.lanes[i];
    if (i > 0) out += ",";
    out += StrFormat("{\"shard\":\"%s\",\"annotation\":\"%s\",\"attempts\":[",
                     JsonEscape(lane.name).c_str(),
                     JsonEscape(lane.annotation).c_str());
    for (size_t j = 0; j < lane.attempts.size(); ++j) {
      const LaneAttempt& a = lane.attempts[j];
      if (j > 0) out += ",";
      out += StrFormat(
          "{\"hedge\":%s,\"won\":%s,\"outcome\":\"%s\",\"detail\":\"%s\","
          "\"start_ms\":%.3f,\"dur_ms\":%.3f,\"deadline_ms\":%.3f",
          a.hedge ? "true" : "false", a.won ? "true" : "false",
          JsonEscape(a.outcome).c_str(), JsonEscape(a.detail).c_str(),
          a.start_ms, a.dur_ms, a.deadline_ms);
      if (a.has_breakdown) {
        out += StrFormat(
            ",\"queue_ms\":%.3f,\"expand_ms\":%.3f,\"detect_ms\":%.3f,"
            "\"candidates\":%zu",
            a.queue_ms, a.expand_ms, a.detect_ms, a.candidates);
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace

std::string QueryProfile::ExportChromeJson() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  AppendThreadName(&out, &first, 0, "router");
  for (size_t i = 0; i < lanes.size(); ++i) {
    std::string label = lanes[i].name;
    if (!lanes[i].annotation.empty()) {
      label += " [" + lanes[i].annotation + "]";
    }
    AppendThreadName(&out, &first, static_cast<uint32_t>(i + 1), label);
  }
  // Router lane: the whole query, then its named stages.
  std::string root_args = StrFormat(
      "\"trace\":\"%s\",\"query\":\"%s\",\"outcome\":\"%s\","
      "\"shards_answered\":\"%zu/%zu\",\"hedges_fired\":\"%zu\"",
      trace.TraceIdHex().c_str(), JsonEscape(query).c_str(),
      JsonEscape(outcome).c_str(), shards_answered, shards_total,
      hedges_fired);
  if (deadline_ms > 0) {
    root_args += StrFormat(",\"deadline_ms\":\"%.3f\"", deadline_ms);
  }
  AppendEvent(&out, &first, "request", 0, 0, total_ms, root_args);
  for (const ProfileStage& stage : stages) {
    AppendEvent(&out, &first, stage.name, 0, stage.start_ms, stage.dur_ms,
                "");
  }
  // Shard lanes. An outstanding attempt (shard never answered before the
  // router stopped gathering) renders to the end of the query so the lost
  // time is visible, with the outcome in args telling why.
  for (size_t i = 0; i < lanes.size(); ++i) {
    uint32_t tid = static_cast<uint32_t>(i + 1);
    for (const LaneAttempt& a : lanes[i].attempts) {
      double dur = a.outcome == "outstanding"
                       ? std::max(0.0, total_ms - a.start_ms)
                       : a.dur_ms;
      std::string args = StrFormat(
          "\"outcome\":\"%s\",\"won\":\"%s\",\"deadline_ms\":\"%.3f\"",
          JsonEscape(a.outcome).c_str(), a.won ? "true" : "false",
          a.deadline_ms);
      if (!a.detail.empty()) {
        args += ",\"detail\":\"" + JsonEscape(a.detail) + "\"";
      }
      AppendEvent(&out, &first, a.hedge ? "hedge" : "attempt", tid,
                  a.start_ms, dur, args);
      if (a.has_breakdown) {
        // Shard-side breakdown nested inside the attempt, in wall order.
        double at = a.start_ms;
        AppendEvent(&out, &first, "queue", tid, at, a.queue_ms, "");
        at += a.queue_ms;
        AppendEvent(&out, &first, "expand", tid, at, a.expand_ms, "");
        at += a.expand_ms;
        AppendEvent(&out, &first, "detect", tid, at, a.detect_ms,
                    StrFormat("\"candidates\":\"%zu\"", a.candidates));
      }
    }
  }
  out += "\n]}\n";
  return out;
}

SlowQueryLog::SlowQueryLog(SlowQueryLogOptions options)
    : options_(options) {
  if (options_.top_k == 0) options_.top_k = 1;
  if (options_.recent == 0) options_.recent = 1;
}

void SlowQueryLog::Record(std::shared_ptr<const QueryProfile> profile) {
  if (profile == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  if (recent_.size() < options_.recent) {
    recent_.push_back(profile);
  } else {
    recent_[recent_pos_] = profile;
    recent_pos_ = (recent_pos_ + 1) % options_.recent;
  }
  // Leaderboard insert: keep top_ sorted descending by total_ms.
  auto pos = std::upper_bound(
      top_.begin(), top_.end(), profile,
      [](const std::shared_ptr<const QueryProfile>& a,
         const std::shared_ptr<const QueryProfile>& b) {
        return a->total_ms > b->total_ms;
      });
  if (pos == top_.end() && top_.size() >= options_.top_k) return;
  top_.insert(pos, std::move(profile));
  if (top_.size() > options_.top_k) top_.pop_back();
}

std::vector<std::shared_ptr<const QueryProfile>> SlowQueryLog::TopK() const {
  std::lock_guard<std::mutex> lock(mu_);
  return top_;
}

std::vector<std::shared_ptr<const QueryProfile>> SlowQueryLog::Recent()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  // Unwrap the ring newest-first.
  std::vector<std::shared_ptr<const QueryProfile>> out;
  out.reserve(recent_.size());
  for (size_t i = 0; i < recent_.size(); ++i) {
    size_t idx =
        (recent_pos_ + recent_.size() - 1 - i) % recent_.size();
    out.push_back(recent_[idx]);
  }
  return out;
}

std::shared_ptr<const QueryProfile> SlowQueryLog::Find(
    std::string_view trace_id) const {
  // Accept a full traceparent header by extracting its id field.
  if (trace_id.size() == 55 && trace_id[2] == '-' && trace_id[35] == '-') {
    trace_id = trace_id.substr(3, 32);
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& list : {top_, recent_}) {
    for (const auto& p : list) {
      if (p->trace.TraceIdHex() == trace_id) return p;
    }
  }
  return nullptr;
}

uint64_t SlowQueryLog::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::string SlowQueryLog::RenderJson() const {
  std::string out =
      StrFormat("{\"recorded\":%llu,\"top\":[",
                static_cast<unsigned long long>(recorded()));
  bool first = true;
  for (const auto& p : TopK()) {
    if (!first) out += ",";
    first = false;
    out += SummaryJson(*p);
  }
  out += "],\"recent\":[";
  first = true;
  for (const auto& p : Recent()) {
    if (!first) out += ",";
    first = false;
    out += SummaryJson(*p);
  }
  out += "]}\n";
  return out;
}

namespace {

void AppendProfileRows(
    std::string* body,
    const std::vector<std::shared_ptr<const QueryProfile>>& profiles) {
  *body +=
      "<table><tr><th>trace</th><th>query</th><th>outcome</th>"
      "<th>total ms</th><th>merge ms</th><th>answered</th>"
      "<th>hedges</th><th>lanes</th></tr>\n";
  for (const auto& p : profiles) {
    std::string id = p->trace.TraceIdHex();
    std::string lanes;
    for (const ProfileLane& lane : p->lanes) {
      if (!lanes.empty()) lanes += " ";
      lanes += lane.name;
      if (!lane.annotation.empty()) lanes += "[" + lane.annotation + "]";
    }
    *body += StrFormat(
        "<tr><td><a href=\"/queryz?trace=%s\"><code>%s</code></a></td>"
        "<td>%s</td><td>%s</td><td>%.3f</td><td>%.3f</td>"
        "<td>%zu/%zu</td><td>%zu</td><td>%s</td></tr>\n",
        id.c_str(), id.c_str(), HtmlEscape(p->query).c_str(),
        HtmlEscape(p->outcome).c_str(), p->total_ms, p->merge_ms,
        p->shards_answered, p->shards_total, p->hedges_fired,
        HtmlEscape(lanes).c_str());
  }
  *body += "</table>\n";
}

}  // namespace

void MountQueryz(DebugServer* server, const SlowQueryLog* log) {
  if (server == nullptr || log == nullptr) return;
  server->Handle("/queryz", [log](const HttpRequest& request) {
    HttpResponse response;
    std::string trace = request.Param("trace", "");
    if (!trace.empty()) {
      std::shared_ptr<const QueryProfile> profile = log->Find(trace);
      if (profile == nullptr) {
        response.status = 404;
        response.body = "no profile retained for trace " + trace + "\n";
        return response;
      }
      response.content_type = "application/json";
      response.body = profile->ExportChromeJson();
      return response;
    }
    if (request.Param("format", "") == "json") {
      response.content_type = "application/json";
      response.body = log->RenderJson();
      return response;
    }
    response.content_type = "text/html; charset=utf-8";
    std::string body =
        "<!doctype html><html><head><title>queryz</title><style>\n"
        "body{font-family:monospace;margin:1.5em}\n"
        "table{border-collapse:collapse}\n"
        "td,th{border:1px solid #ccc;padding:2px 8px;text-align:left}\n"
        "</style></head><body>\n<h1>/queryz — slow-query log</h1>\n";
    body += StrFormat(
        "<p>%llu queries profiled; retaining top %zu by latency and %zu "
        "most recent. <a href=\"/queryz?format=json\">json</a>; click a "
        "trace id for its Chrome trace (load in chrome://tracing or "
        "ui.perfetto.dev).</p>\n",
        static_cast<unsigned long long>(log->recorded()),
        log->options().top_k, log->options().recent);
    body += "<h2>Slowest</h2>\n";
    AppendProfileRows(&body, log->TopK());
    body += "<h2>Recent</h2>\n";
    AppendProfileRows(&body, log->Recent());
    body += "</body></html>\n";
    response.body = std::move(body);
    return response;
  });
}

}  // namespace esharp::obs
