#include "obs/debugz.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"
#include "obs/flightrecorder.h"
#include "obs/log.h"
#include "obs/timeseries.h"

namespace esharp::obs {

namespace {

/// Bounded request size: a debug GET line plus a handful of headers. A
/// client that sends more is broken or hostile; drop it.
constexpr size_t kMaxRequestBytes = 8192;

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "OK";
  }
}

std::string HtmlEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() && HexValue(s[i + 1]) >= 0 &&
               HexValue(s[i + 2]) >= 0) {
      out.push_back(static_cast<char>(HexValue(s[i + 1]) * 16 +
                                      HexValue(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

void SetIoTimeout(int fd, double seconds) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - tv.tv_sec) * 1e6);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Writes the whole buffer, tolerating short writes; false on error.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

void SendResponse(int fd, const HttpResponse& response) {
  std::string head = StrFormat(
      "HTTP/1.1 %d %s\r\n"
      "Content-Type: %s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      response.status, ReasonPhrase(response.status),
      response.content_type.c_str(), response.body.size());
  if (SendAll(fd, head)) SendAll(fd, response.body);
}

/// Parses the request line "GET /path?a=1&b=2 HTTP/1.1". Returns false on
/// anything malformed.
bool ParseRequestLine(const std::string& raw, HttpRequest* request) {
  size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) line_end = raw.find('\n');
  std::string line = raw.substr(0, line_end);
  size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  request->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return false;
  size_t q = target.find('?');
  request->path = UrlDecode(target.substr(0, q));
  if (q != std::string::npos) {
    std::string_view query(target);
    query.remove_prefix(q + 1);
    while (!query.empty()) {
      size_t amp = query.find('&');
      std::string_view pair = query.substr(0, amp);
      size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        request->params.emplace_back(UrlDecode(pair), "");
      } else {
        request->params.emplace_back(UrlDecode(pair.substr(0, eq)),
                                     UrlDecode(pair.substr(eq + 1)));
      }
      if (amp == std::string_view::npos) break;
      query.remove_prefix(amp + 1);
    }
  }
  return true;
}

}  // namespace

std::string HttpRequest::Param(const std::string& key,
                               const std::string& fallback) const {
  for (const auto& [k, v] : params) {
    if (k == key) return v;
  }
  return fallback;
}

// ------------------------------------------------------------- DebugServer --

DebugServer::DebugServer(DebugServerOptions options)
    : options_(std::move(options)) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.max_in_flight == 0) options_.max_in_flight = 1;
  MetricsRegistry& registry = MetricsRegistry::Global();
  requests_ = registry.GetCounter("debugz.requests");
  shed_ = registry.GetCounter("debugz.shed");
  errors_ = registry.GetCounter("debugz.errors");
  handler_seconds_ = registry.GetHistogram("debugz.handler_seconds");
}

DebugServer::~DebugServer() { Stop(); }

void DebugServer::Handle(const std::string& path, HttpHandler handler) {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  handlers_[path] = std::move(handler);
}

std::vector<std::string> DebugServer::paths() const {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  std::vector<std::string> out;
  out.reserve(handlers_.size());
  for (const auto& [path, handler] : handlers_) out.push_back(path);
  return out;
}

Status DebugServer::Start() {
  if (running_.load(std::memory_order_acquire)) return Status::OK();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("debugz: socket() failed: ", std::strerror(errno));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("debugz: bad bind address: ",
                                   options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError("debugz: cannot bind ", options_.bind_address, ":",
                           options_.port, ": ", std::strerror(errno));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::IOError("debugz: listen() failed: ", std::strerror(errno));
  }
  // Resolve port 0 to the kernel's ephemeral pick.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_.store(ntohs(bound.sin_port), std::memory_order_release);
  }
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  workers_ = std::make_unique<ThreadPool>(options_.num_workers);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  ESHARP_LOG(INFO) << "debugz serving on http://" << options_.bind_address
                   << ":" << port();
  return Status::OK();
}

void DebugServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Destroying the pool drains queued connections and joins the workers, so
  // no handler can run past this point.
  workers_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_.store(0, std::memory_order_release);
}

void DebugServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    // Short poll timeout so Stop() is observed promptly without signals.
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    SetIoTimeout(client, options_.io_timeout_seconds);
    size_t in_flight =
        connections_in_flight_.fetch_add(1, std::memory_order_acq_rel);
    if (in_flight >= options_.max_in_flight) {
      // Shed inline: the bounded pool must not queue scrapes without limit
      // behind a slow handler.
      connections_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      shed_->Increment();
      HttpResponse overloaded;
      overloaded.status = 503;
      overloaded.body = "overloaded\n";
      SendResponse(client, overloaded);
      ::close(client);
      continue;
    }
    workers_->Submit([this, client] {
      ServeConnection(client);
      ::close(client);
      connections_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
}

void DebugServer::ServeConnection(int fd) {
  std::string raw;
  char buf[2048];
  while (raw.size() < kMaxRequestBytes &&
         raw.find("\r\n\r\n") == std::string::npos &&
         raw.find("\n\n") == std::string::npos) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  if (raw.empty()) return;

  HttpRequest request;
  if (!ParseRequestLine(raw, &request)) {
    errors_->Increment();
    HttpResponse bad;
    bad.status = 400;
    bad.body = "malformed request\n";
    SendResponse(fd, bad);
    return;
  }
  if (request.method != "GET") {
    errors_->Increment();
    HttpResponse bad;
    bad.status = 405;
    bad.body = "only GET is supported\n";
    SendResponse(fd, bad);
    return;
  }
  requests_->Increment();
  double started = NowSeconds();
  HttpResponse response = Dispatch(request);
  handler_seconds_->Observe(NowSeconds() - started);
  if (response.status >= 500) errors_->Increment();
  SendResponse(fd, response);
}

HttpResponse DebugServer::Dispatch(const HttpRequest& request) {
  HttpHandler handler;
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    auto it = handlers_.find(request.path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (handler) return handler(request);
  if (request.path == "/") {
    HttpResponse index;
    index.content_type = "text/html; charset=utf-8";
    index.body = "<html><head><title>esharp debugz</title></head><body>"
                 "<h1>esharp debugz</h1><ul>";
    for (const std::string& path : paths()) {
      std::string escaped = HtmlEscape(path);
      index.body +=
          "<li><a href=\"" + escaped + "\">" + escaped + "</a></li>";
    }
    index.body += "</ul></body></html>\n";
    return index;
  }
  HttpResponse not_found;
  not_found.status = 404;
  not_found.body = "no handler for " + request.path + "\n";
  return not_found;
}

// ----------------------------------------------------------------- HttpGet --

Result<HttpResponseData> HttpGet(const std::string& host, int port,
                                 const std::string& path,
                                 double timeout_seconds) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket() failed: ", std::strerror(errno));
  }
  SetIoTimeout(fd, timeout_seconds);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host (IPv4 literal expected): ", host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError("cannot connect to ", host, ":", port, ": ",
                           std::strerror(errno));
  }
  std::string request = "GET " + path +
                        " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n\r\n";
  if (!SendAll(fd, request)) {
    ::close(fd);
    return Status::IOError("send failed: ", std::strerror(errno));
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      ::close(fd);
      return Status::IOError("recv failed: ", std::strerror(errno));
    }
    if (n == 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  size_t header_end = raw.find("\r\n\r\n");
  size_t body_start = header_end == std::string::npos ? 0 : header_end + 4;
  if (header_end == std::string::npos) {
    return Status::IOError("malformed response (no header terminator)");
  }
  HttpResponseData response;
  // Status line: "HTTP/1.1 200 OK".
  size_t sp = raw.find(' ');
  if (sp != std::string::npos) {
    response.status = std::atoi(raw.c_str() + sp + 1);
  }
  // Content-Type header (case-insensitive match on the name).
  std::string headers = raw.substr(0, header_end);
  std::string lowered = ToLowerAscii(headers);
  size_t ct = lowered.find("content-type:");
  if (ct != std::string::npos) {
    size_t value_start = ct + std::strlen("content-type:");
    size_t value_end = headers.find("\r\n", value_start);
    std::string value = headers.substr(value_start, value_end - value_start);
    size_t first = value.find_first_not_of(' ');
    response.content_type =
        first == std::string::npos ? "" : value.substr(first);
  }
  response.body = raw.substr(body_start);
  return response;
}

// ------------------------------------------------------------ MountStatusz --

namespace {

struct StatuszState {
  StatuszOptions options;
  double mounted_seconds = 0;

  MetricsRegistry& registry() const {
    return options.registry != nullptr ? *options.registry
                                       : MetricsRegistry::Global();
  }
  EventLog& events() const {
    return options.events != nullptr ? *options.events : EventLog::Global();
  }
  JobProgressRegistry& progress() const {
    return options.progress != nullptr ? *options.progress
                                       : JobProgressRegistry::Global();
  }

  /// Runs every readiness probe (watchdog included); collects failures.
  ProbeResult Readiness() const {
    ProbeResult verdict;
    for (const auto& [name, probe] : options.readiness) {
      ProbeResult r = probe();
      if (!r.ok) {
        verdict.ok = false;
        if (!verdict.detail.empty()) verdict.detail += "; ";
        verdict.detail += name + (r.detail.empty() ? "" : ": " + r.detail);
      }
    }
    if (options.watchdog != nullptr && !options.watchdog->healthy()) {
      verdict.ok = false;
      if (!verdict.detail.empty()) verdict.detail += "; ";
      verdict.detail += "slo: objective breached";
    }
    return verdict;
  }
};

std::string HtmlPage(const std::string& title, const std::string& body) {
  return "<html><head><title>" + HtmlEscape(title) +
         "</title><style>body{font-family:monospace}table{border-collapse:"
         "collapse}td,th{border:1px solid #999;padding:2px 8px;text-align:"
         "left}</style></head><body><h1>" +
         HtmlEscape(title) + "</h1>" + body + "</body></html>\n";
}

/// Inline SVG sparkline of one series: a polyline normalized into a small
/// fixed box (min..max vertical scale; flat series render as a midline).
std::string SparklineSvg(const std::vector<TimeSeriesPoint>& points) {
  constexpr double kWidth = 240, kHeight = 32, kPad = 2;
  if (points.empty()) return "<svg width=\"240\" height=\"32\"></svg>";
  double t0 = points.front().time_seconds;
  double t1 = points.back().time_seconds;
  double lo = points[0].value, hi = points[0].value;
  for (const TimeSeriesPoint& p : points) {
    lo = std::min(lo, p.value);
    hi = std::max(hi, p.value);
  }
  double t_span = t1 > t0 ? t1 - t0 : 1;
  double v_span = hi > lo ? hi - lo : 1;
  std::string poly;
  for (const TimeSeriesPoint& p : points) {
    double x = kPad + (p.time_seconds - t0) / t_span * (kWidth - 2 * kPad);
    double y = hi > lo
                   ? kPad + (hi - p.value) / v_span * (kHeight - 2 * kPad)
                   : kHeight / 2;
    poly += StrFormat("%.1f,%.1f ", x, y);
  }
  return StrFormat(
      "<svg width=\"%.0f\" height=\"%.0f\"><polyline points=\"%s\" "
      "fill=\"none\" stroke=\"#36c\" stroke-width=\"1\"/></svg>",
      kWidth, kHeight, poly.c_str());
}

HttpResponse GraphzResponse(const std::shared_ptr<StatuszState>& state,
                            const HttpRequest& request) {
  HttpResponse response;
  const TimeSeriesStore* store = state->options.timeseries;
  if (store == nullptr) {
    response.status = 404;
    response.body = "no time-series store mounted\n";
    return response;
  }
  std::string metric = request.Param("metric");
  double window = std::atof(request.Param("window", "0").c_str());
  if (request.Param("format") == "json") {
    response.content_type = "application/json";
    response.body = store->RenderJson(metric, window);
    return response;
  }
  // HTML: one section per metric family (the series id up to its label
  // block), one sparkline row per series.
  std::vector<std::string> names = store->SeriesNames();
  std::string body = StrFormat(
      "<p>%zu series, %llu samples taken, %zu points/series capacity"
      "%s</p>",
      names.size(),
      static_cast<unsigned long long>(store->samples_taken()),
      store->capacity(),
      metric.empty() ? "" : (" &mdash; filter: " + HtmlEscape(metric)).c_str());
  std::string family;
  bool table_open = false;
  size_t rendered = 0;
  constexpr size_t kMaxRows = 400;  // a debug page, not a dashboard export
  for (const std::string& name : names) {
    if (!metric.empty() && name.find(metric) == std::string::npos) continue;
    if (++rendered > kMaxRows) {
      if (table_open) body += "</table>";
      table_open = false;
      body += StrFormat("<p>... truncated at %zu rows; narrow with "
                        "?metric=</p>", kMaxRows);
      break;
    }
    std::string this_family = name.substr(0, name.find('{'));
    if (this_family != family) {
      if (table_open) body += "</table>";
      family = this_family;
      body += "<h3>" + HtmlEscape(family) + "</h3>";
      body += "<table><tr><th>series</th><th>trend</th><th>points</th>"
              "<th>min</th><th>avg</th><th>max</th><th>last</th></tr>";
      table_open = true;
    }
    std::vector<TimeSeriesPoint> points = store->Range(name, window);
    SeriesWindowStats stats = store->Window(name, window);
    body += StrFormat(
        "<tr><td>%s</td><td>%s</td><td>%zu</td><td>%.4g</td><td>%.4g</td>"
        "<td>%.4g</td><td>%.4g</td></tr>",
        HtmlEscape(name).c_str(), SparklineSvg(points).c_str(), stats.count,
        stats.min, stats.avg, stats.max, stats.last);
  }
  if (table_open) body += "</table>";
  body += "<p><a href=\"/graphz?format=json\">json</a> &mdash; "
          "?metric=&lt;substring&gt; filters, ?window=&lt;seconds&gt; "
          "bounds the range</p>";
  response.content_type = "text/html; charset=utf-8";
  response.body = HtmlPage("graphz", body);
  return response;
}

HttpResponse IncidentzResponse(const std::shared_ptr<StatuszState>& state,
                               const HttpRequest& request) {
  HttpResponse response;
  FlightRecorder* recorder = state->options.recorder;
  if (recorder == nullptr) {
    response.status = 404;
    response.body = "no flight recorder mounted\n";
    return response;
  }
  std::string note;
  std::string trigger = request.Param("trigger");
  if (!trigger.empty()) {
    Result<std::string> result =
        recorder->Trigger("manual:" + trigger, "via /incidentz");
    note = result.ok() ? "bundle written: " + *result
                       : "trigger failed: " + result.status().ToString();
  }
  if (request.Param("format") == "json") {
    response.content_type = "application/json";
    response.body = recorder->RenderJson();
    return response;
  }
  std::string body;
  if (!note.empty()) body += "<p><b>" + HtmlEscape(note) + "</b></p>";
  std::vector<IncidentBundleInfo> bundles = recorder->Bundles();
  body += StrFormat(
      "<p>%zu bundles retained (max %zu), %llu written, %llu "
      "debounced</p>",
      bundles.size(), recorder->options().max_bundles,
      static_cast<unsigned long long>(recorder->written()),
      static_cast<unsigned long long>(recorder->suppressed()));
  body += "<table><tr><th>seq</th><th>captured_unix_ms</th><th>reason</th>"
          "<th>bytes</th><th>path</th></tr>";
  for (auto it = bundles.rbegin(); it != bundles.rend(); ++it) {
    body += StrFormat(
        "<tr><td>%llu</td><td>%lld</td><td>%s</td><td>%zu</td>"
        "<td>%s</td></tr>",
        static_cast<unsigned long long>(it->sequence),
        static_cast<long long>(it->captured_unix_ms),
        HtmlEscape(it->reason.empty() ? "(pre-existing)" : it->reason)
            .c_str(),
        it->size_bytes, HtmlEscape(it->path).c_str());
  }
  body += "</table>";
  body += "<p><a href=\"/incidentz?format=json\">json</a> &mdash; "
          "?trigger=&lt;reason&gt; dumps a bundle now</p>";
  response.content_type = "text/html; charset=utf-8";
  response.body = HtmlPage("incidentz", body);
  return response;
}

HttpResponse TracezResponse(const std::shared_ptr<StatuszState>& state,
                            const HttpRequest& request) {
  if (request.Param("format") == "json") {
    HttpResponse json;
    json.content_type = "application/json";
    json.body = state->options.tracer != nullptr
                    ? state->options.tracer->ExportChromeJson()
                    : "{\"traceEvents\":[]}\n";
    return json;
  }
  std::string body = "<h2>active requests</h2>";
  std::vector<ActiveEntry> active =
      state->options.active_requests ? state->options.active_requests()
                                     : std::vector<ActiveEntry>{};
  body += "<table><tr><th>id</th><th>request</th><th>stage</th>"
          "<th>elapsed ms</th></tr>";
  for (const ActiveEntry& e : active) {
    body += StrFormat("<tr><td>%llu</td><td>%s</td><td>%s</td>"
                      "<td>%.3f</td></tr>",
                      static_cast<unsigned long long>(e.id),
                      HtmlEscape(e.name).c_str(), HtmlEscape(e.stage).c_str(),
                      e.elapsed_ms);
  }
  body += "</table>";
  body += StrFormat("<p>%zu in flight</p>", active.size());

  body += "<h2>recent samples (latency-bucketed)</h2>";
  std::vector<SampleEntry> samples =
      state->options.request_samples ? state->options.request_samples()
                                     : std::vector<SampleEntry>{};
  body += "<table><tr><th>request</th><th>outcome</th><th>total ms</th>"
          "<th>age s</th><th>detail</th></tr>";
  for (const SampleEntry& s : samples) {
    body += StrFormat(
        "<tr><td>%s</td><td>%s</td><td>%.3f</td><td>%.1f</td><td>%s</td></tr>",
        HtmlEscape(s.name).c_str(), HtmlEscape(s.outcome).c_str(), s.total_ms,
        s.age_seconds, HtmlEscape(s.detail).c_str());
  }
  body += "</table>";
  if (state->options.tracer != nullptr) {
    body += StrFormat(
        "<p><a href=\"/tracez?format=json\">raw Chrome JSON</a> "
        "(%zu spans retained, %llu dropped) &mdash; load in "
        "chrome://tracing or ui.perfetto.dev</p>",
        state->options.tracer->size(),
        static_cast<unsigned long long>(state->options.tracer->dropped()));
  }
  HttpResponse response;
  response.content_type = "text/html; charset=utf-8";
  response.body = HtmlPage("tracez", body);
  return response;
}

HttpResponse StatuszResponse(const std::shared_ptr<StatuszState>& state) {
  std::string body;
  if (!state->options.build_info.empty()) {
    body += "<p>" + HtmlEscape(state->options.build_info) + "</p>";
  }
  double now = NowSeconds();
  body += StrFormat("<p>uptime %.1f s (endpoints mounted %.1f s ago)</p>",
                    now, now - state->mounted_seconds);
  ProbeResult ready = state->Readiness();
  body += StrFormat("<p>ready: <b>%s</b>%s</p>", ready.ok ? "yes" : "NO",
                    ready.ok ? ""
                             : (" &mdash; " + HtmlEscape(ready.detail)).c_str());
  if (state->options.overview) {
    body += "<h2>overview</h2><pre>" + HtmlEscape(state->options.overview()) +
            "</pre>";
  }
  if (state->options.watchdog != nullptr) {
    body += "<h2>SLO burn</h2><pre>" +
            HtmlEscape(state->options.watchdog->RenderText()) + "</pre>";
  }
  body += "<h2>endpoints</h2><ul>";
  std::vector<std::string> endpoints = {"/metrics", "/varz",   "/healthz",
                                        "/readyz",  "/tracez", "/eventz",
                                        "/progressz"};
  if (state->options.timeseries != nullptr) endpoints.push_back("/graphz");
  if (state->options.recorder != nullptr) endpoints.push_back("/incidentz");
  for (const std::string& path : endpoints) {
    body += StrFormat("<li><a href=\"%s\">%s</a></li>", path.c_str(),
                      path.c_str());
  }
  body += "</ul>";
  HttpResponse response;
  response.content_type = "text/html; charset=utf-8";
  response.body = HtmlPage("statusz", body);
  return response;
}

}  // namespace

void MountStatusz(DebugServer* server, StatuszOptions options) {
  auto state = std::make_shared<StatuszState>();
  state->options = std::move(options);
  state->mounted_seconds = NowSeconds();

  server->Handle("/metrics", [state](const HttpRequest&) {
    HttpResponse response;
    // The Prometheus text exposition content type.
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = state->registry().ExportPrometheus();
    return response;
  });
  server->Handle("/varz", [state](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = state->registry().ExportJson();
    return response;
  });
  server->Handle("/healthz", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok\n";
    return response;
  });
  server->Handle("/readyz", [state](const HttpRequest&) {
    ProbeResult ready = state->Readiness();
    HttpResponse response;
    if (ready.ok) {
      response.body = "ready\n";
    } else {
      response.status = 503;
      response.body = "not ready: " + ready.detail + "\n";
    }
    return response;
  });
  server->Handle("/eventz", [state](const HttpRequest& request) {
    HttpResponse response;
    EventFilter filter;
    std::string level = request.Param("level");
    if (!level.empty() && !ParseLogLevel(level, &filter.min_severity)) {
      response.status = 400;
      response.body = "bad level: " + level +
                      " (want debug|info|warn|error)\n";
      return response;
    }
    filter.after_sequence = static_cast<uint64_t>(
        std::strtoull(request.Param("after", "0").c_str(), nullptr, 10));
    filter.limit = static_cast<size_t>(
        std::strtoull(request.Param("limit", "0").c_str(), nullptr, 10));
    if (request.Param("format") == "json") {
      response.content_type = "application/json";
      response.body = state->events().RenderJson(filter);
    } else {
      response.content_type = "text/html; charset=utf-8";
      response.body = HtmlPage(
          "eventz",
          "<pre>" + HtmlEscape(state->events().RenderText(filter)) +
              "</pre><p><a href=\"/eventz?format=json\">json</a> &mdash; "
              "?level=&lt;floor&gt;, ?after=&lt;seq&gt; cursor, "
              "?limit=&lt;n&gt;</p>");
    }
    return response;
  });
  server->Handle("/progressz", [state](const HttpRequest& request) {
    HttpResponse response;
    if (request.Param("format") == "json") {
      response.content_type = "application/json";
      response.body = state->progress().RenderJson();
    } else {
      response.content_type = "text/html; charset=utf-8";
      response.body = HtmlPage(
          "progressz", "<pre>" + HtmlEscape(state->progress().RenderText()) +
                           "</pre><p><a href=\"/progressz?format=json\">json"
                           "</a></p>");
    }
    return response;
  });
  server->Handle("/tracez", [state](const HttpRequest& request) {
    return TracezResponse(state, request);
  });
  if (state->options.timeseries != nullptr) {
    server->Handle("/graphz", [state](const HttpRequest& request) {
      return GraphzResponse(state, request);
    });
  }
  if (state->options.recorder != nullptr) {
    server->Handle("/incidentz", [state](const HttpRequest& request) {
      return IncidentzResponse(state, request);
    });
  }
  server->Handle("/statusz", [state](const HttpRequest&) {
    return StatuszResponse(state);
  });
}

}  // namespace esharp::obs
