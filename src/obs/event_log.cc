#include "obs/event_log.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/metrics.h"

namespace esharp::obs {

namespace {

std::string JsonEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  std::string lowered;
  lowered.reserve(name.size());
  for (char c : name) {
    lowered.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c + 32) : c);
  }
  if (lowered == "debug") {
    *out = LogLevel::kDEBUG;
  } else if (lowered == "info") {
    *out = LogLevel::kINFO;
  } else if (lowered == "warn" || lowered == "warning") {
    *out = LogLevel::kWARN;
  } else if (lowered == "error") {
    *out = LogLevel::kERROR;
  } else {
    return false;
  }
  return true;
}

EventLog& EventLog::Global() {
  static EventLog* log = new EventLog();
  return *log;
}

EventLog::EventLog(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(std::min<size_t>(capacity_, 256));
}

void EventLog::Add(LogLevel severity, const std::string& source,
                   const std::string& message,
                   std::vector<std::pair<std::string, std::string>> fields) {
  Event event;
  event.time_seconds = NowSeconds();
  event.severity = severity;
  event.source = source;
  event.message = message;
  event.fields = std::move(fields);
  std::lock_guard<std::mutex> lock(mu_);
  event.sequence = next_sequence_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
}

std::vector<Event> EventLog::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<Event> EventLog::Filtered(const EventFilter& filter) const {
  std::vector<Event> events = Events();
  events.erase(std::remove_if(events.begin(), events.end(),
                              [&filter](const Event& e) {
                                return e.severity < filter.min_severity ||
                                       e.sequence <= filter.after_sequence;
                              }),
               events.end());
  if (filter.limit > 0 && events.size() > filter.limit) {
    events.erase(events.begin(),
                 events.begin() + (events.size() - filter.limit));
  }
  return events;
}

uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void EventLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

std::string EventLog::RenderText(const EventFilter& filter) const {
  std::vector<Event> events = Filtered(filter);
  std::string out = StrFormat("%zu events (%llu dropped)\n", events.size(),
                              static_cast<unsigned long long>(dropped()));
  for (const Event& e : events) {
    out += StrFormat("%10.3f %-5s [%s] %s", e.time_seconds,
                     LogLevelName(e.severity), e.source.c_str(),
                     e.message.c_str());
    for (const auto& [k, v] : e.fields) {
      out += " " + k + "=" + v;
    }
    out += "\n";
  }
  return out;
}

std::string EventLog::RenderJson(const EventFilter& filter) const {
  std::vector<Event> events = Filtered(filter);
  uint64_t next_after =
      events.empty() ? filter.after_sequence : events.back().sequence;
  std::string out = StrFormat(
      "{\"dropped\":%llu,\"next_after\":%llu,\"events\":[",
      static_cast<unsigned long long>(dropped()),
      static_cast<unsigned long long>(next_after));
  bool first = true;
  for (const Event& e : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat(
        "  {\"seq\":%llu,\"time\":%.6f,\"severity\":\"%s\",\"source\":\"%s\","
        "\"message\":\"%s\"",
        static_cast<unsigned long long>(e.sequence), e.time_seconds,
        LogLevelName(e.severity), JsonEscape(e.source).c_str(),
        JsonEscape(e.message).c_str());
    out += ",\"fields\":{";
    bool first_field = true;
    for (const auto& [k, v] : e.fields) {
      if (!first_field) out += ",";
      first_field = false;
      out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace esharp::obs
