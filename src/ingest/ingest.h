#ifndef ESHARP_INGEST_INGEST_H_
#define ESHARP_INGEST_INGEST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/sparse_vector.h"
#include "common/thread_pool.h"
#include "community/store.h"
#include "esharp/pipeline.h"
#include "expert/evidence_index.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "microblog/corpus.h"
#include "obs/metrics.h"
#include "querylog/log.h"
#include "serving/snapshot.h"

namespace esharp::ingest {

/// \brief Configuration of the streaming ingestion pipeline.
struct IngestOptions {
  /// Extraction knobs (min similarity, hub fanout, min query count). The
  /// incremental graph maintenance honors them exactly — they define the
  /// reference BuildSimilarityGraph output every publish must match.
  graph::SimilarityGraphOptions extraction;
  /// Clustering backend, mirroring OfflineOptions (the equivalence gate
  /// rebuilds with the same backend).
  core::ClusteringBackend backend = core::ClusteringBackend::kParallelNative;
  size_t max_iterations = 30;
  ThreadPool* pool = nullptr;
  size_t num_partitions = 8;
  bool sql_use_columnar = true;
  /// Options of the published serving generations.
  core::ESharpOptions serving;
  /// Maintain the similarity graph incrementally across publishes (the
  /// delta path). false = re-extract from the accumulated log on every
  /// publish — the safety valve; results are identical either way.
  bool incremental_graph = true;
  /// Ingest gauges (ingest.lag_ms / ingest.backlog / ingest.dirty_terms)
  /// land here; null disables. A TimeSeriesStore sampling this registry
  /// puts them on /graphz.
  obs::MetricsRegistry* metrics = nullptr;
};

/// \brief Accounting of one Publish call.
struct PublishStats {
  uint64_t version = 0;
  /// Appends (tweets + users + log triples) folded into this generation.
  size_t batch_appends = 0;
  size_t batch_tweets = 0;
  /// Vocabulary terms whose evidence pools had to be re-collected because
  /// a batch tweet matched them.
  size_t dirty_terms = 0;
  size_t evidence_reused = 0;
  size_t evidence_rebuilt = 0;
  /// True when the batch touched the query log in a way that changes the
  /// similarity graph (otherwise graph, detection and store are reused
  /// wholesale from the previous generation — zero clustering work).
  bool graph_changed = false;
  size_t graph_vertices = 0;
  size_t graph_edges = 0;
  size_t communities = 0;
  double publish_ms = 0;
};

/// \brief Append-only streaming ingestion: accepts new tweets, users and
/// query-log triples at runtime and publishes delta serving generations
/// through SnapshotManager::Publish at sub-second cadence.
///
/// Every published generation is bit-identical to what the offline
/// pipeline would produce from scratch over the same accumulated inputs
/// (ingest/verify.h proves it; the `ingest` test label and
/// bench/ingest_bench enforce it before any timing). The delta work per
/// publish is proportional to the batch, not the corpus:
///
///  * Corpus: appends go to a copy-on-write tail; Publish freezes it as
///    the new generation and forks a fresh tail. Generations structurally
///    share all untouched chunks and postings (microblog/corpus.h), and
///    the per-user TS/MI/RI denominators are maintained per append.
///  * Evidence: a tweet only changes the pools of vocabulary terms whose
///    tokens it contains (pool = pure function of (corpus, term)), so the
///    pipeline tracks dirty terms per append and Extend() re-collects only
///    those, sharing every clean pool with the previous generation.
///  * Graph: per-query click vectors, url fanout (hub state) and the edge
///    adjacency are maintained incrementally; only queries whose vectors,
///    candidate urls or hub exposure changed are re-scored. A batch that
///    touches no query-log triple leaves the graph bitwise unchanged and
///    the previous store (and its clustering) is republished wholesale.
///  * Clustering: when the graph did change, detection re-runs through the
///    exact per-component decomposition (community/component_cd.h) under
///    the full graph's total weight — bit-identical to a monolithic run.
///    Modularity's global coupling through m_G makes true partial
///    re-clustering impossible under bit-identity (see DESIGN.md), so a
///    changed graph re-clusters every component; the delta win on the
///    clustering stage is skipping it entirely for tweet-only batches.
///
/// Threading: appends and Publish must come from ONE writer thread; any
/// number of query threads may serve concurrently from the manager's
/// published generations (RCU hot-swap). lag_ms()/backlog()/
/// dirty_term_count() are safe from any thread (SLO watchdog sampling).
class IngestPipeline {
 public:
  /// The manager receives every published generation; it may be empty
  /// (constructed with a null corpus) — generations own their corpora.
  IngestPipeline(serving::SnapshotManager* manager, IngestOptions options);
  explicit IngestPipeline(serving::SnapshotManager* manager)
      : IngestPipeline(manager, IngestOptions()) {}

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Appends one user profile (dense ids, in order — as TweetCorpus).
  microblog::UserId AppendUser(microblog::UserProfile user);

  /// Appends one tweet; returns its corpus id. Marks every vocabulary term
  /// the tweet matches dirty for the next publish.
  uint32_t AppendTweet(microblog::UserId author, std::string text,
                       std::vector<microblog::UserId> mentions = {},
                       uint32_t retweet_count = 0);

  /// Adds to a query's monthly search count (queries keyed by text; first
  /// append registers the query). Crossing the min-count filter makes the
  /// query a graph vertex at the next publish.
  void AppendSearches(const std::string& query, uint64_t count);

  /// Adds clicks for (query, url), accumulating duplicates — one
  /// query-log triple.
  void AppendClicks(const std::string& query, uint32_t url, uint64_t clicks);

  /// Publishes everything appended so far as a new serving generation:
  /// delta evidence + (when needed) re-clustered store + frozen corpus
  /// generation, installed via SnapshotManager::Publish.
  Result<PublishStats> Publish();

  // ---- Introspection (any thread) ----------------------------------------

  /// Appends not yet folded into a published generation.
  size_t backlog() const { return backlog_.load(std::memory_order_relaxed); }

  /// Age of the oldest unpublished append, milliseconds (0 when drained).
  double lag_ms() const;

  /// Vocabulary terms currently marked dirty.
  size_t dirty_term_count() const {
    return dirty_term_count_.load(std::memory_order_relaxed);
  }

  /// Re-exports the ingest gauges from the current counters (the watchdog
  /// and demo call this so sampled lag reflects wall time, not only the
  /// last append).
  void RefreshGauges();

  // ---- Accessors for the equivalence gate / benches (writer thread) ------

  /// The mutable tail corpus (appends since the last publish included).
  const microblog::TweetCorpus& tail() const { return tail_; }

  /// The accumulated query log (replayable: same triples, same ids).
  const querylog::QueryLog& accumulated_log() const { return log_; }

  std::shared_ptr<const microblog::TweetCorpus> published_corpus() const {
    return published_corpus_;
  }
  std::shared_ptr<const graph::Graph> published_graph() const {
    return published_graph_;
  }
  std::shared_ptr<const community::CommunityStore> published_store() const {
    return published_store_;
  }
  std::shared_ptr<const expert::TermEvidenceIndex> published_evidence() const {
    return published_evidence_;
  }
  const std::vector<std::string>& published_vocabulary() const {
    return vocabulary_;
  }

  /// The vocabulary terms (previous published generation's) whose pools a
  /// tweet with this text would dirty. Exposed so the sharded tier can
  /// attribute dirty terms to the shard the tweet routes to.
  std::vector<std::string> DirtyTermsFor(const std::string& text) const;

  const IngestOptions& options() const { return options_; }
  serving::SnapshotManager* manager() const { return manager_; }

 private:
  /// Incremental per-query extraction state, keyed by accumulated-log id.
  struct QueryState {
    std::unordered_map<uint32_t, uint64_t> clicks;  // url -> total clicks
    /// Materialized click vector + norm; survivors only, refreshed lazily
    /// at publish for queries whose clicks changed.
    SparseVector vector;
    double norm = 0;
    bool survivor = false;
    bool vector_stale = false;
  };
  struct UrlState {
    /// Surviving queries with clicks on this url (= the filtered log's
    /// postings list for the url; fanout = size).
    std::unordered_set<uint32_t> clickers;
    bool hub = false;
  };

  uint32_t InternQuery(const std::string& query);
  void PromoteSurvivor(uint32_t qid);
  /// Registers a (survivor, url) pair; flips the url to hub when its
  /// fanout crosses the cap, dirtying every clicker (pairs that were only
  /// discoverable through it lose their witness).
  void AddSurvivorUrl(uint32_t qid, uint32_t url);
  void MarkQueryDirty(uint32_t qid);
  /// Applies the pending dirty-query recomputation to the adjacency.
  void UpdateGraphState();
  /// Materializes the adjacency as a finalized Graph, in the exact vertex
  /// and edge order BuildSimilarityGraph emits.
  Result<graph::Graph> MaterializeGraph() const;
  /// Rebuilds the vocabulary -> token registry used by dirty-term
  /// detection (after each publish that changed the vocabulary).
  void RebuildVocabularyRegistry();
  void NoteAppend();

  serving::SnapshotManager* manager_;
  IngestOptions options_;

  // Corpus tail + last published generation (COW-linked).
  microblog::TweetCorpus tail_;
  std::shared_ptr<const microblog::TweetCorpus> published_corpus_;

  // Accumulated query log + incremental extraction state.
  querylog::QueryLog log_;
  std::vector<QueryState> queries_;
  std::unordered_map<uint32_t, UrlState> urls_;
  /// Edge adjacency over accumulated query ids, both directions.
  std::unordered_map<uint32_t, std::unordered_map<uint32_t, double>> adj_;
  std::unordered_set<uint32_t> dirty_queries_;
  bool graph_dirty_ = true;  // first publish always materializes

  // Published artifacts of the previous generation.
  std::shared_ptr<const graph::Graph> published_graph_;
  std::shared_ptr<const community::CommunityStore> published_store_;
  std::shared_ptr<const expert::TermEvidenceIndex> published_evidence_;

  // Vocabulary of the published generation + dirty-term tracking.
  std::vector<std::string> vocabulary_;
  std::vector<std::vector<std::string>> vocabulary_tokens_;
  std::unordered_map<std::string, std::vector<uint32_t>> token_to_terms_;
  std::unordered_set<std::string> dirty_terms_;

  // Introspection counters (watchdog-thread readable).
  std::atomic<size_t> backlog_{0};
  std::atomic<size_t> dirty_term_count_{0};
  std::atomic<double> oldest_unpublished_seconds_{0};
  size_t batch_tweets_ = 0;
};

}  // namespace esharp::ingest

#endif  // ESHARP_INGEST_INGEST_H_
