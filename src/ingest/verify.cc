#include "ingest/verify.h"

#include <cstring>
#include <utility>

#include "common/strings.h"
#include "community/parallel_cd.h"
#include "community/sql_cd.h"
#include "esharp/esharp.h"
#include "graph/builder.h"

namespace esharp::ingest {

namespace {

/// Bitwise double comparison: the gate's claim is bit-identity, so two
/// NaNs compare equal and +0/-0 do not.
bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

Status CompareCorpora(const microblog::TweetCorpus& got,
                      const microblog::TweetCorpus& want) {
  if (got.num_users() != want.num_users() ||
      got.num_tweets() != want.num_tweets() ||
      got.num_tokens() != want.num_tokens()) {
    return Status::Internal(StrFormat(
        "corpus shape: got %zu users/%zu tweets/%zu tokens, want %zu/%zu/%zu",
        got.num_users(), got.num_tweets(), got.num_tokens(), want.num_users(),
        want.num_tweets(), want.num_tokens()));
  }
  std::vector<std::string> got_tokens = got.TokenStrings();
  std::vector<std::string> want_tokens = want.TokenStrings();
  if (got_tokens != want_tokens) {
    return Status::Internal("token dictionaries diverge");
  }
  for (microblog::TokenId t = 0; t < got.num_tokens(); ++t) {
    if (got.Postings(t) != want.Postings(t)) {
      return Status::Internal(
          StrFormat("postings diverge for token '%s'", got_tokens[t].c_str()));
    }
  }
  for (microblog::UserId u = 0; u < got.num_users(); ++u) {
    if (got.TweetsByUser(u) != want.TweetsByUser(u) ||
        got.MentionsOfUser(u) != want.MentionsOfUser(u) ||
        got.RetweetsOfUser(u) != want.RetweetsOfUser(u)) {
      return Status::Internal(
          StrFormat("per-user totals diverge for user %u", u));
    }
  }
  for (uint32_t i = 0; i < got.num_tweets(); ++i) {
    const microblog::Tweet& a = got.tweet(i);
    const microblog::Tweet& b = want.tweet(i);
    if (a.author != b.author || a.text != b.text ||
        a.mentions != b.mentions || a.retweet_count != b.retweet_count) {
      return Status::Internal(StrFormat("tweet %u diverges", i));
    }
  }
  return Status::OK();
}

Status CompareGraphs(const graph::Graph& got, const graph::Graph& want) {
  if (got.num_vertices() != want.num_vertices()) {
    return Status::Internal(StrFormat("graph vertices: got %zu want %zu",
                                      got.num_vertices(),
                                      want.num_vertices()));
  }
  for (graph::VertexId v = 0; v < got.num_vertices(); ++v) {
    if (got.label(v) != want.label(v)) {
      return Status::Internal(StrFormat(
          "vertex %u label: got '%s' want '%s'", v, got.label(v).c_str(),
          want.label(v).c_str()));
    }
  }
  if (got.num_edges() != want.num_edges()) {
    return Status::Internal(StrFormat("graph edges: got %zu want %zu",
                                      got.num_edges(), want.num_edges()));
  }
  for (size_t i = 0; i < got.edges().size(); ++i) {
    const graph::Edge& a = got.edges()[i];
    const graph::Edge& b = want.edges()[i];
    if (a.u != b.u || a.v != b.v || !BitEqual(a.weight, b.weight)) {
      return Status::Internal(StrFormat(
          "edge %zu diverges: got (%u,%u,%.17g) want (%u,%u,%.17g)", i, a.u,
          a.v, a.weight, b.u, b.v, b.weight));
    }
  }
  if (!BitEqual(got.TotalWeight(), want.TotalWeight())) {
    return Status::Internal(StrFormat("TotalWeight: got %.17g want %.17g",
                                      got.TotalWeight(), want.TotalWeight()));
  }
  return Status::OK();
}

Status CompareStores(const community::CommunityStore& got,
                     const community::CommunityStore& want) {
  if (got.num_communities() != want.num_communities()) {
    return Status::Internal(StrFormat("communities: got %zu want %zu",
                                      got.num_communities(),
                                      want.num_communities()));
  }
  for (size_t i = 0; i < got.num_communities(); ++i) {
    if (got.community(i).terms != want.community(i).terms) {
      return Status::Internal(StrFormat("community %zu terms diverge", i));
    }
  }
  std::vector<std::pair<uint64_t, double>> got_inter = got.InterWeights();
  std::vector<std::pair<uint64_t, double>> want_inter = want.InterWeights();
  if (got_inter.size() != want_inter.size()) {
    return Status::Internal("inter-community weight counts diverge");
  }
  for (size_t i = 0; i < got_inter.size(); ++i) {
    if (got_inter[i].first != want_inter[i].first ||
        !BitEqual(got_inter[i].second, want_inter[i].second)) {
      return Status::Internal("inter-community weights diverge");
    }
  }
  return Status::OK();
}

Status CompareEvidence(const expert::TermEvidenceIndex& got,
                       const expert::TermEvidenceIndex& want) {
  std::vector<std::string> got_terms = got.TermStrings();
  std::vector<std::string> want_terms = want.TermStrings();
  if (got_terms != want_terms) {
    return Status::Internal(StrFormat("evidence term sets: got %zu want %zu",
                                      got_terms.size(), want_terms.size()));
  }
  for (size_t i = 0; i < got_terms.size(); ++i) {
    const std::vector<expert::CandidateEvidence>& a = got.pool(i);
    const std::vector<expert::CandidateEvidence>& b = want.pool(i);
    if (a.size() != b.size()) {
      return Status::Internal(StrFormat("pool '%s': got %zu want %zu entries",
                                        got_terms[i].c_str(), a.size(),
                                        b.size()));
    }
    for (size_t j = 0; j < a.size(); ++j) {
      if (a[j].user != b[j].user || a[j].is_author != b[j].is_author ||
          a[j].is_mentioned != b[j].is_mentioned ||
          a[j].tweets_on_topic != b[j].tweets_on_topic ||
          a[j].mentions_on_topic != b[j].mentions_on_topic ||
          a[j].retweets_on_topic != b[j].retweets_on_topic ||
          a[j].conversational_on_topic != b[j].conversational_on_topic ||
          a[j].hashtag_on_topic != b[j].hashtag_on_topic) {
        return Status::Internal(StrFormat("pool '%s' entry %zu diverges",
                                          got_terms[i].c_str(), j));
      }
    }
  }
  return Status::OK();
}

Status CompareRanked(const std::vector<expert::RankedExpert>& got,
                     const std::vector<expert::RankedExpert>& want,
                     const std::string& query) {
  if (got.size() != want.size()) {
    return Status::Internal(StrFormat("query '%s': got %zu want %zu experts",
                                      query.c_str(), got.size(),
                                      want.size()));
  }
  for (size_t i = 0; i < got.size(); ++i) {
    const expert::RankedExpert& a = got[i];
    const expert::RankedExpert& b = want[i];
    if (a.user != b.user || !BitEqual(a.score, b.score) ||
        !BitEqual(a.z_topical_signal, b.z_topical_signal) ||
        !BitEqual(a.z_mention_impact, b.z_mention_impact) ||
        !BitEqual(a.z_retweet_impact, b.z_retweet_impact)) {
      return Status::Internal(
          StrFormat("query '%s' rank %zu diverges: got user %u score %.17g, "
                    "want user %u score %.17g",
                    query.c_str(), i, a.user, a.score, b.user, b.score));
    }
  }
  return Status::OK();
}

Result<RebuildArtifacts> RebuildFromScratch(const IngestPipeline& pipeline) {
  if (pipeline.backlog() != 0) {
    return Status::FailedPrecondition(
        "RebuildFromScratch on an undrained pipeline: Publish() first so the "
        "rebuild targets exactly the published generation");
  }
  std::shared_ptr<const microblog::TweetCorpus> published =
      pipeline.published_corpus();
  if (published == nullptr) {
    return Status::FailedPrecondition(
        "RebuildFromScratch before the first Publish()");
  }
  const IngestOptions& options = pipeline.options();

  RebuildArtifacts out;
  // Replay the corpus append-by-append. Replay determinism is the corpus's
  // own contract: same sequence => same dense ids, token ids, postings and
  // totals.
  auto corpus = std::make_shared<microblog::TweetCorpus>();
  for (microblog::UserId u = 0; u < published->num_users(); ++u) {
    corpus->AddUser(published->user(u));
  }
  for (uint32_t i = 0; i < published->num_tweets(); ++i) {
    const microblog::Tweet& t = published->tweet(i);
    corpus->AddTweet(t.author, t.text, t.mentions, t.retweet_count);
  }
  out.corpus = std::move(corpus);

  // Full extraction from the accumulated log (the reference the
  // incremental adjacency must reproduce).
  graph::SimilarityGraphOptions extraction = options.extraction;
  extraction.pool = options.pool;
  extraction.num_partitions = options.num_partitions;
  ESHARP_ASSIGN_OR_RETURN(
      graph::Graph g,
      graph::BuildSimilarityGraph(pipeline.accumulated_log(), extraction));
  out.graph = std::make_shared<const graph::Graph>(std::move(g));

  // Monolithic full-graph detection, cold — deliberately NOT the
  // per-component decomposition the ingest path runs, so the gate also
  // re-proves component CD == monolithic CD on every verified corpus.
  community::DetectionResult detection;
  if (out.graph->num_vertices() > 0) {
    if (options.backend == core::ClusteringBackend::kSqlEngine) {
      community::SqlCdOptions cd;
      cd.max_iterations = options.max_iterations;
      cd.pool = options.pool;
      cd.num_partitions = options.num_partitions;
      cd.use_columnar = options.sql_use_columnar;
      ESHARP_ASSIGN_OR_RETURN(detection,
                              DetectCommunitiesSql(*out.graph, cd));
    } else {
      community::ParallelCdOptions cd;
      cd.max_iterations = options.max_iterations;
      cd.pool = options.pool;
      cd.num_partitions = options.num_partitions;
      ESHARP_ASSIGN_OR_RETURN(detection,
                              DetectCommunitiesParallel(*out.graph, cd));
    }
  }
  out.store = std::make_shared<const community::CommunityStore>(
      community::CommunityStore::Build(*out.graph, detection.assignment));

  for (const community::Community& c : out.store->communities()) {
    for (const std::string& term : c.terms) {
      out.vocabulary.push_back(ToLowerAscii(term));
    }
  }
  expert::TermEvidenceIndex::BuildOptions evidence_options;
  evidence_options.pool = options.pool;
  out.evidence = std::make_shared<const expert::TermEvidenceIndex>(
      expert::TermEvidenceIndex::Build(*out.corpus, out.vocabulary,
                                       evidence_options));
  return out;
}

Status VerifyAgainstRebuild(const IngestPipeline& pipeline,
                            const std::vector<std::string>& probe_queries) {
  ESHARP_ASSIGN_OR_RETURN(RebuildArtifacts rebuilt,
                          RebuildFromScratch(pipeline));

  ESHARP_RETURN_NOT_OK(
      CompareCorpora(*pipeline.published_corpus(), *rebuilt.corpus));
  ESHARP_RETURN_NOT_OK(
      CompareGraphs(*pipeline.published_graph(), *rebuilt.graph));
  ESHARP_RETURN_NOT_OK(
      CompareStores(*pipeline.published_store(), *rebuilt.store));
  if (pipeline.published_vocabulary() != rebuilt.vocabulary) {
    return Status::Internal("published vocabulary diverges from rebuild");
  }
  ESHARP_RETURN_NOT_OK(
      CompareEvidence(*pipeline.published_evidence(), *rebuilt.evidence));

  // Ranked probes: the live snapshot (delta world, end to end through the
  // serving tier) against a reference e# assembled purely from the rebuilt
  // artifacts.
  std::shared_ptr<const serving::ServingSnapshot> snapshot =
      pipeline.manager()->Acquire();
  if (snapshot == nullptr) {
    return Status::Internal("manager has no published generation");
  }
  core::ESharp reference(rebuilt.store.get(), rebuilt.corpus.get(),
                         pipeline.options().serving);
  for (const std::string& query : probe_queries) {
    ESHARP_ASSIGN_OR_RETURN(std::vector<expert::RankedExpert> got,
                            snapshot->esharp().FindExperts(query));
    ESHARP_ASSIGN_OR_RETURN(std::vector<expert::RankedExpert> want,
                            reference.FindExperts(query));
    ESHARP_RETURN_NOT_OK(CompareRanked(got, want, query));
  }
  return Status::OK();
}

}  // namespace esharp::ingest
