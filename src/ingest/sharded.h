#ifndef ESHARP_INGEST_SHARDED_H_
#define ESHARP_INGEST_SHARDED_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "cluster/router.h"
#include "cluster/shard.h"
#include "common/partitioner.h"
#include "common/result.h"
#include "expert/detector.h"
#include "ingest/ingest.h"
#include "microblog/corpus.h"
#include "serving/engine.h"
#include "serving/snapshot.h"

namespace esharp::ingest {

/// \brief Streaming ingestion for the sharded serving tier: one union
/// IngestPipeline (graph, clustering, union generation) plus per-shard
/// corpus tails and delta evidence, all published in lockstep so the
/// cluster router's answers stay bit-identical to a from-scratch
/// partition-and-rebuild after every batch.
///
/// Placement matches cluster::PartitionCorpus exactly: users replicate to
/// every shard as they arrive; a tweet routes to
/// Partitioner::ShardOfId(union tweet id). Because union ids are assigned
/// in append order, shard s's tail replays the same (user, tweet)
/// subsequence PartitionCorpus would extract from the union corpus — same
/// dense shard-local ids, token ids, postings and per-user totals.
///
/// Publish() publishes the union generation first (graph + store +
/// clustering + union evidence), then every shard: the shard's frozen
/// tail, the SHARED union store (replicated, as in the offline partition
/// path), and shard-local delta evidence extended over the shard's own
/// dirty terms (a tweet only dirties terms on the one shard it routed
/// to). Last it rebinds the router's union detector to the new union
/// generation and invalidates the result cache, per the ordering contract
/// on ClusterRouter::SetUnionDetector.
///
/// Threading matches IngestPipeline: one writer thread appends and
/// publishes; Query() is safe from any thread concurrently.
class ShardedIngest {
 public:
  ShardedIngest(uint32_t num_shards, IngestOptions options);

  ShardedIngest(const ShardedIngest&) = delete;
  ShardedIngest& operator=(const ShardedIngest&) = delete;

  microblog::UserId AppendUser(const microblog::UserProfile& user);
  /// Returns the union (global) tweet id.
  uint32_t AppendTweet(microblog::UserId author, const std::string& text,
                       const std::vector<microblog::UserId>& mentions = {},
                       uint32_t retweet_count = 0);
  void AppendSearches(const std::string& query, uint64_t count);
  void AppendClicks(const std::string& query, uint32_t url, uint64_t clicks);

  /// Union publish + every shard publish + router rebind, one batch.
  Result<PublishStats> Publish();

  /// Serves one query through the scatter-gather router.
  Result<cluster::ClusterResponse> Query(serving::QueryRequest request) {
    return router_->Query(std::move(request));
  }

  uint32_t num_shards() const { return partitioner_.num_shards(); }
  const IngestPipeline& union_pipeline() const { return union_; }
  IngestPipeline* mutable_union_pipeline() { return &union_; }
  cluster::ClusterRouter* router() { return router_.get(); }
  serving::SnapshotManager* shard_manager(size_t s) {
    return shard_managers_[s].get();
  }
  std::shared_ptr<const microblog::TweetCorpus> shard_corpus(size_t s) const {
    return shard_corpora_[s];
  }
  std::shared_ptr<const expert::TermEvidenceIndex> shard_evidence(
      size_t s) const {
    return shard_evidence_[s];
  }

 private:
  Partitioner partitioner_;
  serving::SnapshotManager union_manager_;
  IngestPipeline union_;

  // Per-shard serving stacks. Declaration order is destruction-safety
  // order: router_ last, so it drains before the engines it scatters to
  // die, and the bootstrap detector outlives the router that may still
  // point at it.
  std::vector<microblog::TweetCorpus> shard_tails_;
  std::vector<std::shared_ptr<const microblog::TweetCorpus>> shard_corpora_;
  std::vector<std::shared_ptr<const expert::TermEvidenceIndex>>
      shard_evidence_;
  std::vector<std::unordered_set<std::string>> shard_dirty_;
  std::vector<std::unique_ptr<serving::SnapshotManager>> shard_managers_;
  std::vector<std::unique_ptr<serving::ServingEngine>> shard_engines_;
  /// Pre-first-publish union detector target: an empty corpus. Safe
  /// because queries fail FailedPrecondition at the shard engines before
  /// any merge can rank; replaced by SetUnionDetector at first Publish().
  microblog::TweetCorpus bootstrap_corpus_;
  std::unique_ptr<expert::ExpertDetector> bootstrap_detector_;
  std::unique_ptr<cluster::ClusterRouter> router_;
};

/// \brief The sharded equivalence gate, on top of VerifyAgainstRebuild's
/// union gate: every shard corpus must equal its slice of
/// cluster::PartitionCorpus over the rebuilt union corpus, every shard
/// evidence index must equal a from-scratch Build over that slice, and the
/// router's ranked answers for `probe_queries` must be bit-identical to a
/// reference union e#. Requires a drained, published ShardedIngest.
Status VerifySharded(ShardedIngest& sharded,
                     const std::vector<std::string>& probe_queries);

}  // namespace esharp::ingest

#endif  // ESHARP_INGEST_SHARDED_H_
