#include "ingest/ingest.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "common/timer.h"
#include "community/component_cd.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

namespace esharp::ingest {

namespace {

/// Distinct tokens of a lower-cased text, as a set for subset checks.
std::unordered_set<std::string> TokenSet(const std::string& lowered) {
  std::unordered_set<std::string> set;
  for (std::string& tok : SplitWhitespace(lowered)) set.insert(std::move(tok));
  return set;
}

}  // namespace

IngestPipeline::IngestPipeline(serving::SnapshotManager* manager,
                               IngestOptions options)
    : manager_(manager), options_(std::move(options)) {}

microblog::UserId IngestPipeline::AppendUser(microblog::UserProfile user) {
  microblog::UserId id = user.id;
  tail_.AddUser(std::move(user));
  NoteAppend();
  return id;
}

uint32_t IngestPipeline::AppendTweet(microblog::UserId author,
                                     std::string text,
                                     std::vector<microblog::UserId> mentions,
                                     uint32_t retweet_count) {
  // Dirty-term detection runs on token STRINGS (corpus-independent): a
  // tweet changes a term's pool exactly when it contains every token of
  // the term, which is MatchTweets membership stated without the token
  // dictionary — so it stays correct even when the tweet introduces the
  // very token that makes an out-of-dictionary term matchable.
  if (!vocabulary_.empty()) {
    std::unordered_set<std::string> tokens = TokenSet(ToLowerAscii(text));
    std::unordered_set<uint32_t> checked;
    for (const std::string& tok : tokens) {
      auto it = token_to_terms_.find(tok);
      if (it == token_to_terms_.end()) continue;
      for (uint32_t term : it->second) {
        if (!checked.insert(term).second) continue;
        const std::vector<std::string>& need = vocabulary_tokens_[term];
        bool all = true;
        for (const std::string& t : need) {
          if (tokens.count(t) == 0) {
            all = false;
            break;
          }
        }
        if (all) dirty_terms_.insert(vocabulary_[term]);
      }
    }
    dirty_term_count_.store(dirty_terms_.size(), std::memory_order_relaxed);
  }
  uint32_t id = tail_.AddTweet(author, std::move(text), std::move(mentions),
                               retweet_count);
  ++batch_tweets_;
  NoteAppend();
  return id;
}

std::vector<std::string> IngestPipeline::DirtyTermsFor(
    const std::string& text) const {
  std::vector<std::string> out;
  if (vocabulary_.empty()) return out;
  std::unordered_set<std::string> tokens = TokenSet(ToLowerAscii(text));
  std::unordered_set<uint32_t> checked;
  for (const std::string& tok : tokens) {
    auto it = token_to_terms_.find(tok);
    if (it == token_to_terms_.end()) continue;
    for (uint32_t term : it->second) {
      if (!checked.insert(term).second) continue;
      const std::vector<std::string>& need = vocabulary_tokens_[term];
      bool all = true;
      for (const std::string& t : need) {
        if (tokens.count(t) == 0) {
          all = false;
          break;
        }
      }
      if (all) out.push_back(vocabulary_[term]);
    }
  }
  return out;
}

uint32_t IngestPipeline::InternQuery(const std::string& query) {
  uint32_t qid = log_.AddQuery(query, querylog::kNoDomain, false);
  if (qid >= queries_.size()) queries_.resize(qid + 1);
  return qid;
}

void IngestPipeline::MarkQueryDirty(uint32_t qid) {
  dirty_queries_.insert(qid);
  graph_dirty_ = true;
}

void IngestPipeline::AddSurvivorUrl(uint32_t qid, uint32_t url) {
  UrlState& u = urls_[url];
  if (!u.clickers.insert(qid).second) return;
  if (!u.hub && u.clickers.size() > options_.extraction.max_url_fanout) {
    // The url just became a hub: it stops generating candidate pairs, so
    // every pair that was only discoverable through it loses its edge.
    // Fanout only grows (queries never un-survive, clicks never retract),
    // so a hub never flips back — one rescoring pass per flip suffices.
    u.hub = true;
    for (uint32_t clicker : u.clickers) MarkQueryDirty(clicker);
  }
}

void IngestPipeline::PromoteSurvivor(uint32_t qid) {
  QueryState& s = queries_[qid];
  s.survivor = true;
  s.vector_stale = true;
  for (const auto& [url, clicks] : s.clicks) {
    (void)clicks;
    AddSurvivorUrl(qid, url);
  }
  MarkQueryDirty(qid);
}

void IngestPipeline::AppendSearches(const std::string& query, uint64_t count) {
  uint32_t qid = InternQuery(query);
  log_.AddSearches(qid, count);
  if (!queries_[qid].survivor &&
      log_.query(qid).total_count >= options_.extraction.min_query_count) {
    PromoteSurvivor(qid);
  }
  NoteAppend();
}

void IngestPipeline::AppendClicks(const std::string& query, uint32_t url,
                                  uint64_t clicks) {
  // Zero-click triples are no-ops in QueryLog::AddClicks; mirroring that
  // here keeps the url's clicker set (and so hub fanout) identical to the
  // replayed log's postings.
  if (clicks == 0) return;
  uint32_t qid = InternQuery(query);
  log_.AddClicks(qid, url, clicks);
  QueryState& s = queries_[qid];
  s.clicks[url] += clicks;
  if (s.survivor) {
    s.vector_stale = true;
    AddSurvivorUrl(qid, url);
    MarkQueryDirty(qid);
  }
  NoteAppend();
}

void IngestPipeline::UpdateGraphState() {
  // Phase 0: refresh the materialized vectors of dirty queries. Built in
  // ascending url order from the accumulated totals, the canonical entries
  // — and hence Norm() and Dot() — are bitwise what BuildClickVectors
  // yields over the filtered log.
  for (uint32_t qid : dirty_queries_) {
    QueryState& s = queries_[qid];
    if (!s.vector_stale) continue;
    std::vector<std::pair<uint32_t, uint64_t>> sorted(s.clicks.begin(),
                                                      s.clicks.end());
    std::sort(sorted.begin(), sorted.end());
    SparseVector v;
    for (const auto& [url, clicks] : sorted) {
      v.Add(url, static_cast<double>(clicks));
    }
    s.norm = v.Norm();
    s.vector = std::move(v);
    s.vector_stale = false;
  }

  // Phase 1: drop every dirty query's edges (both directions) — its
  // vector, candidate set or hub exposure changed, so nothing it had is
  // trusted.
  for (uint32_t qid : dirty_queries_) {
    auto it = adj_.find(qid);
    if (it == adj_.end()) continue;
    for (const auto& [other, w] : it->second) {
      (void)w;
      auto oit = adj_.find(other);
      if (oit != adj_.end()) oit->second.erase(qid);
    }
    it->second.clear();
  }

  // Phase 2: re-score each dirty query against every candidate reachable
  // through a shared non-hub url — the builder's discovery rule. The full
  // sorted-merge Dot over all common dims is bitwise the builder's weight
  // in both of its cases (fused accumulation over non-hub commons when no
  // hub is shared; explicit full Dot when one is). Writes are symmetric,
  // so two dirty queries rescoring the same pair overwrite it with the
  // identical value.
  for (uint32_t qid : dirty_queries_) {
    const QueryState& s = queries_[qid];
    std::unordered_set<uint32_t> candidates;
    for (const auto& [url, clicks] : s.clicks) {
      (void)clicks;
      auto uit = urls_.find(url);
      if (uit == urls_.end() || uit->second.hub) continue;
      for (uint32_t c : uit->second.clickers) {
        if (c != qid) candidates.insert(c);
      }
    }
    for (uint32_t c : candidates) {
      const QueryState& o = queries_[c];
      double d = s.vector.Dot(o.vector);
      double sim =
          (s.norm == 0.0 || o.norm == 0.0) ? 0.0 : d / (s.norm * o.norm);
      if (sim >= options_.extraction.min_similarity) {
        adj_[qid][c] = sim;
        adj_[c][qid] = sim;
      }
    }
  }
  dirty_queries_.clear();
}

Result<graph::Graph> IngestPipeline::MaterializeGraph() const {
  // Vertices: survivors in ascending accumulated id — exactly the order
  // FilterByMinCount assigns dense filtered ids, so vertex v here IS
  // vertex v of BuildSimilarityGraph.
  graph::Graph g;
  std::unordered_map<uint32_t, graph::VertexId> vertex_of;
  std::vector<uint32_t> survivors;
  for (uint32_t qid = 0; qid < queries_.size(); ++qid) {
    if (!queries_[qid].survivor) continue;
    vertex_of.emplace(qid, g.AddVertex(log_.query(qid).text));
    survivors.push_back(qid);
  }
  // Edges in the builder's emission order: u ascending, then v ascending,
  // u < v — so the edge array, the adjacency and the TotalWeight
  // accumulation order (and thus its floating-point value) all match.
  std::vector<uint32_t> neighbors;
  for (uint32_t qid : survivors) {
    auto it = adj_.find(qid);
    if (it == adj_.end()) continue;
    neighbors.clear();
    for (const auto& [other, w] : it->second) {
      (void)w;
      if (other > qid) neighbors.push_back(other);
    }
    std::sort(neighbors.begin(), neighbors.end());
    for (uint32_t other : neighbors) {
      ESHARP_RETURN_NOT_OK(g.AddEdge(vertex_of.at(qid), vertex_of.at(other),
                                     it->second.at(other)));
    }
  }
  g.Finalize();
  return g;
}

void IngestPipeline::RebuildVocabularyRegistry() {
  vocabulary_tokens_.assign(vocabulary_.size(), {});
  token_to_terms_.clear();
  std::unordered_set<std::string> seen_terms;
  for (uint32_t i = 0; i < vocabulary_.size(); ++i) {
    if (!seen_terms.insert(vocabulary_[i]).second) continue;
    std::vector<std::string> tokens = SplitWhitespace(vocabulary_[i]);
    std::unordered_set<std::string> distinct;
    for (const std::string& tok : tokens) {
      if (distinct.insert(tok).second) token_to_terms_[tok].push_back(i);
    }
    vocabulary_tokens_[i] = std::move(tokens);
  }
}

Result<PublishStats> IngestPipeline::Publish() {
  Timer timer;
  PublishStats stats;
  stats.batch_appends = backlog_.load(std::memory_order_relaxed);
  stats.batch_tweets = batch_tweets_;
  stats.dirty_terms = dirty_terms_.size();

  // Freeze the tail as this generation's corpus and fork a fresh tail for
  // the appends that arrive while (and after) this publish runs.
  auto generation =
      std::make_shared<const microblog::TweetCorpus>(std::move(tail_));
  tail_ = generation->ExtendedCopy();

  const bool vocabulary_may_change = graph_dirty_;
  stats.graph_changed = graph_dirty_;
  if (graph_dirty_) {
    if (options_.incremental_graph) {
      UpdateGraphState();
      ESHARP_ASSIGN_OR_RETURN(graph::Graph g, MaterializeGraph());
      published_graph_ = std::make_shared<const graph::Graph>(std::move(g));
    } else {
      // Safety valve: full re-extraction from the accumulated log. Same
      // result, batch-independent cost.
      graph::SimilarityGraphOptions extraction = options_.extraction;
      extraction.pool = options_.pool;
      extraction.num_partitions = options_.num_partitions;
      ESHARP_ASSIGN_OR_RETURN(graph::Graph g,
                              BuildSimilarityGraph(log_, extraction));
      published_graph_ = std::make_shared<const graph::Graph>(std::move(g));
      dirty_queries_.clear();
    }

    community::DetectionResult detection;
    if (published_graph_->num_vertices() > 0) {
      community::ComponentCdOptions cd;
      cd.use_sql = options_.backend == core::ClusteringBackend::kSqlEngine;
      cd.sql_use_columnar = options_.sql_use_columnar;
      cd.max_iterations = options_.max_iterations;
      cd.pool = options_.pool;
      cd.num_partitions = options_.num_partitions;
      ESHARP_ASSIGN_OR_RETURN(
          detection, DetectCommunitiesByComponent(*published_graph_, cd));
    }

    published_store_ = std::make_shared<const community::CommunityStore>(
        community::CommunityStore::Build(*published_graph_,
                                         detection.assignment));

    // The expansion vocabulary is the new store's term set, normalized the
    // way the offline pipeline and Publish normalize it.
    vocabulary_.clear();
    for (const community::Community& c : published_store_->communities()) {
      for (const std::string& term : c.terms) {
        vocabulary_.push_back(ToLowerAscii(term));
      }
    }
    graph_dirty_ = false;
  } else if (published_graph_ == nullptr) {
    published_graph_ = std::make_shared<const graph::Graph>();
    published_store_ = std::make_shared<const community::CommunityStore>();
  }
  stats.graph_vertices = published_graph_->num_vertices();
  stats.graph_edges = published_graph_->num_edges();
  stats.communities = published_store_->num_communities();

  // Delta evidence: share every clean pool with the previous generation,
  // re-collect dirty and new terms against the frozen corpus.
  expert::TermEvidenceIndex::BuildOptions evidence_options;
  evidence_options.pool = options_.pool;
  expert::TermEvidenceIndex::ExtendStats extend_stats;
  auto evidence = std::make_shared<const expert::TermEvidenceIndex>(
      expert::TermEvidenceIndex::Extend(published_evidence_.get(), *generation,
                                        vocabulary_, dirty_terms_,
                                        evidence_options, &extend_stats));
  stats.evidence_reused = extend_stats.reused;
  stats.evidence_rebuilt = extend_stats.rebuilt;

  stats.version =
      manager_->Publish(published_store_, generation, options_.serving,
                        evidence);

  published_corpus_ = std::move(generation);
  published_evidence_ = std::move(evidence);
  if (vocabulary_may_change) RebuildVocabularyRegistry();
  dirty_terms_.clear();
  dirty_term_count_.store(0, std::memory_order_relaxed);
  backlog_.store(0, std::memory_order_relaxed);
  oldest_unpublished_seconds_.store(0, std::memory_order_relaxed);
  batch_tweets_ = 0;
  stats.publish_ms = timer.ElapsedMillis();
  RefreshGauges();

  obs::EventLog::Global().Add(
      obs::LogLevel::kINFO, "ingest", "delta generation published",
      {{"version", StrFormat("%llu",
                             static_cast<unsigned long long>(stats.version))},
       {"batch_appends", StrFormat("%zu", stats.batch_appends)},
       {"dirty_terms", StrFormat("%zu", stats.dirty_terms)},
       {"evidence_reused", StrFormat("%zu", stats.evidence_reused)},
       {"evidence_rebuilt", StrFormat("%zu", stats.evidence_rebuilt)},
       {"graph_changed", stats.graph_changed ? "true" : "false"},
       {"publish_ms", StrFormat("%.3f", stats.publish_ms)}});
  return stats;
}

double IngestPipeline::lag_ms() const {
  if (backlog_.load(std::memory_order_relaxed) == 0) return 0;
  double oldest = oldest_unpublished_seconds_.load(std::memory_order_relaxed);
  if (oldest == 0) return 0;
  return (obs::NowSeconds() - oldest) * 1e3;
}

void IngestPipeline::NoteAppend() {
  if (backlog_.fetch_add(1, std::memory_order_relaxed) == 0) {
    oldest_unpublished_seconds_.store(obs::NowSeconds(),
                                      std::memory_order_relaxed);
  }
  if (options_.metrics != nullptr) {
    options_.metrics->GetGauge("ingest.backlog")
        ->Set(static_cast<double>(backlog_.load(std::memory_order_relaxed)));
  }
}

void IngestPipeline::RefreshGauges() {
  if (options_.metrics == nullptr) return;
  options_.metrics->GetGauge("ingest.lag_ms")->Set(lag_ms());
  options_.metrics->GetGauge("ingest.backlog")
      ->Set(static_cast<double>(backlog_.load(std::memory_order_relaxed)));
  options_.metrics->GetGauge("ingest.dirty_terms")
      ->Set(static_cast<double>(
          dirty_term_count_.load(std::memory_order_relaxed)));
}

}  // namespace esharp::ingest
