#ifndef ESHARP_INGEST_VERIFY_H_
#define ESHARP_INGEST_VERIFY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "community/store.h"
#include "expert/evidence_index.h"
#include "graph/graph.h"
#include "ingest/ingest.h"
#include "microblog/corpus.h"

namespace esharp::ingest {

/// \brief The from-scratch world: what the offline pipeline produces over
/// the pipeline's accumulated inputs, built with zero reuse.
struct RebuildArtifacts {
  std::shared_ptr<const microblog::TweetCorpus> corpus;
  std::shared_ptr<const graph::Graph> graph;
  std::shared_ptr<const community::CommunityStore> store;
  std::shared_ptr<const expert::TermEvidenceIndex> evidence;
  std::vector<std::string> vocabulary;
};

/// \brief Rebuilds every published artifact from scratch: replays the
/// published corpus append-by-append into a fresh TweetCorpus, re-extracts
/// the similarity graph from the accumulated log with BuildSimilarityGraph,
/// re-clusters the full graph cold (no warm start — the ingest path never
/// warm-starts either), rebuilds the store and a full TermEvidenceIndex.
///
/// Requires the pipeline drained (backlog() == 0): the rebuild must target
/// exactly the published generation, and copying the accumulated log on
/// every publish to allow mid-batch verification would cost the very work
/// the delta path avoids. FailedPrecondition otherwise.
Result<RebuildArtifacts> RebuildFromScratch(const IngestPipeline& pipeline);

/// \brief The equivalence gate: proves the delta-maintained world is
/// bit-identical to RebuildFromScratch. Compares
///
///  * corpus observables: user/tweet/token counts, the token dictionary in
///    id order, every postings list, per-user TS/MI/RI totals, and every
///    tweet's text/author/mentions/retweets;
///  * the similarity graph: vertex labels, the edge array (u, v, weight —
///    weight bitwise), and TotalWeight() bitwise;
///  * the community store: community count, per-community term lists in
///    order, and the inter-community weights;
///  * the evidence index: TermStrings() and every pool field-by-field;
///  * ranked answers: FindExperts over `probe_queries` on a reference
///    ESharp vs the manager's live snapshot — user ids, scores and every
///    feature z-score bitwise.
///
/// Returns OK when every surface matches; Internal with the first
/// divergence otherwise. Benches run this BEFORE timing and abort on
/// mismatch, so no speedup number can come from a wrong answer.
Status VerifyAgainstRebuild(const IngestPipeline& pipeline,
                            const std::vector<std::string>& probe_queries);

// ---- Comparison surfaces (shared by the gate, the sharded verifier and
// the fuzz tests; every mismatch is Internal naming the first divergence,
// doubles compare bitwise) --------------------------------------------------

Status CompareCorpora(const microblog::TweetCorpus& got,
                      const microblog::TweetCorpus& want);
Status CompareGraphs(const graph::Graph& got, const graph::Graph& want);
Status CompareStores(const community::CommunityStore& got,
                     const community::CommunityStore& want);
Status CompareEvidence(const expert::TermEvidenceIndex& got,
                       const expert::TermEvidenceIndex& want);
Status CompareRanked(const std::vector<expert::RankedExpert>& got,
                     const std::vector<expert::RankedExpert>& want,
                     const std::string& query);

}  // namespace esharp::ingest

#endif  // ESHARP_INGEST_VERIFY_H_
