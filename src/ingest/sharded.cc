#include "ingest/sharded.h"

#include <utility>

#include "cluster/partition.h"
#include "common/strings.h"
#include "esharp/esharp.h"
#include "ingest/verify.h"

namespace esharp::ingest {

ShardedIngest::ShardedIngest(uint32_t num_shards, IngestOptions options)
    : partitioner_(num_shards),
      union_manager_(),
      union_(&union_manager_, options) {
  shard_tails_.resize(num_shards);
  shard_corpora_.resize(num_shards);
  shard_evidence_.resize(num_shards);
  shard_dirty_.resize(num_shards);
  std::vector<std::unique_ptr<cluster::ShardTransport>> transports;
  for (uint32_t s = 0; s < num_shards; ++s) {
    shard_managers_.push_back(std::make_unique<serving::SnapshotManager>());
    serving::ServingOptions serving_options;
    serving_options.pool = options.pool;
    shard_engines_.push_back(std::make_unique<serving::ServingEngine>(
        shard_managers_.back().get(), serving_options));
    transports.push_back(std::make_unique<cluster::InProcessShard>(
        StrFormat("shard-%u", s), shard_engines_.back().get()));
  }
  bootstrap_detector_ = std::make_unique<expert::ExpertDetector>(
      &bootstrap_corpus_, options.serving.detector);
  cluster::RouterOptions router_options;
  router_options.pool = options.pool;
  router_ = std::make_unique<cluster::ClusterRouter>(
      std::move(transports), bootstrap_detector_.get(), router_options);
}

microblog::UserId ShardedIngest::AppendUser(
    const microblog::UserProfile& user) {
  // Users replicate (PartitionCorpus invariant): shard evidence speaks
  // global UserIds, so every shard needs every profile under its original
  // dense id.
  microblog::UserId id = union_.AppendUser(user);
  for (microblog::TweetCorpus& tail : shard_tails_) {
    tail.AddUser(user);
  }
  return id;
}

uint32_t ShardedIngest::AppendTweet(
    microblog::UserId author, const std::string& text,
    const std::vector<microblog::UserId>& mentions, uint32_t retweet_count) {
  // Dirty terms attribute to the ONE shard the tweet routes to: the
  // tweet changes only that shard's pools. Computed against the union
  // pipeline's registry (same vocabulary every shard serves).
  std::vector<std::string> dirty = union_.DirtyTermsFor(text);
  uint32_t id = union_.AppendTweet(author, text, mentions, retweet_count);
  uint32_t shard = partitioner_.ShardOfId(id);
  shard_tails_[shard].AddTweet(author, text, mentions, retweet_count);
  shard_dirty_[shard].insert(std::make_move_iterator(dirty.begin()),
                             std::make_move_iterator(dirty.end()));
  return id;
}

void ShardedIngest::AppendSearches(const std::string& query, uint64_t count) {
  union_.AppendSearches(query, count);
}

void ShardedIngest::AppendClicks(const std::string& query, uint32_t url,
                                 uint64_t clicks) {
  union_.AppendClicks(query, url, clicks);
}

Result<PublishStats> ShardedIngest::Publish() {
  // 1. Union generation: graph, clustering, store, union evidence. The
  // vocabulary every shard indexes against comes out of this publish.
  ESHARP_ASSIGN_OR_RETURN(PublishStats stats, union_.Publish());
  const std::vector<std::string>& vocabulary = union_.published_vocabulary();
  std::shared_ptr<const community::CommunityStore> store =
      union_.published_store();

  // 2. Shard generations: frozen tail + replicated union store +
  // shard-local delta evidence. Publishing shards before the router
  // rebind is the SetUnionDetector ordering contract.
  for (uint32_t s = 0; s < num_shards(); ++s) {
    auto generation = std::make_shared<const microblog::TweetCorpus>(
        std::move(shard_tails_[s]));
    shard_tails_[s] = generation->ExtendedCopy();
    expert::TermEvidenceIndex::BuildOptions evidence_options;
    evidence_options.pool = union_.options().pool;
    auto evidence = std::make_shared<const expert::TermEvidenceIndex>(
        expert::TermEvidenceIndex::Extend(shard_evidence_[s].get(),
                                          *generation, vocabulary,
                                          shard_dirty_[s], evidence_options));
    shard_managers_[s]->Publish(store, generation,
                                union_.options().serving, evidence);
    shard_corpora_[s] = std::move(generation);
    shard_evidence_[s] = std::move(evidence);
    shard_dirty_[s].clear();
  }

  // 3. Rebind the merge-and-rank detector to the new union generation.
  // The deleter pins the corpus generation to the detector's lifetime, so
  // an in-flight merge that loaded the old detector keeps its old corpus
  // alive too.
  std::shared_ptr<const microblog::TweetCorpus> corpus_generation =
      union_.published_corpus();
  std::shared_ptr<const expert::ExpertDetector> detector(
      new expert::ExpertDetector(corpus_generation.get(),
                                 union_.options().serving.detector),
      [corpus_generation](const expert::ExpertDetector* d) { delete d; });
  router_->SetUnionDetector(std::move(detector));
  router_->InvalidateCache();
  return stats;
}

Status VerifySharded(ShardedIngest& sharded,
                     const std::vector<std::string>& probe_queries) {
  // Union world first: delta graph/store/evidence/corpus == from-scratch.
  ESHARP_RETURN_NOT_OK(
      VerifyAgainstRebuild(sharded.union_pipeline(), probe_queries));
  ESHARP_ASSIGN_OR_RETURN(RebuildArtifacts rebuilt,
                          RebuildFromScratch(sharded.union_pipeline()));

  // Shard corpora == PartitionCorpus slices of the rebuilt union corpus;
  // shard evidence == from-scratch Build over each slice.
  cluster::PartitionedCorpus reference =
      cluster::PartitionCorpus(*rebuilt.corpus, sharded.num_shards());
  for (uint32_t s = 0; s < sharded.num_shards(); ++s) {
    std::shared_ptr<const microblog::TweetCorpus> got =
        sharded.shard_corpus(s);
    if (got == nullptr) {
      return Status::Internal(StrFormat("shard %u never published", s));
    }
    Status corpus_ok = CompareCorpora(*got, *reference.shards[s]);
    if (!corpus_ok.ok()) {
      return Status::Internal(StrFormat("shard %u corpus: %s", s,
                                        corpus_ok.message().c_str()));
    }
    expert::TermEvidenceIndex want = expert::TermEvidenceIndex::Build(
        *reference.shards[s], rebuilt.vocabulary);
    Status evidence_ok = CompareEvidence(*sharded.shard_evidence(s), want);
    if (!evidence_ok.ok()) {
      return Status::Internal(StrFormat("shard %u evidence: %s", s,
                                        evidence_ok.message().c_str()));
    }
  }

  // Routed answers == reference union e#, end to end through scatter,
  // merge and the union rank step.
  core::ESharp union_reference(rebuilt.store.get(), rebuilt.corpus.get(),
                               sharded.union_pipeline().options().serving);
  for (const std::string& query : probe_queries) {
    serving::QueryRequest request;
    request.query = query;
    ESHARP_ASSIGN_OR_RETURN(cluster::ClusterResponse response,
                            sharded.Query(std::move(request)));
    if (response.degraded) {
      return Status::Internal(StrFormat(
          "query '%s' answered degraded (%zu/%zu shards) during verify",
          query.c_str(), response.shards_answered, response.shards_total));
    }
    ESHARP_ASSIGN_OR_RETURN(std::vector<expert::RankedExpert> want,
                            union_reference.FindExperts(query));
    ESHARP_RETURN_NOT_OK(CompareRanked(response.experts, want, query));
  }
  return Status::OK();
}

}  // namespace esharp::ingest
