#ifndef ESHARP_INGEST_INTROSPECT_H_
#define ESHARP_INGEST_INTROSPECT_H_

/// \file Glue between the streaming ingestion pipeline and the obs SLO
/// machinery, mirroring serving/introspect.h: src/obs stays
/// ingest-agnostic; this header fills its seams with pipeline signals.

#include <vector>

#include "ingest/ingest.h"
#include "obs/slo.h"

namespace esharp::ingest {

/// \brief Thresholds behind DefaultIngestObjectives. The lag default is
/// the tentpole's freshness promise: appends become servable within one
/// second (sub-second publish cadence), so sustained lag above it burns
/// budget.
struct IngestSloThresholds {
  double lag_ms = 1000;     ///< kValue target for "ingest_lag".
  double backlog = 100000;  ///< kValue target for "ingest_backlog".
};

/// \brief The standard objectives for one ingest pipeline, ready to hand
/// to SloWatchdog::AddObjective:
///   ingest_lag      kValue — age of the oldest unpublished append (ms)
///   ingest_backlog  kValue — appends not yet folded into a generation
/// Both sample the pipeline's atomic counters live, so they are safe from
/// the watchdog thread while the writer appends. Wiring a breach to an
/// incident bundle is one AddAlertCallback(recorder->SloAlertHook()) —
/// examples/ingest_demo does exactly that. The pipeline must outlive the
/// watchdog the objectives are added to.
std::vector<obs::SloObjective> DefaultIngestObjectives(
    const IngestPipeline* pipeline, IngestSloThresholds thresholds = {});

}  // namespace esharp::ingest

#endif  // ESHARP_INGEST_INTROSPECT_H_
