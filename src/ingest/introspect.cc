#include "ingest/introspect.h"

namespace esharp::ingest {

std::vector<obs::SloObjective> DefaultIngestObjectives(
    const IngestPipeline* pipeline, IngestSloThresholds thresholds) {
  std::vector<obs::SloObjective> objectives;

  obs::SloObjective lag;
  lag.name = "ingest_lag";
  lag.kind = obs::SloObjective::Kind::kValue;
  lag.value = [pipeline] { return pipeline->lag_ms(); };
  lag.target = thresholds.lag_ms;
  objectives.push_back(std::move(lag));

  obs::SloObjective backlog;
  backlog.name = "ingest_backlog";
  backlog.kind = obs::SloObjective::Kind::kValue;
  backlog.value = [pipeline] {
    return static_cast<double>(pipeline->backlog());
  };
  backlog.target = thresholds.backlog;
  objectives.push_back(std::move(backlog));

  return objectives;
}

}  // namespace esharp::ingest
