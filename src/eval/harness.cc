#include "eval/harness.h"

namespace esharp::eval {

Result<std::vector<SetRun>> RunComparison(const core::ESharp& esharp,
                                          const std::vector<QuerySet>& sets,
                                          const HarnessOptions& options) {
  // Work on a copy of the system so we can relax the collection thresholds
  // without mutating the caller's configuration.
  core::ESharp collector = esharp;
  expert::DetectorOptions* detector_options =
      collector.mutable_detector()->mutable_options();
  detector_options->min_z_score = options.collect_min_z;
  detector_options->max_experts = options.max_stored_experts;

  std::vector<SetRun> out;
  out.reserve(sets.size());
  for (const QuerySet& set : sets) {
    SetRun run;
    run.name = set.name;
    run.runs.reserve(set.queries.size());
    for (const EvalQuery& q : set.queries) {
      QueryRun qr;
      qr.query = q;
      ESHARP_ASSIGN_OR_RETURN(qr.baseline,
                              collector.detector().FindExperts(q.text));
      core::QueryExpansion expansion = collector.Expand(q.text);
      qr.expansion_matched = expansion.matched;
      qr.expanded_terms = expansion.terms.size();
      ESHARP_ASSIGN_OR_RETURN(qr.esharp, collector.FindExperts(q.text));
      run.runs.push_back(std::move(qr));
    }
    out.push_back(std::move(run));
  }
  return out;
}

}  // namespace esharp::eval
