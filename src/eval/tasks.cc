#include "eval/tasks.h"

#include <unordered_set>

namespace esharp::eval {

std::vector<microblog::UserId> TeamDraftInterleave(
    const std::vector<expert::RankedExpert>& list_a,
    const std::vector<expert::RankedExpert>& list_b, size_t max_per_list,
    Rng* rng) {
  std::vector<microblog::UserId> out;
  std::unordered_set<microblog::UserId> taken;
  size_t ia = 0, ib = 0;
  size_t drafted_a = 0, drafted_b = 0;

  auto draft_from = [&](const std::vector<expert::RankedExpert>& list,
                        size_t* index, size_t* drafted) {
    while (*index < list.size() && *drafted < max_per_list) {
      microblog::UserId user = list[*index].user;
      ++*index;
      if (taken.insert(user).second) {
        out.push_back(user);
        ++*drafted;
        return true;
      }
    }
    return false;
  };

  for (;;) {
    bool a_can = ia < list_a.size() && drafted_a < max_per_list;
    bool b_can = ib < list_b.size() && drafted_b < max_per_list;
    if (!a_can && !b_can) break;
    bool a_first = b_can ? (a_can ? rng->Bernoulli(0.5) : false) : true;
    if (a_first) {
      if (!draft_from(list_a, &ia, &drafted_a)) {
        if (!draft_from(list_b, &ib, &drafted_b)) break;
      } else {
        draft_from(list_b, &ib, &drafted_b);
      }
    } else {
      if (!draft_from(list_b, &ib, &drafted_b)) {
        if (!draft_from(list_a, &ia, &drafted_a)) break;
      } else {
        draft_from(list_a, &ia, &drafted_a);
      }
    }
  }
  return out;
}

std::vector<CrowdTask> BuildCrowdTasks(
    const std::string& query, const std::vector<expert::RankedExpert>& baseline,
    const std::vector<expert::RankedExpert>& esharp,
    const TaskBuildOptions& options) {
  Rng rng(options.seed);
  std::vector<microblog::UserId> interleaved = TeamDraftInterleave(
      baseline, esharp, options.max_per_algorithm, &rng);

  std::vector<CrowdTask> tasks;
  size_t chunk = std::max<size_t>(1, options.chunk_size);
  for (size_t start = 0; start < interleaved.size(); start += chunk) {
    CrowdTask task;
    task.query = query;
    size_t end = std::min(interleaved.size(), start + chunk);
    task.accounts.assign(interleaved.begin() + static_cast<long>(start),
                         interleaved.begin() + static_cast<long>(end));
    // "we also randomized the order to prevent the position bias".
    rng.Shuffle(&task.accounts);
    tasks.push_back(std::move(task));
  }
  return tasks;
}

WorkerPool::WorkerPool(const PoolOptions& options) {
  Rng rng(options.seed);
  workers_.reserve(options.num_workers);
  for (size_t i = 0; i < options.num_workers; ++i) {
    Worker w;
    w.id = i;
    w.spammer = rng.Bernoulli(options.spammer_rate);
    w.accuracy = w.spammer
                     ? 0.5  // answers at chance
                     : options.honest_accuracy_min +
                           (options.honest_accuracy_max -
                            options.honest_accuracy_min) *
                               rng.NextDouble();
    workers_.push_back(w);
  }
}

std::vector<size_t> WorkerPool::ScreenWorkers(size_t gold_questions,
                                              size_t max_wrong,
                                              Rng* rng) const {
  std::vector<size_t> passed;
  for (const Worker& w : workers_) {
    size_t wrong = 0;
    for (size_t q = 0; q < gold_questions; ++q) {
      // Gold questions are trivial: honest workers answer at (close to)
      // their accuracy; spammers at chance.
      double p_correct = w.spammer ? 0.5 : std::min(0.99, w.accuracy + 0.1);
      if (!rng->Bernoulli(p_correct)) ++wrong;
    }
    if (wrong <= max_wrong) passed.push_back(w.id);
  }
  return passed;
}

}  // namespace esharp::eval
