#ifndef ESHARP_EVAL_CROWD_H_
#define ESHARP_EVAL_CROWD_H_

#include <vector>

#include "common/rng.h"
#include "expert/detector.h"
#include "microblog/corpus.h"
#include "querylog/universe.h"

namespace esharp::eval {

/// \brief Ground-truth relevance: a retrieved account is a real expert for
/// a query iff it is an expert account of the query's latent domain.
bool IsRelevant(const microblog::TweetCorpus& corpus, microblog::UserId user,
                querylog::DomainId query_domain);

/// \brief One judged result.
struct JudgedExpert {
  microblog::UserId user = 0;
  bool relevant_truth = false;
  /// Majority vote of the simulated workers ("spot non-experts": the vote
  /// is true when the majority did NOT flag the account).
  bool judged_relevant = false;
};

/// \brief Options of the simulated crowdsourcing study (§6.2.1).
struct CrowdOptions {
  /// Workers per expert (the paper uses 3 and majority-votes).
  size_t workers_per_expert = 3;
  /// Probability a worker correctly KEEPS a genuinely relevant expert.
  /// High: real experts are easy to recognize from their timeline.
  double accuracy_on_experts = 0.92;
  /// Probability a worker correctly FLAGS a non-expert. Lower: the paper's
  /// workers were asked to exclude only accounts from which they "could
  /// not get any objective information", so unverifiable accounts get the
  /// benefit of the doubt.
  double accuracy_on_nonexperts = 0.6;
  /// Probability a worker skips (abstains); abstentions reduce the vote
  /// count, ties break toward "relevant" (workers were asked to flag
  /// non-experts, so silence is consent).
  double skip_probability = 0.05;
  uint64_t seed = 1234;
};

/// \brief Simulated crowd: noisy workers + majority voting over ground
/// truth, mirroring the paper's protocol (interleaving and chunking do not
/// affect per-account votes, so they are handled by the harness, not here).
class SimulatedCrowd {
 public:
  explicit SimulatedCrowd(CrowdOptions options = {})
      : options_(options), rng_(options.seed) {}

  /// Judges one result list for a query with the given latent domain.
  std::vector<JudgedExpert> Judge(
      const microblog::TweetCorpus& corpus, querylog::DomainId query_domain,
      const std::vector<expert::RankedExpert>& experts);

  const CrowdOptions& options() const { return options_; }

 private:
  CrowdOptions options_;
  Rng rng_;
};

}  // namespace esharp::eval

#endif  // ESHARP_EVAL_CROWD_H_
