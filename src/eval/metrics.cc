#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

namespace esharp::eval {

namespace {
const std::vector<expert::RankedExpert>& SideOf(const QueryRun& run,
                                                Side side) {
  return side == Side::kBaseline ? run.baseline : run.esharp;
}
}  // namespace

std::vector<expert::RankedExpert> ApplyThreshold(
    const std::vector<expert::RankedExpert>& experts, double min_z,
    size_t cap) {
  std::vector<expert::RankedExpert> out;
  for (const expert::RankedExpert& e : experts) {
    if (e.score < min_z) continue;
    out.push_back(e);
    if (out.size() >= cap) break;
  }
  return out;
}

double AnsweredProportion(const SetRun& run, Side side, double min_z,
                          size_t cap) {
  if (run.runs.empty()) return 0;
  size_t answered = 0;
  for (const QueryRun& qr : run.runs) {
    if (!ApplyThreshold(SideOf(qr, side), min_z, cap).empty()) ++answered;
  }
  return static_cast<double>(answered) / static_cast<double>(run.runs.size());
}

std::vector<double> CumulativeCoverage(const SetRun& run, Side side,
                                       size_t max_n, double min_z,
                                       size_t cap) {
  std::vector<double> out(max_n + 1, 0.0);
  if (run.runs.empty()) return out;
  for (const QueryRun& qr : run.runs) {
    size_t n = ApplyThreshold(SideOf(qr, side), min_z, cap).size();
    for (size_t k = 0; k <= max_n; ++k) {
      if (n >= k) out[k] += 1.0;
    }
  }
  for (double& v : out) v = 100.0 * v / static_cast<double>(run.runs.size());
  return out;
}

double AvgExpertsPerQuery(const SetRun& run, Side side, double min_z,
                          size_t cap) {
  if (run.runs.empty()) return 0;
  size_t total = 0;
  for (const QueryRun& qr : run.runs) {
    total += ApplyThreshold(SideOf(qr, side), min_z, cap).size();
  }
  return static_cast<double>(total) / static_cast<double>(run.runs.size());
}

std::vector<ImpurityPoint> ImpurityCurve(
    const SetRun& run, Side side, const microblog::TweetCorpus& corpus,
    const std::vector<double>& thresholds, const CrowdOptions& crowd_options,
    size_t cap) {
  std::vector<ImpurityPoint> out;
  out.reserve(thresholds.size());
  for (double z : thresholds) {
    SimulatedCrowd crowd(crowd_options);  // fresh, deterministic judges
    size_t total_experts = 0;
    size_t flagged = 0;
    for (const QueryRun& qr : run.runs) {
      std::vector<expert::RankedExpert> kept =
          ApplyThreshold(SideOf(qr, side), z, cap);
      std::vector<JudgedExpert> judged =
          crowd.Judge(corpus, qr.query.domain, kept);
      total_experts += judged.size();
      for (const JudgedExpert& j : judged) {
        if (!j.judged_relevant) ++flagged;
      }
    }
    ImpurityPoint p;
    p.min_z = z;
    p.avg_experts = run.runs.empty()
                        ? 0
                        : static_cast<double>(total_experts) /
                              static_cast<double>(run.runs.size());
    p.impurity = total_experts == 0 ? 0
                                    : static_cast<double>(flagged) /
                                          static_cast<double>(total_experts);
    out.push_back(p);
  }
  return out;
}

ClusterQuality EvaluateClustering(const community::CommunityStore& store,
                                  const querylog::QueryLog& log) {
  // Ground-truth label of a term: its generator domain; unknown terms get
  // unique negative labels (their own singleton class).
  auto label_of = [&](const std::string& term,
                      int64_t fallback) -> int64_t {
    Result<uint32_t> qid = log.FindQuery(term);
    if (qid.ok()) {
      querylog::DomainId d = log.query(*qid).true_domain;
      if (d != querylog::kNoDomain) return static_cast<int64_t>(d);
    }
    return fallback;
  };

  // Contingency counts.
  std::map<std::pair<size_t, int64_t>, size_t> joint;
  std::map<size_t, size_t> by_cluster;
  std::map<int64_t, size_t> by_label;
  size_t total = 0;
  int64_t next_fallback = -1;
  for (size_t c = 0; c < store.num_communities(); ++c) {
    for (const std::string& term : store.community(c).terms) {
      int64_t label = label_of(term, next_fallback);
      if (label < 0) --next_fallback;
      joint[{c, label}] += 1;
      by_cluster[c] += 1;
      by_label[label] += 1;
      ++total;
    }
  }
  ClusterQuality q;
  if (total == 0) return q;

  // Purity.
  std::map<size_t, size_t> best_in_cluster;
  for (const auto& [key, count] : joint) {
    best_in_cluster[key.first] = std::max(best_in_cluster[key.first], count);
  }
  size_t agree = 0;
  for (const auto& [c, count] : best_in_cluster) agree += count;
  q.purity = static_cast<double>(agree) / static_cast<double>(total);

  // NMI (with natural logs; symmetric normalization by sqrt(Hc * Hl)).
  double n = static_cast<double>(total);
  double mi = 0;
  for (const auto& [key, count] : joint) {
    double pxy = static_cast<double>(count) / n;
    double px = static_cast<double>(by_cluster.at(key.first)) / n;
    double py = static_cast<double>(by_label.at(key.second)) / n;
    mi += pxy * std::log(pxy / (px * py));
  }
  double hc = 0, hl = 0;
  for (const auto& [c, count] : by_cluster) {
    double p = static_cast<double>(count) / n;
    hc -= p * std::log(p);
  }
  for (const auto& [l, count] : by_label) {
    double p = static_cast<double>(count) / n;
    hl -= p * std::log(p);
  }
  q.nmi = (hc <= 0 || hl <= 0) ? 1.0 : mi / std::sqrt(hc * hl);
  return q;
}

}  // namespace esharp::eval
