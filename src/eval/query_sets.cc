#include "eval/query_sets.h"

#include <algorithm>

namespace esharp::eval {

Result<std::vector<QuerySet>> BuildQuerySets(
    const querylog::TopicUniverse& universe, const querylog::QueryLog& log,
    const QuerySetOptions& options) {
  if (options.per_category == 0 || options.top_n == 0) {
    return Status::InvalidArgument("query set sizes must be positive");
  }

  std::vector<std::string> names =
      querylog::DefaultCategoryNames(universe.num_categories());

  // Category sets: most searched canonical terms per category.
  size_t category_sets = std::min<size_t>(universe.num_categories(), 5);
  std::vector<QuerySet> sets(category_sets);

  struct Scored {
    const querylog::QueryInfo* info;
  };
  std::vector<std::vector<const querylog::QueryInfo*>> per_category(
      category_sets);
  for (const querylog::QueryInfo& q : log.queries()) {
    if (q.true_domain == querylog::kNoDomain || q.is_variant) continue;
    uint32_t cat = universe.CategoryOf(q.true_domain);
    if (cat >= category_sets) continue;
    per_category[cat].push_back(&q);
  }
  for (size_t cat = 0; cat < category_sets; ++cat) {
    auto& pool = per_category[cat];
    std::sort(pool.begin(), pool.end(),
              [](const querylog::QueryInfo* a, const querylog::QueryInfo* b) {
                if (a->total_count != b->total_count) {
                  return a->total_count > b->total_count;
                }
                return a->text < b->text;
              });
    sets[cat].name = names[cat];
    for (size_t i = 0; i < pool.size() && i < options.per_category; ++i) {
      sets[cat].queries.push_back(EvalQuery{pool[i]->text, pool[i]->true_domain});
    }
  }

  // Top-N set: globally most searched queries, variants included.
  std::vector<const querylog::QueryInfo*> all;
  all.reserve(log.num_queries());
  for (const querylog::QueryInfo& q : log.queries()) all.push_back(&q);
  std::sort(all.begin(), all.end(),
            [](const querylog::QueryInfo* a, const querylog::QueryInfo* b) {
              if (a->total_count != b->total_count) {
                return a->total_count > b->total_count;
              }
              return a->text < b->text;
            });
  QuerySet top;
  top.name = "top" + std::to_string(options.top_n);
  for (size_t i = 0; i < all.size() && top.queries.size() < options.top_n;
       ++i) {
    top.queries.push_back(EvalQuery{all[i]->text, all[i]->true_domain});
  }
  sets.push_back(std::move(top));
  return sets;
}

}  // namespace esharp::eval
