#ifndef ESHARP_EVAL_TASKS_H_
#define ESHARP_EVAL_TASKS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "expert/detector.h"

namespace esharp::eval {

/// \brief One crowdsourcing unit: up to `chunk` accounts to review for one
/// query. Mirrors the paper's task design (§6.2.1): results of the two
/// algorithms are interleaved, chunked "into smaller sets of at most 6
/// experts" and order-randomized "to prevent the position bias".
struct CrowdTask {
  std::string query;
  std::vector<microblog::UserId> accounts;
};

/// \brief Options of task construction.
struct TaskBuildOptions {
  /// "we generated up to 15 experts per algorithm".
  size_t max_per_algorithm = 15;
  /// "sets of at most 6 experts".
  size_t chunk_size = 6;
  uint64_t seed = 7;
};

/// \brief Team-draft interleaving of two ranked lists: alternating drafts
/// pick their next-best not-yet-taken account, the coin deciding who
/// drafts first each round. Deduplicates accounts that both algorithms
/// returned. Deterministic in *rng.
std::vector<microblog::UserId> TeamDraftInterleave(
    const std::vector<expert::RankedExpert>& list_a,
    const std::vector<expert::RankedExpert>& list_b, size_t max_per_list,
    Rng* rng);

/// \brief Builds the review tasks for one query: interleave, chunk, shuffle
/// within each chunk.
std::vector<CrowdTask> BuildCrowdTasks(
    const std::string& query, const std::vector<expert::RankedExpert>& baseline,
    const std::vector<expert::RankedExpert>& esharp,
    const TaskBuildOptions& options = {});

/// \brief A pool of simulated crowd workers, some of them spammers who
/// answer randomly. The paper "filtered spammers with trivial preliminary
/// questions"; ScreenWorkers reproduces that gold-question gate.
class WorkerPool {
 public:
  struct Worker {
    size_t id = 0;
    double accuracy = 0.85;
    bool spammer = false;
  };

  struct PoolOptions {
    size_t num_workers = 64;  // the paper used 64 crowdworkers
    double spammer_rate = 0.15;
    double honest_accuracy_min = 0.75;
    double honest_accuracy_max = 0.95;
    uint64_t seed = 11;
  };

  explicit WorkerPool(const PoolOptions& options);

  const std::vector<Worker>& workers() const { return workers_; }

  /// The gold-question gate: each worker answers `gold_questions` trivial
  /// screening questions (honest workers pass with their accuracy, spammers
  /// answer at chance); workers missing more than `max_wrong` are excluded.
  /// Returns the ids of workers who passed.
  std::vector<size_t> ScreenWorkers(size_t gold_questions, size_t max_wrong,
                                    Rng* rng) const;

 private:
  std::vector<Worker> workers_;
};

}  // namespace esharp::eval

#endif  // ESHARP_EVAL_TASKS_H_
