#ifndef ESHARP_EVAL_HARNESS_H_
#define ESHARP_EVAL_HARNESS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "esharp/esharp.h"
#include "eval/query_sets.h"

namespace esharp::eval {

/// \brief Both algorithms' full result lists for one query. Lists are
/// collected un-thresholded (very low min z-score, generous cap) so metrics
/// can re-apply any threshold — that is how the Fig. 9/10 sweeps work.
struct QueryRun {
  EvalQuery query;
  std::vector<expert::RankedExpert> baseline;
  std::vector<expert::RankedExpert> esharp;
  /// Whether e# found a community for the query.
  bool expansion_matched = false;
  /// Number of terms e# searched (1 when unmatched).
  size_t expanded_terms = 1;
};

/// \brief All runs of one query set.
struct SetRun {
  std::string name;
  std::vector<QueryRun> runs;
};

/// \brief Options of the comparison harness.
struct HarnessOptions {
  /// Cap on stored experts per query per algorithm (paper generates up to
  /// 15 per algorithm; we keep more so threshold sweeps have headroom).
  size_t max_stored_experts = 50;
  /// Floor threshold used while collecting (effectively none).
  double collect_min_z = -1e9;
};

/// \brief Runs baseline (Pal & Counts) and e# over every query of every
/// set, storing un-thresholded ranked lists for the metric layer.
Result<std::vector<SetRun>> RunComparison(const core::ESharp& esharp,
                                          const std::vector<QuerySet>& sets,
                                          const HarnessOptions& options = {});

}  // namespace esharp::eval

#endif  // ESHARP_EVAL_HARNESS_H_
