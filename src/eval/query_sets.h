#ifndef ESHARP_EVAL_QUERY_SETS_H_
#define ESHARP_EVAL_QUERY_SETS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "querylog/log.h"
#include "querylog/universe.h"

namespace esharp::eval {

/// \brief One benchmark query with its ground-truth domain.
struct EvalQuery {
  std::string text;
  querylog::DomainId domain = querylog::kNoDomain;
};

/// \brief A named set of benchmark queries (one row of Table 1).
struct QuerySet {
  std::string name;
  std::vector<EvalQuery> queries;
};

/// \brief Options for query-set construction.
struct QuerySetOptions {
  /// Queries per category set (the paper uses the 100 most popular search
  /// terms per category).
  size_t per_category = 100;
  /// Size of the head-query set (the paper's "Top 250": the top queries of
  /// the search engine itself, variants included).
  size_t top_n = 250;
};

/// \brief Builds the paper's six query sets (Table 1 analogue) from the
/// simulated log: for each of the first five categories, the most searched
/// canonical terms of that category; plus a "top N" set of the globally
/// most searched queries of any kind — which, coming straight from the log,
/// includes surface variants, exactly why the paper sees its largest gain
/// there ("we trained e# on the search log from which the queries come
/// from, therefore we expected it to perform well").
Result<std::vector<QuerySet>> BuildQuerySets(
    const querylog::TopicUniverse& universe, const querylog::QueryLog& log,
    const QuerySetOptions& options = {});

}  // namespace esharp::eval

#endif  // ESHARP_EVAL_QUERY_SETS_H_
