#include "eval/crowd.h"

namespace esharp::eval {

bool IsRelevant(const microblog::TweetCorpus& corpus, microblog::UserId user,
                querylog::DomainId query_domain) {
  if (query_domain == querylog::kNoDomain) return false;
  const microblog::UserProfile& profile = corpus.user(user);
  return profile.kind == microblog::AccountKind::kExpert &&
         profile.domain == query_domain;
}

std::vector<JudgedExpert> SimulatedCrowd::Judge(
    const microblog::TweetCorpus& corpus, querylog::DomainId query_domain,
    const std::vector<expert::RankedExpert>& experts) {
  std::vector<JudgedExpert> out;
  out.reserve(experts.size());
  for (const expert::RankedExpert& e : experts) {
    JudgedExpert j;
    j.user = e.user;
    j.relevant_truth = IsRelevant(corpus, e.user, query_domain);
    size_t votes_non_expert = 0;
    size_t votes_cast = 0;
    for (size_t w = 0; w < options_.workers_per_expert; ++w) {
      if (rng_.Bernoulli(options_.skip_probability)) continue;
      ++votes_cast;
      bool correct = rng_.Bernoulli(j.relevant_truth
                                        ? options_.accuracy_on_experts
                                        : options_.accuracy_on_nonexperts);
      bool flags_non_expert = correct ? !j.relevant_truth : j.relevant_truth;
      if (flags_non_expert) ++votes_non_expert;
    }
    // Majority flags -> excluded; ties and abstention-heavy cases keep the
    // account (the task was to *exclude* clear non-experts).
    j.judged_relevant = !(votes_cast > 0 && 2 * votes_non_expert > votes_cast);
    out.push_back(j);
  }
  return out;
}

}  // namespace esharp::eval
