#ifndef ESHARP_EVAL_METRICS_H_
#define ESHARP_EVAL_METRICS_H_

#include <vector>

#include "community/store.h"
#include "eval/crowd.h"
#include "eval/harness.h"
#include "querylog/log.h"

namespace esharp::eval {

/// \brief Which algorithm's lists a metric reads.
enum class Side { kBaseline, kESharp };

/// \brief Applies the online tuning (min z-score threshold + result cap) to
/// a stored un-thresholded list.
std::vector<expert::RankedExpert> ApplyThreshold(
    const std::vector<expert::RankedExpert>& experts, double min_z,
    size_t cap);

/// \brief Table 8: proportion of queries with at least one expert after
/// thresholding.
double AnsweredProportion(const SetRun& run, Side side, double min_z = 0.0,
                          size_t cap = 15);

/// \brief Fig. 8: for n = 0..max_n, the percentage of queries with >= n
/// experts (index n of the returned vector).
std::vector<double> CumulativeCoverage(const SetRun& run, Side side,
                                       size_t max_n = 14, double min_z = 0.0,
                                       size_t cap = 15);

/// \brief Fig. 9: average experts per query at a threshold.
double AvgExpertsPerQuery(const SetRun& run, Side side, double min_z,
                          size_t cap = 15);

/// \brief One point of Fig. 10's size/quality trade-off.
struct ImpurityPoint {
  double avg_experts = 0;
  /// Proportion of retrieved accounts the crowd flagged as non-experts.
  double impurity = 0;
  double min_z = 0;
};

/// \brief Fig. 10: sweeps the z-score threshold and, at each point, judges
/// every retrieved account with the simulated crowd, reporting average
/// result size vs impurity. `thresholds` must be non-empty.
std::vector<ImpurityPoint> ImpurityCurve(
    const SetRun& run, Side side, const microblog::TweetCorpus& corpus,
    const std::vector<double>& thresholds, const CrowdOptions& crowd_options,
    size_t cap = 15);

/// \brief Extra (beyond the paper): clustering quality against the latent
/// domains, to sanity-check the offline stage.
struct ClusterQuality {
  /// Fraction of graph vertices whose community's majority domain matches
  /// their own.
  double purity = 0;
  /// Normalized mutual information between communities and true domains.
  double nmi = 0;
};

/// \brief Scores a community store against the generator's ground truth.
/// Queries not in the log's ground truth (noise) count as their own
/// singleton domains.
ClusterQuality EvaluateClustering(const community::CommunityStore& store,
                                  const querylog::QueryLog& log);

}  // namespace esharp::eval

#endif  // ESHARP_EVAL_METRICS_H_
