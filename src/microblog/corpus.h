#ifndef ESHARP_MICROBLOG_CORPUS_H_
#define ESHARP_MICROBLOG_CORPUS_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "querylog/universe.h"

namespace esharp::microblog {

/// \brief Account identifier.
using UserId = uint32_t;

/// \brief Interned token identifier: a dense index into the corpus token
/// dictionary, assigned in first-seen order at AddTweet time.
using TokenId = uint32_t;

/// \brief Sentinel for "token never seen in the corpus". A query containing
/// an unknown token matches no tweet (§3: a match needs every term present).
inline constexpr TokenId kNoToken = static_cast<TokenId>(-1);

/// \brief Ground-truth account archetypes of the simulation.
enum class AccountKind {
  kExpert,  // authoritative on exactly one latent domain
  kCasual,  // ordinary account, occasional topical chatter
  kSpam,    // keyword-stuffing account, topically meaningless
};

/// \brief A microblog account with the profile metadata the paper's example
/// tables display (screen name, description, verified flag, followers).
struct UserProfile {
  UserId id = 0;
  std::string screen_name;
  std::string description;
  bool verified = false;
  uint64_t followers = 0;
  AccountKind kind = AccountKind::kCasual;
  /// Latent domain of expertise (kNoDomain unless kind == kExpert).
  querylog::DomainId domain = querylog::kNoDomain;
};

/// \brief One micropost.
struct Tweet {
  uint32_t id = 0;
  UserId author = 0;
  /// Lower-cased, whitespace-tokenizable text (<= 140 chars by
  /// construction).
  std::string text;
  /// Users @-mentioned in the tweet.
  std::vector<UserId> mentions;
  /// How many times this tweet was retweeted.
  uint32_t retweet_count = 0;
};

/// \brief An indexed tweet corpus: the candidate-selection and feature
/// substrate of the Pal & Counts detector (§3).
///
/// The indexes cover exactly what the detector needs: a token inverted
/// index for "tweet matches query" (all terms present after lower-casing),
/// per-user tweet/mention/retweet totals for the TS/MI/RI denominators.
///
/// Tokens are interned: the dictionary maps each distinct token to a dense
/// TokenId and the postings live in per-id sorted arrays (tweet ids are
/// assigned densely in insertion order, so each postings array is sorted by
/// construction). The online stage resolves its expansion terms to TokenIds
/// once per request and intersects postings by id — no per-term re-hashing
/// or re-lowercasing on the hot path.
///
/// ## Generations and structural sharing
///
/// The streaming ingest path (src/ingest) publishes a fresh corpus
/// generation per delta batch. ExtendedCopy() forks a corpus in O(touched)
/// instead of O(corpus): tweet/user storage is chunked and full chunks are
/// shared between generations by shared_ptr; postings arrays are shared
/// per-token and cloned copy-on-write the first time a generation appends
/// to them; the token dictionary is a shared immutable base map plus a
/// small per-generation overlay that is compacted into a new base once it
/// outgrows an amortization bound. The parent becomes frozen: once forked
/// it must never be mutated again (readers of the published generation walk
/// the shared chunks/postings lock-free; AddUser/AddTweet assert).
///
/// A corpus built by replaying the same AddUser/AddTweet sequence — in one
/// generation or across any number of ExtendedCopy forks — is
/// observationally identical: same dense ids, same token ids (first-seen
/// order), same postings. That replay-equivalence is what the ingest
/// equivalence gate leans on.
class TweetCorpus {
 public:
  TweetCorpus() = default;

  /// Generations share storage; an accidental copy would create two
  /// corpora believing they own the same mutable tail chunks. Fork
  /// explicitly with ExtendedCopy() instead.
  TweetCorpus(const TweetCorpus&) = delete;
  TweetCorpus& operator=(const TweetCorpus&) = delete;
  TweetCorpus(TweetCorpus&&) = default;
  TweetCorpus& operator=(TweetCorpus&&) = default;

  /// Forks the next generation: shares all full chunks, postings arrays
  /// and the dictionary base with *this and marks *this frozen. Appends to
  /// the fork clone only what they touch. O(#tokens) pointer copies plus
  /// the per-user totals (plain arrays — every tweet may bump any user's
  /// mention total, so they don't chunk-share profitably).
  TweetCorpus ExtendedCopy() const;

  /// Reassembles a corpus from pre-built parts, as decoded from a binary
  /// snapshot (serving/snapshot_file.h): users and tweets in id order,
  /// `tokens` holding the dictionary strings in TokenId order, postings
  /// aligned to it, and the per-user totals. Only the token hash map is
  /// rebuilt; nothing is re-tokenized or re-counted. The caller guarantees
  /// the parts are mutually consistent (the snapshot loader's checksums
  /// cover this).
  static TweetCorpus FromSnapshotParts(
      std::vector<UserProfile> users, std::vector<Tweet> tweets,
      std::vector<std::string> tokens,
      std::vector<std::vector<uint32_t>> postings,
      std::vector<uint64_t> tweets_by_user,
      std::vector<uint64_t> mentions_of_user,
      std::vector<uint64_t> retweets_of_user);

  /// Dictionary strings in TokenId order (the inverse of FindToken), for
  /// snapshot serialization.
  std::vector<std::string> TokenStrings() const;

  /// Adds a user; ids must be added densely in order.
  void AddUser(UserProfile user);

  /// Adds a tweet (id assigned densely); updates all indexes.
  uint32_t AddTweet(UserId author, std::string text,
                    std::vector<UserId> mentions, uint32_t retweet_count);

  size_t num_users() const { return users_.size(); }
  size_t num_tweets() const { return tweets_.size(); }
  const UserProfile& user(UserId id) const { return users_.at(id); }
  const Tweet& tweet(uint32_t id) const { return tweets_.at(id); }

  /// Distinct tokens in the dictionary.
  size_t num_tokens() const { return postings_.size(); }

  /// Id of an already-normalized (lower-cased) token, kNoToken if unseen.
  TokenId FindToken(std::string_view normalized_token) const;

  /// Lower-cases and whitespace-splits `query`, resolving each token to its
  /// TokenId (kNoToken for unseen tokens). This is the once-per-request
  /// normalization the detector's pre-tokenized overloads build on.
  std::vector<TokenId> TokenizeQuery(std::string_view query) const;

  /// TokenizeQuery minus the lower-casing, for text that is already
  /// normalized (query-expansion terms, store terms): splits and interns
  /// only, so the hot path never re-lower-cases a term.
  std::vector<TokenId> TokenizeNormalized(std::string_view normalized) const;

  /// Postings (ascending tweet ids) of a token. `id` must be a valid id
  /// returned by FindToken/TokenizeQuery, not kNoToken. The reference is
  /// into storage shared across generations: stable for the lifetime of
  /// every generation that shares it.
  const std::vector<uint32_t>& Postings(TokenId id) const {
    return *postings_[id].list;
  }

  /// Document frequency of a token (postings length).
  size_t TokenDf(TokenId id) const { return postings_[id].list->size(); }

  /// Ids of tweets containing every token of `tokens` (whole-word match
  /// after lower-casing — the §3 predicate). Empty tokens match nothing.
  std::vector<uint32_t> MatchTweets(const std::vector<std::string>& tokens) const;

  /// Pre-tokenized fast path: same contract over interned ids. Any
  /// kNoToken entry (or an empty list) matches nothing. Intersection runs
  /// rarest-first (df order); each step picks galloping search when the
  /// next list dwarfs the running result (df ratio above the calibrated
  /// cutover) and a SIMD linear merge otherwise — galloping a
  /// near-equal-length list costs more in branchy binary searches than one
  /// vectorized sweep.
  std::vector<uint32_t> MatchTweets(const std::vector<TokenId>& tokens) const;

  /// Total tweets authored by a user.
  uint64_t TweetsByUser(UserId id) const { return tweets_by_user_[id]; }
  /// Total mentions of a user across the corpus.
  uint64_t MentionsOfUser(UserId id) const { return mentions_of_user_[id]; }
  /// Total retweets of a user's tweets.
  uint64_t RetweetsOfUser(UserId id) const { return retweets_of_user_[id]; }

  /// Approximate memory footprint (tweets, profiles, token index).
  uint64_t SizeBytes() const;

 private:
  /// Chunked copy-on-write storage: generations share full chunks by
  /// shared_ptr; the partial tail chunk is cloned the first time a
  /// generation appends (owner epoch mismatch). 4096 entries per chunk
  /// keeps the fork cost of a 10M-tweet corpus at ~2500 pointer copies.
  template <typename T>
  class CowChunks {
   public:
    static constexpr size_t kShift = 12;
    static constexpr size_t kChunkSize = size_t{1} << kShift;
    static constexpr size_t kMask = kChunkSize - 1;

    size_t size() const { return size_; }
    const T& at(size_t i) const {
      assert(i < size_);
      return (*chunks_[i >> kShift].data)[i & kMask];
    }

    void push_back(T value, uint64_t epoch) {
      if ((size_ & kMask) == 0) {
        Chunk chunk;
        chunk.data = std::make_shared<std::vector<T>>();
        chunk.data->reserve(kChunkSize);
        chunk.owner = epoch;
        chunks_.push_back(std::move(chunk));
      } else if (chunks_.back().owner != epoch) {
        // First append of this generation into a tail chunk inherited from
        // the parent: clone it so the parent's readers never see growth.
        Chunk& tail = chunks_.back();
        auto clone = std::make_shared<std::vector<T>>(*tail.data);
        clone->reserve(kChunkSize);
        tail.data = std::move(clone);
        tail.owner = epoch;
      }
      chunks_.back().data->push_back(std::move(value));
      ++size_;
    }

   private:
    struct Chunk {
      std::shared_ptr<std::vector<T>> data;
      /// Epoch of the generation allowed to append to this chunk in place.
      uint64_t owner = 0;
    };
    std::vector<Chunk> chunks_;
    size_t size_ = 0;
  };

  /// One token's postings, shared across generations until a generation
  /// appends to it (then cloned, stamped with that generation's epoch).
  struct PostingsEntry {
    std::shared_ptr<std::vector<uint32_t>> list;
    uint64_t owner = 0;
  };

  using TokenMap = std::unordered_map<std::string, TokenId>;

  /// Grows `list` for an in-place append by this generation, cloning first
  /// when the entry is shared with an ancestor generation.
  std::vector<uint32_t>& MutablePostings(TokenId id);

  CowChunks<UserProfile> users_;
  CowChunks<Tweet> tweets_;
  /// Token dictionary, two levels: an immutable base shared across
  /// generations (null for a fresh corpus) plus this generation's overlay
  /// of newly seen tokens. ExtendedCopy compacts the overlay into a new
  /// shared base once it exceeds max(1024, base/8) entries, so lookups
  /// stay ~two probes and compaction cost is amortized across publishes.
  std::shared_ptr<const TokenMap> base_tokens_;
  TokenMap overlay_tokens_;
  /// Postings by TokenId; ascending tweet ids by construction.
  std::vector<PostingsEntry> postings_;
  std::vector<uint64_t> tweets_by_user_;
  std::vector<uint64_t> mentions_of_user_;
  std::vector<uint64_t> retweets_of_user_;
  /// Generation stamp used by the COW ownership checks above.
  uint64_t epoch_ = 0;
  /// Set once ExtendedCopy has forked a child off this corpus: the child
  /// shares our storage, so further mutation here would corrupt it (and
  /// race with readers of the published generation).
  mutable bool frozen_ = false;
};

/// \brief The galloping-vs-linear-merge df-ratio cutover used by
/// TweetCorpus::MatchTweets. Exposed for the bench/micro_engine calibration
/// sweep only: not thread-safe against in-flight matches, so set it before
/// traffic. The default is the crossover measured by the sweep (DESIGN.md
/// "Postings intersection cutover").
size_t GetGallopDfRatio();
void SetGallopDfRatio(size_t ratio);

}  // namespace esharp::microblog

#endif  // ESHARP_MICROBLOG_CORPUS_H_
