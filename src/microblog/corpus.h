#ifndef ESHARP_MICROBLOG_CORPUS_H_
#define ESHARP_MICROBLOG_CORPUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "querylog/universe.h"

namespace esharp::microblog {

/// \brief Account identifier.
using UserId = uint32_t;

/// \brief Interned token identifier: a dense index into the corpus token
/// dictionary, assigned in first-seen order at AddTweet time.
using TokenId = uint32_t;

/// \brief Sentinel for "token never seen in the corpus". A query containing
/// an unknown token matches no tweet (§3: a match needs every term present).
inline constexpr TokenId kNoToken = static_cast<TokenId>(-1);

/// \brief Ground-truth account archetypes of the simulation.
enum class AccountKind {
  kExpert,  // authoritative on exactly one latent domain
  kCasual,  // ordinary account, occasional topical chatter
  kSpam,    // keyword-stuffing account, topically meaningless
};

/// \brief A microblog account with the profile metadata the paper's example
/// tables display (screen name, description, verified flag, followers).
struct UserProfile {
  UserId id = 0;
  std::string screen_name;
  std::string description;
  bool verified = false;
  uint64_t followers = 0;
  AccountKind kind = AccountKind::kCasual;
  /// Latent domain of expertise (kNoDomain unless kind == kExpert).
  querylog::DomainId domain = querylog::kNoDomain;
};

/// \brief One micropost.
struct Tweet {
  uint32_t id = 0;
  UserId author = 0;
  /// Lower-cased, whitespace-tokenizable text (<= 140 chars by
  /// construction).
  std::string text;
  /// Users @-mentioned in the tweet.
  std::vector<UserId> mentions;
  /// How many times this tweet was retweeted.
  uint32_t retweet_count = 0;
};

/// \brief An indexed tweet corpus: the candidate-selection and feature
/// substrate of the Pal & Counts detector (§3).
///
/// The indexes cover exactly what the detector needs: a token inverted
/// index for "tweet matches query" (all terms present after lower-casing),
/// per-user tweet/mention/retweet totals for the TS/MI/RI denominators.
///
/// Tokens are interned: the dictionary maps each distinct token to a dense
/// TokenId and the postings live in per-id sorted arrays (tweet ids are
/// assigned densely in insertion order, so each postings array is sorted by
/// construction). The online stage resolves its expansion terms to TokenIds
/// once per request and intersects postings by id — no per-term re-hashing
/// or re-lowercasing on the hot path.
class TweetCorpus {
 public:
  /// Reassembles a corpus from pre-built parts, as decoded from a binary
  /// snapshot (serving/snapshot_file.h): users and tweets in id order,
  /// `tokens` holding the dictionary strings in TokenId order, postings
  /// aligned to it, and the per-user totals. Only the token hash map is
  /// rebuilt; nothing is re-tokenized or re-counted. The caller guarantees
  /// the parts are mutually consistent (the snapshot loader's checksums
  /// cover this).
  static TweetCorpus FromSnapshotParts(
      std::vector<UserProfile> users, std::vector<Tweet> tweets,
      std::vector<std::string> tokens,
      std::vector<std::vector<uint32_t>> postings,
      std::vector<uint64_t> tweets_by_user,
      std::vector<uint64_t> mentions_of_user,
      std::vector<uint64_t> retweets_of_user);

  /// Dictionary strings in TokenId order (the inverse of FindToken), for
  /// snapshot serialization.
  std::vector<std::string> TokenStrings() const;

  /// Adds a user; ids must be added densely in order.
  void AddUser(UserProfile user);

  /// Adds a tweet (id assigned densely); updates all indexes.
  uint32_t AddTweet(UserId author, std::string text,
                    std::vector<UserId> mentions, uint32_t retweet_count);

  size_t num_users() const { return users_.size(); }
  size_t num_tweets() const { return tweets_.size(); }
  const UserProfile& user(UserId id) const { return users_[id]; }
  const std::vector<UserProfile>& users() const { return users_; }
  const Tweet& tweet(uint32_t id) const { return tweets_[id]; }
  const std::vector<Tweet>& tweets() const { return tweets_; }

  /// Distinct tokens in the dictionary.
  size_t num_tokens() const { return postings_.size(); }

  /// Id of an already-normalized (lower-cased) token, kNoToken if unseen.
  TokenId FindToken(std::string_view normalized_token) const;

  /// Lower-cases and whitespace-splits `query`, resolving each token to its
  /// TokenId (kNoToken for unseen tokens). This is the once-per-request
  /// normalization the detector's pre-tokenized overloads build on.
  std::vector<TokenId> TokenizeQuery(std::string_view query) const;

  /// TokenizeQuery minus the lower-casing, for text that is already
  /// normalized (query-expansion terms, store terms): splits and interns
  /// only, so the hot path never re-lower-cases a term.
  std::vector<TokenId> TokenizeNormalized(std::string_view normalized) const;

  /// Postings (ascending tweet ids) of a token. `id` must be a valid id
  /// returned by FindToken/TokenizeQuery, not kNoToken.
  const std::vector<uint32_t>& Postings(TokenId id) const {
    return postings_[id];
  }

  /// Document frequency of a token (postings length).
  size_t TokenDf(TokenId id) const { return postings_[id].size(); }

  /// Ids of tweets containing every token of `tokens` (whole-word match
  /// after lower-casing — the §3 predicate). Empty tokens match nothing.
  std::vector<uint32_t> MatchTweets(const std::vector<std::string>& tokens) const;

  /// Pre-tokenized fast path: same contract over interned ids. Any
  /// kNoToken entry (or an empty list) matches nothing. Intersection runs
  /// rarest-first (df order); each step picks galloping search when the
  /// next list dwarfs the running result (df ratio > 8) and a SIMD linear
  /// merge otherwise — galloping a near-equal-length list costs more in
  /// branchy binary searches than one vectorized sweep.
  std::vector<uint32_t> MatchTweets(const std::vector<TokenId>& tokens) const;

  /// Total tweets authored by a user.
  uint64_t TweetsByUser(UserId id) const { return tweets_by_user_[id]; }
  /// Total mentions of a user across the corpus.
  uint64_t MentionsOfUser(UserId id) const { return mentions_of_user_[id]; }
  /// Total retweets of a user's tweets.
  uint64_t RetweetsOfUser(UserId id) const { return retweets_of_user_[id]; }

  /// Approximate memory footprint (tweets, profiles, token index).
  uint64_t SizeBytes() const;

 private:
  std::vector<UserProfile> users_;
  std::vector<Tweet> tweets_;
  /// Token dictionary: normalized token -> dense TokenId.
  std::unordered_map<std::string, TokenId> token_ids_;
  /// Postings by TokenId; ascending tweet ids by construction.
  std::vector<std::vector<uint32_t>> postings_;
  std::vector<uint64_t> tweets_by_user_;
  std::vector<uint64_t> mentions_of_user_;
  std::vector<uint64_t> retweets_of_user_;
};

}  // namespace esharp::microblog

#endif  // ESHARP_MICROBLOG_CORPUS_H_
