#ifndef ESHARP_MICROBLOG_CORPUS_H_
#define ESHARP_MICROBLOG_CORPUS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "querylog/universe.h"

namespace esharp::microblog {

/// \brief Account identifier.
using UserId = uint32_t;

/// \brief Ground-truth account archetypes of the simulation.
enum class AccountKind {
  kExpert,  // authoritative on exactly one latent domain
  kCasual,  // ordinary account, occasional topical chatter
  kSpam,    // keyword-stuffing account, topically meaningless
};

/// \brief A microblog account with the profile metadata the paper's example
/// tables display (screen name, description, verified flag, followers).
struct UserProfile {
  UserId id = 0;
  std::string screen_name;
  std::string description;
  bool verified = false;
  uint64_t followers = 0;
  AccountKind kind = AccountKind::kCasual;
  /// Latent domain of expertise (kNoDomain unless kind == kExpert).
  querylog::DomainId domain = querylog::kNoDomain;
};

/// \brief One micropost.
struct Tweet {
  uint32_t id = 0;
  UserId author = 0;
  /// Lower-cased, whitespace-tokenizable text (<= 140 chars by
  /// construction).
  std::string text;
  /// Users @-mentioned in the tweet.
  std::vector<UserId> mentions;
  /// How many times this tweet was retweeted.
  uint32_t retweet_count = 0;
};

/// \brief An indexed tweet corpus: the candidate-selection and feature
/// substrate of the Pal & Counts detector (§3).
///
/// The indexes cover exactly what the detector needs: a token inverted
/// index for "tweet matches query" (all terms present after lower-casing),
/// per-user tweet/mention/retweet totals for the TS/MI/RI denominators.
class TweetCorpus {
 public:
  /// Adds a user; ids must be added densely in order.
  void AddUser(UserProfile user);

  /// Adds a tweet (id assigned densely); updates all indexes.
  uint32_t AddTweet(UserId author, std::string text,
                    std::vector<UserId> mentions, uint32_t retweet_count);

  size_t num_users() const { return users_.size(); }
  size_t num_tweets() const { return tweets_.size(); }
  const UserProfile& user(UserId id) const { return users_[id]; }
  const std::vector<UserProfile>& users() const { return users_; }
  const Tweet& tweet(uint32_t id) const { return tweets_[id]; }
  const std::vector<Tweet>& tweets() const { return tweets_; }

  /// Ids of tweets containing every token of `tokens` (whole-word match
  /// after lower-casing — the §3 predicate). Empty tokens match nothing.
  std::vector<uint32_t> MatchTweets(const std::vector<std::string>& tokens) const;

  /// Total tweets authored by a user.
  uint64_t TweetsByUser(UserId id) const { return tweets_by_user_[id]; }
  /// Total mentions of a user across the corpus.
  uint64_t MentionsOfUser(UserId id) const { return mentions_of_user_[id]; }
  /// Total retweets of a user's tweets.
  uint64_t RetweetsOfUser(UserId id) const { return retweets_of_user_[id]; }

  /// Approximate memory footprint.
  uint64_t SizeBytes() const;

 private:
  std::vector<UserProfile> users_;
  std::vector<Tweet> tweets_;
  std::unordered_map<std::string, std::vector<uint32_t>> token_index_;
  std::vector<uint64_t> tweets_by_user_;
  std::vector<uint64_t> mentions_of_user_;
  std::vector<uint64_t> retweets_of_user_;
};

}  // namespace esharp::microblog

#endif  // ESHARP_MICROBLOG_CORPUS_H_
