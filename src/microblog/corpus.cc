#include "microblog/corpus.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "common/strings.h"

namespace esharp::microblog {

void TweetCorpus::AddUser(UserProfile user) {
  assert(user.id == users_.size() && "user ids must be dense and in order");
  users_.push_back(std::move(user));
  tweets_by_user_.push_back(0);
  mentions_of_user_.push_back(0);
  retweets_of_user_.push_back(0);
}

uint32_t TweetCorpus::AddTweet(UserId author, std::string text,
                               std::vector<UserId> mentions,
                               uint32_t retweet_count) {
  assert(author < users_.size());
  uint32_t id = static_cast<uint32_t>(tweets_.size());
  Tweet t;
  t.id = id;
  t.author = author;
  t.text = ToLowerAscii(text);
  t.mentions = std::move(mentions);
  t.retweet_count = retweet_count;

  // Index unique tokens.
  std::vector<std::string> tokens = SplitWhitespace(t.text);
  std::unordered_set<std::string> unique(tokens.begin(), tokens.end());
  for (const std::string& tok : unique) {
    token_index_[tok].push_back(id);
  }

  ++tweets_by_user_[author];
  for (UserId m : t.mentions) {
    assert(m < users_.size());
    ++mentions_of_user_[m];
  }
  retweets_of_user_[author] += retweet_count;

  tweets_.push_back(std::move(t));
  return id;
}

std::vector<uint32_t> TweetCorpus::MatchTweets(
    const std::vector<std::string>& tokens) const {
  if (tokens.empty()) return {};
  // Intersect postings, rarest token first.
  std::vector<const std::vector<uint32_t>*> postings;
  postings.reserve(tokens.size());
  for (const std::string& tok : tokens) {
    auto it = token_index_.find(ToLowerAscii(tok));
    if (it == token_index_.end()) return {};
    postings.push_back(&it->second);
  }
  std::sort(postings.begin(), postings.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<uint32_t> result = *postings[0];
  for (size_t i = 1; i < postings.size() && !result.empty(); ++i) {
    std::vector<uint32_t> next;
    next.reserve(result.size());
    std::set_intersection(result.begin(), result.end(), postings[i]->begin(),
                          postings[i]->end(), std::back_inserter(next));
    result = std::move(next);
  }
  return result;
}

uint64_t TweetCorpus::SizeBytes() const {
  uint64_t total = 0;
  for (const Tweet& t : tweets_) {
    total += t.text.size() + t.mentions.size() * 4 + 16;
  }
  for (const UserProfile& u : users_) {
    total += u.screen_name.size() + u.description.size() + 24;
  }
  return total;
}

}  // namespace esharp::microblog
