#include "microblog/corpus.h"

#include <algorithm>
#include <cassert>

#include "common/simd.h"
#include "common/strings.h"

namespace esharp::microblog {

void TweetCorpus::AddUser(UserProfile user) {
  assert(!frozen_ && "corpus generation already forked; append to the fork");
  assert(user.id == users_.size() && "user ids must be dense and in order");
  users_.push_back(std::move(user), epoch_);
  tweets_by_user_.push_back(0);
  mentions_of_user_.push_back(0);
  retweets_of_user_.push_back(0);
}

std::vector<uint32_t>& TweetCorpus::MutablePostings(TokenId id) {
  PostingsEntry& entry = postings_[id];
  if (entry.owner != epoch_) {
    entry.list = std::make_shared<std::vector<uint32_t>>(*entry.list);
    entry.owner = epoch_;
  }
  return *entry.list;
}

uint32_t TweetCorpus::AddTweet(UserId author, std::string text,
                               std::vector<UserId> mentions,
                               uint32_t retweet_count) {
  assert(!frozen_ && "corpus generation already forked; append to the fork");
  assert(author < users_.size());
  uint32_t id = static_cast<uint32_t>(tweets_.size());
  Tweet t;
  t.id = id;
  t.author = author;
  t.text = ToLowerAscii(text);
  t.mentions = std::move(mentions);
  t.retweet_count = retweet_count;

  // Index unique tokens: intern each token and append this tweet id to its
  // postings. Ids are handed out densely in insertion order, so every
  // postings array stays sorted without ever re-sorting; duplicates within
  // one tweet are caught by the back() check (a token repeats within a
  // tweet only back-to-back in the postings sense — same tweet id).
  for (std::string& tok : SplitWhitespace(t.text)) {
    TokenId tid = kNoToken;
    auto overlay_it = overlay_tokens_.find(tok);
    if (overlay_it != overlay_tokens_.end()) {
      tid = overlay_it->second;
    } else if (base_tokens_) {
      auto base_it = base_tokens_->find(tok);
      if (base_it != base_tokens_->end()) tid = base_it->second;
    }
    if (tid == kNoToken) {
      tid = static_cast<TokenId>(postings_.size());
      overlay_tokens_.emplace(std::move(tok), tid);
      PostingsEntry entry;
      entry.list = std::make_shared<std::vector<uint32_t>>();
      entry.owner = epoch_;
      postings_.push_back(std::move(entry));
    }
    std::vector<uint32_t>& plist = MutablePostings(tid);
    if (plist.empty() || plist.back() != id) plist.push_back(id);
  }

  ++tweets_by_user_[author];
  for (UserId m : t.mentions) {
    assert(m < users_.size());
    ++mentions_of_user_[m];
  }
  retweets_of_user_[author] += retweet_count;

  tweets_.push_back(std::move(t), epoch_);
  return id;
}

TweetCorpus TweetCorpus::ExtendedCopy() const {
  frozen_ = true;
  TweetCorpus out;
  out.epoch_ = epoch_ + 1;
  out.users_ = users_;
  out.tweets_ = tweets_;
  out.postings_ = postings_;
  out.tweets_by_user_ = tweets_by_user_;
  out.mentions_of_user_ = mentions_of_user_;
  out.retweets_of_user_ = retweets_of_user_;
  const size_t base_size = base_tokens_ ? base_tokens_->size() : 0;
  if (overlay_tokens_.size() > std::max<size_t>(1024, base_size / 8)) {
    // Compact: fold the overlay into a fresh shared base. Linear in the
    // dictionary but amortized — the next compaction needs the overlay to
    // grow by an eighth of the (now larger) base again.
    auto merged = base_tokens_ ? std::make_shared<TokenMap>(*base_tokens_)
                               : std::make_shared<TokenMap>();
    merged->insert(overlay_tokens_.begin(), overlay_tokens_.end());
    out.base_tokens_ = std::move(merged);
  } else {
    out.base_tokens_ = base_tokens_;
    out.overlay_tokens_ = overlay_tokens_;
  }
  return out;
}

TokenId TweetCorpus::FindToken(std::string_view normalized_token) const {
  // Heterogeneous lookup needs C++20 transparent hashing; a transient
  // string keeps the dictionary simple and this is off the per-tweet path.
  const std::string key(normalized_token);
  auto it = overlay_tokens_.find(key);
  if (it != overlay_tokens_.end()) return it->second;
  if (base_tokens_) {
    auto bit = base_tokens_->find(key);
    if (bit != base_tokens_->end()) return bit->second;
  }
  return kNoToken;
}

std::vector<TokenId> TweetCorpus::TokenizeQuery(std::string_view query) const {
  return TokenizeNormalized(ToLowerAscii(query));
}

std::vector<TokenId> TweetCorpus::TokenizeNormalized(
    std::string_view normalized) const {
  std::vector<std::string> tokens = SplitWhitespace(normalized);
  std::vector<TokenId> ids;
  ids.reserve(tokens.size());
  for (const std::string& tok : tokens) ids.push_back(FindToken(tok));
  return ids;
}

namespace {

/// Intersects `current` (sorted, the running result) with `next` (sorted),
/// writing into `out`. Gallops through `next`: for each kept candidate the
/// probe doubles its stride from the last match position, so the cost is
/// O(|current| * log(gap)) instead of O(|current| + |next|) — a large win
/// when one selective term meets a head term's long postings.
void GallopIntersect(const std::vector<uint32_t>& current,
                     const std::vector<uint32_t>& next,
                     std::vector<uint32_t>* out) {
  out->clear();
  size_t pos = 0;  // cursor into next, only ever advances
  const size_t n = next.size();
  for (uint32_t value : current) {
    // Gallop: find the first stride where next[pos + stride] >= value.
    size_t stride = 1;
    while (pos + stride < n && next[pos + stride] < value) stride <<= 1;
    // Binary search in (pos + stride/2, min(pos + stride, n)].
    size_t lo = pos + (stride >> 1);
    size_t hi = std::min(pos + stride, n);
    const uint32_t* found =
        std::lower_bound(next.data() + lo, next.data() + hi, value);
    pos = static_cast<size_t>(found - next.data());
    if (pos >= n) break;
    if (next[pos] == value) {
      out->push_back(value);
      ++pos;
      if (pos >= n) break;
    }
  }
}

/// Galloping only pays when `next` dwarfs `current`: each kept candidate
/// costs a branchy doubling probe plus a binary search, which a linear
/// (SIMD) merge beats until the skipped gaps are well over an order of
/// magnitude wider than the merge's extra comparisons. The default sits
/// mid-plateau of bench/micro_engine's cutover sweep (latency is flat for
/// ratios 16-128 and ~10% worse at 8 — the vectorized merge amortizes
/// branchless compares far better than the old scalar estimate assumed;
/// DESIGN.md "Postings intersection cutover"); SetGallopDfRatio exists so
/// the sweep can re-measure on new hardware.
size_t g_gallop_df_ratio = 32;

/// Warms the cache lines of a postings array ahead of the intersection
/// sweep so the first pass doesn't stall on demand misses (matters most
/// right after a cold start, when postings were just mapped in).
void PreTouch(const std::vector<uint32_t>& list) {
  constexpr size_t kEntriesPerLine = 64 / sizeof(uint32_t);
  for (size_t i = 0; i < list.size(); i += kEntriesPerLine) {
    __builtin_prefetch(list.data() + i, /*rw=*/0, /*locality=*/3);
  }
}

}  // namespace

size_t GetGallopDfRatio() { return g_gallop_df_ratio; }
void SetGallopDfRatio(size_t ratio) {
  g_gallop_df_ratio = std::max<size_t>(1, ratio);
}

std::vector<uint32_t> TweetCorpus::MatchTweets(
    const std::vector<TokenId>& tokens) const {
  if (tokens.empty()) return {};
  std::vector<const std::vector<uint32_t>*> lists;
  lists.reserve(tokens.size());
  for (TokenId id : tokens) {
    if (id == kNoToken) return {};
    lists.push_back(postings_[id].list.get());
  }
  // Rarest first: the running result can only shrink, so starting from the
  // smallest df bounds every later intersection by it.
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  PreTouch(*lists[0]);
  std::vector<uint32_t> result = *lists[0];
  std::vector<uint32_t> scratch;
  scratch.reserve(result.size());
  for (size_t i = 1; i < lists.size() && !result.empty(); ++i) {
    const std::vector<uint32_t>& next = *lists[i];
    if (lists[i] == lists[i - 1]) continue;  // duplicate query token
    if (next.size() / result.size() > g_gallop_df_ratio) {
      GallopIntersect(result, next, &scratch);
    } else {
      scratch.resize(result.size());
      const size_t k = simd::IntersectSortedU32(
          result.data(), result.size(), next.data(), next.size(),
          scratch.data());
      scratch.resize(k);
    }
    std::swap(result, scratch);
  }
  return result;
}

std::vector<uint32_t> TweetCorpus::MatchTweets(
    const std::vector<std::string>& tokens) const {
  if (tokens.empty()) return {};
  std::vector<TokenId> ids;
  ids.reserve(tokens.size());
  for (const std::string& tok : tokens) {
    TokenId id = FindToken(ToLowerAscii(tok));
    if (id == kNoToken) return {};
    ids.push_back(id);
  }
  return MatchTweets(ids);
}

TweetCorpus TweetCorpus::FromSnapshotParts(
    std::vector<UserProfile> users, std::vector<Tweet> tweets,
    std::vector<std::string> tokens,
    std::vector<std::vector<uint32_t>> postings,
    std::vector<uint64_t> tweets_by_user,
    std::vector<uint64_t> mentions_of_user,
    std::vector<uint64_t> retweets_of_user) {
  assert(tokens.size() == postings.size());
  assert(users.size() == tweets_by_user.size());
  TweetCorpus c;
  for (UserProfile& u : users) c.users_.push_back(std::move(u), c.epoch_);
  for (Tweet& t : tweets) c.tweets_.push_back(std::move(t), c.epoch_);
  c.postings_.reserve(postings.size());
  for (std::vector<uint32_t>& plist : postings) {
    PostingsEntry entry;
    entry.list = std::make_shared<std::vector<uint32_t>>(std::move(plist));
    entry.owner = c.epoch_;
    c.postings_.push_back(std::move(entry));
  }
  c.tweets_by_user_ = std::move(tweets_by_user);
  c.mentions_of_user_ = std::move(mentions_of_user);
  c.retweets_of_user_ = std::move(retweets_of_user);
  auto base = std::make_shared<TokenMap>();
  base->reserve(tokens.size());
  for (size_t id = 0; id < tokens.size(); ++id) {
    base->emplace(std::move(tokens[id]), static_cast<TokenId>(id));
  }
  c.base_tokens_ = std::move(base);
  return c;
}

std::vector<std::string> TweetCorpus::TokenStrings() const {
  std::vector<std::string> tokens(postings_.size());
  if (base_tokens_) {
    for (const auto& [token, id] : *base_tokens_) tokens[id] = token;
  }
  for (const auto& [token, id] : overlay_tokens_) tokens[id] = token;
  return tokens;
}

uint64_t TweetCorpus::SizeBytes() const {
  uint64_t total = 0;
  for (size_t i = 0; i < tweets_.size(); ++i) {
    const Tweet& t = tweets_.at(i);
    total += t.text.size() + t.mentions.size() * 4 + 16;
  }
  for (size_t i = 0; i < users_.size(); ++i) {
    const UserProfile& u = users_.at(i);
    total += u.screen_name.size() + u.description.size() + 24;
  }
  auto count_tokens = [&](const TokenMap& map) {
    for (const auto& [token, id] : map) {
      total += token.size() + sizeof(TokenId) +
               postings_[id].list->size() * 4 + 16;
    }
  };
  if (base_tokens_) count_tokens(*base_tokens_);
  count_tokens(overlay_tokens_);
  return total;
}

}  // namespace esharp::microblog
