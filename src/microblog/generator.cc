#include "microblog/generator.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "querylog/variants.h"

namespace esharp::microblog {

namespace {

using querylog::DomainId;
using querylog::TopicDomain;
using querylog::TopicUniverse;

// Filler vocabulary for tweet bodies. Deliberately disjoint from topic
// terms so matching is controlled by the topical tokens alone.
const std::vector<std::string>& Fillers() {
  static const std::vector<std::string> kFillers = {
      "today",  "loving",  "great",   "watch",   "just",   "really",
      "this",   "amazing", "update",  "thoughts", "live",  "new",
      "what",   "happening", "check", "out",     "big",    "day",
      "finally", "again",  "best",    "wow",     "cant",   "wait",
  };
  return kFillers;
}

std::string MakeTweetText(const std::string& topical, Rng* rng) {
  const auto& fillers = Fillers();
  size_t n_fill = 3 + rng->Uniform(5);
  std::vector<std::string> words;
  if (!topical.empty()) words.push_back(topical);
  for (size_t i = 0; i < n_fill; ++i) {
    words.push_back(fillers[rng->Uniform(fillers.size())]);
  }
  // Insert the topical term at a random position for variety.
  rng->Shuffle(&words);
  std::string text = Join(words, " ");
  if (text.size() > 140) text.resize(140);
  return text;
}

std::string MakeScreenName(const std::string& head, AccountKind kind,
                           size_t serial, Rng* rng) {
  static const std::vector<std::string> kExpertSuffixes = {
      "News", "Daily", "Insider", "Guru", "Central", "Report", "HQ",
      "Fan", "Watch", "Live"};
  std::string compact;
  for (char c : head) {
    if (c != ' ') compact += c;
  }
  switch (kind) {
    case AccountKind::kExpert:
      return compact + kExpertSuffixes[rng->Uniform(kExpertSuffixes.size())] +
             (serial > 0 ? std::to_string(serial) : "");
    case AccountKind::kCasual:
      return StrFormat("user_%zu", serial);
    case AccountKind::kSpam:
      return StrFormat("bestdeals%zu", serial);
  }
  return compact;
}

std::string MakeDescription(const std::string& head, AccountKind kind,
                            Rng* rng) {
  static const std::vector<std::string> kExpertTemplates = {
      "All news about %s.",
      "Your source for everything %s.",
      "Covering %s since 2009.",
      "Huge %s fan. Opinions are my own.",
      "%s analysis, stats and rumors.",
  };
  static const std::vector<std::string> kCasualTemplates = {
      "Living life one day at a time.",
      "Coffee first.",
      "Dad. Dreamer. Doer.",
      "Somewhere between here and there.",
  };
  static const std::vector<std::string> kSpamTemplates = {
      "Best deals on the internet!!!",
      "Follow for follow.",
      "Click the link in bio.",
  };
  switch (kind) {
    case AccountKind::kExpert:
      return StrFormat(
          kExpertTemplates[rng->Uniform(kExpertTemplates.size())].c_str(),
          head.c_str());
    case AccountKind::kCasual:
      return kCasualTemplates[rng->Uniform(kCasualTemplates.size())];
    case AccountKind::kSpam:
      return kSpamTemplates[rng->Uniform(kSpamTemplates.size())];
  }
  return "";
}

}  // namespace

Result<TweetCorpus> GenerateCorpus(const TopicUniverse& universe,
                                   const CorpusOptions& options) {
  if (options.mean_experts_per_domain <= 0) {
    return Status::InvalidArgument("mean_experts_per_domain must be > 0");
  }
  Rng rng(options.seed);
  TweetCorpus corpus;

  // Popularity of a domain within its category, shared with the query-log
  // generator's Zipf shape: attention on the platform mirrors attention on
  // the search engine. Tail domains get few experts, little casual chatter
  // and no spam — which is why the baseline (and sometimes even e#) comes
  // up empty on tail queries, as in the paper's Table 8.
  const size_t dpc = universe.options().domains_per_category;
  ZipfSampler domain_zipf(std::max<size_t>(dpc, 1), 1.05);
  // Platform attention correlates with search attention but is not equal
  // to it: a lognormal jitter makes some heavily-searched topics nearly
  // absent from the microblog (the paper's baseline misses 2-36% of
  // *popular* queries precisely because search demand and tweet supply
  // diverge).
  std::vector<double> platform_weight(universe.num_domains());
  for (DomainId id = 0; id < universe.num_domains(); ++id) {
    double search_weight = domain_zipf.Pmf(id % dpc) / domain_zipf.Pmf(0);
    platform_weight[id] = search_weight * rng.LogNormal(0.0, 1.3);
  }
  auto domain_weight = [&](DomainId id) { return platform_weight[id]; };
  // Per-category categorical samplers over platform weights. The exponent
  // sharpens concentration: casual chatter and spam pile onto what is hot,
  // and genuinely dead topics get nothing at all — that is what makes even
  // e# miss a few queries, as the paper's Table 8 shows (e# tops out at
  // .86-.98, not 1.0).
  std::vector<std::vector<double>> category_weights(universe.num_categories());
  for (DomainId id = 0; id < universe.num_domains(); ++id) {
    category_weights[universe.CategoryOf(id)].push_back(
        std::pow(platform_weight[id], 1.35));
  }
  auto sample_domain = [&](Rng* r) -> DomainId {
    uint32_t category =
        static_cast<uint32_t>(r->Uniform(universe.num_categories()));
    size_t rank = r->Categorical(category_weights[category]);
    return static_cast<DomainId>(category * dpc + rank);
  };

  // ---- Accounts ----------------------------------------------------------
  // Experts first; remember them per domain for mention generation.
  std::vector<std::vector<UserId>> experts_by_domain(universe.num_domains());
  std::vector<double> influence;  // per user, drives retweets/followers

  UserId next_user = 0;
  for (const TopicDomain& dom : universe.domains()) {
    uint64_t n_experts = rng.Poisson(
        options.mean_experts_per_domain *
        std::min(3.0, 0.08 + 1.5 * domain_weight(dom.id)));
    for (uint64_t e = 0; e < n_experts; ++e) {
      UserProfile u;
      u.id = next_user++;
      u.kind = AccountKind::kExpert;
      u.domain = dom.id;
      double infl = rng.LogNormal(0.0, 1.0);  // median 1, heavy tail
      u.screen_name = MakeScreenName(dom.terms[0], u.kind, e, &rng);
      u.description = MakeDescription(dom.terms[0], u.kind, &rng);
      u.followers = static_cast<uint64_t>(300.0 * infl * rng.LogNormal(1.0, 1.2));
      u.verified = u.followers > 20000 && rng.Bernoulli(0.4);
      corpus.AddUser(u);
      experts_by_domain[dom.id].push_back(u.id);
      influence.push_back(infl);
    }
  }
  const UserId first_casual = next_user;
  for (size_t i = 0; i < options.casual_users; ++i) {
    UserProfile u;
    u.id = next_user++;
    u.kind = AccountKind::kCasual;
    u.screen_name = MakeScreenName("", u.kind, i, &rng);
    u.description = MakeDescription("", u.kind, &rng);
    u.followers = static_cast<uint64_t>(rng.LogNormal(4.0, 1.2));
    corpus.AddUser(u);
    influence.push_back(0.2 * rng.LogNormal(0.0, 0.5));
  }
  for (size_t i = 0; i < options.spam_users; ++i) {
    UserProfile u;
    u.id = next_user++;
    u.kind = AccountKind::kSpam;
    u.screen_name = MakeScreenName("", u.kind, i, &rng);
    u.description = MakeDescription("", u.kind, &rng);
    u.followers = static_cast<uint64_t>(rng.LogNormal(3.0, 1.5));
    corpus.AddUser(u);
    influence.push_back(0.05);
  }
  (void)first_casual;

  // ---- Expert tweets ------------------------------------------------------
  for (const TopicDomain& dom : universe.domains()) {
    for (UserId uid : experts_by_domain[dom.id]) {
      // The preferred-term subset: the crux of the recall problem. An
      // expert uses only a couple of the domain's terms, so a query on a
      // sibling term misses them without expansion.
      std::vector<std::string> preferred;
      size_t n_pref = 1 + rng.Uniform(std::min(options.max_preferred_terms,
                                               dom.terms.size()));
      std::vector<size_t> order(dom.terms.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      rng.Shuffle(&order);
      for (size_t i = 0; i < n_pref; ++i) preferred.push_back(dom.terms[order[i]]);

      double on_topic_rate =
          options.expert_on_topic_min +
          (options.expert_on_topic_max - options.expert_on_topic_min) *
              rng.NextDouble();
      uint64_t n_tweets = 1 + static_cast<uint64_t>(
          options.expert_tweets_mean * rng.LogNormal(0.0, 0.6));

      for (uint64_t t = 0; t < n_tweets; ++t) {
        bool on_topic = rng.Bernoulli(on_topic_rate);
        std::string topical;
        if (on_topic) {
          topical = preferred[rng.Uniform(preferred.size())];
          if (rng.Bernoulli(options.hashtag_probability)) {
            topical = querylog::ApplyVariant(topical,
                                             querylog::VariantKind::kHashtag,
                                             &rng);
          }
        }
        uint32_t retweets = 0;
        if (on_topic) {
          retweets = static_cast<uint32_t>(
              influence[uid] * rng.LogNormal(1.0, 1.0));
        } else if (rng.Bernoulli(0.2)) {
          retweets = static_cast<uint32_t>(rng.LogNormal(0.0, 0.7));
        }
        // Experts occasionally mention fellow domain experts.
        std::vector<UserId> mentions;
        if (on_topic && experts_by_domain[dom.id].size() > 1 &&
            rng.Bernoulli(0.15)) {
          UserId other;
          do {
            other = experts_by_domain[dom.id][rng.Uniform(
                experts_by_domain[dom.id].size())];
          } while (other == uid);
          mentions.push_back(other);
        }
        corpus.AddTweet(uid, MakeTweetText(topical, &rng), std::move(mentions),
                        retweets);
      }
    }
  }

  // ---- Casual tweets ------------------------------------------------------
  for (UserId uid = first_casual; uid < first_casual + options.casual_users;
       ++uid) {
    uint64_t n_tweets = 1 + static_cast<uint64_t>(
        options.casual_tweets_mean * rng.LogNormal(0.0, 0.8));
    for (uint64_t t = 0; t < n_tweets; ++t) {
      bool topical = rng.Bernoulli(0.5);
      std::string term;
      std::vector<UserId> mentions;
      if (topical) {
        // Casual attention is Zipfian over domains and head-heavy within a
        // domain: the tail sibling phrases are almost never tweeted, which
        // is the recall gap expansion closes.
        const TopicDomain& dom = universe.domain(sample_domain(&rng));
        term = rng.Bernoulli(0.7)
                   ? dom.terms[0]
                   : dom.terms[rng.Uniform(dom.terms.size())];
        // Mentions are how MI flows to experts: casual users @ the experts
        // of the domain they talk about, weighted toward influence.
        if (!experts_by_domain[dom.id].empty() &&
            rng.Bernoulli(options.mention_probability)) {
          const std::vector<UserId>& pool = experts_by_domain[dom.id];
          std::vector<double> weights;
          weights.reserve(pool.size());
          for (UserId e : pool) weights.push_back(influence[e] + 0.05);
          mentions.push_back(pool[rng.Categorical(weights)]);
        }
      }
      uint32_t retweets =
          rng.Bernoulli(0.1)
              ? static_cast<uint32_t>(rng.LogNormal(0.0, 0.5))
              : 0;
      corpus.AddTweet(uid, MakeTweetText(term, &rng), std::move(mentions),
                      retweets);
    }
  }

  // ---- Spam tweets --------------------------------------------------------
  const UserId first_spam =
      first_casual + static_cast<UserId>(options.casual_users);
  for (UserId uid = first_spam; uid < corpus.num_users(); ++uid) {
    uint64_t n_tweets = 1 + static_cast<uint64_t>(
        options.spam_tweets_mean * rng.LogNormal(0.0, 0.5));
    for (uint64_t t = 0; t < n_tweets; ++t) {
      // Keyword stuffing targets *popular* head terms — spam chases
      // traffic, so the tail stays spam-free.
      std::string stuffed;
      size_t n_terms = 1 + rng.Uniform(3);
      for (size_t k = 0; k < n_terms; ++k) {
        const TopicDomain& dom = universe.domain(sample_domain(&rng));
        if (!stuffed.empty()) stuffed += " ";
        stuffed += dom.terms[0];
      }
      corpus.AddTweet(uid, MakeTweetText(stuffed, &rng), {}, 0);
    }
  }

  return corpus;
}

}  // namespace esharp::microblog
