#ifndef ESHARP_MICROBLOG_GENERATOR_H_
#define ESHARP_MICROBLOG_GENERATOR_H_

#include "common/result.h"
#include "common/rng.h"
#include "microblog/corpus.h"
#include "querylog/universe.h"

namespace esharp::microblog {

/// \brief Options shaping the synthetic microblog population.
struct CorpusOptions {
  /// Experts per domain ~ Poisson(mean); some domains draw zero experts,
  /// which is one of the reasons neither algorithm answers 100% of queries
  /// (Table 8 tops out below 1.0 even for e#).
  double mean_experts_per_domain = 5.0;
  size_t casual_users = 1500;
  size_t spam_users = 120;
  /// Tweets per account ~ LogNormal around these means.
  double expert_tweets_mean = 60;
  double casual_tweets_mean = 10;
  double spam_tweets_mean = 90;
  /// Fraction of an expert's on-topic tweets (the TS signal).
  double expert_on_topic_min = 0.55;
  double expert_on_topic_max = 0.95;
  /// Max distinct canonical terms of their domain an expert actually uses.
  /// Keeping this low is what creates the recall gap the paper attacks:
  /// tweets are short, so an expert in "49ers" rarely also writes "49ers
  /// draft" in the same post — or ever.
  size_t max_preferred_terms = 2;
  /// Probability an expert tweet uses the hashtag surface form of a term.
  double hashtag_probability = 0.25;
  /// Probability a casual on-topic tweet @-mentions a domain expert.
  double mention_probability = 0.45;
  uint64_t seed = 99;
};

/// \brief Generates a population of accounts and a month of tweets over the
/// shared topic universe.
///
/// The corpus reproduces the structural facts the evaluation depends on:
/// experts concentrate on one domain but use only a small subset of its
/// terms; casual users touch many topics shallowly and generate the
/// mention/retweet graph; spam accounts stuff popular keywords. Profile
/// metadata (screen names, descriptions, verified flags, follower counts)
/// is synthesized so the paper's example tables (Tables 2-7) can be
/// rendered.
Result<TweetCorpus> GenerateCorpus(const querylog::TopicUniverse& universe,
                                   const CorpusOptions& options);

}  // namespace esharp::microblog

#endif  // ESHARP_MICROBLOG_GENERATOR_H_
