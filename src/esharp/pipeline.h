#ifndef ESHARP_ESHARP_PIPELINE_H_
#define ESHARP_ESHARP_PIPELINE_H_

#include <memory>

#include "common/result.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "community/store.h"
#include "expert/evidence_index.h"
#include "graph/builder.h"
#include "microblog/corpus.h"
#include "obs/trace.h"
#include "querylog/log.h"
#include "sqlengine/explain.h"

namespace esharp::core {

/// \brief Which implementation of the clustering phase to run.
enum class ClusteringBackend {
  /// Native in-memory implementation of the paper's parallel algorithm.
  kParallelNative,
  /// The same algorithm executed as relational plans on the SQL engine
  /// (Fig. 4) — slower, but it is the paper's actual deployment story.
  kSqlEngine,
};

/// \brief Options of the weekly offline job (§2: extraction + clustering).
struct OfflineOptions {
  /// Extraction stage knobs (§4.1).
  graph::SimilarityGraphOptions extraction;
  /// Clustering backend and iteration cap.
  ClusteringBackend backend = ClusteringBackend::kParallelNative;
  size_t max_iterations = 30;
  /// Parallelism: pool used by both stages when set.
  ThreadPool* pool = nullptr;
  size_t num_partitions = 8;
  /// kSqlEngine backend only: run clustering on the engine's vectorized
  /// columnar kernels (default) instead of the reference row kernels.
  /// Results are identical; see DESIGN.md "Columnar execution".
  bool sql_use_columnar = true;
  /// Optional Table 9 accounting.
  ResourceMeter* meter = nullptr;
  /// Optional warm start for the weekly refresh (§6.3: "The offline part of
  /// our system runs weekly"): seed clustering with last week's communities;
  /// queries still present start in their previous community, new queries
  /// start as singletons. Only honored by the native backend.
  const community::CommunityStore* previous_store = nullptr;
  /// Optional tracing of the whole job: an "offline_pipeline" span under
  /// `trace_parent` with "extract" / "cluster" / "index" children; the
  /// clustering backend adds per-iteration spans with modularity
  /// annotations.
  obs::Tracer* tracer = nullptr;
  const obs::Span* trace_parent = nullptr;
  /// When set (kSqlEngine backend only), the first clustering iteration's
  /// main plan is profiled into this EXPLAIN ANALYZE tree.
  sql::ExplainStats* explain = nullptr;
  /// When set, the index stage also precomputes the per-term evidence
  /// index over this corpus (the serving fast path's snapshot artifact;
  /// see expert/evidence_index.h) into
  /// OfflineArtifacts::evidence_index, parallelized on `pool`.
  const microblog::TweetCorpus* corpus = nullptr;
};

/// \brief Everything the offline stage produces.
struct OfflineArtifacts {
  /// The term-similarity graph (kept for Fig. 7-style inspection).
  graph::Graph similarity_graph;
  /// Detection trace (Fig. 5 series).
  std::vector<size_t> communities_per_iteration;
  std::vector<double> modularity_per_iteration;
  /// The indexed collection of expertise domains.
  community::CommunityStore store;
  /// Precomputed per-term candidate pools for the serving fast path; null
  /// unless OfflineOptions::corpus was set. shared_ptr because serving
  /// snapshots co-own it with (and hot-swap it alongside) the store.
  std::shared_ptr<const expert::TermEvidenceIndex> evidence_index;
};

/// \brief Runs the offline pipeline of Fig. 1 over a query log: extract the
/// similarity graph, detect communities, index the result.
Result<OfflineArtifacts> RunOfflinePipeline(const querylog::QueryLog& log,
                                            const OfflineOptions& options);

/// \brief Maps a previous week's communities onto a new graph: vertices
/// whose query string existed last week inherit their old community
/// (renamed to the smallest member vertex id, as the detection's rename
/// rule requires); unseen queries start as singletons.
std::vector<community::CommunityId> WarmStartFromStore(
    const graph::Graph& g, const community::CommunityStore& previous);

}  // namespace esharp::core

#endif  // ESHARP_ESHARP_PIPELINE_H_
