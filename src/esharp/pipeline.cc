#include "esharp/pipeline.h"

#include <unordered_map>

#include "common/strings.h"
#include "community/parallel_cd.h"
#include "community/sql_cd.h"
#include "obs/obs.h"

namespace esharp::core {

std::vector<community::CommunityId> WarmStartFromStore(
    const graph::Graph& g, const community::CommunityStore& previous) {
  const community::CommunityId kUnmapped =
      static_cast<community::CommunityId>(-1);
  // Old community index -> smallest new vertex id in that group.
  std::unordered_map<size_t, graph::VertexId> group_name;
  std::vector<size_t> old_group(g.num_vertices(), SIZE_MAX);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    auto found = previous.Find(g.label(v));
    if (!found.ok()) continue;
    size_t index = static_cast<size_t>((*found)->id);
    old_group[v] = index;
    auto it = group_name.find(index);
    if (it == group_name.end() || v < it->second) group_name[index] = v;
  }
  std::vector<community::CommunityId> assignment(g.num_vertices(), kUnmapped);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    assignment[v] = old_group[v] == SIZE_MAX
                        ? static_cast<community::CommunityId>(v)
                        : static_cast<community::CommunityId>(
                              group_name.at(old_group[v]));
  }
  return assignment;
}

Result<OfflineArtifacts> RunOfflinePipeline(const querylog::QueryLog& log,
                                            const OfflineOptions& options) {
  // /progressz registration: an error return unwinds through the handle and
  // marks the job "aborted"; the happy path finishes it "ok" below.
  std::unique_ptr<obs::JobProgressRegistry::Job> job =
      obs::JobProgressRegistry::Global().Start("offline_pipeline");
  ESHARP_SPAN(job_span, options.tracer, "offline_pipeline",
              options.trace_parent);
  ESHARP_SPAN_ANNOTATE(job_span, "warm_start",
                       options.previous_store != nullptr ? "true" : "false");
  ESHARP_SPAN_ANNOTATE(
      job_span, "backend",
      options.backend == ClusteringBackend::kSqlEngine ? "sql" : "parallel");

  // ---- Extraction (§4.1): click vectors -> similarity graph. -------------
  graph::SimilarityGraphOptions extraction = options.extraction;
  extraction.pool = options.pool;
  extraction.num_partitions = options.num_partitions;
  extraction.meter = options.meter;
  job->SetStage("extract");
  job->SetFraction(0.0);
  ESHARP_SPAN(extract_span, options.tracer, "extract", &job_span);
  ESHARP_ASSIGN_OR_RETURN(graph::Graph g, BuildSimilarityGraph(log, extraction));
  ESHARP_SPAN_ANNOTATE(extract_span, "vertices",
                       static_cast<int64_t>(g.num_vertices()));
  ESHARP_SPAN_ANNOTATE(extract_span, "edges",
                       static_cast<int64_t>(g.num_edges()));
  extract_span.End();

  if (g.num_vertices() == 0) {
    return Status::FailedPrecondition(
        "no query survived the min-count filter; lower min_query_count");
  }

  // ---- Clustering (§4.2): modularity maximization. ------------------------
  job->SetStage("cluster");
  job->SetFraction(0.3);
  ESHARP_SPAN(cluster_span, options.tracer, "cluster", &job_span);
  community::DetectionResult detection;
  std::vector<community::CommunityId> warm_start;
  switch (options.backend) {
    case ClusteringBackend::kParallelNative: {
      community::ParallelCdOptions cd;
      cd.max_iterations = options.max_iterations;
      cd.pool = options.pool;
      cd.num_partitions = options.num_partitions;
      cd.meter = options.meter;
      cd.tracer = options.tracer;
      cd.trace_parent = &cluster_span;
      if (options.previous_store != nullptr) {
        warm_start = WarmStartFromStore(g, *options.previous_store);
        cd.warm_start = &warm_start;
      }
      ESHARP_ASSIGN_OR_RETURN(detection,
                              DetectCommunitiesParallel(g, cd));
      break;
    }
    case ClusteringBackend::kSqlEngine: {
      community::SqlCdOptions cd;
      cd.max_iterations = options.max_iterations;
      cd.pool = options.pool;
      cd.num_partitions = options.num_partitions;
      cd.use_columnar = options.sql_use_columnar;
      cd.meter = options.meter;
      cd.tracer = options.tracer;
      cd.trace_parent = &cluster_span;
      cd.explain = options.explain;
      ESHARP_ASSIGN_OR_RETURN(detection, DetectCommunitiesSql(g, cd));
      break;
    }
  }
  ESHARP_SPAN_ANNOTATE(cluster_span, "iterations",
                       static_cast<int64_t>(detection.iterations));
  if (!detection.modularity_per_iteration.empty()) {
    ESHARP_SPAN_ANNOTATE(cluster_span, "modularity",
                         detection.modularity_per_iteration.back());
  }
  cluster_span.End();

  OfflineArtifacts artifacts;
  artifacts.communities_per_iteration = detection.communities_per_iteration;
  artifacts.modularity_per_iteration = detection.modularity_per_iteration;
  job->SetStage("index");
  job->SetFraction(0.9);
  ESHARP_SPAN(index_span, options.tracer, "index", &job_span);
  artifacts.store = community::CommunityStore::Build(g, detection.assignment);
  ESHARP_SPAN_ANNOTATE(index_span, "communities",
                       static_cast<int64_t>(artifacts.store.num_communities()));
  if (options.corpus != nullptr) {
    // Serving fast-path artifact: the expansion vocabulary is exactly the
    // store's term set, so every in-vocabulary term's candidate pool can be
    // collected now, once per weekly refresh, instead of once per request.
    std::vector<std::string> vocabulary;
    for (const community::Community& c : artifacts.store.communities()) {
      // Store terms are lower-cased already, but key the index through the
      // same normalization Expand applies so lookups can never miss on
      // case.
      for (const std::string& term : c.terms) {
        vocabulary.push_back(ToLowerAscii(term));
      }
    }
    expert::TermEvidenceIndex::BuildOptions evidence_options;
    evidence_options.pool = options.pool;
    artifacts.evidence_index =
        std::make_shared<const expert::TermEvidenceIndex>(
            expert::TermEvidenceIndex::Build(*options.corpus, vocabulary,
                                             evidence_options));
    ESHARP_SPAN_ANNOTATE(
        index_span, "evidence_terms",
        static_cast<int64_t>(artifacts.evidence_index->num_terms()));
  }
  index_span.End();
  artifacts.similarity_graph = std::move(g);
  job->SetFraction(1.0);
  job->Finish("ok");
  return artifacts;
}

}  // namespace esharp::core
