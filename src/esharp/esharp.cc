#include "esharp/esharp.h"

#include "common/strings.h"

namespace esharp::core {

QueryExpansion ESharp::Expand(const std::string& query) const {
  QueryExpansion expansion;
  std::string normalized = ToLowerAscii(query);
  expansion.terms.push_back(normalized);

  Result<const community::Community*> found = store_->Find(normalized);
  if (!found.ok() && options_.match_mode == MatchMode::kPhraseFallback) {
    found = store_->FindPhrase(normalized);
  }
  if (!found.ok()) return expansion;  // no community: degrade to baseline

  expansion.matched = true;
  for (const std::string& term : (*found)->terms) {
    if (expansion.terms.size() >= options_.max_expansion_terms) break;
    if (ToLowerAscii(term) == normalized) continue;  // already first
    expansion.terms.push_back(ToLowerAscii(term));
  }
  return expansion;
}

Result<std::vector<expert::RankedExpert>> ESharp::FindExperts(
    const std::string& query) const {
  QueryExpansion expansion = Expand(query);
  // "we run the expert search for all the related terms separately. We then
  // union the results and rank the experts." (§5)
  std::vector<std::vector<expert::CandidateEvidence>> pools;
  pools.reserve(expansion.terms.size());
  for (const std::string& term : expansion.terms) {
    pools.push_back(detector_.CollectCandidates(term));
  }
  std::vector<expert::CandidateEvidence> merged = MergeEvidence(pools);
  return detector_.RankCandidates(merged);
}

}  // namespace esharp::core
