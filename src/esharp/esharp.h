#ifndef ESHARP_ESHARP_ESHARP_H_
#define ESHARP_ESHARP_ESHARP_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/timer.h"
#include "community/store.h"
#include "expert/detector.h"

namespace esharp::core {

/// \brief Outcome of expanding one query against the community store.
struct QueryExpansion {
  /// True when a community matched the query (exact, lower-cased, §5).
  bool matched = false;
  /// All terms searched: the original query first, then community siblings.
  std::vector<std::string> terms;
};

/// \brief How queries are matched against the community store (§5).
enum class MatchMode {
  /// The paper's production setting: "purposely conservative" exact match
  /// of the whole lower-cased query string.
  kExactOnly,
  /// Extension: when the exact match misses, look for a community term
  /// containing the query tokens "exactly and in order" as a phrase.
  kPhraseFallback,
};

/// \brief Options of the online stage.
struct ESharpOptions {
  /// Cap on expansion terms per query (head communities can be large).
  size_t max_expansion_terms = 30;
  /// Query-to-community matching behavior.
  MatchMode match_mode = MatchMode::kExactOnly;
  /// Detector configuration (shared by baseline and expanded searches).
  expert::DetectorOptions detector;
};

/// \brief The e# system: a community store + a baseline detector, composed
/// per Fig. 1's online stage.
///
/// FindExperts matches the query to its expertise domain (exact match on
/// the lower-cased query string), runs the baseline expert search once per
/// domain term, unions the candidate pools, and ranks the union with the
/// usual z-scored features. When no community matches, e# degrades to the
/// plain baseline — by construction it never returns fewer candidates.
class ESharp {
 public:
  ESharp(const community::CommunityStore* store,
         const microblog::TweetCorpus* corpus, ESharpOptions options = {})
      : store_(store),
        detector_(corpus, options.detector),
        options_(options) {}

  /// Expands a query against the store (§5).
  QueryExpansion Expand(const std::string& query) const;

  /// Full e# search: expansion + union + ranking.
  Result<std::vector<expert::RankedExpert>> FindExperts(
      const std::string& query) const;

  /// The underlying baseline detector (for side-by-side comparisons).
  const expert::ExpertDetector& detector() const { return detector_; }
  expert::ExpertDetector* mutable_detector() { return &detector_; }

  const ESharpOptions& options() const { return options_; }

 private:
  const community::CommunityStore* store_;
  expert::ExpertDetector detector_;
  ESharpOptions options_;
};

}  // namespace esharp::core

#endif  // ESHARP_ESHARP_ESHARP_H_
