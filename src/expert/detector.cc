#include "expert/detector.h"

#include <algorithm>
#include <cmath>

#include "common/simd.h"
#include "common/stats.h"
#include "expert/cluster_filter.h"
#include "common/strings.h"

namespace esharp::expert {

namespace {

/// Dense touched-list scratch for candidate accumulation: slot_of_user maps
/// a user id to its index in the output pool, validated by an epoch stamp
/// so consecutive collections skip the O(num_users) clear. Thread-local —
/// each collecting thread (serving fan-out workers included) reuses its
/// own, sized to the largest corpus it has seen.
struct EvidenceScratch {
  std::vector<uint64_t> epoch_of_user;
  std::vector<uint32_t> slot_of_user;
  uint64_t epoch = 0;
};
thread_local EvidenceScratch tls_evidence_scratch;

/// Looks up (or creates) the accumulator slot of `user` in `out`.
inline CandidateEvidence* SlotFor(EvidenceScratch& scratch,
                                  std::vector<CandidateEvidence>* out,
                                  microblog::UserId user) {
  if (scratch.epoch_of_user[user] != scratch.epoch) {
    scratch.epoch_of_user[user] = scratch.epoch;
    scratch.slot_of_user[user] = static_cast<uint32_t>(out->size());
    out->emplace_back();
    out->back().user = user;
  }
  return &(*out)[scratch.slot_of_user[user]];
}

}  // namespace

std::optional<std::vector<CandidateEvidence>> ExpertDetector::CollectCandidates(
    const std::vector<microblog::TokenId>& tokens,
    CollectCancel* cancel) const {
  if (cancel != nullptr && cancel->Cancelled()) return std::nullopt;
  std::vector<uint32_t> matching = corpus_->MatchTweets(tokens);

  EvidenceScratch& scratch = tls_evidence_scratch;
  if (scratch.epoch_of_user.size() < corpus_->num_users()) {
    scratch.epoch_of_user.resize(corpus_->num_users(), 0);
    scratch.slot_of_user.resize(corpus_->num_users(), 0);
  }
  ++scratch.epoch;

  std::vector<CandidateEvidence> out;
  // Each matching tweet surfaces its author plus its mentions; candidates
  // repeat across tweets, so the match count is a generous upper bound and
  // a cheap way to avoid growth reallocations on head terms.
  out.reserve(std::min<size_t>(matching.size() + 1, corpus_->num_users()));
  size_t since_check = 0;
  for (uint32_t tid : matching) {
    if (cancel != nullptr && ++since_check >= kCollectCancelStride) {
      since_check = 0;
      if (cancel->Cancelled()) return std::nullopt;
    }
    const microblog::Tweet& t = corpus_->tweet(tid);
    CandidateEvidence* author = SlotFor(scratch, &out, t.author);
    author->is_author = true;
    author->tweets_on_topic += 1;
    author->retweets_on_topic += t.retweet_count;
    if (!t.mentions.empty()) author->conversational_on_topic += 1;
    if (t.text.find('#') != std::string::npos) author->hashtag_on_topic += 1;
    for (microblog::UserId m : t.mentions) {
      CandidateEvidence* mentioned = SlotFor(scratch, &out, m);
      mentioned->is_mentioned = true;
      mentioned->mentions_on_topic += 1;
    }
  }

  std::sort(out.begin(), out.end(),
            [](const CandidateEvidence& a, const CandidateEvidence& b) {
              return a.user < b.user;
            });
  return out;
}

std::vector<CandidateEvidence> ExpertDetector::CollectCandidates(
    const std::string& query) const {
  // One normalization pass: lower-case + tokenize + intern here, then the
  // TokenId path — the corpus never sees the raw strings again.
  return *CollectCandidates(corpus_->TokenizeQuery(query));
}

Result<std::vector<RankedExpert>> ExpertDetector::RankCandidates(
    const std::vector<CandidateEvidence>& candidates) const {
  if (candidates.empty()) return std::vector<RankedExpert>{};
  const double eps = options_.smoothing;
  if (eps <= 0) {
    return Status::InvalidArgument("smoothing must be positive");
  }

  // Features per §3: ratios of on-topic to total activity, log-transformed
  // ("the features appear to be log-normally distributed. Therefore, we
  // take their logarithm to obtain Gaussian distributions").
  const bool extended = options_.weight_conversation != 0 ||
                        options_.weight_hashtag != 0 ||
                        options_.weight_followers != 0;
  struct RawFeatures {
    double log_ts, log_mi, log_ri;
    double log_cs = 0, log_hs = 0, log_nf = 0;
  };
  std::vector<RawFeatures> feats(candidates.size());
  OnlineStats ts_stats, mi_stats, ri_stats, cs_stats, hs_stats, nf_stats;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const CandidateEvidence& c = candidates[i];
    double total_tweets =
        static_cast<double>(corpus_->TweetsByUser(c.user));
    double total_mentions =
        static_cast<double>(corpus_->MentionsOfUser(c.user));
    double total_retweets =
        static_cast<double>(corpus_->RetweetsOfUser(c.user));
    double ts = (static_cast<double>(c.tweets_on_topic) + eps) /
                (total_tweets + eps);
    double mi = (static_cast<double>(c.mentions_on_topic) + eps) /
                (total_mentions + eps);
    double ri = (static_cast<double>(c.retweets_on_topic) + eps) /
                (total_retweets + eps);
    feats[i] = RawFeatures{std::log(ts), std::log(mi), std::log(ri)};
    ts_stats.Add(feats[i].log_ts);
    mi_stats.Add(feats[i].log_mi);
    ri_stats.Add(feats[i].log_ri);
    if (extended) {
      double on_topic = static_cast<double>(c.tweets_on_topic);
      double cs = (static_cast<double>(c.conversational_on_topic) + eps) /
                  (on_topic + eps);
      double hs = (static_cast<double>(c.hashtag_on_topic) + eps) /
                  (on_topic + eps);
      double nf = std::log(
          1.0 + static_cast<double>(corpus_->user(c.user).followers));
      feats[i].log_cs = std::log(cs);
      feats[i].log_hs = std::log(hs);
      feats[i].log_nf = nf;  // already a log scale
      cs_stats.Add(feats[i].log_cs);
      hs_stats.Add(feats[i].log_hs);
      nf_stats.Add(feats[i].log_nf);
    }
  }

  std::vector<RankedExpert> ranked;
  ranked.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    RankedExpert e;
    e.user = candidates[i].user;
    e.z_topical_signal = ts_stats.ZScore(feats[i].log_ts);
    e.z_mention_impact = mi_stats.ZScore(feats[i].log_mi);
    e.z_retweet_impact = ri_stats.ZScore(feats[i].log_ri);
    e.score = options_.weight_topical_signal * e.z_topical_signal +
              options_.weight_mention_impact * e.z_mention_impact +
              options_.weight_retweet_impact * e.z_retweet_impact;
    if (extended) {
      e.z_conversation = cs_stats.ZScore(feats[i].log_cs);
      e.z_hashtag = hs_stats.ZScore(feats[i].log_hs);
      e.z_followers = nf_stats.ZScore(feats[i].log_nf);
      e.score += options_.weight_conversation * e.z_conversation +
                 options_.weight_hashtag * e.z_hashtag +
                 options_.weight_followers * e.z_followers;
    }
    ranked.push_back(e);
  }

  std::sort(ranked.begin(), ranked.end(),
            [](const RankedExpert& a, const RankedExpert& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.user < b.user;
            });

  if (options_.enable_cluster_filter) {
    ranked = ClusterFilter(ranked);
  }

  std::vector<RankedExpert> out;
  for (const RankedExpert& e : ranked) {
    if (e.score < options_.min_z_score) continue;
    out.push_back(e);
    if (out.size() >= options_.max_experts) break;
  }
  return out;
}

Result<std::vector<RankedExpert>> ExpertDetector::FindExperts(
    const std::string& query) const {
  return RankCandidates(CollectCandidates(query));
}

namespace {

inline void AccumulateInto(CandidateEvidence* acc, const CandidateEvidence& c) {
  acc->is_author = acc->is_author || c.is_author;
  acc->is_mentioned = acc->is_mentioned || c.is_mentioned;
  acc->tweets_on_topic += c.tweets_on_topic;
  acc->mentions_on_topic += c.mentions_on_topic;
  acc->retweets_on_topic += c.retweets_on_topic;
  acc->conversational_on_topic += c.conversational_on_topic;
  acc->hashtag_on_topic += c.hashtag_on_topic;
}

bool SortedUniqueByUser(const std::vector<CandidateEvidence>& list) {
  for (size_t i = 1; i < list.size(); ++i) {
    if (list[i - 1].user >= list[i].user) return false;
  }
  return true;
}

/// Restores the sorted-unique invariant for a list produced outside
/// CollectCandidates (sort, then combine equal users in place).
std::vector<CandidateEvidence> Normalize(
    const std::vector<CandidateEvidence>& list) {
  std::vector<CandidateEvidence> sorted = list;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const CandidateEvidence& a, const CandidateEvidence& b) {
                     return a.user < b.user;
                   });
  std::vector<CandidateEvidence> out;
  out.reserve(sorted.size());
  for (const CandidateEvidence& c : sorted) {
    if (!out.empty() && out.back().user == c.user) {
      AccumulateInto(&out.back(), c);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::vector<CandidateEvidence> MergeEvidenceViews(
    const std::vector<const std::vector<CandidateEvidence>*>& lists) {
  // Cursor per non-empty pool; every pool is sorted by user with unique
  // users, so the union is a k-way merge: repeatedly take the smallest
  // user across cursors and fold every pool holding it. k is the expansion
  // width (<= max_expansion_terms), so a linear min scan beats a heap.
  struct Cursor {
    const CandidateEvidence* it;
    const CandidateEvidence* end;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(lists.size());
  size_t total = 0;
  for (const std::vector<CandidateEvidence>* list : lists) {
    if (list == nullptr || list->empty()) continue;
    cursors.push_back({list->data(), list->data() + list->size()});
    total += list->size();
  }
  std::vector<CandidateEvidence> out;
  out.reserve(total);  // upper bound: no user shared across pools
  // Head users kept in a flat array alongside the cursors so the per-round
  // minimum is one vectorizable sweep (simd::MinU32) instead of a chain of
  // dependent compares through struct fields.
  std::vector<uint32_t> heads(cursors.size());
  for (size_t i = 0; i < cursors.size(); ++i) heads[i] = cursors[i].it->user;
  while (!cursors.empty()) {
    if (cursors.size() == 1) {
      // One surviving pool: its tail is already sorted with unique users,
      // so the remaining entries append verbatim — no per-round folding.
      out.insert(out.end(), cursors[0].it, cursors[0].end);
      break;
    }
    const microblog::UserId next_user =
        simd::MinU32(heads.data(), heads.size());
    out.emplace_back();
    CandidateEvidence* acc = &out.back();
    acc->user = next_user;
    for (size_t i = 0; i < cursors.size();) {
      Cursor& c = cursors[i];
      if (heads[i] == next_user) {
        AccumulateInto(acc, *c.it);
        ++c.it;
        if (c.it == c.end) {
          cursors[i] = cursors.back();
          cursors.pop_back();
          heads[i] = heads.back();
          heads.pop_back();
          continue;  // re-examine the swapped-in cursor at index i
        }
        heads[i] = c.it->user;
      }
      ++i;
    }
  }
  // `out` is ascending by construction: each round consumes the smallest
  // user across all cursors, so no final sort is needed.
  return out;
}

std::vector<CandidateEvidence> MergeEvidence(
    const std::vector<std::vector<CandidateEvidence>>& lists) {
  // Lists from CollectCandidates already satisfy the sorted-unique
  // invariant; normalize any caller-built list that does not, preserving
  // the historical any-order contract.
  std::vector<std::vector<CandidateEvidence>> normalized;
  normalized.reserve(lists.size());  // pointer stability for `views`
  std::vector<const std::vector<CandidateEvidence>*> views;
  views.reserve(lists.size());
  for (const std::vector<CandidateEvidence>& list : lists) {
    if (SortedUniqueByUser(list)) {
      views.push_back(&list);
    } else {
      normalized.push_back(Normalize(list));
      views.push_back(&normalized.back());
    }
  }
  return MergeEvidenceViews(views);
}

}  // namespace esharp::expert
