#include "expert/detector.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/stats.h"
#include "expert/cluster_filter.h"
#include "common/strings.h"

namespace esharp::expert {

std::vector<CandidateEvidence> ExpertDetector::CollectCandidates(
    const std::string& query) const {
  std::vector<std::string> tokens = SplitWhitespace(ToLowerAscii(query));
  std::vector<uint32_t> matching = corpus_->MatchTweets(tokens);

  std::unordered_map<microblog::UserId, CandidateEvidence> by_user;
  for (uint32_t tid : matching) {
    const microblog::Tweet& t = corpus_->tweet(tid);
    CandidateEvidence& author = by_user[t.author];
    author.user = t.author;
    author.is_author = true;
    author.tweets_on_topic += 1;
    author.retweets_on_topic += t.retweet_count;
    if (!t.mentions.empty()) author.conversational_on_topic += 1;
    if (t.text.find('#') != std::string::npos) author.hashtag_on_topic += 1;
    for (microblog::UserId m : t.mentions) {
      CandidateEvidence& mentioned = by_user[m];
      mentioned.user = m;
      mentioned.is_mentioned = true;
      mentioned.mentions_on_topic += 1;
    }
  }

  std::vector<CandidateEvidence> out;
  out.reserve(by_user.size());
  for (const auto& [uid, ev] : by_user) out.push_back(ev);
  std::sort(out.begin(), out.end(),
            [](const CandidateEvidence& a, const CandidateEvidence& b) {
              return a.user < b.user;
            });
  return out;
}

Result<std::vector<RankedExpert>> ExpertDetector::RankCandidates(
    const std::vector<CandidateEvidence>& candidates) const {
  if (candidates.empty()) return std::vector<RankedExpert>{};
  const double eps = options_.smoothing;
  if (eps <= 0) {
    return Status::InvalidArgument("smoothing must be positive");
  }

  // Features per §3: ratios of on-topic to total activity, log-transformed
  // ("the features appear to be log-normally distributed. Therefore, we
  // take their logarithm to obtain Gaussian distributions").
  const bool extended = options_.weight_conversation != 0 ||
                        options_.weight_hashtag != 0 ||
                        options_.weight_followers != 0;
  struct RawFeatures {
    double log_ts, log_mi, log_ri;
    double log_cs = 0, log_hs = 0, log_nf = 0;
  };
  std::vector<RawFeatures> feats(candidates.size());
  OnlineStats ts_stats, mi_stats, ri_stats, cs_stats, hs_stats, nf_stats;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const CandidateEvidence& c = candidates[i];
    double total_tweets =
        static_cast<double>(corpus_->TweetsByUser(c.user));
    double total_mentions =
        static_cast<double>(corpus_->MentionsOfUser(c.user));
    double total_retweets =
        static_cast<double>(corpus_->RetweetsOfUser(c.user));
    double ts = (static_cast<double>(c.tweets_on_topic) + eps) /
                (total_tweets + eps);
    double mi = (static_cast<double>(c.mentions_on_topic) + eps) /
                (total_mentions + eps);
    double ri = (static_cast<double>(c.retweets_on_topic) + eps) /
                (total_retweets + eps);
    feats[i] = RawFeatures{std::log(ts), std::log(mi), std::log(ri)};
    ts_stats.Add(feats[i].log_ts);
    mi_stats.Add(feats[i].log_mi);
    ri_stats.Add(feats[i].log_ri);
    if (extended) {
      double on_topic = static_cast<double>(c.tweets_on_topic);
      double cs = (static_cast<double>(c.conversational_on_topic) + eps) /
                  (on_topic + eps);
      double hs = (static_cast<double>(c.hashtag_on_topic) + eps) /
                  (on_topic + eps);
      double nf = std::log(
          1.0 + static_cast<double>(corpus_->user(c.user).followers));
      feats[i].log_cs = std::log(cs);
      feats[i].log_hs = std::log(hs);
      feats[i].log_nf = nf;  // already a log scale
      cs_stats.Add(feats[i].log_cs);
      hs_stats.Add(feats[i].log_hs);
      nf_stats.Add(feats[i].log_nf);
    }
  }

  std::vector<RankedExpert> ranked;
  ranked.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    RankedExpert e;
    e.user = candidates[i].user;
    e.z_topical_signal = ts_stats.ZScore(feats[i].log_ts);
    e.z_mention_impact = mi_stats.ZScore(feats[i].log_mi);
    e.z_retweet_impact = ri_stats.ZScore(feats[i].log_ri);
    e.score = options_.weight_topical_signal * e.z_topical_signal +
              options_.weight_mention_impact * e.z_mention_impact +
              options_.weight_retweet_impact * e.z_retweet_impact;
    if (extended) {
      e.z_conversation = cs_stats.ZScore(feats[i].log_cs);
      e.z_hashtag = hs_stats.ZScore(feats[i].log_hs);
      e.z_followers = nf_stats.ZScore(feats[i].log_nf);
      e.score += options_.weight_conversation * e.z_conversation +
                 options_.weight_hashtag * e.z_hashtag +
                 options_.weight_followers * e.z_followers;
    }
    ranked.push_back(e);
  }

  std::sort(ranked.begin(), ranked.end(),
            [](const RankedExpert& a, const RankedExpert& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.user < b.user;
            });

  if (options_.enable_cluster_filter) {
    ranked = ClusterFilter(ranked);
  }

  std::vector<RankedExpert> out;
  for (const RankedExpert& e : ranked) {
    if (e.score < options_.min_z_score) continue;
    out.push_back(e);
    if (out.size() >= options_.max_experts) break;
  }
  return out;
}

Result<std::vector<RankedExpert>> ExpertDetector::FindExperts(
    const std::string& query) const {
  return RankCandidates(CollectCandidates(query));
}

std::vector<CandidateEvidence> MergeEvidence(
    const std::vector<std::vector<CandidateEvidence>>& lists) {
  std::unordered_map<microblog::UserId, CandidateEvidence> by_user;
  for (const auto& list : lists) {
    for (const CandidateEvidence& c : list) {
      CandidateEvidence& acc = by_user[c.user];
      acc.user = c.user;
      acc.is_author = acc.is_author || c.is_author;
      acc.is_mentioned = acc.is_mentioned || c.is_mentioned;
      acc.tweets_on_topic += c.tweets_on_topic;
      acc.mentions_on_topic += c.mentions_on_topic;
      acc.retweets_on_topic += c.retweets_on_topic;
      acc.conversational_on_topic += c.conversational_on_topic;
      acc.hashtag_on_topic += c.hashtag_on_topic;
    }
  }
  std::vector<CandidateEvidence> out;
  out.reserve(by_user.size());
  for (const auto& [uid, ev] : by_user) out.push_back(ev);
  std::sort(out.begin(), out.end(),
            [](const CandidateEvidence& a, const CandidateEvidence& b) {
              return a.user < b.user;
            });
  return out;
}

}  // namespace esharp::expert
