#include "expert/cluster_filter.h"

#include <algorithm>
#include <cmath>
#include <limits>


namespace esharp::expert {

namespace {

struct Point {
  double x[3];
};

double Distance2(const Point& a, const Point& b) {
  double d = 0;
  for (int i = 0; i < 3; ++i) d += (a.x[i] - b.x[i]) * (a.x[i] - b.x[i]);
  return d;
}

}  // namespace

std::vector<RankedExpert> ClusterFilter(const std::vector<RankedExpert>& ranked,
                                        const ClusterFilterOptions& options) {
  size_t k = std::max<size_t>(1, options.num_clusters);
  if (ranked.size() <= k) return ranked;  // nothing to separate

  std::vector<Point> points(ranked.size());
  for (size_t i = 0; i < ranked.size(); ++i) {
    points[i] = Point{{ranked[i].z_topical_signal, ranked[i].z_mention_impact,
                       ranked[i].z_retweet_impact}};
  }

  // k-means++-style seeding: first center is the top-ranked candidate, each
  // further center the point farthest from its nearest center
  // (deterministic).
  std::vector<Point> centers = {points[0]};
  while (centers.size() < k) {
    size_t best = 0;
    double best_d = -1;
    for (size_t i = 0; i < points.size(); ++i) {
      double nearest = std::numeric_limits<double>::max();
      for (const Point& c : centers) {
        nearest = std::min(nearest, Distance2(points[i], c));
      }
      if (nearest > best_d) {
        best_d = nearest;
        best = i;
      }
    }
    centers.push_back(points[best]);
  }

  // Lloyd iterations.
  std::vector<size_t> assign(points.size(), 0);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    bool moved = false;
    for (size_t i = 0; i < points.size(); ++i) {
      size_t best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (size_t c = 0; c < centers.size(); ++c) {
        double d = Distance2(points[i], centers[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (assign[i] != best) {
        assign[i] = best;
        moved = true;
      }
    }
    if (!moved) break;
    // Recompute centers.
    std::vector<Point> sums(centers.size(), Point{{0, 0, 0}});
    std::vector<size_t> counts(centers.size(), 0);
    for (size_t i = 0; i < points.size(); ++i) {
      for (int d = 0; d < 3; ++d) sums[assign[i]].x[d] += points[i].x[d];
      ++counts[assign[i]];
    }
    for (size_t c = 0; c < centers.size(); ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its center
      for (int d = 0; d < 3; ++d) {
        centers[c].x[d] = sums[c].x[d] / static_cast<double>(counts[c]);
      }
    }
  }

  // Keep the cluster with the highest mean aggregate score.
  std::vector<double> score_sum(centers.size(), 0);
  std::vector<size_t> cluster_size(centers.size(), 0);
  for (size_t i = 0; i < ranked.size(); ++i) {
    score_sum[assign[i]] += ranked[i].score;
    ++cluster_size[assign[i]];
  }
  size_t authority = 0;
  double best_mean = -std::numeric_limits<double>::max();
  for (size_t c = 0; c < centers.size(); ++c) {
    if (cluster_size[c] == 0) continue;
    double mean = score_sum[c] / static_cast<double>(cluster_size[c]);
    if (mean > best_mean) {
      best_mean = mean;
      authority = c;
    }
  }

  std::vector<RankedExpert> out;
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (assign[i] == authority) out.push_back(ranked[i]);
  }
  return out;
}

}  // namespace esharp::expert
