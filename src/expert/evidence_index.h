#ifndef ESHARP_EXPERT_EVIDENCE_INDEX_H_
#define ESHARP_EXPERT_EVIDENCE_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "expert/detector.h"
#include "microblog/corpus.h"

namespace esharp::expert {

/// \brief Snapshot-time per-term evidence index: the candidate pool of
/// every expansion-vocabulary term, precomputed once when a serving
/// generation is built.
///
/// The online stage's expansion vocabulary is closed per snapshot — it is
/// exactly the community store's term set (§5 expands a query into its
/// community siblings; nothing else). The corpus is immutable while a
/// generation serves, so each term's CandidateEvidence pool is a pure
/// function of (corpus, term) and can be computed offline: online detection
/// for an in-vocabulary term becomes a hash lookup plus its share of a
/// k-way sorted merge instead of a postings intersection plus per-tweet
/// accumulation. Ad-hoc terms (the raw query when no community matches,
/// phrase-fallback synthesized terms) are not in the vocabulary and take
/// the live collection path.
///
/// Pools are built by the same CollectCandidates code the live path runs,
/// so the two paths are bit-identical by construction; the `online`-labeled
/// test suite enforces this across randomized corpora.
///
/// Immutable after Build; safe for concurrent readers. Hot-swapped with the
/// snapshot that owns it.
class TermEvidenceIndex {
 public:
  struct BuildOptions {
    /// Parallelizes the per-term collection across the pool when set (the
    /// offline pipeline's worker pool); terms are independent, so the
    /// result is identical either way.
    ThreadPool* pool = nullptr;
  };

  TermEvidenceIndex() = default;

  /// Builds the index over `vocabulary` (terms as they leave query
  /// expansion: lower-cased). Duplicate terms are indexed once.
  static TermEvidenceIndex Build(const microblog::TweetCorpus& corpus,
                                 const std::vector<std::string>& vocabulary,
                                 const BuildOptions& options);
  static TermEvidenceIndex Build(const microblog::TweetCorpus& corpus,
                                 const std::vector<std::string>& vocabulary) {
    return Build(corpus, vocabulary, BuildOptions());
  }

  /// Reassembles an index from pre-built parts, as decoded from a binary
  /// snapshot: `terms[i]` owns `pools[i]`. Skips CollectCandidates entirely
  /// — this is the zero-parse cold-start path, valid because pools are a
  /// pure function of the (immutable) corpus and vocabulary that were
  /// saved together with them.
  static TermEvidenceIndex FromSnapshotParts(
      std::vector<std::string> terms,
      std::vector<std::vector<CandidateEvidence>> pools);

  /// Terms in pool order (the inverse of Find), for snapshot
  /// serialization. pools(i) below is the pool of term i.
  std::vector<std::string> TermStrings() const;

  /// Pool by dense index (aligned with TermStrings).
  const std::vector<CandidateEvidence>& pool(size_t i) const {
    return pools_[i];
  }
  size_t num_pools() const { return pools_.size(); }

  /// The precomputed pool of a normalized (lower-cased) term, or nullptr
  /// when the term is outside this snapshot's vocabulary. The pointer
  /// aliases index storage: valid while the index (in serving, the
  /// snapshot holding it) is alive.
  const std::vector<CandidateEvidence>* Find(
      const std::string& normalized_term) const {
    auto it = term_to_pool_.find(normalized_term);
    return it == term_to_pool_.end() ? nullptr : &pools_[it->second];
  }

  size_t num_terms() const { return term_to_pool_.size(); }

  /// Total precomputed evidence entries across all pools.
  size_t num_entries() const;

  /// Approximate memory footprint.
  uint64_t SizeBytes() const;

 private:
  std::unordered_map<std::string, size_t> term_to_pool_;
  std::vector<std::vector<CandidateEvidence>> pools_;
};

}  // namespace esharp::expert

#endif  // ESHARP_EXPERT_EVIDENCE_INDEX_H_
