#ifndef ESHARP_EXPERT_EVIDENCE_INDEX_H_
#define ESHARP_EXPERT_EVIDENCE_INDEX_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/thread_pool.h"
#include "expert/detector.h"
#include "microblog/corpus.h"

namespace esharp::expert {

/// \brief Snapshot-time per-term evidence index: the candidate pool of
/// every expansion-vocabulary term, precomputed once when a serving
/// generation is built.
///
/// The online stage's expansion vocabulary is closed per snapshot — it is
/// exactly the community store's term set (§5 expands a query into its
/// community siblings; nothing else). The corpus is immutable while a
/// generation serves, so each term's CandidateEvidence pool is a pure
/// function of (corpus, term) and can be computed offline: online detection
/// for an in-vocabulary term becomes a hash lookup plus its share of a
/// k-way sorted merge instead of a postings intersection plus per-tweet
/// accumulation. Ad-hoc terms (the raw query when no community matches,
/// phrase-fallback synthesized terms) are not in the vocabulary and take
/// the live collection path.
///
/// Pools are built by the same CollectCandidates code the live path runs,
/// so the two paths are bit-identical by construction; the `online`-labeled
/// test suite enforces this across randomized corpora.
///
/// Pools are held by shared_ptr so the streaming ingest path (src/ingest)
/// can publish delta generations: Extend() shares every pool whose term was
/// untouched by the batch with the previous generation's index and
/// re-collects only the dirty ones. A pool is a pure function of (corpus,
/// term) and a new tweet only changes the pools of terms it matches, so
/// the shared pools are bitwise the ones a from-scratch Build over the
/// extended corpus would produce — the ingest equivalence gate enforces
/// exactly that.
///
/// Immutable after Build/Extend; safe for concurrent readers. Hot-swapped
/// with the snapshot that owns it.
class TermEvidenceIndex {
 public:
  using Pool = std::vector<CandidateEvidence>;

  struct BuildOptions {
    /// Parallelizes the per-term collection across the pool when set (the
    /// offline pipeline's worker pool); terms are independent, so the
    /// result is identical either way.
    ThreadPool* pool = nullptr;
  };

  /// Pool-reuse accounting of one Extend call, for the ingest gauges.
  struct ExtendStats {
    size_t reused = 0;
    size_t rebuilt = 0;
  };

  TermEvidenceIndex() = default;

  /// Builds the index over `vocabulary` (terms as they leave query
  /// expansion: lower-cased). Duplicate terms are indexed once.
  static TermEvidenceIndex Build(const microblog::TweetCorpus& corpus,
                                 const std::vector<std::string>& vocabulary,
                                 const BuildOptions& options);
  static TermEvidenceIndex Build(const microblog::TweetCorpus& corpus,
                                 const std::vector<std::string>& vocabulary) {
    return Build(corpus, vocabulary, BuildOptions());
  }

  /// Delta build for the streaming path: indexes `vocabulary` over the
  /// (extended) `corpus`, sharing the previous generation's pool for every
  /// term that is present in `previous` and not in `dirty_terms`, and
  /// re-collecting the rest. `previous` may be null (degenerates to
  /// Build). With `dirty_terms` = the terms matched by the batch's new
  /// tweets, the result is bit-identical to Build(corpus, vocabulary) —
  /// a pool only depends on the tweets that match its term.
  static TermEvidenceIndex Extend(const TermEvidenceIndex* previous,
                                  const microblog::TweetCorpus& corpus,
                                  const std::vector<std::string>& vocabulary,
                                  const std::unordered_set<std::string>& dirty_terms,
                                  const BuildOptions& options,
                                  ExtendStats* stats = nullptr);

  /// Reassembles an index from pre-built parts, as decoded from a binary
  /// snapshot: `terms[i]` owns `pools[i]`. Skips CollectCandidates entirely
  /// — this is the zero-parse cold-start path, valid because pools are a
  /// pure function of the (immutable) corpus and vocabulary that were
  /// saved together with them.
  static TermEvidenceIndex FromSnapshotParts(
      std::vector<std::string> terms,
      std::vector<std::vector<CandidateEvidence>> pools);

  /// Terms in pool order (the inverse of Find), for snapshot
  /// serialization. pools(i) below is the pool of term i.
  std::vector<std::string> TermStrings() const;

  /// Pool by dense index (aligned with TermStrings).
  const std::vector<CandidateEvidence>& pool(size_t i) const {
    return *pools_[i];
  }
  size_t num_pools() const { return pools_.size(); }

  /// The precomputed pool of a normalized (lower-cased) term, or nullptr
  /// when the term is outside this snapshot's vocabulary. The pointer
  /// aliases pool storage shared across generations: valid while any index
  /// (in serving, the snapshot holding it) that references the pool is
  /// alive.
  const std::vector<CandidateEvidence>* Find(
      const std::string& normalized_term) const {
    auto it = term_to_pool_.find(normalized_term);
    return it == term_to_pool_.end() ? nullptr : pools_[it->second].get();
  }

  /// The shared pool handle of a term, for structural-sharing reuse (and
  /// the tests that assert clean pools ARE the previous generation's).
  std::shared_ptr<const Pool> FindShared(
      const std::string& normalized_term) const {
    auto it = term_to_pool_.find(normalized_term);
    return it == term_to_pool_.end() ? nullptr : pools_[it->second];
  }

  size_t num_terms() const { return term_to_pool_.size(); }

  /// Total precomputed evidence entries across all pools.
  size_t num_entries() const;

  /// Approximate memory footprint.
  uint64_t SizeBytes() const;

 private:
  std::unordered_map<std::string, size_t> term_to_pool_;
  std::vector<std::shared_ptr<const Pool>> pools_;
};

}  // namespace esharp::expert

#endif  // ESHARP_EXPERT_EVIDENCE_INDEX_H_
