#ifndef ESHARP_EXPERT_CLUSTER_FILTER_H_
#define ESHARP_EXPERT_CLUSTER_FILTER_H_

#include <vector>

#include "common/result.h"
#include "expert/detector.h"

namespace esharp::expert {

/// \brief Options of the optional cluster-analysis filter.
struct ClusterFilterOptions {
  /// Number of clusters (Pal & Counts separate an "authority" cluster from
  /// the rest; 2 is their effective setting).
  size_t num_clusters = 2;
  /// Lloyd iterations.
  size_t max_iterations = 50;
  /// Seed for the deterministic k-means++-style initialization.
  uint64_t seed = 5;
};

/// \brief Pal & Counts' optional filtering step (§3 of the e# paper):
/// cluster the candidates in feature space (their z-scored TS/MI/RI) and
/// keep only the cluster with the highest mean aggregate score — the
/// "authority cluster".
///
/// e# deliberately drops this stage ("This step is computationally
/// expensive, and it is contrary to our objective of improving recall");
/// it is implemented here so the ablation bench can quantify exactly that
/// trade-off.
std::vector<RankedExpert> ClusterFilter(const std::vector<RankedExpert>& ranked,
                                        const ClusterFilterOptions& options = {});

}  // namespace esharp::expert

#endif  // ESHARP_EXPERT_CLUSTER_FILTER_H_
