#include "expert/evidence_index.h"

#include <atomic>
#include <utility>

namespace esharp::expert {

TermEvidenceIndex TermEvidenceIndex::Build(
    const microblog::TweetCorpus& corpus,
    const std::vector<std::string>& vocabulary, const BuildOptions& options) {
  static const std::unordered_set<std::string> kNoDirtyTerms;
  return Extend(nullptr, corpus, vocabulary, kNoDirtyTerms, options);
}

TermEvidenceIndex TermEvidenceIndex::Extend(
    const TermEvidenceIndex* previous, const microblog::TweetCorpus& corpus,
    const std::vector<std::string>& vocabulary,
    const std::unordered_set<std::string>& dirty_terms,
    const BuildOptions& options, ExtendStats* stats) {
  TermEvidenceIndex index;
  index.term_to_pool_.reserve(vocabulary.size());
  std::vector<const std::string*> distinct;
  distinct.reserve(vocabulary.size());
  for (const std::string& term : vocabulary) {
    auto [it, inserted] =
        index.term_to_pool_.try_emplace(term, distinct.size());
    if (inserted) distinct.push_back(&it->first);
  }
  index.pools_.resize(distinct.size());

  // Share clean pools with the previous generation up front (cheap, serial)
  // so the parallel collection below runs only over the dirty remainder.
  std::vector<size_t> to_collect;
  size_t reused = 0;
  for (size_t i = 0; i < distinct.size(); ++i) {
    if (previous != nullptr && dirty_terms.count(*distinct[i]) == 0) {
      if (std::shared_ptr<const Pool> pool =
              previous->FindShared(*distinct[i])) {
        index.pools_[i] = std::move(pool);
        ++reused;
        continue;
      }
    }
    to_collect.push_back(i);
  }

  // Detector options never affect collection (they only weight ranking),
  // so a default-options detector builds pools valid for any online
  // configuration over the same corpus.
  ExpertDetector detector(&corpus);
  auto build_one = [&](size_t j) {
    size_t i = to_collect[j];
    index.pools_[i] =
        std::make_shared<const Pool>(detector.CollectCandidates(*distinct[i]));
  };
  if (options.pool != nullptr && to_collect.size() > 1) {
    options.pool->ParallelFor(to_collect.size(), build_one);
  } else {
    for (size_t j = 0; j < to_collect.size(); ++j) build_one(j);
  }
  if (stats != nullptr) {
    stats->reused = reused;
    stats->rebuilt = to_collect.size();
  }
  return index;
}

TermEvidenceIndex TermEvidenceIndex::FromSnapshotParts(
    std::vector<std::string> terms,
    std::vector<std::vector<CandidateEvidence>> pools) {
  TermEvidenceIndex index;
  index.pools_.reserve(pools.size());
  for (std::vector<CandidateEvidence>& pool : pools) {
    index.pools_.push_back(std::make_shared<const Pool>(std::move(pool)));
  }
  index.term_to_pool_.reserve(terms.size());
  for (size_t i = 0; i < terms.size(); ++i) {
    index.term_to_pool_.emplace(std::move(terms[i]), i);
  }
  return index;
}

std::vector<std::string> TermEvidenceIndex::TermStrings() const {
  std::vector<std::string> terms(pools_.size());
  for (const auto& [term, i] : term_to_pool_) terms[i] = term;
  return terms;
}

size_t TermEvidenceIndex::num_entries() const {
  size_t total = 0;
  for (const std::shared_ptr<const Pool>& pool : pools_) {
    total += pool->size();
  }
  return total;
}

uint64_t TermEvidenceIndex::SizeBytes() const {
  uint64_t total = 0;
  for (const auto& [term, i] : term_to_pool_) {
    total += term.size() + sizeof(size_t) + 16;
  }
  for (const std::shared_ptr<const Pool>& pool : pools_) {
    total += pool->size() * sizeof(CandidateEvidence) + sizeof(*pool);
  }
  return total;
}

}  // namespace esharp::expert
