#include "expert/evidence_index.h"

#include <utility>

namespace esharp::expert {

TermEvidenceIndex TermEvidenceIndex::Build(
    const microblog::TweetCorpus& corpus,
    const std::vector<std::string>& vocabulary, const BuildOptions& options) {
  TermEvidenceIndex index;
  index.term_to_pool_.reserve(vocabulary.size());
  std::vector<const std::string*> distinct;
  distinct.reserve(vocabulary.size());
  for (const std::string& term : vocabulary) {
    auto [it, inserted] =
        index.term_to_pool_.try_emplace(term, distinct.size());
    if (inserted) distinct.push_back(&it->first);
  }
  index.pools_.resize(distinct.size());

  // Detector options never affect collection (they only weight ranking),
  // so a default-options detector builds pools valid for any online
  // configuration over the same corpus.
  ExpertDetector detector(&corpus);
  auto build_one = [&](size_t i) {
    index.pools_[i] = detector.CollectCandidates(*distinct[i]);
  };
  if (options.pool != nullptr && distinct.size() > 1) {
    options.pool->ParallelFor(distinct.size(), build_one);
  } else {
    for (size_t i = 0; i < distinct.size(); ++i) build_one(i);
  }
  return index;
}

TermEvidenceIndex TermEvidenceIndex::FromSnapshotParts(
    std::vector<std::string> terms,
    std::vector<std::vector<CandidateEvidence>> pools) {
  TermEvidenceIndex index;
  index.pools_ = std::move(pools);
  index.term_to_pool_.reserve(terms.size());
  for (size_t i = 0; i < terms.size(); ++i) {
    index.term_to_pool_.emplace(std::move(terms[i]), i);
  }
  return index;
}

std::vector<std::string> TermEvidenceIndex::TermStrings() const {
  std::vector<std::string> terms(pools_.size());
  for (const auto& [term, i] : term_to_pool_) terms[i] = term;
  return terms;
}

size_t TermEvidenceIndex::num_entries() const {
  size_t total = 0;
  for (const std::vector<CandidateEvidence>& pool : pools_) {
    total += pool.size();
  }
  return total;
}

uint64_t TermEvidenceIndex::SizeBytes() const {
  uint64_t total = 0;
  for (const auto& [term, i] : term_to_pool_) {
    total += term.size() + sizeof(size_t) + 16;
  }
  for (const std::vector<CandidateEvidence>& pool : pools_) {
    total += pool.size() * sizeof(CandidateEvidence) + sizeof(pool);
  }
  return total;
}

}  // namespace esharp::expert
