#ifndef ESHARP_EXPERT_DETECTOR_H_
#define ESHARP_EXPERT_DETECTOR_H_

#include <atomic>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "microblog/corpus.h"

namespace esharp::expert {

/// \brief Raw per-candidate evidence counts for one topic query.
struct CandidateEvidence {
  microblog::UserId user = 0;
  /// Candidate surfaced as an author of a matching tweet, as a mentioned
  /// user in one, or both (§3 candidate selection).
  bool is_author = false;
  bool is_mentioned = false;
  uint64_t tweets_on_topic = 0;
  uint64_t mentions_on_topic = 0;
  uint64_t retweets_on_topic = 0;
  /// Extended evidence (the features Pal & Counts evaluated but e#'s
  /// production build dropped; used by the feature ablation):
  /// on-topic tweets that @-mention someone (conversational).
  uint64_t conversational_on_topic = 0;
  /// on-topic tweets containing a hashtag token.
  uint64_t hashtag_on_topic = 0;
};

/// \brief One ranked expert.
struct RankedExpert {
  microblog::UserId user = 0;
  /// Aggregated z-score (the ranking key).
  double score = 0;
  /// Individual feature z-scores, for inspection and benches.
  double z_topical_signal = 0;
  double z_mention_impact = 0;
  double z_retweet_impact = 0;
  /// Extended-feature z-scores (0 unless the weights below are non-zero).
  double z_conversation = 0;
  double z_hashtag = 0;
  double z_followers = 0;
};

/// \brief Options of the production Pal & Counts detector (§3).
struct DetectorOptions {
  /// Feature weights of the aggregated score ("we used a weighted sum,
  /// using the authors' guidelines"): TS and MI carry the topical evidence,
  /// RI the influence evidence.
  double weight_topical_signal = 0.4;
  double weight_mention_impact = 0.4;
  double weight_retweet_impact = 0.2;
  /// Extended features from Pal & Counts' full taxonomy, off by default —
  /// the production e# build keeps only TS/MI/RI (§3). Setting any of
  /// these non-zero re-enables the corresponding signal:
  /// CS, share of a user's on-topic tweets that converse (@-mention).
  double weight_conversation = 0.0;
  /// HS, share of on-topic tweets carrying a hashtag.
  double weight_hashtag = 0.0;
  /// NF, log follower count (network influence prior).
  double weight_followers = 0.0;
  /// Minimum aggregated z-score for a candidate to be reported. This is the
  /// precision/recall knob of Fig. 9 ("The users must choose a minimum
  /// z-score, under which the experts are rejected").
  double min_z_score = 0.0;
  /// Cap on the number of experts returned (the crowdsourcing study uses
  /// up to 15 per algorithm).
  size_t max_experts = 15;
  /// Laplace smoothing added to feature numerators/denominators so sparse
  /// candidates do not produce 0/0.
  double smoothing = 0.01;
  /// Pal & Counts' optional cluster-analysis filter: keep only the
  /// "authority cluster" of the candidate pool. e#'s production deployment
  /// disables it ("computationally expensive, and ... contrary to our
  /// objective of improving recall", §3); the ablation bench measures the
  /// recall it costs.
  bool enable_cluster_filter = false;
};

/// \brief Cooperative cancellation for candidate collection. The serving
/// layer's per-request deadline cannot interrupt a thread mid-collection;
/// instead the collector polls `Cancelled()` on entry and every
/// `kCollectCancelStride` matching tweets, so one term over a head token's
/// postings cannot blow past the deadline unchecked.
class CollectCancel {
 public:
  virtual ~CollectCancel() = default;
  /// Must be safe to call from any collecting thread; returning true once
  /// should keep returning true (latched), since several workers share one
  /// token.
  virtual bool Cancelled() = 0;
};

/// How many matching tweets are processed between Cancelled() polls.
inline constexpr size_t kCollectCancelStride = 1024;

/// \brief Production implementation of Pal & Counts' topical-authority
/// detector, simplified per §3 of the e# paper.
///
/// Candidate selection: every author of a tweet matching the query and
/// every user mentioned in one ("a tweet matches a query if it contains all
/// of its terms after lower-casing"). Ranking: features TS (topical
/// signal), MI (mention impact) and RI (retweet impact), log-transformed,
/// z-scored over the candidate pool and combined by weighted sum. The
/// optional cluster-analysis filter of the original paper is deliberately
/// omitted (it is expensive and recall-hostile; §3).
class ExpertDetector {
 public:
  explicit ExpertDetector(const microblog::TweetCorpus* corpus,
                          DetectorOptions options = {})
      : corpus_(corpus), options_(options) {}

  /// Collects candidates and their raw evidence for one query, sorted by
  /// user id. Normalizes (lower-cases, tokenizes, interns) exactly once.
  std::vector<CandidateEvidence> CollectCandidates(
      const std::string& query) const;

  /// Pre-tokenized overload: `tokens` are already lower-cased and interned
  /// (TweetCorpus::TokenizeQuery), so the per-request hot path never
  /// re-normalizes or re-hashes a term. When `cancel` fires mid-collection
  /// the return is nullopt; a null `cancel` never cancels.
  std::optional<std::vector<CandidateEvidence>> CollectCandidates(
      const std::vector<microblog::TokenId>& tokens,
      CollectCancel* cancel = nullptr) const;

  /// Full pipeline for one query: candidates, features, z-scoring, ranking.
  /// Returns at most `max_experts` experts with score >= min_z_score,
  /// best first.
  Result<std::vector<RankedExpert>> FindExperts(const std::string& query) const;

  /// Ranks a pre-collected candidate pool (used by e#, which unions the
  /// pools of several expanded queries before ranking, §5).
  Result<std::vector<RankedExpert>> RankCandidates(
      const std::vector<CandidateEvidence>& candidates) const;

  const DetectorOptions& options() const { return options_; }
  /// Mutable access so harnesses can sweep min_z_score (Fig. 9).
  DetectorOptions* mutable_options() { return &options_; }

  /// The corpus this detector collects from (callers pre-tokenize against
  /// it for the TokenId overload).
  const microblog::TweetCorpus* corpus() const { return corpus_; }

 private:
  const microblog::TweetCorpus* corpus_;
  DetectorOptions options_;
};

/// \brief Merges evidence lists by user, summing counts and OR-ing flags —
/// the union step of e#'s expanded search (§5).
///
/// Lists sorted by user with unique users (the CollectCandidates /
/// TermEvidenceIndex output invariant) merge with a k-way sorted merge and
/// no hashing; a list that breaks the invariant is normalized first, so the
/// historical any-order contract still holds.
std::vector<CandidateEvidence> MergeEvidence(
    const std::vector<std::vector<CandidateEvidence>>& lists);

/// \brief Zero-copy variant over borrowed pools: what the serving fast path
/// uses to union precomputed (snapshot-owned) and live pools without
/// copying either. Null entries are skipped.
std::vector<CandidateEvidence> MergeEvidenceViews(
    const std::vector<const std::vector<CandidateEvidence>*>& lists);

}  // namespace esharp::expert

#endif  // ESHARP_EXPERT_DETECTOR_H_
