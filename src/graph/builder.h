#ifndef ESHARP_GRAPH_BUILDER_H_
#define ESHARP_GRAPH_BUILDER_H_

#include "common/result.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "graph/graph.h"
#include "querylog/log.h"

namespace esharp::graph {

/// \brief Options of the extraction stage (§4.1).
struct SimilarityGraphOptions {
  /// Minimum cosine similarity for an edge to be materialized. The paper
  /// keeps the graph sparse (60M edges from 998 GB of log).
  double min_similarity = 0.15;
  /// URLs clicked by more than this many distinct queries are skipped during
  /// candidate generation (hub URLs like portals connect everything and
  /// would densify the graph quadratically). Their clicks still count in
  /// the cosine numerator/denominator.
  size_t max_url_fanout = 256;
  /// Minimum searches per month for a query to enter the graph — the
  /// paper's noise filter ("we remove all the queries which appear less
  /// than 50 times per month").
  uint64_t min_query_count = 50;
  /// Optional thread pool; null builds single-threaded.
  ThreadPool* pool = nullptr;
  /// Partitions for the parallel pass.
  size_t num_partitions = 8;
  /// Optional resource accounting (stage "Extraction" of Table 9).
  ResourceMeter* meter = nullptr;
};

/// \brief Builds the term-similarity graph from a month of click behavior.
///
/// Vertices are query strings surviving the min-count filter; an edge links
/// two queries whose URL-click vectors have cosine similarity at least
/// `min_similarity`. Candidate pairs come from an inverted URL->queries
/// index, so the cost is proportional to co-click structure rather than to
/// all pairs.
Result<Graph> BuildSimilarityGraph(const querylog::QueryLog& log,
                                   const SimilarityGraphOptions& options);

}  // namespace esharp::graph

#endif  // ESHARP_GRAPH_BUILDER_H_
