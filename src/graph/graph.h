#ifndef ESHARP_GRAPH_GRAPH_H_
#define ESHARP_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "sqlengine/table.h"

namespace esharp::graph {

/// \brief Vertex identifier (dense, 0-based).
using VertexId = uint32_t;

/// \brief One weighted undirected edge. Stored once with u <= v.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;
  double weight = 0;
};

/// \brief Weighted undirected graph over string-labeled vertices.
///
/// This is the term-similarity graph of §4.1: vertices are query strings,
/// edge weights are click-vector cosine similarities. Adjacency is stored in
/// CSR form after Finalize() so community detection can scan neighborhoods
/// cache-efficiently.
class Graph {
 public:
  /// Registers a vertex label; returns its id (idempotent per label).
  VertexId AddVertex(const std::string& label);

  /// Adds an undirected edge; accumulates weight for duplicate pairs.
  /// Self-loops are rejected.
  Status AddEdge(VertexId u, VertexId v, double weight);

  /// Builds the CSR adjacency. Must be called after all edges are added and
  /// before any adjacency query. Idempotent.
  void Finalize();

  size_t num_vertices() const { return labels_.size(); }
  size_t num_edges() const { return edges_.size(); }

  const std::string& label(VertexId v) const { return labels_[v]; }
  Result<VertexId> FindVertex(const std::string& label) const;

  /// All unique edges (u <= v).
  const std::vector<Edge>& edges() const { return edges_; }

  /// Neighbors of v with weights. Requires Finalize().
  struct Neighbor {
    VertexId id;
    double weight;
  };
  const std::vector<Neighbor>& neighbors(VertexId v) const {
    return adjacency_[v];
  }

  /// Sum of edge weights incident to v (weighted degree). Requires
  /// Finalize().
  double WeightedDegree(VertexId v) const { return weighted_degree_[v]; }

  /// Total edge weight of the graph (sum over unique edges).
  double TotalWeight() const { return total_weight_; }

  /// Exports edges as a relational table
  /// `graph(query1:STRING, query2:STRING, distance:DOUBLE)` with both edge
  /// directions materialized — the symmetric representation Fig. 4's SQL
  /// expects.
  sql::Table ToEdgeTable() const;

  /// Serializes to TSV: one "label1<TAB>label2<TAB>weight" line per unique
  /// edge, preceded by one "label" line per vertex (so isolated vertices
  /// survive the round trip).
  std::string SerializeTsv() const;

  /// Parses the TSV form; the result is finalized.
  static Result<Graph> ParseTsv(const std::string& tsv);

  /// Approximate serialized size (for Table 9 accounting).
  uint64_t SizeBytes() const;

 private:
  std::vector<std::string> labels_;
  std::unordered_map<std::string, VertexId> label_index_;
  std::vector<Edge> edges_;
  std::unordered_map<uint64_t, size_t> edge_index_;
  std::vector<std::vector<Neighbor>> adjacency_;
  std::vector<double> weighted_degree_;
  double total_weight_ = 0;
  bool finalized_ = false;
};

}  // namespace esharp::graph

#endif  // ESHARP_GRAPH_GRAPH_H_
