#include "graph/builder.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/timer.h"

namespace esharp::graph {

Result<Graph> BuildSimilarityGraph(const querylog::QueryLog& log,
                                   const SimilarityGraphOptions& options) {
  if (options.min_similarity < 0 || options.min_similarity > 1) {
    return Status::InvalidArgument("min_similarity must be in [0,1], got ",
                                   options.min_similarity);
  }
  Timer timer;

  // Apply the min-count filter first (the filtered log is the stage input).
  querylog::QueryLog filtered = log.FilterByMinCount(options.min_query_count);
  std::vector<SparseVector> vectors = filtered.BuildClickVectors();
  const size_t n = filtered.num_queries();

  // Inverted index: URL -> query ids that clicked it.
  std::unordered_map<uint32_t, std::vector<uint32_t>> url_to_queries;
  for (const querylog::ClickRecord& r : filtered.records()) {
    url_to_queries[r.url_id].push_back(r.query_id);
  }

  Graph g;
  for (size_t q = 0; q < n; ++q) {
    g.AddVertex(filtered.query(static_cast<uint32_t>(q)).text);
  }

  // Candidate generation + cosine scoring, parallel over query ids. Each
  // worker emits (u, v, w) with u < v; workers own disjoint u ranges so no
  // pair is emitted twice.
  const size_t parts =
      options.pool != nullptr ? std::max<size_t>(1, options.num_partitions) : 1;
  std::vector<std::vector<Edge>> edge_chunks(parts);

  auto process_range = [&](size_t part) {
    size_t per = (n + parts - 1) / parts;
    size_t begin = part * per;
    size_t end = std::min(n, begin + per);
    std::vector<Edge>& out = edge_chunks[part];
    std::unordered_set<uint32_t> candidates;
    for (size_t q = begin; q < end; ++q) {
      candidates.clear();
      for (const auto& [url, clicks] :
           vectors[q].entries()) {
        (void)clicks;
        auto it = url_to_queries.find(url);
        if (it == url_to_queries.end()) continue;
        if (it->second.size() > options.max_url_fanout) continue;
        for (uint32_t other : it->second) {
          if (other > q) candidates.insert(other);
        }
      }
      for (uint32_t other : candidates) {
        double sim = vectors[q].Cosine(vectors[other]);
        if (sim >= options.min_similarity) {
          out.push_back(Edge{static_cast<VertexId>(q),
                             static_cast<VertexId>(other), sim});
        }
      }
    }
  };

  if (options.pool != nullptr && parts > 1) {
    options.pool->ParallelFor(parts, process_range);
  } else {
    for (size_t p = 0; p < parts; ++p) process_range(p);
  }

  for (const std::vector<Edge>& chunk : edge_chunks) {
    for (const Edge& e : chunk) {
      ESHARP_RETURN_NOT_OK(g.AddEdge(e.u, e.v, e.weight));
    }
  }
  g.Finalize();

  if (options.meter != nullptr) {
    options.meter->AddTime("Extraction", timer.ElapsedSeconds());
    options.meter->AddIO("Extraction", log.SizeBytes(), g.SizeBytes());
    options.meter->AddRows("Extraction", log.num_records(), g.num_edges());
    options.meter->SetParallelism("Extraction", parts);
  }
  return g;
}

}  // namespace esharp::graph
