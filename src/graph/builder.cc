#include "graph/builder.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/timer.h"

namespace esharp::graph {

namespace {

// True iff two ascending dimension lists share an element (two-pointer scan).
bool HaveCommonDim(const std::vector<uint32_t>& a,
                   const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

Result<Graph> BuildSimilarityGraph(const querylog::QueryLog& log,
                                   const SimilarityGraphOptions& options) {
  if (options.min_similarity < 0 || options.min_similarity > 1) {
    return Status::InvalidArgument("min_similarity must be in [0,1], got ",
                                   options.min_similarity);
  }
  Timer timer;

  // Apply the min-count filter first (the filtered log is the stage input).
  querylog::QueryLog filtered = log.FilterByMinCount(options.min_query_count);
  std::vector<SparseVector> vectors = filtered.BuildClickVectors();
  const size_t n = filtered.num_queries();

  // Inverted index carrying click values: URL -> (query id, clicks), in
  // ascending query-id order. Candidate generation and dot-product
  // accumulation are fused over this index: scanning q's URLs in ascending
  // order appends each candidate's contributions in exactly the order of
  // SparseVector::Dot's sorted merge, so the accumulated dot is bit-identical
  // to the unfused rewalk of both vectors.
  std::unordered_map<uint32_t, std::vector<std::pair<uint32_t, double>>>
      postings;
  for (size_t q = 0; q < n; ++q) {
    for (const auto& [url, clicks] : vectors[q].entries()) {
      postings[url].emplace_back(static_cast<uint32_t>(q), clicks);
    }
  }

  // L2 norms once per query; the unfused path recomputed both per pair.
  std::vector<double> norm(n);
  for (size_t q = 0; q < n; ++q) norm[q] = vectors[q].Norm();

  // Hub URLs (fanout above the cap) never generate candidates, but their
  // clicks still count in the cosine. hub_dims[q] lists q's hub URLs
  // (ascending); the rare pair that shares one falls back to the full
  // sorted-merge dot instead of the accumulated one.
  std::vector<std::vector<uint32_t>> hub_dims(n);
  for (size_t q = 0; q < n; ++q) {
    for (const auto& [url, clicks] : vectors[q].entries()) {
      (void)clicks;
      if (postings.at(url).size() > options.max_url_fanout) {
        hub_dims[q].push_back(url);
      }
    }
  }

  Graph g;
  for (size_t q = 0; q < n; ++q) {
    g.AddVertex(filtered.query(static_cast<uint32_t>(q)).text);
  }

  // Fused candidate generation + scoring, parallel over query ids. Each
  // worker emits (u, v, w) with u < v; workers own disjoint u ranges so no
  // pair is emitted twice.
  const size_t parts =
      options.pool != nullptr ? std::max<size_t>(1, options.num_partitions) : 1;
  std::vector<std::vector<Edge>> edge_chunks(parts);

  auto process_range = [&](size_t part) {
    size_t per = (n + parts - 1) / parts;
    size_t begin = part * per;
    size_t end = std::min(n, begin + per);
    std::vector<Edge>& out = edge_chunks[part];
    std::unordered_map<uint32_t, double> dot;  // candidate -> partial dot
    std::vector<uint32_t> candidates;
    for (size_t q = begin; q < end; ++q) {
      dot.clear();
      for (const auto& [url, clicks] : vectors[q].entries()) {
        const auto& plist = postings.at(url);
        if (plist.size() > options.max_url_fanout) continue;
        // Postings are ascending by query id; only ids > q matter.
        auto lo = std::upper_bound(
            plist.begin(), plist.end(), static_cast<uint32_t>(q),
            [](uint32_t a, const std::pair<uint32_t, double>& b) {
              return a < b.first;
            });
        for (auto p = lo; p != plist.end(); ++p) {
          dot[p->first] += clicks * p->second;
        }
      }
      // Deterministic emission order (the pair space is fixed, so sorting
      // candidates makes the edge list independent of hash-map order).
      candidates.clear();
      candidates.reserve(dot.size());
      for (const auto& [other, d] : dot) {
        (void)d;
        candidates.push_back(other);
      }
      std::sort(candidates.begin(), candidates.end());
      for (uint32_t other : candidates) {
        double d = dot[other];
        if (!hub_dims[q].empty() && !hub_dims[other].empty() &&
            HaveCommonDim(hub_dims[q], hub_dims[other])) {
          // A shared hub URL contributes to the dot but was skipped above.
          d = vectors[q].Dot(vectors[other]);
        }
        double sim = (norm[q] == 0.0 || norm[other] == 0.0)
                         ? 0.0
                         : d / (norm[q] * norm[other]);
        if (sim >= options.min_similarity) {
          out.push_back(Edge{static_cast<VertexId>(q),
                             static_cast<VertexId>(other), sim});
        }
      }
    }
  };

  if (options.pool != nullptr && parts > 1) {
    options.pool->ParallelFor(parts, process_range);
  } else {
    for (size_t p = 0; p < parts; ++p) process_range(p);
  }

  for (const std::vector<Edge>& chunk : edge_chunks) {
    for (const Edge& e : chunk) {
      ESHARP_RETURN_NOT_OK(g.AddEdge(e.u, e.v, e.weight));
    }
  }
  g.Finalize();

  if (options.meter != nullptr) {
    options.meter->AddTime("Extraction", timer.ElapsedSeconds());
    options.meter->AddIO("Extraction", log.SizeBytes(), g.SizeBytes());
    options.meter->AddRows("Extraction", log.num_records(), g.num_edges());
    options.meter->SetParallelism("Extraction", parts);
  }
  return g;
}

}  // namespace esharp::graph
