#include "graph/graph.h"

#include <cmath>

#include "common/strings.h"

namespace esharp::graph {

VertexId Graph::AddVertex(const std::string& label) {
  auto it = label_index_.find(label);
  if (it != label_index_.end()) return it->second;
  VertexId id = static_cast<VertexId>(labels_.size());
  labels_.push_back(label);
  label_index_.emplace(label, id);
  finalized_ = false;
  return id;
}

Status Graph::AddEdge(VertexId u, VertexId v, double weight) {
  if (u == v) {
    return Status::InvalidArgument("self-loop on vertex ", u, " rejected");
  }
  if (u >= labels_.size() || v >= labels_.size()) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (!(weight > 0) || !std::isfinite(weight)) {  // rejects NaN/inf too
    return Status::InvalidArgument("edge weight must be positive and finite");
  }
  if (u > v) std::swap(u, v);
  uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
  auto it = edge_index_.find(key);
  if (it != edge_index_.end()) {
    edges_[it->second].weight += weight;
  } else {
    edge_index_.emplace(key, edges_.size());
    edges_.push_back(Edge{u, v, weight});
  }
  total_weight_ += weight;
  finalized_ = false;
  return Status::OK();
}

void Graph::Finalize() {
  if (finalized_) return;
  adjacency_.assign(labels_.size(), {});
  weighted_degree_.assign(labels_.size(), 0.0);
  for (const Edge& e : edges_) {
    adjacency_[e.u].push_back(Neighbor{e.v, e.weight});
    adjacency_[e.v].push_back(Neighbor{e.u, e.weight});
    weighted_degree_[e.u] += e.weight;
    weighted_degree_[e.v] += e.weight;
  }
  finalized_ = true;
}

Result<VertexId> Graph::FindVertex(const std::string& label) const {
  auto it = label_index_.find(label);
  if (it == label_index_.end()) {
    return Status::NotFound("vertex '", label, "' not in graph");
  }
  return it->second;
}

sql::Table Graph::ToEdgeTable() const {
  sql::TableBuilder b({{"query1", sql::DataType::kString},
                       {"query2", sql::DataType::kString},
                       {"distance", sql::DataType::kDouble}});
  for (const Edge& e : edges_) {
    b.AddRow({sql::Value::String(labels_[e.u]),
              sql::Value::String(labels_[e.v]),
              sql::Value::Double(e.weight)});
    b.AddRow({sql::Value::String(labels_[e.v]),
              sql::Value::String(labels_[e.u]),
              sql::Value::Double(e.weight)});
  }
  return b.Build();
}

std::string Graph::SerializeTsv() const {
  std::string out;
  for (const std::string& label : labels_) {
    out += "v\t";
    out += label;
    out += '\n';
  }
  for (const Edge& e : edges_) {
    out += "e\t";
    out += labels_[e.u];
    out += '\t';
    out += labels_[e.v];
    out += '\t';
    out += StrFormat("%.17g", e.weight);
    out += '\n';
  }
  return out;
}

Result<Graph> Graph::ParseTsv(const std::string& tsv) {
  Graph g;
  for (const std::string& line : SplitChar(tsv, '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitChar(line, '\t');
    if (fields[0] == "v") {
      if (fields.size() != 2) {
        return Status::IOError("malformed vertex line: '", line, "'");
      }
      g.AddVertex(fields[1]);
    } else if (fields[0] == "e") {
      if (fields.size() != 4) {
        return Status::IOError("malformed edge line: '", line, "'");
      }
      VertexId u = g.AddVertex(fields[1]);
      VertexId v = g.AddVertex(fields[2]);
      double w = 0;
      try {
        w = std::stod(fields[3]);
      } catch (const std::exception&) {
        return Status::IOError("bad weight in line: '", line, "'");
      }
      ESHARP_RETURN_NOT_OK(g.AddEdge(u, v, w));
    } else {
      return Status::IOError("unknown record type in line: '", line, "'");
    }
  }
  g.Finalize();
  return g;
}

uint64_t Graph::SizeBytes() const {
  uint64_t total = 0;
  for (const std::string& l : labels_) total += l.size() + 8;
  total += edges_.size() * sizeof(Edge);
  return total;
}

}  // namespace esharp::graph
