#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace esharp {

namespace {

// SplitMix64: used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Gaussian() {
  // Box–Muller; u1 must be strictly positive.
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Gaussian() * sigma + mu);
}

uint64_t Rng::Poisson(double mean) {
  if (mean <= 0) return 0;
  if (mean > 64.0) {
    // Normal approximation for large means.
    double draw = Gaussian() * std::sqrt(mean) + mean;
    return draw < 0 ? 0 : static_cast<uint64_t>(draw + 0.5);
  }
  // Knuth's method.
  const double limit = std::exp(-mean);
  uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > limit);
  return k - 1;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  assert(total > 0);
  double target = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Split() { return Rng(Next() ^ 0xA5A5A5A5DEADBEEFULL); }

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n > 0);
  pmf_.resize(n);
  cdf_.resize(n);
  double norm = 0;
  for (size_t k = 0; k < n; ++k) {
    pmf_[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
    norm += pmf_[k];
  }
  double acc = 0;
  for (size_t k = 0; k < n; ++k) {
    pmf_[k] /= norm;
    acc += pmf_[k];
    cdf_[k] = acc;
  }
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  // Binary search for the first cdf entry >= u.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfSampler::Pmf(size_t rank) const {
  assert(rank < pmf_.size());
  return pmf_[rank];
}

}  // namespace esharp
