#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <unordered_set>

namespace esharp {

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> SplitChar(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view StripAscii(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool ContainsAllTokens(std::string_view text,
                       const std::vector<std::string>& tokens) {
  std::vector<std::string> words = SplitWhitespace(ToLowerAscii(text));
  std::unordered_set<std::string_view> present(words.begin(), words.end());
  for (const std::string& t : tokens) {
    if (!present.count(ToLowerAscii(t))) return false;
  }
  return true;
}

bool ContainsPhrase(const std::vector<std::string>& hay,
                    const std::vector<std::string>& needle) {
  if (needle.empty()) return true;
  if (needle.size() > hay.size()) return false;
  for (size_t i = 0; i + needle.size() <= hay.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < needle.size(); ++j) {
      if (ToLowerAscii(hay[i + j]) != ToLowerAscii(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size(), m = b.size();
  std::vector<size_t> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace esharp
