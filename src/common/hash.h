#ifndef ESHARP_COMMON_HASH_H_
#define ESHARP_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace esharp {

/// \brief 64-bit FNV-1a over bytes; stable across platforms, used to shard
/// rows across partitions deterministically (map-reduce shuffles must route a
/// key to the same partition on every run).
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// \brief Mixes a 64-bit value (finalizer from MurmurHash3).
inline uint64_t Mix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// \brief Combines two hash values (boost-style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace esharp

#endif  // ESHARP_COMMON_HASH_H_
