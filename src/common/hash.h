#ifndef ESHARP_COMMON_HASH_H_
#define ESHARP_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string_view>

namespace esharp {

/// \brief 64-bit FNV-1a over bytes; stable across platforms, used to shard
/// rows across partitions deterministically (map-reduce shuffles must route a
/// key to the same partition on every run).
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// \brief Mixes a 64-bit value (finalizer from MurmurHash3).
inline uint64_t Mix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// \brief Combines two hash values (boost-style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

/// \brief Bit image of a double with +0.0/-0.0 canonicalized, so values
/// that compare equal hash equal. This is the self-defined replacement for
/// std::hash<double> in the engine's cell hashing: a fixed, documented
/// function the batched SIMD hash kernels (common/simd.h) can reproduce
/// bit-identically, with no dependency on standard-library internals.
inline uint64_t CanonicalF64Bits(double d) {
  if (d == 0.0) return 0;  // merges -0.0 into +0.0
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// \brief Stable hash of a double cell: Mix64 over the canonical bits.
/// NaN bit patterns hash arbitrarily (NaN compares unequal to everything,
/// so its hash can never be observed through equality).
inline uint64_t HashF64(double d) { return Mix64(CanonicalF64Bits(d)); }

}  // namespace esharp

#endif  // ESHARP_COMMON_HASH_H_
