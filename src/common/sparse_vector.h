#ifndef ESHARP_COMMON_SPARSE_VECTOR_H_
#define ESHARP_COMMON_SPARSE_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace esharp {

/// \brief Sparse non-negative vector keyed by uint32 dimension ids.
///
/// The extraction stage (§4.1) represents each query as a vector in URL
/// space, where component u holds the number of clicks on URL u. Stored as a
/// sorted (dim, value) list; cosine similarity is a sorted-merge, so comparing
/// two queries costs O(nnz1 + nnz2).
class SparseVector {
 public:
  SparseVector() = default;

  /// Adds `value` to dimension `dim` (accumulates duplicates lazily; the
  /// vector is canonicalized on first read).
  void Add(uint32_t dim, double value);

  /// Number of non-zero entries (after canonicalization).
  size_t NumNonZero() const;

  /// L2 norm.
  double Norm() const;

  /// Sum of all components.
  double Sum() const;

  /// Dot product with another sparse vector.
  double Dot(const SparseVector& other) const;

  /// Cosine similarity in [0, 1] for non-negative vectors; 0 when either
  /// vector is empty. This is the edge weight of the term-similarity graph.
  double Cosine(const SparseVector& other) const;

  /// Sorted, deduplicated entries.
  const std::vector<std::pair<uint32_t, double>>& entries() const;

 private:
  void Canonicalize() const;

  mutable std::vector<std::pair<uint32_t, double>> entries_;
  mutable bool dirty_ = false;
};

}  // namespace esharp

#endif  // ESHARP_COMMON_SPARSE_VECTOR_H_
