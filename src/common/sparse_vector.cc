#include "common/sparse_vector.h"

#include <algorithm>
#include <cmath>

namespace esharp {

void SparseVector::Add(uint32_t dim, double value) {
  if (value == 0.0) return;
  entries_.emplace_back(dim, value);
  dirty_ = true;
}

void SparseVector::Canonicalize() const {
  if (!dirty_) return;
  std::sort(entries_.begin(), entries_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t out = 0;
  for (size_t i = 0; i < entries_.size();) {
    uint32_t dim = entries_[i].first;
    double sum = 0;
    while (i < entries_.size() && entries_[i].first == dim) {
      sum += entries_[i].second;
      ++i;
    }
    if (sum != 0.0) entries_[out++] = {dim, sum};
  }
  entries_.resize(out);
  dirty_ = false;
}

size_t SparseVector::NumNonZero() const {
  Canonicalize();
  return entries_.size();
}

double SparseVector::Norm() const {
  Canonicalize();
  double s = 0;
  for (const auto& [d, v] : entries_) s += v * v;
  return std::sqrt(s);
}

double SparseVector::Sum() const {
  Canonicalize();
  double s = 0;
  for (const auto& [d, v] : entries_) s += v;
  return s;
}

double SparseVector::Dot(const SparseVector& other) const {
  Canonicalize();
  other.Canonicalize();
  double s = 0;
  size_t i = 0, j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    if (entries_[i].first < other.entries_[j].first) {
      ++i;
    } else if (entries_[i].first > other.entries_[j].first) {
      ++j;
    } else {
      s += entries_[i].second * other.entries_[j].second;
      ++i;
      ++j;
    }
  }
  return s;
}

double SparseVector::Cosine(const SparseVector& other) const {
  double na = Norm(), nb = other.Norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(other) / (na * nb);
}

const std::vector<std::pair<uint32_t, double>>& SparseVector::entries() const {
  Canonicalize();
  return entries_;
}

}  // namespace esharp
