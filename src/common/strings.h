#ifndef ESHARP_COMMON_STRINGS_H_
#define ESHARP_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace esharp {

/// \brief ASCII lower-cases a string (the paper normalizes queries and tweet
/// text by lower-casing only — no stemming, no spell correction, §4.1/§5).
std::string ToLowerAscii(std::string_view s);

/// \brief Splits on any run of whitespace; no empty tokens are produced.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// \brief Splits on a single-character delimiter; empty fields are kept.
std::vector<std::string> SplitChar(std::string_view s, char delim);

/// \brief Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// \brief Removes leading/trailing ASCII whitespace.
std::string_view StripAscii(std::string_view s);

/// \brief Returns true iff `text` contains every token of `tokens` as a
/// whole word, after lower-casing. This is the paper's tweet/query match
/// predicate (§3: "a tweet matches a query if it contains all of its terms
/// after lower-casing").
bool ContainsAllTokens(std::string_view text,
                       const std::vector<std::string>& tokens);

/// \brief Returns true iff `hay` contains `needle` as a contiguous token
/// subsequence (exact phrase after lower-casing) — the community matching
/// predicate of §5 ("contains the query terms exactly and in order").
bool ContainsPhrase(const std::vector<std::string>& hay,
                    const std::vector<std::string>& needle);

/// \brief Levenshtein edit distance (for tests of the variant generator).
size_t EditDistance(std::string_view a, std::string_view b);

/// \brief Printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace esharp

#endif  // ESHARP_COMMON_STRINGS_H_
