#ifndef ESHARP_COMMON_FILE_IO_H_
#define ESHARP_COMMON_FILE_IO_H_

#include <string>

#include "common/result.h"

namespace esharp {

/// \brief Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// \brief Writes a string to a file, replacing any previous content.
Status WriteStringToFile(const std::string& path, std::string_view content);

/// \brief True iff the file exists and is readable.
bool FileExists(const std::string& path);

}  // namespace esharp

#endif  // ESHARP_COMMON_FILE_IO_H_
