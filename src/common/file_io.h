#ifndef ESHARP_COMMON_FILE_IO_H_
#define ESHARP_COMMON_FILE_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace esharp {

/// Default ReadFileToString cap: 1 GiB, far above every text artifact the
/// system writes (TSV stores, JSON snapshots) and far below "swap death".
inline constexpr uint64_t kDefaultReadCap = uint64_t{1} << 30;

/// \brief Reads an entire file into a string. Fails with an errno-detailed
/// kIOError (path + cause) and refuses files larger than `max_bytes` —
/// callers reading operator-supplied paths get a bound instead of an
/// allocation the size of whatever the path points at.
Result<std::string> ReadFileToString(const std::string& path,
                                     uint64_t max_bytes = kDefaultReadCap);

/// \brief Writes a string to a file, replacing any previous content.
Status WriteStringToFile(const std::string& path, std::string_view content);

/// \brief True iff the file exists and is readable.
bool FileExists(const std::string& path);

/// \brief A read-only memory-mapped file (the zero-parse cold-start path
/// of serving/snapshot_file.h). Opens and maps in Open(); unmaps in the
/// destructor. Movable, not copyable. Every failure Status carries the
/// path and the errno detail.
///
/// Where mmap is unavailable the class falls back to reading the file
/// into an owned buffer — callers see identical bytes either way, only
/// the cold-start speed differs.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Opens and maps `path` read-only. On failure the instance stays empty.
  Status Open(const std::string& path);

  /// Unmaps and forgets the mapping (no-op when empty).
  void Close();

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool is_open() const { return open_; }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool open_ = false;
  bool mapped_ = false;       // data_ came from mmap (else owned fallback)
  std::string owned_;         // fallback storage when not mapped
};

}  // namespace esharp

#endif  // ESHARP_COMMON_FILE_IO_H_
