#include "common/timer.h"

#include "common/strings.h"

namespace esharp {

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  if (u == 0) return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StrFormat("%.1f %s", v, units[u]);
}

}  // namespace esharp
