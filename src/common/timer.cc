#include "common/timer.h"

#include "common/strings.h"

namespace esharp {

ResourceMeter::StageStats& ResourceMeter::GetOrCreate(
    const std::string& stage) {
  auto it = stages_.find(stage);
  if (it == stages_.end()) {
    order_.push_back(stage);
    it = stages_.emplace(stage, StageStats{}).first;
  }
  return it->second;
}

void ResourceMeter::Record(const std::string& stage, const StageStats& stats) {
  StageStats& s = GetOrCreate(stage);
  s.seconds += stats.seconds;
  s.bytes_read += stats.bytes_read;
  s.bytes_written += stats.bytes_written;
  s.rows_read += stats.rows_read;
  s.rows_written += stats.rows_written;
  s.parallelism = stats.parallelism;
}

void ResourceMeter::AddTime(const std::string& stage, double seconds) {
  GetOrCreate(stage).seconds += seconds;
}

void ResourceMeter::AddIO(const std::string& stage, uint64_t bytes_read,
                          uint64_t bytes_written) {
  StageStats& s = GetOrCreate(stage);
  s.bytes_read += bytes_read;
  s.bytes_written += bytes_written;
}

void ResourceMeter::AddRows(const std::string& stage, uint64_t rows_read,
                            uint64_t rows_written) {
  StageStats& s = GetOrCreate(stage);
  s.rows_read += rows_read;
  s.rows_written += rows_written;
}

void ResourceMeter::SetParallelism(const std::string& stage,
                                   size_t parallelism) {
  GetOrCreate(stage).parallelism = parallelism;
}

ResourceMeter::StageStats ResourceMeter::Get(const std::string& stage) const {
  auto it = stages_.find(stage);
  if (it == stages_.end()) return StageStats{};
  return it->second;
}

std::vector<std::string> ResourceMeter::StageNames() const { return order_; }

std::string ResourceMeter::ToTable() const {
  std::string out =
      StrFormat("%-12s %8s %12s %12s %12s %12s %12s\n", "Step", "Workers",
                "Runtime", "Read", "Write", "RowsIn", "RowsOut");
  for (const std::string& name : order_) {
    const StageStats& s = stages_.at(name);
    out += StrFormat("%-12s %8zu %10.3fs %12s %12s %12llu %12llu\n",
                     name.c_str(), s.parallelism, s.seconds,
                     HumanBytes(s.bytes_read).c_str(),
                     HumanBytes(s.bytes_written).c_str(),
                     static_cast<unsigned long long>(s.rows_read),
                     static_cast<unsigned long long>(s.rows_written));
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  if (u == 0) return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StrFormat("%.1f %s", v, units[u]);
}

}  // namespace esharp
