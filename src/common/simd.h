#ifndef ESHARP_COMMON_SIMD_H_
#define ESHARP_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "common/hash.h"

/// \file
/// Portable SIMD kernel layer for the hot loops the profile actually
/// shows: selection-vector compaction (columnar filter), batched
/// HashCombine/Mix64 (join/partition/aggregate key hashing), sorted-u32
/// intersection (token postings), horizontal min (k-way evidence merge)
/// and a word-parallel checksum (binary snapshot validation).
///
/// Contract: every dispatched kernel is **bit-identical** to its scalar
/// twin in `simd::scalar` — same outputs for the same inputs, on every
/// input. The randomized equivalence suite in tests/simd_test.cc holds the
/// pair to that; callers may therefore switch freely between them.
///
/// Dispatch: `-DESHARP_SIMD=OFF` compiles the scalar twins only (the
/// portable build CI keeps honest). When ON (default), the implementation
/// compiles AVX2 and SSE4.2 variants as target-attribute functions — no
/// global -mavx2, the binary stays runnable on any x86-64 — and picks the
/// best level the CPU supports once, at first use. ForceLevelForTest
/// clamps the dispatch for equivalence tests and A/B benches.

namespace esharp::simd {

/// Instruction-set level of the dispatched kernels.
enum class Level : int {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
};

/// The level the dispatcher currently uses: the best supported level,
/// clamped by ForceLevelForTest. kScalar always works.
Level ActiveLevel();

/// Best level this CPU (and build configuration) supports.
Level DetectedLevel();

/// Human-readable level name ("scalar", "sse4.2", "avx2").
std::string_view LevelName(Level level);

/// Clamps dispatch to `level` (levels above the detected one are reduced
/// to it). Tests and benches only; not thread-safe against in-flight
/// kernels on other threads.
void ForceLevelForTest(Level level);

/// \name Scalar reference twins
///
/// Always compiled, never dispatched: the behavioral specification of the
/// kernels below, and the fallback body when ESHARP_SIMD is OFF or the CPU
/// lacks vector units.
/// @{
namespace scalar {

/// Writes the indexes of non-zero bytes of `flags[0..n)` to `out`
/// (ascending) and returns how many were written. `out` must have room
/// for n + 7 entries: the vector variants emulate a compress-store with
/// full-register writes at `out + k`, so up to 7 slots past the returned
/// count are clobbered with garbage (the scalar twin never touches them,
/// but the contract is uniform across levels).
size_t CompactSelection(const uint8_t* flags, size_t n, uint32_t* out);

/// acc[i] = HashCombine(acc[i], h[i]) for i in [0, n).
void HashCombineBatch(uint64_t* acc, const uint64_t* h, size_t n);

/// acc[i] = HashCombine(acc[i], Mix64(keys[i])) — the fused form the key
/// hashers use (hash of a canonicalized numeric cell combined into the
/// running row hash).
void HashCombineMix64Batch(uint64_t* acc, const uint64_t* keys, size_t n);

/// Intersects two strictly-increasing u32 arrays into `out` (ascending);
/// returns the intersection size. `out` must have room for min(na, nb).
size_t IntersectSortedU32(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb, uint32_t* out);

/// Minimum of v[0..n), n >= 1.
uint32_t MinU32(const uint32_t* v, size_t n);

/// Order-independent 64-bit checksum over bytes: the data is cut into
/// little-endian 8-byte words (the tail zero-padded), each word is mixed
/// with its position and XOR-folded. XOR makes the accumulation fully
/// parallel; the position term makes swapped words detectable.
uint64_t Checksum64(const void* data, size_t size);

}  // namespace scalar
/// @}

/// \name Dispatched kernels
///
/// Same contracts as the scalar twins, routed to the best enabled level.
/// @{
size_t CompactSelection(const uint8_t* flags, size_t n, uint32_t* out);
void HashCombineBatch(uint64_t* acc, const uint64_t* h, size_t n);
void HashCombineMix64Batch(uint64_t* acc, const uint64_t* keys, size_t n);
size_t IntersectSortedU32(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb, uint32_t* out);
uint32_t MinU32(const uint32_t* v, size_t n);
uint64_t Checksum64(const void* data, size_t size);
/// @}

}  // namespace esharp::simd

#endif  // ESHARP_COMMON_SIMD_H_
