#ifndef ESHARP_COMMON_PARTITIONER_H_
#define ESHARP_COMMON_PARTITIONER_H_

#include <cassert>
#include <cstdint>
#include <string_view>

#include "common/hash.h"

namespace esharp {

/// \brief Deterministic assignment of ids and keys to a fixed number of
/// shards.
///
/// The cluster tier partitions the corpus at snapshot-build time and routes
/// queries at serve time; both sides construct their own Partitioner from
/// the shard count alone, so they can never disagree about where a tweet
/// lives — there is no shared mutable routing table to drift. The mapping
/// is pure integer arithmetic (Mix64 / FNV-1a), so it is identical across
/// platforms, compilers and runs; common_test pins golden values to keep it
/// that way (changing the mapping silently invalidates every partitioned
/// snapshot).
///
/// Dense ids (tweet ids, user ids) go through Mix64 first: `id % shards`
/// would stripe insertion order across shards, which keeps neighboring
/// tweets — often the same author's burst — artificially correlated.
class Partitioner {
 public:
  explicit Partitioner(uint32_t num_shards) : num_shards_(num_shards) {
    assert(num_shards > 0 && "a partitioner needs at least one shard");
  }

  uint32_t num_shards() const { return num_shards_; }

  /// Shard of a dense numeric id (tweet id, user id).
  uint32_t ShardOfId(uint64_t id) const {
    return static_cast<uint32_t>(Mix64(id) % num_shards_);
  }

  /// Shard of a string key (query text, term). Mix64 on top of FNV-1a
  /// because FNV's low bits are weak for short keys.
  uint32_t ShardOfKey(std::string_view key) const {
    return static_cast<uint32_t>(Mix64(Fnv1a64(key)) % num_shards_);
  }

 private:
  uint32_t num_shards_;
};

}  // namespace esharp

#endif  // ESHARP_COMMON_PARTITIONER_H_
