#ifndef ESHARP_COMMON_RESULT_H_
#define ESHARP_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace esharp {

/// \brief Either a value of type T or an error Status (Arrow-style Result).
///
/// Use together with ESHARP_ASSIGN_OR_RETURN to keep error propagation terse:
///
///   ESHARP_ASSIGN_OR_RETURN(auto graph, BuildGraph(log));
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit, enables `return value;`).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error (implicit, enables
  /// `return Status::InvalidArgument(...)`). The status must not be OK.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok() && "Result constructed from OK status");
  }

  /// Returns true iff this holds a value.
  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns the error (Status::OK() when ok()).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  /// Returns the value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie called on error Result");
    return std::get<T>(rep_);
  }
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie called on error Result");
    return std::get<T>(rep_);
  }
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie called on error Result");
    return std::get<T>(std::move(rep_));
  }

  /// Moves the value out; must only be called when ok().
  T MoveValueUnsafe() { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  /// Dereferencing a temporary Result moves the value out, so move-only
  /// payloads (e.g. the COW TweetCorpus) work with `T v = *MakeT(...);`.
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace esharp

#define ESHARP_CONCAT_IMPL(a, b) a##b
#define ESHARP_CONCAT(a, b) ESHARP_CONCAT_IMPL(a, b)

/// \brief Evaluates a Result-returning expression; on error returns the
/// Status, otherwise assigns the value to `lhs`.
#define ESHARP_ASSIGN_OR_RETURN(lhs, expr)                                  \
  auto ESHARP_CONCAT(_res_, __LINE__) = (expr);                             \
  if (!ESHARP_CONCAT(_res_, __LINE__).ok())                                 \
    return ESHARP_CONCAT(_res_, __LINE__).status();                         \
  lhs = std::move(ESHARP_CONCAT(_res_, __LINE__)).MoveValueUnsafe()

#endif  // ESHARP_COMMON_RESULT_H_
