#ifndef ESHARP_COMMON_THREAD_POOL_H_
#define ESHARP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace esharp {

/// \brief Fixed-size worker pool used by the parallel relational operators.
///
/// The paper runs its pipeline on a virtualized SCOPE cluster where "a
/// relational operator can use between one and hundreds of virtual machines".
/// In this reproduction, pool workers stand in for VMs: every partitioned
/// operator submits one task per partition and waits on the batch.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules a task; returns a future for its completion.
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// complete. Exceptions escape from the calling thread.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Number of worker threads.
  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace esharp

#endif  // ESHARP_COMMON_THREAD_POOL_H_
