#ifndef ESHARP_COMMON_STATUS_H_
#define ESHARP_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace esharp {

/// \brief Machine-readable category of a failure.
///
/// Modeled after the Status idiom used by RocksDB and Apache Arrow: every
/// fallible operation returns a Status (or a Result<T>, see result.h) instead
/// of throwing. The OK path stores no heap state.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kInternal = 6,
  kNotImplemented = 7,
  kFailedPrecondition = 8,
  /// The service is overloaded and shed the request; safe to retry later.
  kUnavailable = 9,
  /// The request's deadline elapsed before the work completed.
  kDeadlineExceeded = 10,
};

/// \brief Human-readable name of a StatusCode (e.g. "Invalid argument").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// Cheap to copy when OK (single pointer, no allocation). Construct errors
/// through the named factories: `Status::InvalidArgument("bad k: ", k)`.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. Prefer the named
  /// factory functions below.
  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(msg)});
    }
  }

  /// Returns an OK status (no error).
  static Status OK() { return Status(); }

  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Make(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return Make(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status IOError(Args&&... args) {
    return Make(StatusCode::kIOError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotImplemented(Args&&... args) {
    return Make(StatusCode::kNotImplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status FailedPrecondition(Args&&... args) {
    return Make(StatusCode::kFailedPrecondition, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Unavailable(Args&&... args) {
    return Make(StatusCode::kUnavailable, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status DeadlineExceeded(Args&&... args) {
    return Make(StatusCode::kDeadlineExceeded, std::forward<Args>(args)...);
  }

  /// Returns true iff the operation succeeded.
  bool ok() const { return rep_ == nullptr; }

  /// Returns the status code (kOk when ok()).
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// Returns the error message ("" when ok()).
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// Renders "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };

  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args);

  std::shared_ptr<Rep> rep_;  // null == OK
};

namespace internal {
inline void AppendPieces(std::string*) {}
template <typename T, typename... Rest>
void AppendPieces(std::string* out, T&& first, Rest&&... rest) {
  if constexpr (std::is_arithmetic_v<std::decay_t<T>>) {
    out->append(std::to_string(first));
  } else {
    out->append(first);
  }
  AppendPieces(out, std::forward<Rest>(rest)...);
}
}  // namespace internal

template <typename... Args>
Status Status::Make(StatusCode code, Args&&... args) {
  std::string msg;
  internal::AppendPieces(&msg, std::forward<Args>(args)...);
  return Status(code, std::move(msg));
}

}  // namespace esharp

/// \brief Propagates a non-OK Status to the caller (Arrow idiom).
#define ESHARP_RETURN_NOT_OK(expr)                \
  do {                                            \
    ::esharp::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (false)

#endif  // ESHARP_COMMON_STATUS_H_
