#ifndef ESHARP_COMMON_RNG_H_
#define ESHARP_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace esharp {

/// \brief Deterministic pseudo-random generator (xoshiro256**).
///
/// Every stochastic component in the repository draws from an explicitly
/// seeded Rng so that experiments are reproducible bit-for-bit. The generator
/// is small, fast and has no global state; fork child generators with Split()
/// to give parallel stages independent, stable streams.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 42);

  /// Returns the next raw 64-bit draw.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Returns a uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a standard normal draw (Box–Muller, one value per call).
  double Gaussian();

  /// Returns a draw from LogNormal(mu, sigma) = exp(Gaussian()*sigma + mu).
  double LogNormal(double mu, double sigma);

  /// Returns a Poisson draw with the given mean (Knuth for small means,
  /// normal approximation above 64).
  uint64_t Poisson(double mean);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffles v in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Forks an independent child generator whose stream is a deterministic
  /// function of this generator's state.
  Rng Split();

 private:
  uint64_t s_[4];
};

/// \brief Zipf-distributed sampler over ranks {0, ..., n-1}.
///
/// P(rank = k) ∝ 1 / (k+1)^s. Web query popularity is famously Zipfian; the
/// query-log simulator uses this to reproduce head/tail structure. Sampling
/// is O(log n) by binary search over the precomputed CDF.
class ZipfSampler {
 public:
  /// Builds a sampler over n ranks with exponent s (> 0). n must be > 0.
  ZipfSampler(size_t n, double s);

  /// Draws a rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// Probability mass of a given rank.
  double Pmf(size_t rank) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  std::vector<double> pmf_;
};

}  // namespace esharp

#endif  // ESHARP_COMMON_RNG_H_
