#include "common/thread_pool.h"

#include <algorithm>

namespace esharp {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace esharp
