#include "common/stats.h"

#include <cmath>

namespace esharp {

void OnlineStats::Add(double x) {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::Variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double OnlineStats::StdDev() const { return std::sqrt(Variance()); }

double OnlineStats::ZScore(double x) const {
  double sd = StdDev();
  if (sd == 0.0) return 0.0;
  return (x - mean_) / sd;
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  size_t total = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
  n_ = total;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  double mx = Mean(xs), my = Mean(ys);
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0 || syy == 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace esharp
