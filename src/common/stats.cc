#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace esharp {

void OnlineStats::Add(double x) {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::Variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double OnlineStats::StdDev() const { return std::sqrt(Variance()); }

double OnlineStats::ZScore(double x) const {
  double sd = StdDev();
  if (sd == 0.0) return 0.0;
  return (x - mean_) / sd;
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  size_t total = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
  n_ = total;
}

namespace {
// Bucket bounds span [1us, ~100s]: 1e-6 * kGrowth^i with kGrowth chosen so
// bucket kNumBuckets-1 tops out at 1e2 seconds.
constexpr double kMinLatency = 1e-6;
constexpr double kMaxLatency = 1e2;
}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

double LatencyHistogram::BucketUpperBound(size_t i) {
  double frac = static_cast<double>(i + 1) / static_cast<double>(kNumBuckets);
  return kMinLatency * std::pow(kMaxLatency / kMinLatency, frac);
}

size_t LatencyHistogram::BucketIndex(double seconds) {
  if (seconds <= kMinLatency) return 0;
  if (seconds >= kMaxLatency) return kNumBuckets - 1;
  double log_span = std::log(kMaxLatency / kMinLatency);
  double frac = std::log(seconds / kMinLatency) / log_span;
  size_t i = static_cast<size_t>(frac * static_cast<double>(kNumBuckets));
  return i >= kNumBuckets ? kNumBuckets - 1 : i;
}

void LatencyHistogram::Add(double seconds) {
  if (seconds < 0 || std::isnan(seconds)) seconds = 0;
  ++buckets_[BucketIndex(seconds)];
  ++n_;
  sum_ += seconds;
  if (seconds > max_) max_ = seconds;
}

double LatencyHistogram::Mean() const {
  return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_);
}

double LatencyHistogram::Percentile(double p) const {
  if (n_ == 0) return 0.0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the observation we want, 1-based; ceil so p=0 maps to rank 1.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n_)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return BucketUpperBound(i);
  }
  return max_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  n_ += other.n_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  n_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  double mx = Mean(xs), my = Mean(ys);
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0 || syy == 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace esharp
