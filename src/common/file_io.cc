#include "common/file_io.h"

#include <cerrno>
#include <cstdio>
#include <system_error>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace esharp {

namespace {

/// "No such file or directory (errno 2)" — the cause callers were missing
/// when open/read/map failed with a bare "cannot open".
std::string ErrnoDetail(int err) {
  return std::generic_category().message(err) + " (errno " +
         std::to_string(err) + ")";
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path,
                                     uint64_t max_bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '", path, "' for reading: ",
                           ErrnoDetail(errno));
  }
  std::string out;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    if (out.size() + n > max_bytes) {
      std::fclose(f);
      return Status::IOError("refusing to read '", path, "': larger than the ",
                             max_bytes, "-byte cap");
    }
    out.append(buffer, n);
  }
  const int read_errno = errno;
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::IOError("read error on '", path, "': ",
                           ErrnoDetail(read_errno));
  }
  return out;
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open '", path, "' for writing: ",
                           ErrnoDetail(errno));
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int write_errno = errno;
  bool failed = written != content.size();
  if (std::fclose(f) != 0) failed = true;
  if (failed) {
    return Status::IOError("write error on '", path, "': ",
                           ErrnoDetail(write_errno));
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

MmapFile::~MmapFile() { Close(); }

MmapFile::MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this == &other) return *this;
  Close();
  data_ = other.data_;
  size_ = other.size_;
  open_ = other.open_;
  mapped_ = other.mapped_;
  owned_ = std::move(other.owned_);
  // The fallback buffer may be small enough for SSO, in which case the
  // move relocated the bytes; re-anchor the view.
  if (open_ && !mapped_) {
    data_ = reinterpret_cast<const uint8_t*>(owned_.data());
  }
  other.data_ = nullptr;
  other.size_ = 0;
  other.open_ = false;
  other.mapped_ = false;
  other.owned_.clear();
  return *this;
}

Status MmapFile::Open(const std::string& path) {
  Close();
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open '", path, "': ", ErrnoDetail(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat '", path, "': ", ErrnoDetail(err));
  }
  size_ = static_cast<size_t>(st.st_size);
  if (size_ == 0) {
    // mmap of length 0 is EINVAL; an empty file is a valid (empty) view.
    ::close(fd);
    data_ = nullptr;
    open_ = true;
    mapped_ = false;
    return Status::OK();
  }
  void* addr = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (addr == MAP_FAILED) {
    // Fall back to a plain read: same bytes, no zero-copy. Carry the mmap
    // cause if the read also fails.
    const int map_err = errno;
    ::close(fd);
    Result<std::string> read = ReadFileToString(path, SIZE_MAX);
    if (!read.ok()) {
      return Status::IOError("cannot map '", path, "': ",
                             ErrnoDetail(map_err),
                             "; fallback read also failed: ",
                             read.status().message());
    }
    owned_ = std::move(read).MoveValueUnsafe();
    size_ = owned_.size();
    data_ = reinterpret_cast<const uint8_t*>(owned_.data());
    open_ = true;
    mapped_ = false;
    return Status::OK();
  }
  ::close(fd);  // the mapping survives the descriptor
  data_ = static_cast<const uint8_t*>(addr);
  open_ = true;
  mapped_ = true;
  return Status::OK();
}

void MmapFile::Close() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  open_ = false;
  mapped_ = false;
  owned_.clear();
  owned_.shrink_to_fit();
}

}  // namespace esharp
