#include "common/file_io.h"

#include <cstdio>

namespace esharp {

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '", path, "' for reading");
  }
  std::string out;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out.append(buffer, n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IOError("read error on '", path, "'");
  return out;
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open '", path, "' for writing");
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  bool failed = written != content.size();
  if (std::fclose(f) != 0) failed = true;
  if (failed) return Status::IOError("write error on '", path, "'");
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace esharp
