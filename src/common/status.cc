#include "common/status.h"

namespace esharp {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out.append(": ");
  out.append(message());
  return out;
}

}  // namespace esharp
