#ifndef ESHARP_COMMON_TIMER_H_
#define ESHARP_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>

// ResourceMeter lived here before the observability subsystem; it now sits
// in src/obs (where it mirrors into the metrics registry) and this include
// keeps the many `#include "common/timer.h"` call sites working unchanged.
#include "obs/resource_meter.h"

namespace esharp {

/// \brief Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Pretty-prints a byte count ("1.4 GB", "94 MB", ...).
std::string HumanBytes(uint64_t bytes);

}  // namespace esharp

#endif  // ESHARP_COMMON_TIMER_H_
