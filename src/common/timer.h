#ifndef ESHARP_COMMON_TIMER_H_
#define ESHARP_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace esharp {

/// \brief Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Per-stage resource accounting for the pipeline (Table 9).
///
/// Each offline/online stage records wall time, bytes read, bytes written and
/// the degree of parallelism used (our stand-in for the paper's VM counts).
class ResourceMeter {
 public:
  struct StageStats {
    double seconds = 0;
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    uint64_t rows_read = 0;
    uint64_t rows_written = 0;
    size_t parallelism = 1;
  };

  /// Accumulates stats for a named stage (creates it on first use).
  void Record(const std::string& stage, const StageStats& stats);

  /// Adds elapsed time to a stage.
  void AddTime(const std::string& stage, double seconds);

  /// Adds IO volume to a stage.
  void AddIO(const std::string& stage, uint64_t bytes_read,
             uint64_t bytes_written);

  /// Adds row counts to a stage.
  void AddRows(const std::string& stage, uint64_t rows_read,
               uint64_t rows_written);

  /// Sets the parallelism used by a stage.
  void SetParallelism(const std::string& stage, size_t parallelism);

  /// Stats for one stage (default-constructed if absent).
  StageStats Get(const std::string& stage) const;

  /// Stage names in insertion order.
  std::vector<std::string> StageNames() const;

  /// Renders a Table 9-style report.
  std::string ToTable() const;

 private:
  StageStats& GetOrCreate(const std::string& stage);

  std::vector<std::string> order_;
  std::map<std::string, StageStats> stages_;
};

/// \brief Pretty-prints a byte count ("1.4 GB", "94 MB", ...).
std::string HumanBytes(uint64_t bytes);

}  // namespace esharp

#endif  // ESHARP_COMMON_TIMER_H_
