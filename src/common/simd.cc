#include "common/simd.h"

#include <atomic>

// ESHARP_SIMD_OFF (set by -DESHARP_SIMD=OFF) compiles the scalar twins
// only; the dispatcher then reports and uses kScalar everywhere. The
// vector variants are target-attribute functions, so the rest of the
// project needs no -mavx2 and the binary keeps running on machines
// without those units.
#if !defined(ESHARP_SIMD_OFF) && (defined(__x86_64__) || defined(__i386__))
#define ESHARP_SIMD_X86 1
#include <immintrin.h>
#else
#define ESHARP_SIMD_X86 0
#endif

namespace esharp::simd {

namespace scalar {

size_t CompactSelection(const uint8_t* flags, size_t n, uint32_t* out) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    // Branchless: always write the candidate index, advance only on a hit.
    out[k] = static_cast<uint32_t>(i);
    k += flags[i] != 0;
  }
  return k;
}

void HashCombineBatch(uint64_t* acc, const uint64_t* h, size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] = HashCombine(acc[i], h[i]);
}

void HashCombineMix64Batch(uint64_t* acc, const uint64_t* keys, size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] = HashCombine(acc[i], Mix64(keys[i]));
}

size_t IntersectSortedU32(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb, uint32_t* out) {
  size_t i = 0, j = 0, k = 0;
  while (i < na && j < nb) {
    uint32_t x = a[i], y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      out[k++] = x;
      ++i;
      ++j;
    }
  }
  return k;
}

uint32_t MinU32(const uint32_t* v, size_t n) {
  uint32_t m = v[0];
  for (size_t i = 1; i < n; ++i) m = v[i] < m ? v[i] : m;
  return m;
}

namespace {
/// Word-position multiplier of Checksum64 (golden-ratio constant; the
/// (i+1)*kChecksumStep term makes word swaps change the XOR fold).
constexpr uint64_t kChecksumStep = 0x9e3779b97f4a7c15ULL;
}  // namespace

uint64_t Checksum64(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const size_t words = size / 8;
  uint64_t h = kChecksumStep ^ static_cast<uint64_t>(size);
  for (size_t i = 0; i < words; ++i) {
    uint64_t w;
    std::memcpy(&w, p + i * 8, 8);
    h ^= Mix64(w + (static_cast<uint64_t>(i) + 1) * kChecksumStep);
  }
  const size_t tail = size - words * 8;
  if (tail > 0) {
    uint64_t w = 0;
    std::memcpy(&w, p + words * 8, tail);
    h ^= Mix64(w + (static_cast<uint64_t>(words) + 1) * kChecksumStep);
  }
  return h;
}

}  // namespace scalar

#if ESHARP_SIMD_X86

namespace {

// ---- AVX2 variants --------------------------------------------------------

#define ESHARP_TARGET_AVX2 __attribute__((target("avx2")))
#define ESHARP_TARGET_SSE42 __attribute__((target("sse4.2")))

/// 64x64 -> low 64 multiply per lane (AVX2 has no _mm256_mullo_epi64):
/// lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32), exact mod 2^64.
ESHARP_TARGET_AVX2 inline __m256i Mul64Lo(__m256i a, __m256i b) {
  __m256i lo_hi = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
  __m256i hi_lo = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
  __m256i cross = _mm256_add_epi64(lo_hi, hi_lo);
  __m256i lo_lo = _mm256_mul_epu32(a, b);
  return _mm256_add_epi64(lo_lo, _mm256_slli_epi64(cross, 32));
}

ESHARP_TARGET_AVX2 inline __m256i Mix64Lanes(__m256i k) {
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = Mul64Lo(k, _mm256_set1_epi64x(static_cast<long long>(0xff51afd7ed558ccdULL)));
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = Mul64Lo(k, _mm256_set1_epi64x(static_cast<long long>(0xc4ceb9fe1a85ec53ULL)));
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  return k;
}

/// acc = HashCombine(acc, h) per lane: acc ^ (h + C + (acc<<6) + (acc>>2)).
ESHARP_TARGET_AVX2 inline __m256i HashCombineLanes(__m256i acc, __m256i h) {
  __m256i t = _mm256_add_epi64(
      h, _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL)));
  t = _mm256_add_epi64(t, _mm256_slli_epi64(acc, 6));
  t = _mm256_add_epi64(t, _mm256_srli_epi64(acc, 2));
  return _mm256_xor_si256(acc, t);
}

/// 256-entry compress LUT: for each 8-bit hit mask, the lane numbers of
/// its set bits packed to the front (trailing lanes are don't-care — the
/// callers' +7 output slack absorbs the full-register store).
struct CompressLut8 {
  alignas(32) uint32_t idx[256][8];
  CompressLut8() {
    for (int m = 0; m < 256; ++m) {
      int c = 0;
      for (int b = 0; b < 8; ++b) {
        if ((m >> b) & 1) idx[m][c++] = static_cast<uint32_t>(b);
      }
      for (; c < 8; ++c) idx[m][c] = 0;
    }
  }
};
const CompressLut8 kCompressLut8;

ESHARP_TARGET_AVX2 size_t CompactSelectionAvx2(const uint8_t* flags, size_t n,
                                               uint32_t* out) {
  // Emulated compress-store (no AVX2 vpcompressd): per mask byte, a LUT
  // shuffle packs the 8 candidate indexes and one full-register store
  // writes them — density-independent, ~3x the autovectorized branchless
  // sweep, with a whole-block skip for the selective-filter case. Writes
  // up to 7 garbage lanes past the final count (the contract's +7 slack).
  size_t k = 0;
  size_t i = 0;
  const __m256i zero = _mm256_setzero_si256();
  const __m256i inc8 = _mm256_set1_epi32(8);
  const __m256i inc32 = _mm256_set1_epi32(32);
  __m256i base = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  for (; i + 32 <= n; i += 32) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(flags + i));
    // cmpeq-with-zero marks the *false* lanes; invert for the hits.
    uint32_t mask = ~static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    if (mask == 0) {  // whole block empty: the selective-filter win
      base = _mm256_add_epi32(base, inc32);
      continue;
    }
    for (int b = 0; b < 4; ++b) {
      const uint8_t mb = static_cast<uint8_t>(mask >> (8 * b));
      __m256i lanes = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kCompressLut8.idx[mb]));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k),
                          _mm256_permutevar8x32_epi32(base, lanes));
      k += static_cast<size_t>(__builtin_popcount(mb));
      base = _mm256_add_epi32(base, inc8);
    }
  }
  for (; i < n; ++i) {
    out[k] = static_cast<uint32_t>(i);
    k += flags[i] != 0;
  }
  return k;
}

ESHARP_TARGET_AVX2 void HashCombineBatchAvx2(uint64_t* acc, const uint64_t* h,
                                             size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        HashCombineLanes(a, b));
  }
  for (; i < n; ++i) acc[i] = HashCombine(acc[i], h[i]);
}

ESHARP_TARGET_AVX2 void HashCombineMix64BatchAvx2(uint64_t* acc,
                                                  const uint64_t* keys,
                                                  size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    __m256i k = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        HashCombineLanes(a, Mix64Lanes(k)));
  }
  for (; i < n; ++i) acc[i] = HashCombine(acc[i], Mix64(keys[i]));
}

/// 8x8 all-pairs block intersection: compare an 8-lane block of `a`
/// against every rotation of an 8-lane block of `b`, emit the matched `a`
/// lanes in order, and advance whichever block's maximum is smaller.
/// Inputs are strictly increasing, so the matches of a block pair are
/// unique and in ascending lane order.
ESHARP_TARGET_AVX2 size_t IntersectSortedU32Avx2(const uint32_t* a, size_t na,
                                                 const uint32_t* b, size_t nb,
                                                 uint32_t* out) {
  size_t i = 0, j = 0, k = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i match = _mm256_cmpeq_epi32(va, vb);
    __m256i rot = vb;
    const __m256i rotate1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    for (int r = 1; r < 8; ++r) {
      rot = _mm256_permutevar8x32_epi32(rot, rotate1);
      match = _mm256_or_si256(match, _mm256_cmpeq_epi32(va, rot));
    }
    uint32_t mask = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(match)));
    while (mask != 0) {
      out[k++] = a[i + __builtin_ctz(mask)];
      mask &= mask - 1;
    }
    // A block whose max is <= the other's max cannot match anything the
    // other array holds beyond its current block (values there are
    // strictly greater), so it is fully resolved.
    const uint32_t amax = a[i + 7];
    const uint32_t bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  return k + scalar::IntersectSortedU32(a + i, na - i, b + j, nb - j, out + k);
}

ESHARP_TARGET_AVX2 uint32_t MinU32Avx2(const uint32_t* v, size_t n) {
  if (n < 8) return scalar::MinU32(v, n);
  __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
  size_t i = 8;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_min_epu32(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
  }
  alignas(32) uint32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint32_t m = scalar::MinU32(lanes, 8);
  if (i < n) {
    uint32_t tail = scalar::MinU32(v + i, n - i);
    m = tail < m ? tail : m;
  }
  return m;
}

ESHARP_TARGET_AVX2 uint64_t Checksum64Avx2(const void* data, size_t size) {
  constexpr uint64_t kStep = 0x9e3779b97f4a7c15ULL;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const size_t words = size / 8;
  uint64_t h = kStep ^ static_cast<uint64_t>(size);
  size_t i = 0;
  if (words >= 4) {
    __m256i acc = _mm256_setzero_si256();
    // Per-lane position multipliers (i+1)*kStep .. (i+4)*kStep, kept
    // incrementally (all arithmetic mod 2^64, same as the scalar twin).
    __m256i pos = _mm256_setr_epi64x(
        static_cast<long long>(kStep), static_cast<long long>(2 * kStep),
        static_cast<long long>(3 * kStep), static_cast<long long>(4 * kStep));
    const __m256i step = _mm256_set1_epi64x(static_cast<long long>(4 * kStep));
    for (; i + 4 <= words; i += 4) {
      __m256i w =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i * 8));
      acc = _mm256_xor_si256(acc, Mix64Lanes(_mm256_add_epi64(w, pos)));
      pos = _mm256_add_epi64(pos, step);
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    h ^= lanes[0] ^ lanes[1] ^ lanes[2] ^ lanes[3];
  }
  for (; i < words; ++i) {
    uint64_t w;
    std::memcpy(&w, p + i * 8, 8);
    h ^= Mix64(w + (static_cast<uint64_t>(i) + 1) * kStep);
  }
  const size_t tail = size - words * 8;
  if (tail > 0) {
    uint64_t w = 0;
    std::memcpy(&w, p + words * 8, tail);
    h ^= Mix64(w + (static_cast<uint64_t>(words) + 1) * kStep);
  }
  return h;
}

// ---- SSE4.2 variants ------------------------------------------------------

ESHARP_TARGET_SSE42 inline __m128i Mul64LoSse(__m128i a, __m128i b) {
  __m128i lo_hi = _mm_mul_epu32(a, _mm_srli_epi64(b, 32));
  __m128i hi_lo = _mm_mul_epu32(_mm_srli_epi64(a, 32), b);
  __m128i cross = _mm_add_epi64(lo_hi, hi_lo);
  __m128i lo_lo = _mm_mul_epu32(a, b);
  return _mm_add_epi64(lo_lo, _mm_slli_epi64(cross, 32));
}

ESHARP_TARGET_SSE42 inline __m128i Mix64LanesSse(__m128i k) {
  k = _mm_xor_si128(k, _mm_srli_epi64(k, 33));
  k = Mul64LoSse(k, _mm_set1_epi64x(static_cast<long long>(0xff51afd7ed558ccdULL)));
  k = _mm_xor_si128(k, _mm_srli_epi64(k, 33));
  k = Mul64LoSse(k, _mm_set1_epi64x(static_cast<long long>(0xc4ceb9fe1a85ec53ULL)));
  k = _mm_xor_si128(k, _mm_srli_epi64(k, 33));
  return k;
}

ESHARP_TARGET_SSE42 inline __m128i HashCombineLanesSse(__m128i acc, __m128i h) {
  __m128i t = _mm_add_epi64(
      h, _mm_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL)));
  t = _mm_add_epi64(t, _mm_slli_epi64(acc, 6));
  t = _mm_add_epi64(t, _mm_srli_epi64(acc, 2));
  return _mm_xor_si128(acc, t);
}

/// 16-entry compress LUT for the SSE path: for each 4-bit hit mask, a
/// pshufb control packing the set lanes' 4-byte groups to the front
/// (0x80 zeroes the don't-care tail bytes).
struct CompressLut4 {
  alignas(16) uint8_t ctrl[16][16];
  CompressLut4() {
    for (int m = 0; m < 16; ++m) {
      int c = 0;
      for (int b = 0; b < 4; ++b) {
        if ((m >> b) & 1) {
          for (int byte = 0; byte < 4; ++byte) {
            ctrl[m][4 * c + byte] = static_cast<uint8_t>(4 * b + byte);
          }
          ++c;
        }
      }
      for (int rest = 4 * c; rest < 16; ++rest) ctrl[m][rest] = 0x80;
    }
  }
};
const CompressLut4 kCompressLut4;

ESHARP_TARGET_SSE42 size_t CompactSelectionSse42(const uint8_t* flags,
                                                 size_t n, uint32_t* out) {
  // Same emulated compress-store as the AVX2 variant, 4 lanes per nibble
  // via pshufb. Writes up to 3 garbage lanes past the final count (covered
  // by the contract's +7 slack).
  size_t k = 0;
  size_t i = 0;
  const __m128i zero = _mm_setzero_si128();
  const __m128i inc4 = _mm_set1_epi32(4);
  const __m128i inc16 = _mm_set1_epi32(16);
  __m128i base = _mm_setr_epi32(0, 1, 2, 3);
  for (; i + 16 <= n; i += 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(flags + i));
    uint32_t mask =
        (~static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, zero)))) &
        0xFFFFu;
    if (mask == 0) {
      base = _mm_add_epi32(base, inc16);
      continue;
    }
    for (int b = 0; b < 4; ++b) {
      const uint32_t m4 = (mask >> (4 * b)) & 0xFu;
      __m128i ctrl = _mm_load_si128(
          reinterpret_cast<const __m128i*>(kCompressLut4.ctrl[m4]));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k),
                       _mm_shuffle_epi8(base, ctrl));
      k += static_cast<size_t>(__builtin_popcount(m4));
      base = _mm_add_epi32(base, inc4);
    }
  }
  for (; i < n; ++i) {
    out[k] = static_cast<uint32_t>(i);
    k += flags[i] != 0;
  }
  return k;
}

ESHARP_TARGET_SSE42 void HashCombineBatchSse42(uint64_t* acc,
                                               const uint64_t* h, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i),
                     HashCombineLanesSse(a, b));
  }
  for (; i < n; ++i) acc[i] = HashCombine(acc[i], h[i]);
}

ESHARP_TARGET_SSE42 void HashCombineMix64BatchSse42(uint64_t* acc,
                                                    const uint64_t* keys,
                                                    size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
    __m128i k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i),
                     HashCombineLanesSse(a, Mix64LanesSse(k)));
  }
  for (; i < n; ++i) acc[i] = HashCombine(acc[i], Mix64(keys[i]));
}

ESHARP_TARGET_SSE42 size_t IntersectSortedU32Sse42(const uint32_t* a,
                                                   size_t na,
                                                   const uint32_t* b,
                                                   size_t nb, uint32_t* out) {
  size_t i = 0, j = 0, k = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i match = _mm_cmpeq_epi32(va, vb);
    match = _mm_or_si128(
        match, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x39)));  // rot 1
    match = _mm_or_si128(
        match, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x4E)));  // rot 2
    match = _mm_or_si128(
        match, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x93)));  // rot 3
    uint32_t mask =
        static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(match)));
    while (mask != 0) {
      out[k++] = a[i + __builtin_ctz(mask)];
      mask &= mask - 1;
    }
    const uint32_t amax = a[i + 3];
    const uint32_t bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  return k + scalar::IntersectSortedU32(a + i, na - i, b + j, nb - j, out + k);
}

ESHARP_TARGET_SSE42 uint32_t MinU32Sse42(const uint32_t* v, size_t n) {
  if (n < 4) return scalar::MinU32(v, n);
  __m128i acc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v));
  size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    acc = _mm_min_epu32(
        acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i)));
  }
  alignas(16) uint32_t lanes[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  uint32_t m = scalar::MinU32(lanes, 4);
  if (i < n) {
    uint32_t tail = scalar::MinU32(v + i, n - i);
    m = tail < m ? tail : m;
  }
  return m;
}

ESHARP_TARGET_SSE42 uint64_t Checksum64Sse42(const void* data, size_t size) {
  constexpr uint64_t kStep = 0x9e3779b97f4a7c15ULL;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const size_t words = size / 8;
  uint64_t h = kStep ^ static_cast<uint64_t>(size);
  size_t i = 0;
  if (words >= 2) {
    __m128i acc = _mm_setzero_si128();
    __m128i pos = _mm_set_epi64x(static_cast<long long>(2 * kStep),
                                 static_cast<long long>(kStep));
    const __m128i step = _mm_set1_epi64x(static_cast<long long>(2 * kStep));
    for (; i + 2 <= words; i += 2) {
      __m128i w = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i * 8));
      acc = _mm_xor_si128(acc, Mix64LanesSse(_mm_add_epi64(w, pos)));
      pos = _mm_add_epi64(pos, step);
    }
    alignas(16) uint64_t lanes[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
    h ^= lanes[0] ^ lanes[1];
  }
  for (; i < words; ++i) {
    uint64_t w;
    std::memcpy(&w, p + i * 8, 8);
    h ^= Mix64(w + (static_cast<uint64_t>(i) + 1) * kStep);
  }
  const size_t tail = size - words * 8;
  if (tail > 0) {
    uint64_t w = 0;
    std::memcpy(&w, p + words * 8, tail);
    h ^= Mix64(w + (static_cast<uint64_t>(words) + 1) * kStep);
  }
  return h;
}

}  // namespace

#endif  // ESHARP_SIMD_X86

namespace {
/// -1 = no override; otherwise the forced Level (clamped on read).
std::atomic<int> g_forced_level{-1};
}  // namespace

Level DetectedLevel() {
  static const Level detected = [] {
#if ESHARP_SIMD_X86
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
    if (__builtin_cpu_supports("sse4.2")) return Level::kSse42;
#endif
    return Level::kScalar;
  }();
  return detected;
}

Level ActiveLevel() {
  const Level detected = DetectedLevel();
  const int forced = g_forced_level.load(std::memory_order_relaxed);
  if (forced < 0) return detected;
  return static_cast<int>(detected) < forced ? detected
                                             : static_cast<Level>(forced);
}

void ForceLevelForTest(Level level) {
  g_forced_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

std::string_view LevelName(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSse42: return "sse4.2";
    case Level::kAvx2: return "avx2";
  }
  return "unknown";
}

size_t CompactSelection(const uint8_t* flags, size_t n, uint32_t* out) {
#if ESHARP_SIMD_X86
  switch (ActiveLevel()) {
    case Level::kAvx2: return CompactSelectionAvx2(flags, n, out);
    case Level::kSse42: return CompactSelectionSse42(flags, n, out);
    case Level::kScalar: break;
  }
#endif
  return scalar::CompactSelection(flags, n, out);
}

void HashCombineBatch(uint64_t* acc, const uint64_t* h, size_t n) {
#if ESHARP_SIMD_X86
  switch (ActiveLevel()) {
    case Level::kAvx2: HashCombineBatchAvx2(acc, h, n); return;
    case Level::kSse42: HashCombineBatchSse42(acc, h, n); return;
    case Level::kScalar: break;
  }
#endif
  scalar::HashCombineBatch(acc, h, n);
}

void HashCombineMix64Batch(uint64_t* acc, const uint64_t* keys, size_t n) {
#if ESHARP_SIMD_X86
  switch (ActiveLevel()) {
    case Level::kAvx2: HashCombineMix64BatchAvx2(acc, keys, n); return;
    case Level::kSse42: HashCombineMix64BatchSse42(acc, keys, n); return;
    case Level::kScalar: break;
  }
#endif
  scalar::HashCombineMix64Batch(acc, keys, n);
}

size_t IntersectSortedU32(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb, uint32_t* out) {
#if ESHARP_SIMD_X86
  switch (ActiveLevel()) {
    case Level::kAvx2: return IntersectSortedU32Avx2(a, na, b, nb, out);
    case Level::kSse42: return IntersectSortedU32Sse42(a, na, b, nb, out);
    case Level::kScalar: break;
  }
#endif
  return scalar::IntersectSortedU32(a, na, b, nb, out);
}

uint32_t MinU32(const uint32_t* v, size_t n) {
#if ESHARP_SIMD_X86
  switch (ActiveLevel()) {
    case Level::kAvx2: return MinU32Avx2(v, n);
    case Level::kSse42: return MinU32Sse42(v, n);
    case Level::kScalar: break;
  }
#endif
  return scalar::MinU32(v, n);
}

uint64_t Checksum64(const void* data, size_t size) {
#if ESHARP_SIMD_X86
  switch (ActiveLevel()) {
    case Level::kAvx2: return Checksum64Avx2(data, size);
    case Level::kSse42: return Checksum64Sse42(data, size);
    case Level::kScalar: break;
  }
#endif
  return scalar::Checksum64(data, size);
}

}  // namespace esharp::simd
