#ifndef ESHARP_COMMON_STATS_H_
#define ESHARP_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace esharp {

/// \brief Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used by the expert ranker to z-score the (log-transformed) TS/MI/RI
/// features over the candidate pool, as §3 of the paper prescribes.
class OnlineStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added.
  size_t count() const { return n_; }

  /// Arithmetic mean (0 when empty).
  double Mean() const { return n_ == 0 ? 0.0 : mean_; }

  /// Population variance (0 when fewer than 2 observations).
  double Variance() const;

  /// Population standard deviation.
  double StdDev() const;

  /// Z-score of x under the accumulated distribution. Returns 0 when the
  /// standard deviation is 0 (all observations identical).
  double ZScore(double x) const;

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const OnlineStats& other);

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// \brief Mean of a vector (0 when empty).
double Mean(const std::vector<double>& xs);

/// \brief Population standard deviation of a vector.
double StdDev(const std::vector<double>& xs);

/// \brief Pearson correlation of two equal-length vectors (0 if degenerate).
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

}  // namespace esharp

#endif  // ESHARP_COMMON_STATS_H_
