#ifndef ESHARP_COMMON_STATS_H_
#define ESHARP_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace esharp {

/// \brief Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used by the expert ranker to z-score the (log-transformed) TS/MI/RI
/// features over the candidate pool, as §3 of the paper prescribes.
class OnlineStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added.
  size_t count() const { return n_; }

  /// Arithmetic mean (0 when empty).
  double Mean() const { return n_ == 0 ? 0.0 : mean_; }

  /// Population variance (0 when fewer than 2 observations).
  double Variance() const;

  /// Population standard deviation.
  double StdDev() const;

  /// Z-score of x under the accumulated distribution. Returns 0 when the
  /// standard deviation is 0 (all observations identical).
  double ZScore(double x) const;

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const OnlineStats& other);

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// \brief Fixed-footprint latency histogram with geometric buckets.
///
/// Observations (in seconds) land in one of 128 buckets whose bounds grow
/// geometrically from 1 microsecond to ~100 seconds, giving ~16% relative
/// resolution across the whole range — the usual trade for serving-side
/// p50/p95/p99 accounting where exact samples would be too much state.
/// Not thread-safe; callers that record from many threads shard or lock
/// (see serving/metrics.h).
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one observation, clamped into the bucket range.
  void Add(double seconds);

  /// Number of observations recorded.
  size_t count() const { return n_; }

  /// Arithmetic mean in seconds (0 when empty).
  double Mean() const;

  /// Largest observation in seconds (0 when empty).
  double Max() const { return max_; }

  /// Approximate p-th percentile (p in [0, 100]) in seconds: the upper
  /// bound of the bucket where the cumulative count crosses p% (0 when
  /// empty). Error is bounded by the bucket width (~16%).
  double Percentile(double p) const;

  /// Adds another histogram's observations into this one.
  void Merge(const LatencyHistogram& other);

  /// Resets to empty.
  void Reset();

 private:
  static constexpr size_t kNumBuckets = 128;
  /// Upper bound of bucket i in seconds.
  static double BucketUpperBound(size_t i);
  static size_t BucketIndex(double seconds);

  std::vector<uint64_t> buckets_;
  size_t n_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// \brief Mean of a vector (0 when empty).
double Mean(const std::vector<double>& xs);

/// \brief Population standard deviation of a vector.
double StdDev(const std::vector<double>& xs);

/// \brief Pearson correlation of two equal-length vectors (0 if degenerate).
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

}  // namespace esharp

#endif  // ESHARP_COMMON_STATS_H_
