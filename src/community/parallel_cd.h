#ifndef ESHARP_COMMUNITY_PARALLEL_CD_H_
#define ESHARP_COMMUNITY_PARALLEL_CD_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "community/modularity.h"
#include "graph/graph.h"
#include "obs/trace.h"

namespace esharp::community {

/// \brief Result of one detection run.
struct DetectionResult {
  /// Final community of each vertex.
  std::vector<CommunityId> assignment;
  /// Number of communities after each iteration; index 0 is the singleton
  /// initialization. This series is Fig. 5.
  std::vector<size_t> communities_per_iteration;
  /// Total modularity after each iteration (same indexing).
  std::vector<double> modularity_per_iteration;
  /// Iterations executed before convergence or the cap.
  size_t iterations = 0;
  bool converged = false;
};

/// \brief Options of the parallel community detection (§4.2.2-4.2.3).
struct ParallelCdOptions {
  /// Hard cap on iterations (the paper converges in ~6, Fig. 5).
  size_t max_iterations = 30;
  /// Optional pool for the per-community best-neighbor scan.
  ThreadPool* pool = nullptr;
  size_t num_partitions = 8;
  /// Optional Table 9 accounting (stage "Clustering").
  ResourceMeter* meter = nullptr;
  /// Optional warm start: initial community per vertex (one entry per
  /// vertex; community ids must be vertex ids for the deterministic
  /// min-rename rule to apply — use the smallest member's id as the name).
  /// The weekly refresh uses last week's communities here, cutting the
  /// number of merge iterations the fresh run needs.
  const std::vector<CommunityId>* warm_start = nullptr;
  /// Optional tracing: each merge iteration becomes an "iteration" span
  /// (annotated with community count and modularity) under `trace_parent`.
  obs::Tracer* tracer = nullptr;
  const obs::Span* trace_parent = nullptr;
  /// When > 0, use this as the graph total weight m_G in every gain
  /// computation instead of g.TotalWeight(). Set by the per-component
  /// decomposition (component_cd.h) so a component run is bit-identical to
  /// its slice of a full-graph run.
  double total_weight_override = 0;
};

/// \brief The paper's parallel modularity-maximization heuristic, native
/// in-memory implementation.
///
/// Each iteration performs the three steps of §4.2.2 / Fig. 3:
///  1. *Neighborhood creation* — for every pair of connected communities,
///     compute the merge gain DeltaMod (Eq. 8); positive-gain pairs form
///     neighborhoods.
///  2. *Neighborhood separation* — every community keeps only its closest
///     neighborhood: the neighbor with the largest gain (argmax), ties
///     broken toward the smaller community id for determinism.
///  3. *Aggregation* — each community c renames itself min(c, best(c)); a
///     community with no positive-gain neighbor keeps its name. Mutual best
///     pairs therefore collapse onto the smaller id, and chains contract by
///     one link per iteration — the same fixpoint cascade the SQL version
///     produces by rewriting its Communities table.
///
/// Iteration stops when no rename happens or `max_iterations` is reached.
/// The result is deterministic and identical (up to community naming) to
/// SqlCommunityDetection on the same graph.
Result<DetectionResult> DetectCommunitiesParallel(
    const graph::Graph& g, const ParallelCdOptions& options = {});

/// \brief Computes, for every community, its best positive-gain neighbor.
/// Exposed for tests and for the SQL-equivalence harness: returns pairs
/// (community, chosen-target) where target = min(self, argmax-gain
/// neighbor); communities with no positive-gain neighbor are omitted.
std::vector<std::pair<CommunityId, CommunityId>> BestMergeTargets(
    const Partition& partition, const ModularityContext& ctx,
    ThreadPool* pool, size_t num_partitions);

}  // namespace esharp::community

#endif  // ESHARP_COMMUNITY_PARALLEL_CD_H_
