#include "community/modularity.h"

#include <cassert>
#include <cmath>
#include <set>

namespace esharp::community {

ModularityContext::ModularityContext(const graph::Graph& g)
    : total_weight_(g.TotalWeight()) {
  assert(total_weight_ > 0 && "graph has no edges");
}

Partition::Partition(const graph::Graph& g) : graph_(&g) {
  assignment_.resize(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    assignment_[v] = static_cast<CommunityId>(v);
  }
  Rebuild();
}

Partition::Partition(const graph::Graph& g, std::vector<CommunityId> assignment)
    : graph_(&g), assignment_(std::move(assignment)) {
  assert(assignment_.size() == g.num_vertices() &&
         "assignment arity must match the graph");
  Rebuild();
}

void Partition::Relabel(
    const std::unordered_map<CommunityId, CommunityId>& relabel) {
  for (CommunityId& c : assignment_) {
    auto it = relabel.find(c);
    if (it != relabel.end()) c = it->second;
  }
  Rebuild();
}

void Partition::Rebuild() {
  degree_sum_.clear();
  internal_weight_.clear();
  for (graph::VertexId v = 0; v < graph_->num_vertices(); ++v) {
    degree_sum_[assignment_[v]] += graph_->WeightedDegree(v);
  }
  for (const graph::Edge& e : graph_->edges()) {
    if (assignment_[e.u] == assignment_[e.v]) {
      internal_weight_[assignment_[e.u]] += e.weight;
    }
  }
}

double Partition::DegreeSum(CommunityId c) const {
  auto it = degree_sum_.find(c);
  return it == degree_sum_.end() ? 0.0 : it->second;
}

double Partition::InternalWeight(CommunityId c) const {
  auto it = internal_weight_.find(c);
  return it == internal_weight_.end() ? 0.0 : it->second;
}

std::unordered_map<uint64_t, double> Partition::InterCommunityWeights() const {
  std::unordered_map<uint64_t, double> out;
  for (const graph::Edge& e : graph_->edges()) {
    CommunityId a = assignment_[e.u], b = assignment_[e.v];
    if (a == b) continue;
    out[PairKey(a, b)] += e.weight;
  }
  return out;
}

size_t Partition::NumCommunities() const { return degree_sum_.size(); }

std::vector<CommunityId> Partition::CommunityIds() const {
  std::vector<CommunityId> out;
  out.reserve(degree_sum_.size());
  for (const auto& [c, d] : degree_sum_) out.push_back(c);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<graph::VertexId> Partition::Members(CommunityId c) const {
  std::vector<graph::VertexId> out;
  for (graph::VertexId v = 0; v < assignment_.size(); ++v) {
    if (assignment_[v] == c) out.push_back(v);
  }
  return out;
}

double Partition::TotalModularity(const ModularityContext& ctx) const {
  double total = 0;
  for (const auto& [c, d] : degree_sum_) {
    total += ctx.CommunityModularity(InternalWeight(c), d);
  }
  return total;
}

double DiscretizedGain(double degree1, double degree2, double weight_between,
                       double total_weight, double scale) {
  // Rescale weights into integer edge multiplicities (footnote 1), then
  // apply Eq. 8/9 verbatim on counts.
  double m12 = std::round(weight_between * scale);
  double d1 = std::round(degree1 * scale);
  double d2 = std::round(degree2 * scale);
  double mg = std::round(total_weight * scale);
  if (mg <= 0) return 0;
  return (m12 - d1 * d2 / (2.0 * mg)) / scale;
}

}  // namespace esharp::community
