#ifndef ESHARP_COMMUNITY_LABEL_PROPAGATION_H_
#define ESHARP_COMMUNITY_LABEL_PROPAGATION_H_

#include "common/result.h"
#include "community/parallel_cd.h"

namespace esharp::community {

/// \brief Options of the label-propagation detector.
struct LabelPropagationOptions {
  /// Sweep cap; LPA usually stabilizes within a handful of sweeps.
  size_t max_iterations = 50;
};

/// \brief Weighted label propagation (Raghavan et al.), the "different
/// community detection paradigm" the paper's conclusion names as future
/// work.
///
/// Every vertex starts with its own label; sweeps visit vertices in id
/// order and adopt the label with the largest total incident edge weight
/// (ties toward the smaller label, so the procedure is deterministic).
/// Stops when a sweep changes nothing. Compared to modularity maximization
/// it has no objective function — the ablation bench contrasts the two on
/// modularity, cluster quality and community-count profile.
Result<DetectionResult> DetectCommunitiesLabelPropagation(
    const graph::Graph& g, const LabelPropagationOptions& options = {});

}  // namespace esharp::community

#endif  // ESHARP_COMMUNITY_LABEL_PROPAGATION_H_
