#ifndef ESHARP_COMMUNITY_MODULARITY_H_
#define ESHARP_COMMUNITY_MODULARITY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace esharp::community {

/// \brief Community identifier. During detection a community is named after
/// one of its member vertices (the paper's SQL names communities by query).
using CommunityId = uint32_t;

/// \brief Modularity arithmetic of §4.2.1 (Eqs. 3-9), weighted form.
///
/// The paper presents modularity over an unweighted multigraph obtained by
/// rescaling/discretizing the similarity weights (footnote 1). Working with
/// the weights directly is the limit of that construction as the rescaling
/// factor grows: every count becomes a weight sum. DiscretizedGain (below)
/// exposes the paper's literal integer form for tests.
///
///   Mod(C)           = w_C - m_G * (D_C / D_G)^2              (Eq. 6)
///   DeltaMod(C1, C2) = w_12 - D_1 * D_2 / (2 m_G)             (Eqs. 8-9)
///
/// where w_C is the total edge weight inside C, m_G the total graph weight,
/// D_C the summed weighted degree of C's vertices and D_G = 2 m_G.
class ModularityContext {
 public:
  /// Captures the graph-level constants. The graph must be finalized.
  explicit ModularityContext(const graph::Graph& g);

  /// Explicit-m_G form, for running detection on a subgraph while keeping
  /// the FULL graph's modularity arithmetic. Merge gains are globally
  /// coupled through m_G, but within one run merges never cross connected
  /// components — so clustering each component separately under the full
  /// graph's m_G reproduces the full run exactly (community/component_cd.h,
  /// the streaming re-cluster path).
  explicit ModularityContext(double total_weight)
      : total_weight_(total_weight) {}

  /// Total edge weight m_G.
  double total_weight() const { return total_weight_; }

  /// Merge gain of Eq. 8: DeltaMod = w_between - E[w_between].
  /// `degree1`/`degree2` are the summed weighted degrees of the two
  /// communities; `weight_between` the total weight of edges across them.
  double MergeGain(double degree1, double degree2, double weight_between) const {
    return weight_between - degree1 * degree2 / (2.0 * total_weight_);
  }

  /// Modularity of one community (Eq. 6).
  double CommunityModularity(double internal_weight, double degree_sum) const {
    double frac = degree_sum / (2.0 * total_weight_);
    return internal_weight - total_weight_ * frac * frac;
  }

 private:
  double total_weight_;
};

/// \brief A partition of graph vertices into communities, with the degree
/// and internal-weight bookkeeping all detection algorithms need.
class Partition {
 public:
  /// Singleton partition: each vertex its own community (the initialization
  /// of both Newman's heuristic and the paper's parallel variant).
  explicit Partition(const graph::Graph& g);

  /// Warm-start partition from an explicit assignment (one community id per
  /// vertex) — used by the weekly incremental refresh, which seeds the new
  /// run with last week's communities. The assignment must have one entry
  /// per graph vertex.
  Partition(const graph::Graph& g, std::vector<CommunityId> assignment);

  const graph::Graph& graph() const { return *graph_; }

  /// Community of a vertex.
  CommunityId CommunityOf(graph::VertexId v) const { return assignment_[v]; }

  /// Reassigns every vertex through `relabel` (old community -> new
  /// community) and refreshes the bookkeeping.
  void Relabel(const std::unordered_map<CommunityId, CommunityId>& relabel);

  /// Summed weighted degree of a community (0 for unused ids).
  double DegreeSum(CommunityId c) const;

  /// Total edge weight strictly inside a community.
  double InternalWeight(CommunityId c) const;

  /// Inter-community edge weights: for every pair of distinct connected
  /// communities (a, b) with a < b, the summed weight of edges across.
  std::unordered_map<uint64_t, double> InterCommunityWeights() const;

  /// Number of distinct non-empty communities.
  size_t NumCommunities() const;

  /// Ids of non-empty communities.
  std::vector<CommunityId> CommunityIds() const;

  /// Members of a community.
  std::vector<graph::VertexId> Members(CommunityId c) const;

  /// Total modularity of the partition (Eq. 2).
  double TotalModularity(const ModularityContext& ctx) const;

  /// Encodes a community pair with a < b into one key.
  static uint64_t PairKey(CommunityId a, CommunityId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

 private:
  void Rebuild();

  const graph::Graph* graph_;
  std::vector<CommunityId> assignment_;
  std::unordered_map<CommunityId, double> degree_sum_;
  std::unordered_map<CommunityId, double> internal_weight_;
};

/// \brief The paper's literal integer modularity gain (footnote 1): weights
/// are rescaled by `scale` and rounded to edge multiplicities. Exposed so
/// tests can check the weighted form is the scale->infinity limit.
double DiscretizedGain(double degree1, double degree2, double weight_between,
                       double total_weight, double scale);

}  // namespace esharp::community

#endif  // ESHARP_COMMUNITY_MODULARITY_H_
