#ifndef ESHARP_COMMUNITY_COMPONENT_CD_H_
#define ESHARP_COMMUNITY_COMPONENT_CD_H_

#include "common/result.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "community/parallel_cd.h"
#include "graph/graph.h"

namespace esharp::community {

/// \brief Options of the per-component decomposition.
struct ComponentCdOptions {
  /// Run each component through the SQL engine (DetectCommunitiesSql,
  /// honoring `sql_use_columnar`) instead of the native parallel heuristic.
  bool use_sql = false;
  bool sql_use_columnar = true;
  size_t max_iterations = 30;
  /// Forwarded to the per-component runs (the components themselves are
  /// processed serially in ascending min-vertex order, for determinism).
  ThreadPool* pool = nullptr;
  size_t num_partitions = 8;
  ResourceMeter* meter = nullptr;
};

/// \brief Exact per-connected-component decomposition of modularity
/// clustering: runs detection on each connected component separately and
/// stitches the assignments back together.
///
/// The merge gain (Eq. 8) is globally coupled through the total graph
/// weight m_G, so clustering a subgraph naively changes every gain. But
/// within one run, merges never cross connected components — a community
/// only ever merges with a neighbor, and neighborhoods never span
/// components. So each component's merge trajectory depends only on its own
/// edges and degrees plus the scalar m_G. Running the component alone with
/// `total_weight_override = m_G` therefore reproduces the full run's
/// decisions on that component bit-for-bit, iteration by iteration
/// (including where the `max_iterations` cap bites: a converged component's
/// state is fixed, so stopping it early changes nothing).
///
/// Two details make the stitching exact rather than merely isomorphic:
///  - subgraph vertices are added in ascending global-id order, so local id
///    order equals global id order and the deterministic min-id rename rule
///    picks the same member either way;
///  - a community is named after its minimum member, so mapping a local
///    community name back through the vertex list yields exactly the global
///    name the full-graph run would have used.
///
/// The result's `assignment` is therefore bit-identical to
/// DetectCommunitiesParallel (or DetectCommunitiesSql) on the whole graph.
/// Isolated vertices stay singleton communities named after themselves.
/// The per-iteration trace series (`communities_per_iteration`,
/// `modularity_per_iteration`) are NOT populated — component runs converge
/// at different iterations, so there is no single meaningful global series;
/// `iterations` is the max across components and `converged` the
/// conjunction. The streaming ingest path (src/ingest) uses this to
/// re-cluster after a batch without paying the monolithic full-graph
/// inter-community scan.
Result<DetectionResult> DetectCommunitiesByComponent(
    const graph::Graph& g, const ComponentCdOptions& options = {});

}  // namespace esharp::community

#endif  // ESHARP_COMMUNITY_COMPONENT_CD_H_
