#include "community/sql_cd.h"

#include <unordered_map>

#include "common/strings.h"
#include "common/timer.h"
#include "obs/obs.h"
#include "sqlengine/catalog.h"

namespace esharp::community {

namespace sqlns = esharp::sql;

std::string SqlVertexName(graph::VertexId v) {
  return StrFormat("v%09u", v);
}

namespace {

// graph(query1, query2, distance): both directions of every edge.
sqlns::Table BuildGraphTable(const graph::Graph& g) {
  sqlns::TableBuilder b({{"query1", sqlns::DataType::kString},
                         {"query2", sqlns::DataType::kString},
                         {"distance", sqlns::DataType::kDouble}});
  for (const graph::Edge& e : g.edges()) {
    b.AddRow({sqlns::Value::String(SqlVertexName(e.u)),
              sqlns::Value::String(SqlVertexName(e.v)),
              sqlns::Value::Double(e.weight)});
    b.AddRow({sqlns::Value::String(SqlVertexName(e.v)),
              sqlns::Value::String(SqlVertexName(e.u)),
              sqlns::Value::Double(e.weight)});
  }
  return b.Build();
}

// communities(comm_name, query): singleton initialization.
sqlns::Table BuildInitialCommunities(const graph::Graph& g) {
  sqlns::TableBuilder b({{"comm_name", sqlns::DataType::kString},
                         {"query", sqlns::DataType::kString}});
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    b.AddRow({sqlns::Value::String(SqlVertexName(v)),
              sqlns::Value::String(SqlVertexName(v))});
  }
  return b.Build();
}

}  // namespace

Result<DetectionResult> DetectCommunitiesSql(const graph::Graph& g,
                                             const SqlCdOptions& options) {
  if (g.num_vertices() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  Timer timer;
  DetectionResult result;

  sqlns::Catalog catalog;
  {
    // Pre-convert the base tables so every per-iteration scan is a
    // copy-free columnar handoff instead of a row→column conversion.
    sqlns::Table graph_table = BuildGraphTable(g);
    sqlns::Table communities_table = BuildInitialCommunities(g);
    if (options.use_columnar) {
      (void)graph_table.EnsureColumnar();
      (void)communities_table.EnsureColumnar();
    }
    catalog.Register("graph", std::move(graph_table));
    catalog.Register("communities", std::move(communities_table));
  }

  sqlns::ExecutorOptions exec_options;
  exec_options.pool = options.pool;
  exec_options.num_partitions = options.num_partitions;
  exec_options.join_strategy = options.join_strategy;
  exec_options.meter = options.meter;
  exec_options.stage = "Clustering";
  exec_options.use_columnar = options.use_columnar;
  sqlns::Executor executor(exec_options);

  const double total_weight = options.total_weight_override > 0
                                  ? options.total_weight_override
                                  : g.TotalWeight();

  // ModulGain(d1, d2, w) = w - d1*d2 / (2 m_G): Eq. 8/9 as a scalar UDF,
  // exactly the role ModulGain plays in Fig. 4.
  sqlns::ScalarUdf modul_gain =
      [total_weight](const std::vector<sqlns::Value>& args)
      -> Result<sqlns::Value> {
    if (args.size() != 3) {
      return Status::InvalidArgument("ModulGain expects 3 arguments");
    }
    ESHARP_ASSIGN_OR_RETURN(double d1, args[0].AsDouble());
    ESHARP_ASSIGN_OR_RETURN(double d2, args[1].AsDouble());
    ESHARP_ASSIGN_OR_RETURN(double w, args[2].AsDouble());
    return sqlns::Value::Double(w - d1 * d2 / (2.0 * total_weight));
  };

  // LEAST(candidate, self): candidate is NULL for communities with no
  // positive-gain neighbor (left outer join miss) — keep self then.
  sqlns::ScalarUdf least = [](const std::vector<sqlns::Value>& args)
      -> Result<sqlns::Value> {
    if (args.size() != 2) {
      return Status::InvalidArgument("LEAST expects 2 arguments");
    }
    if (args[0].is_null()) return args[1];
    if (args[1].is_null()) return args[0];
    return args[0].Compare(args[1]) <= 0 ? args[0] : args[1];
  };

  auto count_communities = [&]() -> Result<size_t> {
    sqlns::Plan plan = sqlns::Plan::Scan("communities")
                           .GroupBy({"comm_name"}, {sqlns::CountStar("n")});
    ESHARP_ASSIGN_OR_RETURN(sqlns::Table t, executor.Execute(plan, catalog));
    return t.num_rows();
  };

  auto total_modularity = [&]() -> Result<double> {
    // Degree sums and internal weights per community, via the edge table.
    using namespace sqlns;
    Plan edges_c =
        Plan::Scan("graph")
            .Join(Plan::Scan("communities"), {"query1"}, {"query"})
            .Join(Plan::Scan("communities"), {"query2"}, {"query"})
            .Select({{Col("comm_name"), "comm1"},
                     {Col("r_comm_name"), "comm2"},
                     {Col("distance"), "w"}});
    ESHARP_ASSIGN_OR_RETURN(Table t, executor.Execute(edges_c, catalog));
    // Sum per community: degree = all incident directed rows; internal =
    // rows with comm1 == comm2 (each internal undirected edge appears twice,
    // so halve).
    std::unordered_map<std::string, double> degree, internal;
    ESHARP_ASSIGN_OR_RETURN(size_t c1, t.schema().IndexOf("comm1"));
    ESHARP_ASSIGN_OR_RETURN(size_t c2, t.schema().IndexOf("comm2"));
    ESHARP_ASSIGN_OR_RETURN(size_t cw, t.schema().IndexOf("w"));
    bool accumulated = false;
    if (options.use_columnar && t.columnar() != nullptr) {
      // Read the typed columns directly instead of materializing rows.
      const ColumnTable& ct = *t.columnar();
      const ColumnVec& v1 = ct.col(c1);
      const ColumnVec& v2 = ct.col(c2);
      const ColumnVec& vw = ct.col(cw);
      if (v1.type == DataType::kString && v2.type == DataType::kString &&
          vw.type == DataType::kDouble && !v1.nulls.AnyNull() &&
          !v2.nulls.AnyNull() && !vw.nulls.AnyNull()) {
        for (size_t i = 0; i < ct.num_rows(); ++i) {
          const double w = vw.doubles[i];
          const std::string& s1 = v1.dict->at(v1.str_ids[i]);
          degree[s1] += w;
          if (s1 == v2.dict->at(v2.str_ids[i])) internal[s1] += w / 2.0;
        }
        accumulated = true;
      }
    }
    if (!accumulated) {
      for (const Row& r : t.rows()) {
        double w = r[cw].double_value();
        degree[r[c1].string_value()] += w;
        if (r[c1].string_value() == r[c2].string_value()) {
          internal[r[c1].string_value()] += w / 2.0;
        }
      }
    }
    double mod = 0;
    for (const auto& [c, d] : degree) {
      double frac = d / (2.0 * total_weight);
      double internal_w = internal.count(c) ? internal.at(c) : 0.0;
      mod += internal_w - total_weight * frac * frac;
    }
    return mod;
  };

  ESHARP_ASSIGN_OR_RETURN(size_t count0, count_communities());
  result.communities_per_iteration.push_back(count0);
  ESHARP_ASSIGN_OR_RETURN(double mod0, total_modularity());
  result.modularity_per_iteration.push_back(mod0);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    using namespace sqlns;
    ESHARP_SPAN(iter_span, options.tracer, "iteration", options.trace_parent);
    ESHARP_SPAN_ANNOTATE(iter_span, "iteration", static_cast<int64_t>(iter));

    // --- Step 0: map both edge endpoints to communities. -----------------
    // select c1.comm_name comm1, c2.comm_name comm2, distance
    // from graph join communities c1 on query1 join communities c2 on query2
    Plan edges_c =
        Plan::Scan("graph")
            .Join(Plan::Scan("communities"), {"query1"}, {"query"})
            .Join(Plan::Scan("communities"), {"query2"}, {"query"})
            .Select({{Col("comm_name"), "comm1"},
                     {Col("r_comm_name"), "comm2"},
                     {Col("distance"), "w"}});

    // Community degree sums (internal edges count; the symmetric table
    // already double-counts directions, which is what degree needs).
    Plan degrees = edges_c.GroupBy({"comm1"}, {SumOf(Col("w"), "degree")})
                       .Select({{Col("comm1"), "comm"},
                                {Col("degree"), "degree"}});

    // Inter-community weights (both directions kept; argmax is symmetric).
    Plan between = edges_c.Where(Ne(Col("comm1"), Col("comm2")))
                       .GroupBy({"comm1", "comm2"}, {SumOf(Col("w"), "w12")});

    // --- Step 1: neighborhood creation (Fig. 4 "neighbors"). -------------
    // join degrees twice, keep ModulGain > 0.
    Plan neighbors =
        between.Join(degrees, {"comm1"}, {"comm"})
            .Join(degrees, {"comm2"}, {"comm"})
            .Select({{Col("comm1"), "comm1"},
                     {Col("comm2"), "comm2"},
                     {Udf("ModulGain", modul_gain,
                          {Col("degree"), Col("r_degree"), Col("w12")}),
                      "gain"}})
            .Where(Gt(Col("gain"), LitDouble(0.0)));

    // --- Step 2: neighborhood separation (Fig. 4 "partitions"). ----------
    // select comm1, argmax(gain, comm2) from neighbors group by comm1.
    Plan partitions =
        neighbors.GroupBy({"comm1"},
                          {ArgMaxOf(Col("gain"), Col("comm2"), "best")});

    // --- Step 3: aggregation (Fig. 4 "communities"). ----------------------
    // Every community renames itself LEAST(self, chosen target); vertices
    // follow their community. Left-outer join keeps communities without a
    // positive-gain neighbor.
    // The first iteration's execution of the statement doubles as the
    // EXPLAIN ANALYZE sample when the caller asked for one.
    Result<Table> partitions_result =
        (iter == 0 && options.explain != nullptr)
            ? executor.Execute(partitions, catalog, options.explain)
            : executor.Execute(partitions, catalog);
    ESHARP_RETURN_NOT_OK(partitions_result.status());
    Table partitions_table = std::move(partitions_result).ValueOrDie();
    Plan renamed =
        Plan::Scan("communities")
            .Join(Plan::Values(partitions_table), {"comm_name"}, {"comm1"},
                  JoinType::kLeftOuter)
            .Select({{Udf("LEAST", least, {Col("best"), Col("comm_name")}),
                      "comm_name"},
                     {Col("query"), "query"}});

    ESHARP_ASSIGN_OR_RETURN(Table new_communities,
                            executor.Execute(renamed, catalog));

    // Convergence: did any membership change?
    ESHARP_ASSIGN_OR_RETURN(const Table* old_communities,
                            catalog.Get("communities"));
    bool changed = false;
    bool compared = false;
    if (options.use_columnar) {
      // Multiset equality over the columnar payloads: no table copies, no
      // row materialization, no sort.
      Result<std::shared_ptr<const ColumnTable>> oc =
          old_communities->EnsureColumnar();
      Result<std::shared_ptr<const ColumnTable>> nc =
          new_communities.EnsureColumnar();
      if (oc.ok() && nc.ok()) {
        changed = !ColumnTablesEqualAsMultisets(**oc, **nc);
        compared = true;
      } else {
        if (!oc.ok() && !IsColumnarUnsupported(oc.status())) {
          return oc.status();
        }
        if (!nc.ok() && !IsColumnarUnsupported(nc.status())) {
          return nc.status();
        }
      }
    }
    if (!compared) {
      Table sorted_old = *old_communities;
      Table sorted_new = new_communities;
      sorted_old.SortLexicographic();
      sorted_new.SortLexicographic();
      changed = sorted_old.num_rows() != sorted_new.num_rows();
      if (!changed) {
        for (size_t i = 0; i < sorted_old.num_rows() && !changed; ++i) {
          for (size_t c = 0; c < sorted_old.num_columns() && !changed; ++c) {
            changed = sorted_old.row(i)[c].Compare(sorted_new.row(i)[c]) != 0;
          }
        }
      }
    }

    catalog.Register("communities", std::move(new_communities));

    if (!changed) {
      ESHARP_SPAN_ANNOTATE(iter_span, "converged", "true");
      result.converged = true;
      break;
    }
    ++result.iterations;
    ESHARP_ASSIGN_OR_RETURN(size_t count, count_communities());
    result.communities_per_iteration.push_back(count);
    ESHARP_ASSIGN_OR_RETURN(double mod, total_modularity());
    result.modularity_per_iteration.push_back(mod);
    ESHARP_SPAN_ANNOTATE(iter_span, "communities",
                         static_cast<int64_t>(count));
    ESHARP_SPAN_ANNOTATE(iter_span, "modularity", mod);
  }

  // Decode the final communities table into the dense assignment vector.
  ESHARP_ASSIGN_OR_RETURN(const sqlns::Table* final_table,
                          catalog.Get("communities"));
  result.assignment.assign(g.num_vertices(), 0);
  ESHARP_ASSIGN_OR_RETURN(size_t comm_idx,
                          final_table->schema().IndexOf("comm_name"));
  ESHARP_ASSIGN_OR_RETURN(size_t query_idx,
                          final_table->schema().IndexOf("query"));
  for (const sqlns::Row& r : final_table->rows()) {
    // Names are "v%09u": parse back to ids.
    const std::string& comm = r[comm_idx].string_value();
    const std::string& query = r[query_idx].string_value();
    graph::VertexId vertex =
        static_cast<graph::VertexId>(std::stoul(query.substr(1)));
    CommunityId community =
        static_cast<CommunityId>(std::stoul(comm.substr(1)));
    if (vertex >= g.num_vertices()) {
      return Status::Internal("vertex name out of range: ", query);
    }
    result.assignment[vertex] = community;
  }

  if (options.meter != nullptr) {
    options.meter->AddTime("Clustering", timer.ElapsedSeconds());
    ESHARP_ASSIGN_OR_RETURN(const sqlns::Table* graph_table,
                            catalog.Get("graph"));
    options.meter->AddIO("Clustering", graph_table->SizeBytes(),
                         final_table->SizeBytes());
    options.meter->SetParallelism(
        "Clustering", options.pool != nullptr ? options.num_partitions : 1);
  }
  return result;
}

}  // namespace esharp::community
