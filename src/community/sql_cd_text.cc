#include "community/sql_cd.h"

#include <unordered_map>

#include "common/strings.h"
#include "common/timer.h"
#include "sqlengine/parser.h"

namespace esharp::community {

namespace sqlns = esharp::sql;

namespace {

// The algorithm of Fig. 4, written as the SQL a SCOPE/Hive deployment would
// actually submit. The driver chains the statements by registering each
// result under its name, exactly like a multi-statement script.
constexpr const char* kDegreesSql = R"sql(
    SELECT c1.comm_name AS comm, sum(graph.distance) AS degree
    FROM graph
    INNER JOIN communities c1 ON graph.query1 = c1.query
    GROUP BY c1.comm_name
)sql";

constexpr const char* kNeighborsSql = R"sql(
    SELECT b.comm1 AS comm1, b.comm2 AS comm2,
           modulgain(d1.degree, d2.degree, b.w12) AS gain
    FROM (SELECT c1.comm_name AS comm1, c2.comm_name AS comm2,
                 sum(graph.distance) AS w12
          FROM graph
          INNER JOIN communities c1 ON graph.query1 = c1.query
          INNER JOIN communities c2 ON graph.query2 = c2.query
          WHERE c1.comm_name <> c2.comm_name
          GROUP BY c1.comm_name, c2.comm_name) b
    INNER JOIN degrees d1 ON b.comm1 = d1.comm
    INNER JOIN degrees d2 ON b.comm2 = d2.comm
    WHERE modulgain(d1.degree, d2.degree, b.w12) > 0
)sql";

constexpr const char* kPartitionsSql = R"sql(
    SELECT comm1, argmax(gain, comm2) AS best
    FROM neighbors
    GROUP BY comm1
)sql";

constexpr const char* kRenameSql = R"sql(
    SELECT least(p.best, c.comm_name) AS comm_name, c.query AS query
    FROM communities c
    LEFT OUTER JOIN partitions p ON c.comm_name = p.comm1
)sql";

constexpr const char* kCountSql = R"sql(
    SELECT comm_name, count(*) AS n FROM communities GROUP BY comm_name
)sql";

// Decodes the communities(comm_name, query) table into a dense assignment
// vector (names are SqlVertexName-padded ids).
Result<std::vector<CommunityId>> DecodeAssignment(const sqlns::Table& table,
                                                  size_t num_vertices) {
  std::vector<CommunityId> assignment(num_vertices, 0);
  ESHARP_ASSIGN_OR_RETURN(size_t comm_idx, table.schema().IndexOf("comm_name"));
  ESHARP_ASSIGN_OR_RETURN(size_t query_idx, table.schema().IndexOf("query"));
  for (const sqlns::Row& r : table.rows()) {
    graph::VertexId vertex = static_cast<graph::VertexId>(
        std::stoul(r[query_idx].string_value().substr(1)));
    if (vertex >= num_vertices) {
      return Status::Internal("vertex out of range in communities table");
    }
    assignment[vertex] = static_cast<CommunityId>(
        std::stoul(r[comm_idx].string_value().substr(1)));
  }
  return assignment;
}

}  // namespace

Result<DetectionResult> DetectCommunitiesSqlText(const graph::Graph& g,
                                                 const SqlCdOptions& options) {
  if (g.num_vertices() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  Timer timer;

  // Base tables in the paper's schema.
  sqlns::Catalog catalog;
  {
    sqlns::TableBuilder graph_builder({{"query1", sqlns::DataType::kString},
                                       {"query2", sqlns::DataType::kString},
                                       {"distance", sqlns::DataType::kDouble}});
    for (const graph::Edge& e : g.edges()) {
      graph_builder.AddRow({sqlns::Value::String(SqlVertexName(e.u)),
                            sqlns::Value::String(SqlVertexName(e.v)),
                            sqlns::Value::Double(e.weight)});
      graph_builder.AddRow({sqlns::Value::String(SqlVertexName(e.v)),
                            sqlns::Value::String(SqlVertexName(e.u)),
                            sqlns::Value::Double(e.weight)});
    }
    catalog.Register("graph", graph_builder.Build());
    sqlns::TableBuilder comm_builder({{"comm_name", sqlns::DataType::kString},
                                      {"query", sqlns::DataType::kString}});
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      comm_builder.AddRow({sqlns::Value::String(SqlVertexName(v)),
                           sqlns::Value::String(SqlVertexName(v))});
    }
    catalog.Register("communities", comm_builder.Build());
  }

  const double total_weight = options.total_weight_override > 0
                                  ? options.total_weight_override
                                  : g.TotalWeight();
  sqlns::FunctionRegistry registry;
  registry.RegisterScalar(
      "modulgain",
      [total_weight](const std::vector<sqlns::Value>& args)
          -> Result<sqlns::Value> {
        if (args.size() != 3) {
          return Status::InvalidArgument("modulgain expects 3 arguments");
        }
        ESHARP_ASSIGN_OR_RETURN(double d1, args[0].AsDouble());
        ESHARP_ASSIGN_OR_RETURN(double d2, args[1].AsDouble());
        ESHARP_ASSIGN_OR_RETURN(double w, args[2].AsDouble());
        return sqlns::Value::Double(w - d1 * d2 / (2.0 * total_weight));
      });
  registry.RegisterScalar(
      "least",
      [](const std::vector<sqlns::Value>& args) -> Result<sqlns::Value> {
        if (args.size() != 2) {
          return Status::InvalidArgument("least expects 2 arguments");
        }
        if (args[0].is_null()) return args[1];
        if (args[1].is_null()) return args[0];
        return args[0].Compare(args[1]) <= 0 ? args[0] : args[1];
      });

  sqlns::ExecutorOptions exec_options;
  exec_options.pool = options.pool;
  exec_options.num_partitions = options.num_partitions;
  exec_options.join_strategy = options.join_strategy;
  exec_options.meter = options.meter;
  exec_options.stage = "Clustering";
  exec_options.use_columnar = options.use_columnar;

  auto run = [&](const char* sql) {
    return sqlns::ExecuteSql(sql, catalog, registry, exec_options);
  };

  DetectionResult result;
  ModularityContext ctx(g);
  auto record_state = [&]() -> Status {
    ESHARP_ASSIGN_OR_RETURN(sqlns::Table counts, run(kCountSql));
    result.communities_per_iteration.push_back(counts.num_rows());
    ESHARP_ASSIGN_OR_RETURN(const sqlns::Table* communities,
                            catalog.Get("communities"));
    ESHARP_ASSIGN_OR_RETURN(std::vector<CommunityId> assignment,
                            DecodeAssignment(*communities, g.num_vertices()));
    Partition partition(g);
    std::unordered_map<CommunityId, CommunityId> relabel;
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      relabel[static_cast<CommunityId>(v)] = assignment[v];
    }
    partition.Relabel(relabel);
    result.modularity_per_iteration.push_back(partition.TotalModularity(ctx));
    return Status::OK();
  };

  if (g.num_edges() == 0) {
    result.assignment.resize(g.num_vertices());
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      result.assignment[v] = static_cast<CommunityId>(v);
    }
    result.communities_per_iteration = {g.num_vertices()};
    result.modularity_per_iteration = {0.0};
    result.converged = true;
    return result;
  }

  ESHARP_RETURN_NOT_OK(record_state());

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    ESHARP_ASSIGN_OR_RETURN(sqlns::Table degrees, run(kDegreesSql));
    catalog.Register("degrees", std::move(degrees));
    ESHARP_ASSIGN_OR_RETURN(sqlns::Table neighbors, run(kNeighborsSql));
    catalog.Register("neighbors", std::move(neighbors));
    ESHARP_ASSIGN_OR_RETURN(sqlns::Table partitions, run(kPartitionsSql));
    catalog.Register("partitions", std::move(partitions));
    ESHARP_ASSIGN_OR_RETURN(sqlns::Table renamed, run(kRenameSql));

    ESHARP_ASSIGN_OR_RETURN(const sqlns::Table* previous,
                            catalog.Get("communities"));
    sqlns::Table sorted_old = *previous;
    sqlns::Table sorted_new = renamed;
    sorted_old.SortLexicographic();
    sorted_new.SortLexicographic();
    bool changed = sorted_old.num_rows() != sorted_new.num_rows();
    for (size_t i = 0; i < sorted_old.num_rows() && !changed; ++i) {
      for (size_t c = 0; c < sorted_old.num_columns() && !changed; ++c) {
        changed = sorted_old.row(i)[c].Compare(sorted_new.row(i)[c]) != 0;
      }
    }
    catalog.Register("communities", std::move(renamed));
    if (!changed) {
      result.converged = true;
      break;
    }
    ++result.iterations;
    ESHARP_RETURN_NOT_OK(record_state());
  }

  ESHARP_ASSIGN_OR_RETURN(const sqlns::Table* final_table,
                          catalog.Get("communities"));
  ESHARP_ASSIGN_OR_RETURN(result.assignment,
                          DecodeAssignment(*final_table, g.num_vertices()));

  if (options.meter != nullptr) {
    options.meter->AddTime("Clustering", timer.ElapsedSeconds());
    options.meter->SetParallelism(
        "Clustering", options.pool != nullptr ? options.num_partitions : 1);
  }
  return result;
}

}  // namespace esharp::community
