#ifndef ESHARP_COMMUNITY_STORE_H_
#define ESHARP_COMMUNITY_STORE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "community/modularity.h"
#include "graph/graph.h"

namespace esharp::community {

/// \brief One detected expertise domain: a community of related query terms.
struct Community {
  CommunityId id = 0;
  /// Member query strings (lower-cased, as they appear in the log).
  std::vector<std::string> terms;
};

/// \brief Histogram of community sizes in the paper's Fig. 6 buckets.
struct SizeHistogram {
  size_t orphans = 0;        // exactly 1 query
  size_t small = 0;          // 2 to 10
  size_t medium = 0;         // 11 to 50
  size_t large = 0;          // more than 50
  size_t total() const { return orphans + small + medium + large; }
};

/// \brief The indexed collection of expertise domains produced by the
/// offline stage ("We store and index it in SQL Server 2014, which allows
/// us to query it in a few milliseconds", §6.3). Lookup is exact match on
/// the lower-cased term, per §5.
class CommunityStore {
 public:
  /// Assembles the store from a graph and a detection assignment. Also
  /// records inter-community edge weights so the closest communities of a
  /// domain can be listed (Fig. 7).
  static CommunityStore Build(const graph::Graph& g,
                              const std::vector<CommunityId>& assignment);

  size_t num_communities() const { return communities_.size(); }
  const std::vector<Community>& communities() const { return communities_; }
  const Community& community(size_t index) const {
    return communities_[index];
  }

  /// Exact-match lookup of the community containing `term` (lower-cased
  /// internally). NotFound if the term was never seen in the log.
  ///
  /// Lifetime: the returned pointer aliases this store's internal storage
  /// and is valid only while the store itself is alive and unmodified. In
  /// particular, code that serves queries against a store that can be
  /// hot-swapped by the weekly refresh (see serving/snapshot.h) must either
  /// hold the snapshot's shared_ptr for as long as it dereferences the
  /// pointer, or use FindCopy, which has no lifetime coupling.
  Result<const Community*> Find(const std::string& term) const;

  /// Snapshot-safe variant of Find: returns the community by value, so the
  /// result outlives any subsequent store swap or destruction. This is what
  /// the serving layer hands out across API boundaries.
  Result<Community> FindCopy(const std::string& term) const;

  /// Fig. 6: distribution of community sizes.
  SizeHistogram ComputeSizeHistogram() const;

  /// Fig. 7: the k communities most strongly connected to the one at
  /// `index`, by total inter-community edge weight, strongest first.
  std::vector<std::pair<size_t, double>> ClosestCommunities(size_t index,
                                                            size_t k) const;

  /// Phrase lookup fallback (§5's "contains the query terms exactly and in
  /// order"): finds the community owning a term that contains the query as
  /// a contiguous, ordered token sequence. Among multiple containing terms,
  /// the shortest (most specific) wins; ties break toward the smaller
  /// community index. Slower than Find (linear scan) — the online stage
  /// only reaches for it when the exact match misses.
  Result<const Community*> FindPhrase(const std::string& query) const;

  /// Serializes the collection to a TSV text form ("t<TAB>index<TAB>term"
  /// and "w<TAB>a<TAB>b<TAB>weight" lines) — the artifact the weekly
  /// offline job would publish and SQL Server would index (§6.3).
  std::string SerializeTsv() const;

  /// Parses the TSV form back into a store.
  static Result<CommunityStore> ParseTsv(const std::string& tsv);

  /// Reassembles a store from pre-built parts, as decoded from a binary
  /// snapshot: communities in index order plus (PairKey, weight) inter-
  /// community edges. The term index is rebuilt with the same first-wins
  /// rule Build and ParseTsv use, so lookups behave identically.
  static CommunityStore FromSnapshotParts(
      std::vector<Community> communities,
      const std::vector<std::pair<uint64_t, double>>& inter_weights);

  /// Inter-community weights as sorted (PairKey, weight) pairs, for
  /// snapshot serialization (deterministic byte-stable order).
  std::vector<std::pair<uint64_t, double>> InterWeights() const;

  /// Approximate serialized size (Table 9 reports ~100 MB for the real
  /// collection).
  uint64_t SizeBytes() const;

 private:
  std::vector<Community> communities_;
  /// term -> index into communities_.
  std::unordered_map<std::string, size_t> term_index_;
  /// (indexA, indexB) with A < B -> inter weight.
  std::unordered_map<uint64_t, double> inter_weight_;
};

}  // namespace esharp::community

#endif  // ESHARP_COMMUNITY_STORE_H_
