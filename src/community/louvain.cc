#include "community/louvain.h"

#include <numeric>
#include <unordered_map>

namespace esharp::community {

namespace {

// A working multigraph for the coarsening levels: adjacency with weights
// plus per-vertex self-loop weight (internal weight folded by contraction).
struct LevelGraph {
  // adjacency[v] : neighbor -> weight (no self entries).
  std::vector<std::unordered_map<uint32_t, double>> adjacency;
  std::vector<double> self_loop;   // folded internal weight per vertex
  std::vector<double> degree;      // weighted degree incl. 2*self_loop
  double total_weight = 0;         // m (self loops count once)
};

LevelGraph FromGraph(const graph::Graph& g) {
  LevelGraph lg;
  lg.adjacency.resize(g.num_vertices());
  lg.self_loop.assign(g.num_vertices(), 0.0);
  lg.degree.assign(g.num_vertices(), 0.0);
  for (const graph::Edge& e : g.edges()) {
    lg.adjacency[e.u][e.v] += e.weight;
    lg.adjacency[e.v][e.u] += e.weight;
    lg.degree[e.u] += e.weight;
    lg.degree[e.v] += e.weight;
    lg.total_weight += e.weight;
  }
  return lg;
}

// One level of local moves; returns the vertex -> community assignment and
// whether anything moved.
bool LocalMoves(const LevelGraph& lg, size_t max_sweeps,
                std::vector<uint32_t>* community) {
  const size_t n = lg.adjacency.size();
  community->resize(n);
  std::iota(community->begin(), community->end(), 0);
  // degree[] in LevelGraph excludes self loops; fold them in once.
  std::vector<double> vertex_degree = lg.degree;
  for (size_t v = 0; v < n; ++v) vertex_degree[v] += 2.0 * lg.self_loop[v];
  std::vector<double> community_degree = vertex_degree;

  const double m = lg.total_weight +
                   std::accumulate(lg.self_loop.begin(), lg.self_loop.end(),
                                   0.0);
  if (m <= 0) return false;

  bool any_move = false;
  std::unordered_map<uint32_t, double> weight_to;
  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    bool moved = false;
    for (uint32_t v = 0; v < n; ++v) {
      uint32_t current = (*community)[v];
      weight_to.clear();
      for (const auto& [u, w] : lg.adjacency[v]) {
        weight_to[(*community)[u]] += w;
      }
      // Remove v from its community for the gain arithmetic.
      community_degree[current] -= vertex_degree[v];
      double best_gain = 0;
      uint32_t best_comm = current;
      double base = weight_to.count(current) ? weight_to.at(current) : 0.0;
      double base_gain =
          base - community_degree[current] * vertex_degree[v] / (2.0 * m);
      for (const auto& [comm, w] : weight_to) {
        double gain =
            w - community_degree[comm] * vertex_degree[v] / (2.0 * m);
        double delta = gain - base_gain;
        if (delta > best_gain + 1e-12 ||
            (delta > best_gain - 1e-12 && comm < best_comm &&
             delta > 1e-12)) {
          best_gain = delta;
          best_comm = comm;
        }
      }
      community_degree[best_comm] += vertex_degree[v];
      if (best_comm != current) {
        (*community)[v] = best_comm;
        moved = true;
        any_move = true;
      }
    }
    if (!moved) break;
  }
  return any_move;
}

// Contracts the level graph by the assignment; fills the dense relabeling
// old-community -> new-vertex.
LevelGraph Contract(const LevelGraph& lg,
                    const std::vector<uint32_t>& community,
                    std::vector<uint32_t>* dense) {
  std::unordered_map<uint32_t, uint32_t> remap;
  dense->assign(community.size(), 0);
  for (size_t v = 0; v < community.size(); ++v) {
    auto it = remap.find(community[v]);
    if (it == remap.end()) {
      it = remap.emplace(community[v],
                         static_cast<uint32_t>(remap.size())).first;
    }
    (*dense)[v] = it->second;
  }
  LevelGraph out;
  out.adjacency.resize(remap.size());
  out.self_loop.assign(remap.size(), 0.0);
  out.degree.assign(remap.size(), 0.0);
  for (size_t v = 0; v < community.size(); ++v) {
    out.self_loop[(*dense)[v]] += lg.self_loop[v];
  }
  for (uint32_t v = 0; v < lg.adjacency.size(); ++v) {
    for (const auto& [u, w] : lg.adjacency[v]) {
      if (u < v) continue;  // visit each undirected pair once
      uint32_t cv = (*dense)[v], cu = (*dense)[u];
      if (cv == cu) {
        out.self_loop[cv] += w;
      } else {
        out.adjacency[cv][cu] += w;
        out.adjacency[cu][cv] += w;
        out.degree[cv] += w;
        out.degree[cu] += w;
        out.total_weight += w;
      }
    }
  }
  return out;
}

}  // namespace

Result<DetectionResult> DetectCommunitiesLouvain(
    const graph::Graph& g, const LouvainOptions& options) {
  if (g.num_vertices() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  DetectionResult result;
  result.assignment.resize(g.num_vertices());
  std::iota(result.assignment.begin(), result.assignment.end(), 0);

  if (g.num_edges() == 0) {
    result.communities_per_iteration = {g.num_vertices()};
    result.modularity_per_iteration = {0.0};
    result.converged = true;
    return result;
  }

  ModularityContext ctx(g);
  auto record = [&]() {
    Partition p(g);
    std::unordered_map<CommunityId, CommunityId> relabel;
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      relabel[static_cast<CommunityId>(v)] = result.assignment[v];
    }
    p.Relabel(relabel);
    result.communities_per_iteration.push_back(p.NumCommunities());
    result.modularity_per_iteration.push_back(p.TotalModularity(ctx));
  };
  record();

  LevelGraph level = FromGraph(g);
  // vertex_map[v] = current super-vertex of original vertex v.
  std::vector<uint32_t> vertex_map(g.num_vertices());
  std::iota(vertex_map.begin(), vertex_map.end(), 0);

  for (size_t depth = 0; depth < options.max_levels; ++depth) {
    std::vector<uint32_t> community;
    bool moved = LocalMoves(level, options.max_sweeps_per_level, &community);
    if (!moved) {
      result.converged = true;
      break;
    }
    std::vector<uint32_t> dense;
    level = Contract(level, community, &dense);
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      vertex_map[v] = dense[vertex_map[v]];
    }
    // Name communities by their smallest original member for stability.
    std::unordered_map<uint32_t, CommunityId> name;
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      auto it = name.find(vertex_map[v]);
      if (it == name.end() || v < it->second) {
        name[vertex_map[v]] = static_cast<CommunityId>(v);
      }
    }
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      result.assignment[v] = name.at(vertex_map[v]);
    }
    ++result.iterations;
    double before = result.modularity_per_iteration.back();
    record();
    if (result.modularity_per_iteration.back() - before < options.min_gain) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace esharp::community
