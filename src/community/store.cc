#include "community/store.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace esharp::community {

CommunityStore CommunityStore::Build(
    const graph::Graph& g, const std::vector<CommunityId>& assignment) {
  CommunityStore store;
  // Dense-index the community ids in first-seen order of vertex id, so the
  // store is stable across naming schemes (native ids vs SQL names).
  std::unordered_map<CommunityId, size_t> dense;
  for (graph::VertexId v = 0; v < assignment.size(); ++v) {
    CommunityId c = assignment[v];
    auto it = dense.find(c);
    size_t index;
    if (it == dense.end()) {
      index = store.communities_.size();
      dense.emplace(c, index);
      store.communities_.push_back(
          Community{static_cast<CommunityId>(index), {}});
    } else {
      index = it->second;
    }
    const std::string& term = g.label(v);
    store.communities_[index].terms.push_back(term);
    store.term_index_.emplace(ToLowerAscii(term), index);
  }
  for (const graph::Edge& e : g.edges()) {
    size_t a = dense.at(assignment[e.u]);
    size_t b = dense.at(assignment[e.v]);
    if (a == b) continue;
    uint64_t key = Partition::PairKey(static_cast<CommunityId>(a),
                                      static_cast<CommunityId>(b));
    store.inter_weight_[key] += e.weight;
  }
  return store;
}

Result<const Community*> CommunityStore::Find(const std::string& term) const {
  auto it = term_index_.find(ToLowerAscii(term));
  if (it == term_index_.end()) {
    return Status::NotFound("term '", term, "' matches no community");
  }
  return &communities_[it->second];
}

Result<Community> CommunityStore::FindCopy(const std::string& term) const {
  ESHARP_ASSIGN_OR_RETURN(const Community* found, Find(term));
  return *found;
}

SizeHistogram CommunityStore::ComputeSizeHistogram() const {
  SizeHistogram h;
  for (const Community& c : communities_) {
    size_t n = c.terms.size();
    if (n <= 1) {
      ++h.orphans;
    } else if (n <= 10) {
      ++h.small;
    } else if (n <= 50) {
      ++h.medium;
    } else {
      ++h.large;
    }
  }
  return h;
}

std::vector<std::pair<size_t, double>> CommunityStore::ClosestCommunities(
    size_t index, size_t k) const {
  std::vector<std::pair<size_t, double>> scored;
  for (const auto& [key, w] : inter_weight_) {
    size_t a = static_cast<size_t>(key >> 32);
    size_t b = static_cast<size_t>(key & 0xFFFFFFFFu);
    if (a == index) scored.emplace_back(b, w);
    if (b == index) scored.emplace_back(a, w);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& x, const auto& y) {
    if (x.second != y.second) return x.second > y.second;
    return x.first < y.first;
  });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

Result<const Community*> CommunityStore::FindPhrase(
    const std::string& query) const {
  std::vector<std::string> needle = SplitWhitespace(ToLowerAscii(query));
  if (needle.empty()) return Status::InvalidArgument("empty query");
  const Community* best = nullptr;
  size_t best_len = SIZE_MAX;
  for (const Community& c : communities_) {
    for (const std::string& term : c.terms) {
      std::vector<std::string> hay = SplitWhitespace(ToLowerAscii(term));
      if (hay.size() < needle.size() || hay.size() >= best_len) continue;
      if (ContainsPhrase(hay, needle)) {
        best = &c;
        best_len = hay.size();
      }
    }
  }
  if (best == nullptr) {
    return Status::NotFound("no community term contains phrase '", query,
                            "'");
  }
  return best;
}

std::string CommunityStore::SerializeTsv() const {
  std::string out;
  for (size_t i = 0; i < communities_.size(); ++i) {
    for (const std::string& term : communities_[i].terms) {
      out += StrFormat("t\t%zu\t", i);
      out += term;
      out += '\n';
    }
  }
  for (const auto& [key, w] : inter_weight_) {
    out += StrFormat("w\t%u\t%u\t%.17g\n",
                     static_cast<uint32_t>(key >> 32),
                     static_cast<uint32_t>(key & 0xFFFFFFFFu), w);
  }
  return out;
}

Result<CommunityStore> CommunityStore::ParseTsv(const std::string& tsv) {
  CommunityStore store;
  for (const std::string& line : SplitChar(tsv, '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitChar(line, '\t');
    if (fields[0] == "t") {
      if (fields.size() != 3) {
        return Status::IOError("malformed term line: '", line, "'");
      }
      size_t index = 0;
      try {
        index = std::stoul(fields[1]);
      } catch (const std::exception&) {
        return Status::IOError("bad community index in '", line, "'");
      }
      while (store.communities_.size() <= index) {
        store.communities_.push_back(
            Community{static_cast<CommunityId>(store.communities_.size()),
                      {}});
      }
      store.communities_[index].terms.push_back(fields[2]);
      store.term_index_.emplace(ToLowerAscii(fields[2]), index);
    } else if (fields[0] == "w") {
      if (fields.size() != 4) {
        return Status::IOError("malformed weight line: '", line, "'");
      }
      try {
        CommunityId a = static_cast<CommunityId>(std::stoul(fields[1]));
        CommunityId b = static_cast<CommunityId>(std::stoul(fields[2]));
        store.inter_weight_[Partition::PairKey(a, b)] = std::stod(fields[3]);
      } catch (const std::exception&) {
        return Status::IOError("bad weight line: '", line, "'");
      }
    } else {
      return Status::IOError("unknown record type in '", line, "'");
    }
  }
  return store;
}

CommunityStore CommunityStore::FromSnapshotParts(
    std::vector<Community> communities,
    const std::vector<std::pair<uint64_t, double>>& inter_weights) {
  CommunityStore store;
  store.communities_ = std::move(communities);
  for (size_t i = 0; i < store.communities_.size(); ++i) {
    for (const std::string& term : store.communities_[i].terms) {
      store.term_index_.emplace(ToLowerAscii(term), i);
    }
  }
  store.inter_weight_.reserve(inter_weights.size());
  for (const auto& [key, w] : inter_weights) store.inter_weight_[key] = w;
  return store;
}

std::vector<std::pair<uint64_t, double>> CommunityStore::InterWeights() const {
  std::vector<std::pair<uint64_t, double>> out(inter_weight_.begin(),
                                               inter_weight_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

uint64_t CommunityStore::SizeBytes() const {
  uint64_t total = 0;
  for (const Community& c : communities_) {
    for (const std::string& t : c.terms) total += t.size() + 8;
  }
  return total;
}

}  // namespace esharp::community
