#ifndef ESHARP_COMMUNITY_NEWMAN_H_
#define ESHARP_COMMUNITY_NEWMAN_H_

#include "common/result.h"
#include "community/parallel_cd.h"

namespace esharp::community {

/// \brief Options of the sequential greedy heuristic.
struct NewmanOptions {
  /// Optional early stop: halt once at most this many communities remain
  /// ("or when we have reached a satisfying number of communities",
  /// §4.2.1). 0 disables the early stop.
  size_t target_communities = 0;
  /// Safety cap on merges.
  size_t max_merges = SIZE_MAX;
};

/// \brief Newman's seminal single-machine greedy modularity maximization
/// (§4.2.1): start from singletons and repeatedly merge the pair of
/// connected communities with the largest positive DeltaMod, one merge at a
/// time, until no merge improves the score.
///
/// Implemented CNM-style with a lazily-invalidated max-heap of candidate
/// merges, so it handles the ablation benches' graph sizes. This is the
/// sequential reference the paper's parallel variant is measured against.
Result<DetectionResult> DetectCommunitiesNewman(
    const graph::Graph& g, const NewmanOptions& options = {});

}  // namespace esharp::community

#endif  // ESHARP_COMMUNITY_NEWMAN_H_
