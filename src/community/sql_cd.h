#ifndef ESHARP_COMMUNITY_SQL_CD_H_
#define ESHARP_COMMUNITY_SQL_CD_H_

#include "common/result.h"
#include "community/parallel_cd.h"
#include "sqlengine/plan.h"

namespace esharp::community {

/// \brief Options of the SQL-based detection.
struct SqlCdOptions {
  size_t max_iterations = 30;
  /// Execution knobs forwarded to the relational engine; `pool == nullptr`
  /// runs single-threaded, otherwise operators hash-partition across the
  /// pool, which is the paper's map-reduce parallelization (§4.2.3).
  ThreadPool* pool = nullptr;
  size_t num_partitions = 8;
  sql::JoinStrategy join_strategy = sql::JoinStrategy::kReplicated;
  /// Run the engine's vectorized columnar kernels (typed column batches,
  /// selection vectors, copy-free partitioning) on the clustering hot path.
  /// Off = reference row kernels; results and EXPLAIN row counts are
  /// identical either way.
  bool use_columnar = true;
  ResourceMeter* meter = nullptr;
  /// Optional tracing: each rename iteration becomes an "iteration" span
  /// (annotated with community count and modularity) under `trace_parent`.
  obs::Tracer* tracer = nullptr;
  const obs::Span* trace_parent = nullptr;
  /// When set, the first iteration's main plan (the Fig. 4 "partitions"
  /// statement: join graph to communities, aggregate weights, ModulGain
  /// filter, argmax) is profiled into this EXPLAIN ANALYZE tree with exact
  /// per-operator row counts.
  sql::ExplainStats* explain = nullptr;
  /// When > 0, use this as the graph total weight m_G in the ModulGain UDF
  /// and the modularity trace instead of g.TotalWeight(). Set by the
  /// per-component decomposition (component_cd.h) so a component run is
  /// bit-identical to its slice of a full-graph run.
  double total_weight_override = 0;
};

/// \brief The paper's SQL-based modularity maximization (Fig. 4), executed
/// on the relational engine.
///
/// Tables mirror the figure: `graph(query1, query2, distance)` holds both
/// directions of every similarity edge and `communities(comm_name, query)`
/// the vertex memberships, with communities named after member vertices.
/// Each iteration runs the figure's three statements as engine plans:
///
///   neighbors  = join graph to communities on both endpoints, aggregate
///                inter-community weight, join community degree sums, and
///                keep pairs where the ModulGain UDF is positive;
///   partitions = per community, argmax(gain) over neighborhoods;
///   communities = rename each community to LEAST(itself, chosen target).
///
/// The LEAST canonicalization is the deterministic tie-break that makes the
/// rename cascade converge (mutual best pairs collapse onto the smaller
/// name instead of swapping forever); it corresponds to the "keep the
/// closest neighborhood" rule of §4.2.2 step 2 with a stable naming choice.
/// Vertex names are zero-padded ids so lexicographic order equals numeric
/// order; the result is then identical, community by community, to
/// DetectCommunitiesParallel.
Result<DetectionResult> DetectCommunitiesSql(const graph::Graph& g,
                                             const SqlCdOptions& options = {});

/// \brief Renders the zero-padded vertex name used inside the SQL tables.
std::string SqlVertexName(graph::VertexId v);

/// \brief The same algorithm once more, but driven by LITERAL SQL text: the
/// four statements of Fig. 4 (degrees, neighbors, partitions, rename) are
/// written as SQL strings, compiled by the bundled parser and executed on
/// the engine, with the ModulGain and LEAST UDFs supplied through the
/// function registry. This is the closest possible rendering of the paper's
/// claim that the algorithm "can directly be implemented in a SQL-like
/// language such as Hive, Microsoft's SCOPE or Pig". Produces results
/// identical to DetectCommunitiesSql and DetectCommunitiesParallel.
Result<DetectionResult> DetectCommunitiesSqlText(
    const graph::Graph& g, const SqlCdOptions& options = {});

}  // namespace esharp::community

#endif  // ESHARP_COMMUNITY_SQL_CD_H_
