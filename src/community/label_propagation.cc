#include "community/label_propagation.h"

#include <optional>
#include <unordered_map>

namespace esharp::community {

Result<DetectionResult> DetectCommunitiesLabelPropagation(
    const graph::Graph& g, const LabelPropagationOptions& options) {
  if (g.num_vertices() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  DetectionResult result;
  result.assignment.resize(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    result.assignment[v] = static_cast<CommunityId>(v);
  }

  auto count_labels = [&]() {
    std::unordered_map<CommunityId, size_t> seen;
    for (CommunityId c : result.assignment) seen[c] += 1;
    return seen.size();
  };

  std::optional<ModularityContext> ctx;
  if (g.num_edges() > 0) ctx.emplace(g);

  auto record = [&]() {
    result.communities_per_iteration.push_back(count_labels());
    if (ctx.has_value()) {
      Partition p(g);
      std::unordered_map<CommunityId, CommunityId> relabel;
      for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
        relabel[static_cast<CommunityId>(v)] = result.assignment[v];
      }
      p.Relabel(relabel);
      result.modularity_per_iteration.push_back(p.TotalModularity(*ctx));
    } else {
      result.modularity_per_iteration.push_back(0.0);
    }
  };

  record();
  if (g.num_edges() == 0) {
    result.converged = true;
    return result;
  }

  std::unordered_map<CommunityId, double> tally;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (g.neighbors(v).empty()) continue;
      tally.clear();
      for (const graph::Graph::Neighbor& n : g.neighbors(v)) {
        tally[result.assignment[n.id]] += n.weight;
      }
      CommunityId best = result.assignment[v];
      double best_w = -1;
      for (const auto& [label, w] : tally) {
        if (w > best_w || (w == best_w && label < best)) {
          best_w = w;
          best = label;
        }
      }
      if (best != result.assignment[v]) {
        result.assignment[v] = best;
        changed = true;
      }
    }
    if (!changed) {
      result.converged = true;
      break;
    }
    ++result.iterations;
    record();
  }
  return result;
}

}  // namespace esharp::community
