#include "community/component_cd.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "community/sql_cd.h"

namespace esharp::community {

namespace {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // Path halving.
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    // Root at the smaller id so component roots are stable min-members.
    if (a > b) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

Result<DetectionResult> DetectCommunitiesByComponent(
    const graph::Graph& g, const ComponentCdOptions& options) {
  DetectionResult result;
  result.assignment.resize(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    result.assignment[v] = static_cast<CommunityId>(v);
  }
  result.converged = true;
  if (g.num_edges() == 0) return result;

  UnionFind uf(g.num_vertices());
  for (const graph::Edge& e : g.edges()) uf.Union(e.u, e.v);

  // Group vertices and edges by component root. Iterating vertices in
  // ascending id order makes every member list ascending, which the min-id
  // rename equivalence (see header) relies on.
  std::unordered_map<uint32_t, std::vector<graph::VertexId>> members;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    members[uf.Find(v)].push_back(v);
  }
  std::unordered_map<uint32_t, std::vector<const graph::Edge*>> comp_edges;
  for (const graph::Edge& e : g.edges()) {
    comp_edges[uf.Find(e.u)].push_back(&e);
  }

  // Process components in ascending root order for determinism.
  std::vector<uint32_t> roots;
  roots.reserve(comp_edges.size());
  for (const auto& [root, edges] : comp_edges) roots.push_back(root);
  std::sort(roots.begin(), roots.end());

  const double total_weight = g.TotalWeight();
  for (uint32_t root : roots) {
    const std::vector<graph::VertexId>& verts = members.at(root);
    if (verts.size() < 2) continue;  // Isolated vertex: stays singleton.

    graph::Graph sub;
    std::unordered_map<graph::VertexId, graph::VertexId> local;
    local.reserve(verts.size());
    for (graph::VertexId v : verts) {
      local.emplace(v, sub.AddVertex(g.label(v)));
    }
    for (const graph::Edge* e : comp_edges.at(root)) {
      ESHARP_RETURN_NOT_OK(
          sub.AddEdge(local.at(e->u), local.at(e->v), e->weight));
    }
    sub.Finalize();

    DetectionResult sub_result;
    if (options.use_sql) {
      SqlCdOptions sql;
      sql.max_iterations = options.max_iterations;
      sql.pool = options.pool;
      sql.num_partitions = options.num_partitions;
      sql.use_columnar = options.sql_use_columnar;
      sql.meter = options.meter;
      sql.total_weight_override = total_weight;
      ESHARP_ASSIGN_OR_RETURN(sub_result, DetectCommunitiesSql(sub, sql));
    } else {
      ParallelCdOptions par;
      par.max_iterations = options.max_iterations;
      par.pool = options.pool;
      par.num_partitions = options.num_partitions;
      par.meter = options.meter;
      par.total_weight_override = total_weight;
      ESHARP_ASSIGN_OR_RETURN(sub_result, DetectCommunitiesParallel(sub, par));
    }

    // Local community names are local min-member ids; verts is ascending,
    // so indexing it with the local name yields the global min member —
    // exactly the name the full-graph run assigns.
    for (size_t i = 0; i < verts.size(); ++i) {
      result.assignment[verts[i]] = static_cast<CommunityId>(
          verts[sub_result.assignment[i]]);
    }
    result.iterations = std::max(result.iterations, sub_result.iterations);
    result.converged = result.converged && sub_result.converged;
  }
  return result;
}

}  // namespace esharp::community
