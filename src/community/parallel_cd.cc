#include "community/parallel_cd.h"

#include <algorithm>
#include <unordered_map>

#include "obs/obs.h"

namespace esharp::community {

std::vector<std::pair<CommunityId, CommunityId>> BestMergeTargets(
    const Partition& partition, const ModularityContext& ctx,
    ThreadPool* pool, size_t num_partitions) {
  // Step 1: neighborhood creation. Inter-community weights give the
  // candidate pairs; gains below/at zero are not neighbors.
  std::unordered_map<uint64_t, double> between =
      partition.InterCommunityWeights();

  // Per-community best neighbor (gain, id): step 2, neighborhood separation.
  struct Best {
    double gain = 0;
    CommunityId target = 0;
    bool has = false;
  };
  std::unordered_map<CommunityId, Best> best;

  // The pair map is the work list. For parallel execution we snapshot it and
  // give each worker a slice; merging per-worker partial argmaxes afterwards
  // reproduces the sequential result because argmax is associative with the
  // (gain desc, id asc) tiebreak.
  std::vector<std::pair<uint64_t, double>> pairs(between.begin(), between.end());
  std::sort(pairs.begin(), pairs.end());  // deterministic worker slices

  auto consider = [&](std::unordered_map<CommunityId, Best>& acc,
                      CommunityId c, CommunityId other, double gain) {
    Best& b = acc[c];
    if (!b.has || gain > b.gain || (gain == b.gain && other < b.target)) {
      b.gain = gain;
      b.target = other;
      b.has = true;
    }
  };

  size_t parts = pool != nullptr ? std::max<size_t>(1, num_partitions) : 1;
  std::vector<std::unordered_map<CommunityId, Best>> partials(parts);
  auto process = [&](size_t part) {
    size_t per = (pairs.size() + parts - 1) / parts;
    size_t begin = part * per;
    size_t end = std::min(pairs.size(), begin + per);
    for (size_t i = begin; i < end; ++i) {
      CommunityId a = static_cast<CommunityId>(pairs[i].first >> 32);
      CommunityId b = static_cast<CommunityId>(pairs[i].first & 0xFFFFFFFFu);
      double w = pairs[i].second;
      double gain = ctx.MergeGain(partition.DegreeSum(a),
                                  partition.DegreeSum(b), w);
      if (gain <= 0) continue;
      consider(partials[part], a, b, gain);
      consider(partials[part], b, a, gain);
    }
  };
  if (pool != nullptr && parts > 1) {
    pool->ParallelFor(parts, process);
  } else {
    for (size_t p = 0; p < parts; ++p) process(p);
  }

  for (const auto& partial : partials) {
    for (const auto& [c, b] : partial) {
      consider(best, c, b.target, b.gain);
    }
  }

  // Step 3 naming rule: community c heads for min(c, best-target).
  std::vector<std::pair<CommunityId, CommunityId>> out;
  out.reserve(best.size());
  for (const auto& [c, b] : best) {
    CommunityId target = std::min(c, b.target);
    if (target != c) out.emplace_back(c, target);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<DetectionResult> DetectCommunitiesParallel(
    const graph::Graph& g, const ParallelCdOptions& options) {
  if (g.num_vertices() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  Timer timer;
  DetectionResult result;
  if (options.warm_start != nullptr &&
      options.warm_start->size() != g.num_vertices()) {
    return Status::InvalidArgument("warm start arity ",
                                   options.warm_start->size(),
                                   " != vertex count ", g.num_vertices());
  }
  Partition partition = options.warm_start != nullptr
                            ? Partition(g, *options.warm_start)
                            : Partition(g);

  if (g.num_edges() == 0) {
    // All vertices are orphans; nothing to merge.
    result.assignment.resize(g.num_vertices());
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      result.assignment[v] = static_cast<CommunityId>(v);
    }
    result.communities_per_iteration = {g.num_vertices()};
    result.modularity_per_iteration = {0.0};
    result.converged = true;
    return result;
  }

  ModularityContext ctx = options.total_weight_override > 0
                              ? ModularityContext(options.total_weight_override)
                              : ModularityContext(g);
  result.communities_per_iteration.push_back(partition.NumCommunities());
  result.modularity_per_iteration.push_back(partition.TotalModularity(ctx));

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    ESHARP_SPAN(iter_span, options.tracer, "iteration", options.trace_parent);
    ESHARP_SPAN_ANNOTATE(iter_span, "iteration",
                         static_cast<int64_t>(iter));
    std::vector<std::pair<CommunityId, CommunityId>> moves = BestMergeTargets(
        partition, ctx, options.pool, options.num_partitions);
    if (moves.empty()) {
      ESHARP_SPAN_ANNOTATE(iter_span, "converged", "true");
      result.converged = true;
      break;
    }
    std::unordered_map<CommunityId, CommunityId> relabel(moves.begin(),
                                                         moves.end());
    partition.Relabel(relabel);
    ++result.iterations;
    result.communities_per_iteration.push_back(partition.NumCommunities());
    result.modularity_per_iteration.push_back(partition.TotalModularity(ctx));
    ESHARP_SPAN_ANNOTATE(iter_span, "communities",
                         static_cast<int64_t>(partition.NumCommunities()));
    ESHARP_SPAN_ANNOTATE(iter_span, "modularity",
                         result.modularity_per_iteration.back());
  }

  result.assignment.resize(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    result.assignment[v] = partition.CommunityOf(v);
  }

  if (options.meter != nullptr) {
    options.meter->AddTime("Clustering", timer.ElapsedSeconds());
    options.meter->AddIO("Clustering", g.SizeBytes(),
                         result.assignment.size() * 8);
    options.meter->AddRows("Clustering", g.num_edges(),
                           partition.NumCommunities());
    options.meter->SetParallelism(
        "Clustering",
        options.pool != nullptr ? options.num_partitions : 1);
  }
  return result;
}

}  // namespace esharp::community
