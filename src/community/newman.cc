#include "community/newman.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

namespace esharp::community {

namespace {

// Heap entry: candidate merge of two communities, stamped with both
// communities' versions at creation. Entries whose stamps are stale are
// discarded on pop (lazy invalidation).
struct Candidate {
  double gain;
  CommunityId a, b;
  uint32_t stamp_a, stamp_b;
};

struct CandidateLess {
  bool operator()(const Candidate& x, const Candidate& y) const {
    if (x.gain != y.gain) return x.gain < y.gain;
    // Deterministic order among equal gains.
    if (x.a != y.a) return x.a > y.a;
    return x.b > y.b;
  }
};

}  // namespace

Result<DetectionResult> DetectCommunitiesNewman(const graph::Graph& g,
                                                const NewmanOptions& options) {
  if (g.num_vertices() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  DetectionResult result;
  result.assignment.resize(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    result.assignment[v] = static_cast<CommunityId>(v);
  }
  if (g.num_edges() == 0) {
    result.communities_per_iteration = {g.num_vertices()};
    result.modularity_per_iteration = {0.0};
    result.converged = true;
    return result;
  }

  ModularityContext ctx(g);
  const double m = ctx.total_weight();

  // Community state: degree sums, adjacency (community -> community ->
  // inter-weight), version stamps, alive flags.
  size_t n = g.num_vertices();
  std::vector<double> degree(n);
  std::vector<std::unordered_map<CommunityId, double>> adj(n);
  std::vector<uint32_t> stamp(n, 0);
  std::vector<bool> alive(n, true);
  // parent[b] = a after b merges into a; find() resolves transitively.
  std::vector<CommunityId> parent(n);
  for (graph::VertexId v = 0; v < n; ++v) {
    degree[v] = g.WeightedDegree(v);
    parent[v] = static_cast<CommunityId>(v);
  }
  std::function<CommunityId(CommunityId)> find =
      [&](CommunityId x) -> CommunityId {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const graph::Edge& e : g.edges()) {
    adj[e.u][e.v] += e.weight;
    adj[e.v][e.u] += e.weight;
  }

  std::priority_queue<Candidate, std::vector<Candidate>, CandidateLess> heap;
  auto push_candidate = [&](CommunityId a, CommunityId b) {
    if (a == b) return;
    CommunityId lo = std::min(a, b), hi = std::max(a, b);
    auto it = adj[lo].find(hi);
    if (it == adj[lo].end()) return;
    double gain = it->second - degree[lo] * degree[hi] / (2.0 * m);
    if (gain > 0) heap.push(Candidate{gain, lo, hi, stamp[lo], stamp[hi]});
  };
  for (graph::VertexId v = 0; v < n; ++v) {
    for (const auto& [other, w] : adj[v]) {
      if (other > v) push_candidate(static_cast<CommunityId>(v), other);
    }
  }

  size_t num_communities = n;
  double modularity = 0;  // singleton partition: all-zero internal weights
  for (graph::VertexId v = 0; v < n; ++v) {
    double frac = degree[v] / (2.0 * m);
    modularity -= m * frac * frac;
  }
  result.communities_per_iteration.push_back(num_communities);
  result.modularity_per_iteration.push_back(modularity);

  size_t merges = 0;
  while (!heap.empty() && merges < options.max_merges) {
    if (options.target_communities > 0 &&
        num_communities <= options.target_communities) {
      break;
    }
    Candidate c = heap.top();
    heap.pop();
    if (!alive[c.a] || !alive[c.b] || stamp[c.a] != c.stamp_a ||
        stamp[c.b] != c.stamp_b) {
      continue;  // stale
    }
    // Recompute the gain defensively (stamps should make this redundant).
    auto it = adj[c.a].find(c.b);
    if (it == adj[c.a].end()) continue;
    double gain = it->second - degree[c.a] * degree[c.b] / (2.0 * m);
    if (gain <= 0) continue;

    // Merge b into a.
    CommunityId a = c.a, b = c.b;
    parent[b] = a;
    modularity += gain;
    degree[a] += degree[b];
    alive[b] = false;
    ++stamp[a];
    adj[a].erase(b);
    adj[b].erase(a);
    for (const auto& [other, w] : adj[b]) {
      adj[other].erase(b);
      adj[a][other] += w;
      adj[other][a] += w;
    }
    adj[b].clear();
    --num_communities;
    ++merges;

    // Fresh candidates for the merged community.
    for (const auto& [other, w] : adj[a]) {
      push_candidate(a, other);
    }

    result.communities_per_iteration.push_back(num_communities);
    result.modularity_per_iteration.push_back(modularity);
    result.iterations = merges;
  }
  result.converged = heap.empty() || (options.target_communities > 0 &&
                                      num_communities <=
                                          options.target_communities);

  for (graph::VertexId v = 0; v < n; ++v) {
    result.assignment[v] = find(static_cast<CommunityId>(v));
  }
  return result;
}

}  // namespace esharp::community
