#ifndef ESHARP_COMMUNITY_LOUVAIN_H_
#define ESHARP_COMMUNITY_LOUVAIN_H_

#include "common/result.h"
#include "community/parallel_cd.h"

namespace esharp::community {

/// \brief Options of the Louvain detector.
struct LouvainOptions {
  /// Cap on local-move sweeps within one level.
  size_t max_sweeps_per_level = 50;
  /// Cap on coarsening levels.
  size_t max_levels = 20;
  /// Minimum total-modularity improvement to continue a level.
  double min_gain = 1e-9;
};

/// \brief Louvain multi-level modularity maximization (Blondel et al.) —
/// a second "different community detection paradigm" for the §8 ablation.
///
/// Each level repeats vertex-local moves (move a vertex to the neighboring
/// community with the best modularity gain, ties toward the smaller
/// community id) until no move improves the objective, then contracts
/// communities into super-vertices and recurses. Deterministic: vertices
/// are visited in id order.
///
/// Where the paper's parallel algorithm merges whole communities in bulk
/// (good for map-reduce rounds), Louvain refines vertex by vertex — it
/// usually reaches higher modularity but is inherently sequential, which
/// is precisely the trade-off the paper's design sidesteps.
Result<DetectionResult> DetectCommunitiesLouvain(
    const graph::Graph& g, const LouvainOptions& options = {});

}  // namespace esharp::community

#endif  // ESHARP_COMMUNITY_LOUVAIN_H_
