#ifndef ESHARP_SERVING_SNAPSHOT_H_
#define ESHARP_SERVING_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include <string>

#include "community/store.h"
#include "esharp/esharp.h"
#include "expert/evidence_index.h"
#include "microblog/corpus.h"
#include "obs/metrics.h"
#include "serving/snapshot_file.h"

namespace esharp::serving {

/// \brief One immutable generation of serving artifacts: a community store
/// plus an ESharp facade bound to it.
///
/// The paper's offline stage "runs weekly" (§6.3) and republishes the
/// community collection; the online stage must keep answering queries while
/// that happens. A snapshot freezes one week's artifacts: the store is held
/// by shared_ptr so in-flight requests that acquired the snapshot keep it
/// (and every `const Community*` into it) alive even after the manager has
/// moved on to a newer generation.
class ServingSnapshot {
 public:
  /// `evidence` may be null (the engine then collects every term live);
  /// SnapshotManager::Publish builds one by default. The corpus is borrowed
  /// and must outlive the snapshot (the weekly-refresh setup, where one
  /// corpus spans every generation).
  ServingSnapshot(
      uint64_t version,
      std::shared_ptr<const community::CommunityStore> store,
      const microblog::TweetCorpus* corpus, core::ESharpOptions options,
      std::shared_ptr<const expert::TermEvidenceIndex> evidence = nullptr)
      : version_(version),
        store_(std::move(store)),
        evidence_(std::move(evidence)),
        owned_corpus_(nullptr),
        corpus_(corpus),
        esharp_(store_.get(), corpus, options),
        published_at_seconds_(obs::NowSeconds()) {}

  /// Owning-corpus form, for the streaming ingest path where every
  /// generation extends the corpus: the snapshot holds its own corpus
  /// generation alive (structurally shared with its neighbors through the
  /// corpus's copy-on-write chunks), so in-flight readers of generation N
  /// are unaffected by N+1 appearing.
  ServingSnapshot(
      uint64_t version,
      std::shared_ptr<const community::CommunityStore> store,
      std::shared_ptr<const microblog::TweetCorpus> corpus,
      core::ESharpOptions options,
      std::shared_ptr<const expert::TermEvidenceIndex> evidence = nullptr)
      : version_(version),
        store_(std::move(store)),
        evidence_(std::move(evidence)),
        owned_corpus_(std::move(corpus)),
        corpus_(owned_corpus_.get()),
        esharp_(store_.get(), owned_corpus_.get(), options),
        published_at_seconds_(obs::NowSeconds()) {}

  ServingSnapshot(const ServingSnapshot&) = delete;
  ServingSnapshot& operator=(const ServingSnapshot&) = delete;

  /// Monotonically increasing generation number (1 for the first publish).
  uint64_t version() const { return version_; }

  /// The store this generation serves from.
  const community::CommunityStore& store() const { return *store_; }

  /// ESharp facade over this generation's store. Safe to use from any
  /// number of threads concurrently: both the store and the detector are
  /// read-only after construction.
  const core::ESharp& esharp() const { return esharp_; }

  /// Precomputed per-term candidate pools for this generation's expansion
  /// vocabulary, or nullptr (live collection for every term). Borrowed
  /// pools stay valid while the snapshot is held — exactly the serving
  /// engine's per-request pinning discipline.
  const expert::TermEvidenceIndex* evidence() const { return evidence_.get(); }

  /// The corpus this generation was built against (owned by the snapshot on
  /// the streaming path, borrowed from the manager otherwise).
  const microblog::TweetCorpus* corpus() const { return corpus_; }

  /// When this generation was installed (obs::NowSeconds() time base).
  /// Readiness probes derive snapshot staleness from it: a weekly-refresh
  /// service whose snapshot stops turning over is quietly broken even
  /// though every request still succeeds.
  double published_at_seconds() const { return published_at_seconds_; }

 private:
  const uint64_t version_;
  const std::shared_ptr<const community::CommunityStore> store_;
  const std::shared_ptr<const expert::TermEvidenceIndex> evidence_;
  const std::shared_ptr<const microblog::TweetCorpus> owned_corpus_;
  const microblog::TweetCorpus* const corpus_;
  const core::ESharp esharp_;
  const double published_at_seconds_;
};

/// \brief RCU-style holder of the current serving snapshot.
///
/// Readers call Acquire() — a single atomic shared_ptr load, no mutex — and
/// work against the returned generation for the rest of their request.
/// Writers (the weekly refresh) call Publish(), which atomically installs a
/// new generation; old generations are reclaimed when the last in-flight
/// reader drops its reference. This is the reproduction's stand-in for
/// re-indexing the collection in SQL Server under live traffic (§6.3).
class SnapshotManager {
 public:
  /// The corpus is shared across generations (only the community store is
  /// refreshed weekly) and must outlive the manager. May be nullptr when
  /// every Publish supplies its own per-generation corpus (the streaming
  /// ingest path).
  explicit SnapshotManager(const microblog::TweetCorpus* corpus = nullptr)
      : corpus_(corpus) {}

  /// Atomically installs a new generation built from `store` and returns
  /// its version number. Thread-safe against concurrent Acquire() and
  /// Publish() calls; concurrent publishes serialize on a mutex so
  /// generations are installed in version order (readers stay lock-free).
  ///
  /// `evidence` is the generation's precomputed term-evidence index
  /// (RunOfflinePipeline builds one when OfflineOptions::corpus is set).
  /// When null and evidence building is enabled (the default), Publish
  /// builds it here — on the publisher's thread, i.e. the weekly refresh,
  /// never the query path.
  uint64_t Publish(
      std::shared_ptr<const community::CommunityStore> store,
      core::ESharpOptions options = {},
      std::shared_ptr<const expert::TermEvidenceIndex> evidence = nullptr);

  /// Convenience overload: takes ownership of a store by value (the common
  /// hand-off from RunOfflinePipeline artifacts).
  uint64_t Publish(
      community::CommunityStore store, core::ESharpOptions options = {},
      std::shared_ptr<const expert::TermEvidenceIndex> evidence = nullptr);

  /// Per-generation-corpus overload, for the streaming ingest path: the
  /// published snapshot owns `corpus` (no default — supply it explicitly),
  /// so each generation pins exactly the corpus it was built against while
  /// consecutive generations structurally share storage through the
  /// corpus's copy-on-write chunks. The manager's construction-time corpus
  /// (if any) is ignored for this generation.
  uint64_t Publish(
      std::shared_ptr<const community::CommunityStore> store,
      std::shared_ptr<const microblog::TweetCorpus> corpus,
      core::ESharpOptions options = {},
      std::shared_ptr<const expert::TermEvidenceIndex> evidence = nullptr);

  /// Disables (or re-enables) building a missing evidence index at publish
  /// time. Reference/baseline setups use this to serve with live collection
  /// only; snapshots published while disabled carry whatever `evidence`
  /// the caller passed (usually none).
  void set_build_evidence_on_publish(bool build) {
    build_evidence_on_publish_ = build;
  }

  /// Serializes the current generation (corpus, store, evidence) to the
  /// versioned binary snapshot file at `path` — the artifact LoadSnapshot
  /// cold-starts from. FailedPrecondition before the first Publish.
  Status SaveSnapshot(const std::string& path) const;

  /// The result of a cold start from a snapshot file: the corpus decoded
  /// from the file (which the manager borrows, so the caller must keep it
  /// alive for the manager's lifetime) plus a manager with generation 1
  /// already published.
  struct ColdStartArtifacts {
    std::shared_ptr<microblog::TweetCorpus> corpus;
    std::unique_ptr<SnapshotManager> manager;
    SnapshotFileInfo info;
  };

  /// Cold-starts a serving tier from a snapshot file: maps and validates
  /// `path`, reassembles the artifacts, and publishes them as generation 1
  /// — no log parsing, graph build, clustering or evidence collection.
  /// When the file carries no EVIDENCE section the publish does NOT
  /// rebuild the index (that would silently reintroduce the pipeline cost
  /// this path exists to skip); the engine serves with live collection
  /// until the next regular Publish.
  static Result<ColdStartArtifacts> LoadSnapshot(
      const std::string& path, core::ESharpOptions options = {});

  /// Returns the current generation, or nullptr before the first Publish.
  /// Lock-free on the fast path; the returned shared_ptr pins the
  /// generation for the caller's lifetime.
  std::shared_ptr<const ServingSnapshot> Acquire() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Version of the current generation (0 before the first Publish).
  /// Cheap enough to poll per-request for cache invalidation.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

 private:
  const microblog::TweetCorpus* corpus_;
  std::mutex publish_mu_;
  uint64_t next_version_ = 1;  // guarded by publish_mu_
  bool build_evidence_on_publish_ = true;
  std::atomic<uint64_t> version_{0};
  std::atomic<std::shared_ptr<const ServingSnapshot>> current_{nullptr};
};

}  // namespace esharp::serving

#endif  // ESHARP_SERVING_SNAPSHOT_H_
