#include "serving/cache.h"

#include <algorithm>
#include <limits>

#include "common/hash.h"

namespace esharp::serving {

namespace {
size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

ShardedResultCache::ShardedResultCache(CacheOptions options)
    : options_(options) {
  size_t num_shards = RoundUpPowerOfTwo(std::max<size_t>(1, options_.shards));
  shard_mask_ = num_shards - 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardedResultCache::Shard& ShardedResultCache::ShardFor(
    const std::string& key) {
  return *shards_[Fnv1a64(key) & shard_mask_];
}

std::optional<CachedResult> ShardedResultCache::Get(const std::string& key,
                                                    double now_seconds,
                                                    uint64_t current_version) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Entry& entry = it->second;
  bool expired = now_seconds >= entry.expires_at;
  bool stale = entry.value.snapshot_version != current_version;
  if (expired || stale) {
    shard.lru.erase(entry.lru_it);
    shard.map.erase(it);
    expirations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  // Touch: move to the front of the LRU list.
  shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru_it);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return entry.value;
}

void ShardedResultCache::Put(const std::string& key, CachedResult value,
                             double now_seconds) {
  double expires_at = options_.ttl_seconds > 0
                          ? now_seconds + options_.ttl_seconds
                          : std::numeric_limits<double>::infinity();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second.value = std::move(value);
    it->second.expires_at = expires_at;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return;
  }
  size_t capacity = std::max<size_t>(1, options_.capacity_per_shard);
  while (shard.map.size() >= capacity && !shard.lru.empty()) {
    shard.map.erase(shard.lru.back());
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.push_front(key);
  shard.map.emplace(key,
                    Entry{std::move(value), expires_at, shard.lru.begin()});
}

void ShardedResultCache::InvalidateAll() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    size_t dropped = shard->map.size();
    shard->map.clear();
    shard->lru.clear();
    expirations_.fetch_add(dropped, std::memory_order_relaxed);
  }
}

size_t ShardedResultCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

CacheStats ShardedResultCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.expirations = expirations_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace esharp::serving
