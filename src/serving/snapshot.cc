#include "serving/snapshot.h"

namespace esharp::serving {

uint64_t SnapshotManager::Publish(
    std::shared_ptr<const community::CommunityStore> store,
    core::ESharpOptions options) {
  uint64_t version = next_version_.fetch_add(1, std::memory_order_relaxed);
  auto snapshot = std::make_shared<const ServingSnapshot>(
      version, std::move(store), corpus_, options);
  current_.store(std::move(snapshot), std::memory_order_release);
  // version_ trails the pointer: once a reader observes version N it can
  // Acquire() a snapshot at least that new (possibly newer, never older).
  uint64_t seen = version_.load(std::memory_order_relaxed);
  while (seen < version &&
         !version_.compare_exchange_weak(seen, version,
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
  }
  return version;
}

uint64_t SnapshotManager::Publish(community::CommunityStore store,
                                  core::ESharpOptions options) {
  return Publish(std::make_shared<const community::CommunityStore>(
                     std::move(store)),
                 options);
}

}  // namespace esharp::serving
