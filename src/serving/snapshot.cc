#include "serving/snapshot.h"

#include "common/strings.h"
#include "obs/event_log.h"

namespace esharp::serving {

uint64_t SnapshotManager::Publish(
    std::shared_ptr<const community::CommunityStore> store,
    core::ESharpOptions options,
    std::shared_ptr<const expert::TermEvidenceIndex> evidence) {
  return Publish(std::move(store), nullptr, options, std::move(evidence));
}

uint64_t SnapshotManager::Publish(
    std::shared_ptr<const community::CommunityStore> store,
    std::shared_ptr<const microblog::TweetCorpus> corpus,
    core::ESharpOptions options,
    std::shared_ptr<const expert::TermEvidenceIndex> evidence) {
  // Publishes serialize so the pointer and the counter advance together:
  // two unserialized publishers could otherwise install snapshots out of
  // version order, leaving current_ a generation behind version_ — readers
  // would then judge every cache entry stale until the next publish.
  // Acquire() never takes this lock.
  std::lock_guard<std::mutex> lock(publish_mu_);
  const microblog::TweetCorpus* generation_corpus =
      corpus != nullptr ? corpus.get() : corpus_;
  if (evidence == nullptr && build_evidence_on_publish_ &&
      generation_corpus != nullptr) {
    // The expansion vocabulary of this generation is the store's term set;
    // precompute every term's candidate pool so the engine's detect stage
    // is a lookup for in-vocabulary terms. Runs on the publisher's thread
    // under the publish lock — the weekly refresh path, not a query path.
    std::vector<std::string> vocabulary;
    for (const community::Community& c : store->communities()) {
      for (const std::string& term : c.terms) {
        vocabulary.push_back(ToLowerAscii(term));
      }
    }
    evidence = std::make_shared<const expert::TermEvidenceIndex>(
        expert::TermEvidenceIndex::Build(*generation_corpus, vocabulary));
  }
  uint64_t version = next_version_++;
  auto snapshot =
      corpus != nullptr
          ? std::make_shared<const ServingSnapshot>(version, std::move(store),
                                                    std::move(corpus), options,
                                                    std::move(evidence))
          : std::make_shared<const ServingSnapshot>(version, std::move(store),
                                                    corpus_, options,
                                                    std::move(evidence));
  current_.store(std::move(snapshot), std::memory_order_release);
  // version_ trails the pointer: once a reader observes version N it can
  // Acquire() a snapshot at least that new (possibly newer, never older).
  version_.store(version, std::memory_order_release);
  obs::EventLog::Global().Add(
      obs::LogLevel::kINFO, "serving", "snapshot published",
      {{"version", StrFormat("%llu", static_cast<unsigned long long>(
                                         version))}});
  return version;
}

uint64_t SnapshotManager::Publish(
    community::CommunityStore store, core::ESharpOptions options,
    std::shared_ptr<const expert::TermEvidenceIndex> evidence) {
  return Publish(std::make_shared<const community::CommunityStore>(
                     std::move(store)),
                 options, std::move(evidence));
}

Status SnapshotManager::SaveSnapshot(const std::string& path) const {
  std::shared_ptr<const ServingSnapshot> snapshot = Acquire();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition(
        "SaveSnapshot before the first Publish: no generation to save");
  }
  return SaveSnapshotFile(path, *snapshot->corpus(), snapshot->store(),
                          snapshot->evidence());
}

Result<SnapshotManager::ColdStartArtifacts> SnapshotManager::LoadSnapshot(
    const std::string& path, core::ESharpOptions options) {
  ESHARP_ASSIGN_OR_RETURN(SnapshotArtifacts decoded, LoadSnapshotFile(path));
  ColdStartArtifacts artifacts;
  artifacts.corpus = decoded.corpus;
  artifacts.info = decoded.info;
  artifacts.manager = std::make_unique<SnapshotManager>(decoded.corpus.get());
  // A file without evidence cold-starts with live collection; rebuilding
  // the index here would cost exactly the offline work this path skips.
  // The generation owns the decoded corpus, so it survives even if the
  // caller drops ColdStartArtifacts::corpus.
  artifacts.manager->set_build_evidence_on_publish(false);
  artifacts.manager->Publish(decoded.store, decoded.corpus, options,
                             decoded.evidence);
  artifacts.manager->set_build_evidence_on_publish(true);
  obs::EventLog::Global().Add(
      obs::LogLevel::kINFO, "serving", "cold start from snapshot file",
      {{"file_bytes",
        StrFormat("%llu",
                  static_cast<unsigned long long>(decoded.info.file_bytes))},
       {"has_evidence", decoded.info.has_evidence ? "true" : "false"}});
  return artifacts;
}

}  // namespace esharp::serving
