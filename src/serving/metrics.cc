#include "serving/metrics.h"

#include <atomic>
#include <cmath>

#include "common/strings.h"

namespace esharp::serving {

namespace {

/// Time constant of the windowed rate: a burst that stops decays to ~37%
/// in one tau, so the window tracks "the last ten seconds or so".
constexpr double kRateTauSeconds = 10.0;

/// Distinguishes several engines in one process: the registry interns
/// instruments by (name, labels), so each ServingMetrics instance needs
/// its own label value to avoid merging another engine's traffic.
std::string NextEngineLabel() {
  static std::atomic<uint64_t> next{0};
  return StrFormat("%llu", static_cast<unsigned long long>(
                               next.fetch_add(1, std::memory_order_relaxed)));
}

}  // namespace

ServingMetrics::ServingMetrics() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const obs::Labels engine{{"engine", NextEngineLabel()}};
  auto stage_labels = [&engine](const char* stage) {
    obs::Labels labels = engine;
    labels.emplace_back("stage", stage);
    return labels;
  };
  completed_ = registry.GetCounter("serving.completed", engine);
  cache_hits_ = registry.GetCounter("serving.cache_hits", engine);
  deduplicated_ = registry.GetCounter("serving.deduplicated", engine);
  shed_ = registry.GetCounter("serving.shed", engine);
  timeouts_ = registry.GetCounter("serving.timeouts", engine);
  errors_ = registry.GetCounter("serving.errors", engine);
  total_ = registry.GetHistogram("serving.latency_seconds", engine);
  expand_ = registry.GetHistogram("serving.stage_seconds",
                                  stage_labels("expand"));
  detect_ = registry.GetHistogram("serving.stage_seconds",
                                  stage_labels("detect"));
  rank_ = registry.GetHistogram("serving.stage_seconds", stage_labels("rank"));
  start_time_ = obs::NowSeconds();
  last_event_time_ = start_time_;
}

double ServingMetrics::Now() const {
  // Callers hold mu_ (clock_ is mutable state).
  return clock_ ? clock_() : obs::NowSeconds();
}

void ServingMetrics::SetClockForTest(std::function<double()> clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = std::move(clock);
  start_time_ = Now();
  last_event_time_ = start_time_;
  ewma_events_ = 0;
}

void ServingMetrics::RecordRequest(double total_seconds,
                                   const StageTimings& stages, bool cache_hit,
                                   bool deduplicated,
                                   std::string_view exemplar_label) {
  completed_->Increment();
  if (cache_hit) cache_hits_->Increment();
  if (deduplicated) deduplicated_->Increment();
  total_->Observe(total_seconds, exemplar_label);
  if (!cache_hit && !deduplicated) {
    expand_->Observe(stages.expand_ms / 1e3);
    detect_->Observe(stages.detect_ms / 1e3);
    rank_->Observe(stages.rank_ms / 1e3);
  }
  std::lock_guard<std::mutex> lock(mu_);
  double now = Now();
  double dt = now - last_event_time_;
  if (dt > 0) ewma_events_ *= std::exp(-dt / kRateTauSeconds);
  ewma_events_ += 1.0;
  last_event_time_ = now;
}

MetricsReport ServingMetrics::Report() const {
  MetricsReport r;
  r.completed = completed_->Value();
  r.cache_hits = cache_hits_->Value();
  r.deduplicated = deduplicated_->Value();
  r.shed = shed_->Value();
  r.timeouts = timeouts_->Value();
  r.errors = errors_->Value();
  {
    std::lock_guard<std::mutex> lock(mu_);
    double now = Now();
    r.uptime_seconds = now - start_time_;
    r.window_tau_seconds = kRateTauSeconds;
    // Decay the accumulated mass to "now", then normalize. The plain EWMA
    // estimate is mass / tau; the (1 - e^{-age/tau}) factor corrects the
    // early-life bias (with only age << tau seconds observed, the window
    // has had no time to fill, so divide by the fraction that could fill).
    double age = now - start_time_;
    double mass = ewma_events_;
    double dt = now - last_event_time_;
    if (dt > 0) mass *= std::exp(-dt / kRateTauSeconds);
    double fill = 1.0 - std::exp(-age / kRateTauSeconds);
    if (fill > 1e-12) r.window_qps = mass / (kRateTauSeconds * fill);
  }
  r.qps = r.uptime_seconds > 0
              ? static_cast<double>(r.completed) / r.uptime_seconds
              : 0.0;
  r.cache_hit_rate = r.completed > 0 ? static_cast<double>(r.cache_hits) /
                                           static_cast<double>(r.completed)
                                     : 0.0;
  obs::HistogramSnapshot total = total_->Snapshot();
  r.p50_ms = total.p50 * 1e3;
  r.p95_ms = total.p95 * 1e3;
  r.p99_ms = total.p99 * 1e3;
  r.max_ms = total.max * 1e3;
  r.mean_expand_ms = expand_->Snapshot().mean * 1e3;
  r.mean_detect_ms = detect_->Snapshot().mean * 1e3;
  r.mean_rank_ms = rank_->Snapshot().mean * 1e3;
  return r;
}

std::string ServingMetrics::ToTable() const {
  MetricsReport r = Report();
  std::string out;
  out += StrFormat("requests completed   %10llu  (%.1f qps over %.1fs, "
                   "%.1f qps last ~%.0fs)\n",
                   static_cast<unsigned long long>(r.completed), r.qps,
                   r.uptime_seconds, r.window_qps, r.window_tau_seconds);
  out += StrFormat("cache hits           %10llu  (%.1f%% hit rate)\n",
                   static_cast<unsigned long long>(r.cache_hits),
                   100.0 * r.cache_hit_rate);
  out += StrFormat("deduplicated         %10llu\n",
                   static_cast<unsigned long long>(r.deduplicated));
  out += StrFormat("shed / timeouts      %10llu / %llu\n",
                   static_cast<unsigned long long>(r.shed),
                   static_cast<unsigned long long>(r.timeouts));
  out += StrFormat("errors               %10llu\n",
                   static_cast<unsigned long long>(r.errors));
  out += StrFormat("latency p50/p95/p99  %7.2f / %.2f / %.2f ms (max %.2f)\n",
                   r.p50_ms, r.p95_ms, r.p99_ms, r.max_ms);
  out += StrFormat("stage means          expand %.3f ms, detect %.3f ms, "
                   "rank %.3f ms\n",
                   r.mean_expand_ms, r.mean_detect_ms, r.mean_rank_ms);
  return out;
}

void ServingMetrics::Reset() {
  completed_->Reset();
  cache_hits_->Reset();
  deduplicated_->Reset();
  shed_->Reset();
  timeouts_->Reset();
  errors_->Reset();
  total_->Reset();
  expand_->Reset();
  detect_->Reset();
  rank_->Reset();
  std::lock_guard<std::mutex> lock(mu_);
  start_time_ = Now();
  last_event_time_ = start_time_;
  ewma_events_ = 0;
}

}  // namespace esharp::serving
