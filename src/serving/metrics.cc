#include "serving/metrics.h"

#include "common/strings.h"

namespace esharp::serving {

void ServingMetrics::RecordRequest(double total_seconds,
                                   const StageTimings& stages, bool cache_hit,
                                   bool deduplicated) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (cache_hit) cache_hits_.fetch_add(1, std::memory_order_relaxed);
  if (deduplicated) deduplicated_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  total_.Add(total_seconds);
  if (!cache_hit && !deduplicated) {
    expand_.Add(stages.expand_ms / 1e3);
    detect_.Add(stages.detect_ms / 1e3);
    rank_.Add(stages.rank_ms / 1e3);
  }
}

MetricsReport ServingMetrics::Report() const {
  MetricsReport r;
  r.completed = completed_.load(std::memory_order_relaxed);
  r.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  r.deduplicated = deduplicated_.load(std::memory_order_relaxed);
  r.shed = shed_.load(std::memory_order_relaxed);
  r.timeouts = timeouts_.load(std::memory_order_relaxed);
  r.errors = errors_.load(std::memory_order_relaxed);
  r.uptime_seconds = uptime_.ElapsedSeconds();
  r.qps = r.uptime_seconds > 0
              ? static_cast<double>(r.completed) / r.uptime_seconds
              : 0.0;
  r.cache_hit_rate = r.completed > 0 ? static_cast<double>(r.cache_hits) /
                                           static_cast<double>(r.completed)
                                     : 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  r.p50_ms = total_.Percentile(50) * 1e3;
  r.p95_ms = total_.Percentile(95) * 1e3;
  r.p99_ms = total_.Percentile(99) * 1e3;
  r.max_ms = total_.Max() * 1e3;
  r.mean_expand_ms = expand_.Mean() * 1e3;
  r.mean_detect_ms = detect_.Mean() * 1e3;
  r.mean_rank_ms = rank_.Mean() * 1e3;
  return r;
}

std::string ServingMetrics::ToTable() const {
  MetricsReport r = Report();
  std::string out;
  out += StrFormat("requests completed   %10llu  (%.1f qps over %.1fs)\n",
                   static_cast<unsigned long long>(r.completed), r.qps,
                   r.uptime_seconds);
  out += StrFormat("cache hits           %10llu  (%.1f%% hit rate)\n",
                   static_cast<unsigned long long>(r.cache_hits),
                   100.0 * r.cache_hit_rate);
  out += StrFormat("deduplicated         %10llu\n",
                   static_cast<unsigned long long>(r.deduplicated));
  out += StrFormat("shed / timeouts      %10llu / %llu\n",
                   static_cast<unsigned long long>(r.shed),
                   static_cast<unsigned long long>(r.timeouts));
  out += StrFormat("errors               %10llu\n",
                   static_cast<unsigned long long>(r.errors));
  out += StrFormat("latency p50/p95/p99  %7.2f / %.2f / %.2f ms (max %.2f)\n",
                   r.p50_ms, r.p95_ms, r.p99_ms, r.max_ms);
  out += StrFormat("stage means          expand %.3f ms, detect %.3f ms, "
                   "rank %.3f ms\n",
                   r.mean_expand_ms, r.mean_detect_ms, r.mean_rank_ms);
  return out;
}

void ServingMetrics::Reset() {
  completed_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  deduplicated_.store(0, std::memory_order_relaxed);
  shed_.store(0, std::memory_order_relaxed);
  timeouts_.store(0, std::memory_order_relaxed);
  errors_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  total_.Reset();
  expand_.Reset();
  detect_.Reset();
  rank_.Reset();
  uptime_.Reset();
}

}  // namespace esharp::serving
