#ifndef ESHARP_SERVING_INTROSPECT_H_
#define ESHARP_SERVING_INTROSPECT_H_

/// \file Glue between the serving engine and the obs/debugz endpoint
/// family. src/obs stays serving-agnostic (it exposes callback seams);
/// this header is where those seams are filled in with engine signals:
/// readiness from HealthView, /tracez tables from the active-request
/// registry, and the default SLO objectives a query service should watch.

#include <string>
#include <vector>

#include "obs/debugz.h"
#include "obs/slo.h"
#include "serving/engine.h"

namespace esharp::serving {

/// \brief Thresholds behind DefaultServingObjectives. Defaults follow the
/// paper's online budget: Expansion + Detection must answer interactively
/// (§5 targets < 1 s end to end), so p99 above one second burns budget.
struct ServingSloThresholds {
  double p99_latency_seconds = 1.0;  ///< kValue target for "latency_p99".
  double error_rate = 0.01;          ///< kRatio target for "error_rate".
  double shed_rate = 0.05;           ///< kRatio target for "shed_rate".
};

/// \brief Readiness probe over one engine's HealthView: fails until a
/// snapshot is published, and — when `max_snapshot_age_seconds` > 0 —
/// when the current generation is older than that bound (a weekly-refresh
/// service whose snapshot stops turning over is degraded even though every
/// request still succeeds). The engine must outlive the probe.
obs::Probe EngineReadiness(const ServingEngine* engine,
                           double max_snapshot_age_seconds = 0);

/// \brief The standard objectives for one serving engine, ready to hand to
/// SloWatchdog::AddObjective:
///   latency_p99  kValue — windowed p99 vs. thresholds.p99_latency_seconds
///   error_rate   kRatio — (errors + timeouts) / completed requests
///   shed_rate    kRatio — shed / offered (completed + shed)
/// The engine must outlive the watchdog the objectives are added to.
std::vector<obs::SloObjective> DefaultServingObjectives(
    const ServingEngine* engine, ServingSloThresholds thresholds = {});

/// \brief Wiring of MountServingEndpoints.
struct ServingIntrospectionOptions {
  std::string build_info;            ///< /statusz header line.
  obs::Tracer* tracer = nullptr;     ///< /tracez?format=json source.
  obs::SloWatchdog* watchdog = nullptr;  ///< /readyz + /statusz SLO table.
  /// Readiness staleness bound for EngineReadiness (0 = unbounded).
  double max_snapshot_age_seconds = 0;
  /// /graphz source (null disables). Must outlive the server.
  obs::TimeSeriesStore* timeseries = nullptr;
  /// /incidentz source (null disables). Must outlive the server.
  obs::FlightRecorder* recorder = nullptr;
};

/// \brief Mounts the full statusz family on `server`, wired to `engine`:
/// readiness from EngineReadiness (plus the watchdog when given), /tracez
/// live tables from the engine's active-request registry and finished
/// samples, and a /statusz overview block (snapshot generation and age,
/// qps, latency percentiles, cache hit rate, admission fill). The engine
/// (and watchdog/tracer, when set) must outlive the server.
void MountServingEndpoints(obs::DebugServer* server, ServingEngine* engine,
                           ServingIntrospectionOptions options = {});

}  // namespace esharp::serving

#endif  // ESHARP_SERVING_INTROSPECT_H_
