#ifndef ESHARP_SERVING_CACHE_H_
#define ESHARP_SERVING_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "expert/detector.h"

namespace esharp::serving {

/// \brief Sizing and expiry knobs of the result cache.
struct CacheOptions {
  /// Number of independently locked shards (rounded up to a power of two).
  /// More shards -> less lock contention under concurrent traffic.
  size_t shards = 8;
  /// LRU capacity per shard; total capacity = shards * capacity_per_shard.
  size_t capacity_per_shard = 512;
  /// Entry time-to-live in seconds; <= 0 disables expiry. The paper's
  /// collection refreshes weekly, but expert evidence drifts faster, so
  /// serving defaults to minutes.
  double ttl_seconds = 300.0;
};

/// \brief Counters exposed by the cache (all monotonically increasing).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;    // capacity-driven removals
  uint64_t expirations = 0;  // TTL- or version-driven removals
  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// \brief One cached answer: the ranked experts plus the generation of the
/// community store that produced them.
struct CachedResult {
  std::vector<expert::RankedExpert> experts;
  uint64_t snapshot_version = 0;
};

/// \brief A sharded, TTL'd LRU cache of query results.
///
/// Keys are the lower-cased query string (the same normalization the store
/// lookup applies, §5 — so "Tennis" and "tennis" share an entry). Each
/// shard has its own mutex, LRU list and hash map; a lookup touches exactly
/// one shard. Entries are validated against both a TTL and the snapshot
/// version that produced them, so a hot swap of the community store
/// invisibly invalidates every stale answer without a stop-the-world sweep
/// (InvalidateAll also exists for the eager path).
///
/// Callers pass the current time explicitly (seconds on any monotonic
/// clock) so tests can simulate expiry without sleeping.
class ShardedResultCache {
 public:
  explicit ShardedResultCache(CacheOptions options = {});

  /// Looks up `key` (already lower-cased by the engine). Entries that are
  /// expired or predate `current_version` count as misses and are removed.
  std::optional<CachedResult> Get(const std::string& key, double now_seconds,
                                  uint64_t current_version);

  /// Inserts or refreshes an entry, evicting the shard's LRU tail if full.
  void Put(const std::string& key, CachedResult value, double now_seconds);

  /// Drops every entry (eager invalidation after a snapshot swap).
  void InvalidateAll();

  /// Total live entries across shards (approximate under concurrency).
  size_t size() const;

  /// Monotonic hit/miss/eviction counters.
  CacheStats stats() const;

  const CacheOptions& options() const { return options_; }

 private:
  struct Entry {
    CachedResult value;
    /// Absolute expiry time in seconds; +inf when TTL is disabled.
    double expires_at = 0;
    /// Position in the shard's LRU list (front = most recent).
    std::list<std::string>::iterator lru_it;
  };
  struct Shard {
    std::mutex mu;
    std::list<std::string> lru;
    std::unordered_map<std::string, Entry> map;
  };

  Shard& ShardFor(const std::string& key);

  CacheOptions options_;
  size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> expirations_{0};
};

}  // namespace esharp::serving

#endif  // ESHARP_SERVING_CACHE_H_
