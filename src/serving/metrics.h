#ifndef ESHARP_SERVING_METRICS_H_
#define ESHARP_SERVING_METRICS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/stats.h"
#include "common/timer.h"

namespace esharp::serving {

/// \brief Wall time spent in each stage of one served request, in
/// milliseconds. Mirrors the paper's online split: Expansion (< 100 ms)
/// and Detection (< 1 s), with detection further split into candidate
/// collection and ranking.
struct StageTimings {
  double expand_ms = 0;
  double detect_ms = 0;
  double rank_ms = 0;
};

/// \brief Point-in-time view of the serving counters.
struct MetricsReport {
  uint64_t completed = 0;
  uint64_t cache_hits = 0;
  uint64_t deduplicated = 0;  // single-flight followers
  uint64_t shed = 0;
  uint64_t timeouts = 0;
  uint64_t errors = 0;
  double uptime_seconds = 0;
  double qps = 0;  // completed / uptime
  double cache_hit_rate = 0;
  // Total request latency percentiles, milliseconds.
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  // Per-stage mean latencies over executed (non-cached) requests, ms.
  double mean_expand_ms = 0;
  double mean_detect_ms = 0;
  double mean_rank_ms = 0;
};

/// \brief Thread-safe accounting for the serving engine: request counters
/// on atomics, latency distributions on mutex-guarded LatencyHistograms.
///
/// The histogram lock is uncontended relative to the detector work a
/// request does (candidate collection scans tweet indexes), so a single
/// mutex is fine; the counters stay lock-free for the shed path, which
/// must stay cheap precisely when the system is overloaded.
class ServingMetrics {
 public:
  /// Records one completed request. `stages` applies only when the request
  /// actually executed (cache hits carry zero stage time).
  void RecordRequest(double total_seconds, const StageTimings& stages,
                     bool cache_hit, bool deduplicated);

  /// Records a request rejected by admission control.
  void RecordShed() { shed_.fetch_add(1, std::memory_order_relaxed); }

  /// Records a request abandoned because its deadline elapsed.
  void RecordTimeout() { timeouts_.fetch_add(1, std::memory_order_relaxed); }

  /// Records a request that failed inside the detector.
  void RecordError() { errors_.fetch_add(1, std::memory_order_relaxed); }

  /// Snapshot of every counter and distribution.
  MetricsReport Report() const;

  /// Renders a human-readable dashboard block.
  std::string ToTable() const;

  /// Clears counters and histograms (bench runs reuse one engine).
  void Reset();

 private:
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> deduplicated_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> errors_{0};

  mutable std::mutex mu_;
  LatencyHistogram total_;    // seconds, all completed requests
  LatencyHistogram expand_;   // seconds, executed requests only
  LatencyHistogram detect_;
  LatencyHistogram rank_;
  Timer uptime_;
};

}  // namespace esharp::serving

#endif  // ESHARP_SERVING_METRICS_H_
