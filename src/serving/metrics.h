#ifndef ESHARP_SERVING_METRICS_H_
#define ESHARP_SERVING_METRICS_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace esharp::serving {

/// \brief Wall time spent in each stage of one served request, in
/// milliseconds. Mirrors the paper's online split: Expansion (< 100 ms)
/// and Detection (< 1 s), with detection further split into candidate
/// collection and ranking.
struct StageTimings {
  double expand_ms = 0;
  double detect_ms = 0;
  double rank_ms = 0;
};

/// \brief Point-in-time view of the serving counters.
struct MetricsReport {
  uint64_t completed = 0;
  uint64_t cache_hits = 0;
  uint64_t deduplicated = 0;  // single-flight followers
  uint64_t shed = 0;
  uint64_t timeouts = 0;
  uint64_t errors = 0;
  double uptime_seconds = 0;
  double qps = 0;  // completed / uptime (lifetime average)
  /// Exponentially-decayed recent rate (time constant window_tau_seconds).
  /// Unlike `qps`, this recovers after idle periods: a steady 100 qps burst
  /// reads ~100 here even if the engine sat idle for an hour before.
  double window_qps = 0;
  double window_tau_seconds = 0;
  double cache_hit_rate = 0;
  // Total request latency percentiles, milliseconds.
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  // Per-stage mean latencies over executed (non-cached) requests, ms.
  double mean_expand_ms = 0;
  double mean_detect_ms = 0;
  double mean_rank_ms = 0;
};

/// \brief Thread-safe accounting for the serving engine, now a thin view
/// over instruments owned by the global obs::MetricsRegistry: counters as
/// sharded lock-free obs::Counter, latency distributions as registry
/// histograms. Each ServingMetrics instance gets an {"engine":"<n>"} label
/// so several engines in one process stay distinguishable, and everything
/// recorded here shows up in obs::DumpAll() / the JSON exporter alongside
/// the offline pipeline's resource gauges.
///
/// The shed path stays lock-free (sharded counter increment), which must
/// stay cheap precisely when the system is overloaded.
class ServingMetrics {
 public:
  ServingMetrics();

  /// Records one completed request. `stages` applies only when the request
  /// actually executed (cache hits carry zero stage time). A non-empty
  /// `exemplar_label` (a trace id) rides the total-latency histogram as an
  /// exemplar, linking the bucket this request landed in to its retained
  /// trace/profile.
  void RecordRequest(double total_seconds, const StageTimings& stages,
                     bool cache_hit, bool deduplicated,
                     std::string_view exemplar_label = {});

  /// Records a request rejected by admission control.
  void RecordShed() { shed_->Increment(); }

  /// Records a request abandoned because its deadline elapsed.
  void RecordTimeout() { timeouts_->Increment(); }

  /// Records a request that failed inside the detector.
  void RecordError() { errors_->Increment(); }

  /// Snapshot of every counter and distribution.
  MetricsReport Report() const;

  /// Renders a human-readable dashboard block.
  std::string ToTable() const;

  /// Clears counters, histograms and the rate window (bench runs reuse one
  /// engine). Registry instrument pointers stay valid.
  void Reset();

  /// Test seam: replaces the clock used for uptime and the windowed rate.
  /// Pass nullptr to restore the default (obs::NowSeconds). Must return a
  /// monotonically non-decreasing seconds value.
  void SetClockForTest(std::function<double()> clock);

 private:
  double Now() const;

  // Registry-owned instruments (never deleted; safe to cache).
  obs::Counter* completed_;
  obs::Counter* cache_hits_;
  obs::Counter* deduplicated_;
  obs::Counter* shed_;
  obs::Counter* timeouts_;
  obs::Counter* errors_;
  obs::Histogram* total_;   // seconds, all completed requests
  obs::Histogram* expand_;  // seconds, executed requests only
  obs::Histogram* detect_;
  obs::Histogram* rank_;

  // Windowed-rate state (EWMA of request arrivals, time constant kTau).
  mutable std::mutex mu_;
  std::function<double()> clock_;  // null = obs::NowSeconds
  double start_time_ = 0;
  double ewma_events_ = 0;
  double last_event_time_ = 0;
};

}  // namespace esharp::serving

#endif  // ESHARP_SERVING_METRICS_H_
