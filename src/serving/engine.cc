#include "serving/engine.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "common/strings.h"

namespace esharp::serving {

namespace {

/// Shared state of one request's live-term collection fan-out. Owned by
/// shared_ptr: the submitting request and every helper task co-own it (and
/// the snapshot), so a helper that dequeues after the request completed —
/// or after the engine was destroyed — still touches only valid memory,
/// finds the claim counter exhausted, and returns.
///
/// Also the fan-out's CollectCancel: the deadline is evaluated inside the
/// per-term collection loops (every kCollectCancelStride matching tweets),
/// and once any worker observes it expired the latch cancels the rest.
struct LiveDetectState final : expert::CollectCancel {
  std::shared_ptr<const ServingSnapshot> snapshot;
  std::vector<std::vector<microblog::TokenId>> tokens;  // per live term
  std::vector<std::vector<expert::CandidateEvidence>> results;
  Timer timer;             // copies the request's queue timer time base
  double deadline_ms = 0;  // <= 0: none
  std::atomic<bool> cancelled{false};
  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;  // guarded by mu

  bool Cancelled() override {
    if (cancelled.load(std::memory_order_relaxed)) return true;
    if (deadline_ms > 0 && timer.ElapsedMillis() > deadline_ms) {
      cancelled.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Claims and collects terms until none remain. Run by the submitting
  /// thread (always) and by any helper the pool gets to in time.
  void RunWorker() {
    const size_t n = tokens.size();
    const expert::ExpertDetector& detector = snapshot->esharp().detector();
    for (;;) {
      size_t k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= n) return;
      std::optional<std::vector<expert::CandidateEvidence>> pool =
          detector.CollectCandidates(tokens[k], this);
      if (pool.has_value()) results[k] = std::move(*pool);
      std::lock_guard<std::mutex> lock(mu);
      if (++done == n) cv.notify_all();
    }
  }

  /// Blocks until every claimed term finished (all terms are claimed by
  /// the time the submitting thread's RunWorker returns).
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return done == tokens.size(); });
  }
};

}  // namespace

ServingEngine::ServingEngine(SnapshotManager* snapshots,
                             ServingOptions options)
    : snapshots_(snapshots),
      options_(options),
      owned_pool_(options.pool == nullptr
                      ? std::make_unique<ThreadPool>(options.num_threads)
                      : nullptr),
      pool_(options.pool != nullptr ? options.pool : owned_pool_.get()),
      cache_(options.cache),
      last_seen_version_(snapshots->version()) {}

ServingEngine::~ServingEngine() {
  // Drain before any member is destroyed. Destroying the owned pool runs
  // its remaining queued tasks and joins the workers; queued work on an
  // external pool cannot be cancelled, so additionally wait for every
  // admitted request to release its admission slot — the release is the
  // last access a worker task makes to this engine's members, so once
  // in_flight_ reads zero no task can touch cache_, metrics_ or flights_.
  owned_pool_.reset();
  while (in_flight_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

bool ServingEngine::TryAdmit() {
  size_t admitted = in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (admitted >= options_.max_in_flight) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    metrics_.RecordShed();
#if ESHARP_OBS_ENABLED
    if (options_.tracer != nullptr) {
      // Zero-length event: the request never got a span of its own.
      double now = obs::NowSeconds();
      options_.tracer->RecordSpan("shed", /*parent=*/nullptr, now, now,
                                  {{"outcome", "shed"}});
    }
#endif
    return false;
  }
  return true;
}

std::future<Result<QueryResponse>> ServingEngine::SubmitQuery(
    QueryRequest request) {
  std::promise<Result<QueryResponse>> promise;
  std::future<Result<QueryResponse>> future = promise.get_future();
  if (!TryAdmit()) {
    promise.set_value(Status::Unavailable(
        "overloaded: ", options_.max_in_flight, " requests in flight"));
    return future;
  }
  auto shared_promise =
      std::make_shared<std::promise<Result<QueryResponse>>>(
          std::move(promise));
  Timer queue_timer;
  double deadline_ms = EffectiveDeadline(request);
  pool_->Submit([this, shared_promise, queue_timer, deadline_ms,
                 request = std::move(request)]() mutable {
    Result<QueryResponse> result = Execute(request, queue_timer, deadline_ms);
    // Release the admission slot before fulfilling the future, so a caller
    // that observed completion also observes the slot as free.
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    shared_promise->set_value(std::move(result));
  });
  return future;
}

Result<QueryResponse> ServingEngine::Query(QueryRequest request) {
  if (!TryAdmit()) {
    return Status::Unavailable("overloaded: ", options_.max_in_flight,
                               " requests in flight");
  }
  Timer queue_timer;
  Result<QueryResponse> result =
      Execute(request, queue_timer, EffectiveDeadline(request));
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  return result;
}

// ---- /tracez introspection ------------------------------------------------

/// Registers the request in the active registry for its whole lifetime and
/// records a finished sample on the way out. Constructed once per admitted
/// request in Execute(); every return path sets the outcome (defaulting to
/// "error" so an early `return status` is never misfiled as success).
class ServingEngine::RequestScope {
 public:
  RequestScope(ServingEngine* engine, const QueryRequest& request,
               const Timer& queue_timer)
      : engine_(engine),
        id_(engine->next_request_id_.fetch_add(1, std::memory_order_relaxed)),
        queue_timer_(&queue_timer) {
    ActiveRecord record;
    record.query = request.query;
    // Backdate to submission so elapsed time includes queue wait, matching
    // the "request" trace span and total_ms.
    record.start_seconds = obs::NowSeconds() - queue_timer.ElapsedSeconds();
    std::lock_guard<std::mutex> lock(engine_->introspect_mu_);
    engine_->active_.emplace(id_, std::move(record));
  }

  ~RequestScope() {
    engine_->FinishActive(id_, outcome_, queue_timer_->ElapsedMillis(),
                          stages_, version_);
  }

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  uint64_t id() const { return id_; }
  void set_outcome(const char* outcome) { outcome_ = outcome; }
  void set_version(uint64_t version) { version_ = version; }
  void set_stages(const StageTimings& stages) { stages_ = stages; }

 private:
  ServingEngine* engine_;
  uint64_t id_;
  const Timer* queue_timer_;
  const char* outcome_ = "error";
  uint64_t version_ = 0;
  StageTimings stages_{};
};

void ServingEngine::SetActiveStage(uint64_t id, const char* stage) {
  std::lock_guard<std::mutex> lock(introspect_mu_);
  auto it = active_.find(id);
  if (it != active_.end()) it->second.stage = stage;
}

void ServingEngine::FinishActive(uint64_t id, const char* outcome,
                                 double total_ms, const StageTimings& stages,
                                 uint64_t snapshot_version) {
  RequestSample sample;
  sample.outcome = outcome;
  sample.total_ms = total_ms;
  sample.stages = stages;
  sample.snapshot_version = snapshot_version;
  sample.finished_seconds = obs::NowSeconds();
  size_t bucket = 0;
  while (bucket + 1 < kSampleBuckets &&
         total_ms >= kSampleBucketUpperMs[bucket]) {
    ++bucket;
  }
  std::lock_guard<std::mutex> lock(introspect_mu_);
  auto it = active_.find(id);
  if (it != active_.end()) {
    sample.query = std::move(it->second.query);
    active_.erase(it);
  }
  std::vector<RequestSample>& ring = samples_[bucket];
  if (ring.size() < kSamplesPerBucket) {
    ring.push_back(std::move(sample));
  } else {
    ring[sample_pos_[bucket] % kSamplesPerBucket] = std::move(sample);
  }
  sample_pos_[bucket] = (sample_pos_[bucket] + 1) % kSamplesPerBucket;
}

std::vector<ActiveRequestInfo> ServingEngine::ActiveRequests() const {
  double now = obs::NowSeconds();
  std::vector<ActiveRequestInfo> out;
  std::lock_guard<std::mutex> lock(introspect_mu_);
  out.reserve(active_.size());
  for (const auto& [id, record] : active_) {
    ActiveRequestInfo info;
    info.id = id;
    info.query = record.query;
    info.stage = record.stage;
    info.elapsed_ms = (now - record.start_seconds) * 1000.0;
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<RequestSample> ServingEngine::SampledRequests() const {
  std::vector<RequestSample> out;
  std::lock_guard<std::mutex> lock(introspect_mu_);
  for (size_t b = 0; b < kSampleBuckets; ++b) {
    const std::vector<RequestSample>& ring = samples_[b];
    // Ring order is arbitrary; emit newest-first so the page leads with
    // what just happened in each latency band.
    std::vector<RequestSample> bucket(ring.begin(), ring.end());
    std::sort(bucket.begin(), bucket.end(),
              [](const RequestSample& a, const RequestSample& b) {
                return a.finished_seconds > b.finished_seconds;
              });
    for (RequestSample& sample : bucket) out.push_back(std::move(sample));
  }
  return out;
}

HealthView ServingEngine::Health() const {
  HealthView view;
  std::shared_ptr<const ServingSnapshot> snapshot = snapshots_->Acquire();
  if (snapshot == nullptr) {
    view.ready = false;
    view.detail = "no snapshot published yet";
  } else {
    view.ready = true;
    view.snapshot_version = snapshot->version();
    view.snapshot_age_seconds =
        obs::NowSeconds() - snapshot->published_at_seconds();
  }
  view.in_flight = in_flight_.load(std::memory_order_relaxed);
  view.max_in_flight = options_.max_in_flight;
  view.queue_fill =
      options_.max_in_flight == 0
          ? 0
          : static_cast<double>(view.in_flight) /
                static_cast<double>(options_.max_in_flight);
  MetricsReport report = metrics_.Report();
  view.completed = report.completed;
  view.shed = report.shed;
  view.window_qps = report.window_qps;
  return view;
}

Result<community::Community> ServingEngine::LookupDomain(
    const std::string& term) const {
  std::shared_ptr<const ServingSnapshot> snapshot = snapshots_->Acquire();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("no snapshot published yet");
  }
  // FindCopy: the returned Community is detached from the store, so the
  // caller may hold it across any number of hot swaps.
  return snapshot->store().FindCopy(term);
}

void ServingEngine::MaybeInvalidateOnSwap(uint64_t current_version) {
  uint64_t seen = last_seen_version_.load(std::memory_order_acquire);
  // `seen > current_version` means this request pinned an older generation
  // than one already swept for; never move the high-water mark backwards.
  if (seen >= current_version) return;
  // One thread wins the CAS and performs the eager sweep; per-entry
  // version checks in Get() cover any race window.
  if (last_seen_version_.compare_exchange_strong(seen, current_version,
                                                 std::memory_order_acq_rel)) {
    cache_.InvalidateAll();
  }
}

Result<QueryResponse> ServingEngine::Execute(const QueryRequest& request,
                                             const Timer& queue_timer,
                                             double deadline_ms) {
  // The "request" span opens retroactively at submission time, so the
  // trace shows queue wait; "admission" covers exactly that wait as an
  // already-finished child interval. The span records itself on every
  // return path below (RAII), tagged with an "outcome" annotation.
  obs::Span request_span;
#if ESHARP_OBS_ENABLED
  if (options_.tracer != nullptr) {
    double now = obs::NowSeconds();
    double submitted = now - queue_timer.ElapsedSeconds();
    request_span =
        options_.tracer->StartSpanAt("request", /*parent=*/nullptr, submitted);
    // Join the caller's distributed trace, or mint a fresh root: every
    // request serves under SOME 128-bit trace id, and children inherit it.
    obs::TraceContext trace_ctx =
        request.trace.valid() ? request.trace : obs::TraceContext::NewRoot();
    request_span.SetTrace(trace_ctx.trace_hi, trace_ctx.trace_lo);
    request_span.Annotate("trace", trace_ctx.TraceIdHex());
    options_.tracer->RecordSpan("admission", &request_span, submitted, now);
  }
#endif
  // /tracez registration: visible in ActiveRequests() until this function
  // returns, then retained as a latency-bucketed sample.
  RequestScope scope(this, request, queue_timer);
  if (request.query.empty()) {
    metrics_.RecordError();
    ESHARP_SPAN_ANNOTATE(request_span, "outcome", "invalid");
    scope.set_outcome("invalid");
    return Status::InvalidArgument("empty query");
  }
  // Pin the serving generation before touching the cache, so validation,
  // execution and provenance all agree on one version. Reading the version
  // counter separately would open a window where a swap completing between
  // the read and the probe serves one cached answer computed against the
  // just-replaced generation.
  std::shared_ptr<const ServingSnapshot> snapshot = snapshots_->Acquire();
  if (snapshot == nullptr) {
    metrics_.RecordError();
    ESHARP_SPAN_ANNOTATE(request_span, "outcome", "error");
    return Status::FailedPrecondition("no snapshot published yet");
  }
  uint64_t version = snapshot->version();
  scope.set_version(version);
  MaybeInvalidateOnSwap(version);

  // Cache keys use the same normalization as the store lookup (§5).
  std::string key = ToLowerAscii(request.query);
  bool use_cache = options_.enable_cache && !request.bypass_cache;
  SetActiveStage(scope.id(), "cache");
  ESHARP_SPAN(cache_span, options_.tracer, "cache", &request_span);
  if (use_cache) {
    std::optional<CachedResult> cached =
        cache_.Get(key, clock_.ElapsedSeconds(), version);
    if (cached.has_value()) {
      ESHARP_SPAN_ANNOTATE(cache_span, "outcome", "hit");
      cache_span.End();
      QueryResponse response;
      response.experts = std::move(cached->experts);
      response.snapshot_version = cached->snapshot_version;
      response.from_cache = true;
      response.total_ms = queue_timer.ElapsedMillis();
      metrics_.RecordRequest(queue_timer.ElapsedSeconds(), response.stages,
                             /*cache_hit=*/true, /*deduplicated=*/false);
      ESHARP_SPAN_ANNOTATE(request_span, "outcome", "cache_hit");
      scope.set_outcome("cache_hit");
      return response;
    }
    ESHARP_SPAN_ANNOTATE(cache_span, "outcome", "miss");
  } else {
    ESHARP_SPAN_ANNOTATE(cache_span, "outcome",
                         request.bypass_cache ? "bypass" : "off");
  }
  cache_span.End();

  if (deadline_ms > 0 && queue_timer.ElapsedMillis() > deadline_ms) {
    metrics_.RecordTimeout();
    ESHARP_SPAN_ANNOTATE(request_span, "outcome", "timeout");
    scope.set_outcome("timeout");
    return Status::DeadlineExceeded("deadline of ", deadline_ms,
                                    " ms elapsed in queue");
  }

  if (!options_.enable_single_flight || request.bypass_cache) {
    Result<QueryResponse> result =
        ExecuteUncached(key, request, queue_timer, deadline_ms, snapshot,
                        &request_span, scope.id());
    const char* outcome = result.ok() ? "ok"
                          : result.status().IsDeadlineExceeded() ? "timeout"
                                                                 : "error";
    ESHARP_SPAN_ANNOTATE(request_span, "outcome", outcome);
    scope.set_outcome(outcome);
    if (result.ok()) scope.set_stages(result.ValueOrDie().stages);
    return result;
  }

  // Single-flight: the first request for a key becomes the leader and runs
  // the detector; identical concurrent requests wait for its result.
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    auto it = flights_.find(key);
    if (it == flights_.end()) {
      flight = std::make_shared<Flight>();
      flights_.emplace(key, flight);
      leader = true;
    } else {
      flight = it->second;
    }
  }

  if (leader) {
    Result<QueryResponse> result =
        ExecuteUncached(key, request, queue_timer, deadline_ms, snapshot,
                        &request_span, scope.id());
    {
      std::lock_guard<std::mutex> lock(flights_mu_);
      flights_.erase(key);
    }
    {
      std::lock_guard<std::mutex> lock(flight->mu);
      flight->result = result;
      flight->done = true;
    }
    flight->cv.notify_all();
    const char* outcome = result.ok() ? "ok"
                          : result.status().IsDeadlineExceeded() ? "timeout"
                                                                 : "error";
    ESHARP_SPAN_ANNOTATE(request_span, "outcome", outcome);
    scope.set_outcome(outcome);
    if (result.ok()) scope.set_stages(result.ValueOrDie().stages);
    return result;
  }

  // Follower: wait for the leader. Followers share the leader's outcome
  // (including its error, mirroring the usual single-flight contract), but
  // report their own end-to-end latency and honor their own deadline.
  SetActiveStage(scope.id(), "flight_wait");
  ESHARP_SPAN(wait_span, options_.tracer, "flight_wait", &request_span);
  std::unique_lock<std::mutex> lock(flight->mu);
  if (deadline_ms > 0) {
    double remaining_ms =
        std::max(0.0, deadline_ms - queue_timer.ElapsedMillis());
    bool done = flight->cv.wait_for(
        lock, std::chrono::duration<double, std::milli>(remaining_ms),
        [&flight] { return flight->done; });
    if (!done) {
      metrics_.RecordTimeout();
      ESHARP_SPAN_ANNOTATE(request_span, "outcome", "timeout");
      scope.set_outcome("timeout");
      return Status::DeadlineExceeded("deadline of ", deadline_ms,
                                      " ms elapsed waiting for leader");
    }
  } else {
    flight->cv.wait(lock, [&flight] { return flight->done; });
  }
  wait_span.End();
  Result<QueryResponse> result = flight->result;
  lock.unlock();
  if (!result.ok()) {
    // An inherited leader failure is still this request's outcome; record
    // it so the timeout/error counters stay consistent across the
    // leader/follower split instead of undercounting deduplicated failures.
    if (result.status().IsDeadlineExceeded()) {
      metrics_.RecordTimeout();
      ESHARP_SPAN_ANNOTATE(request_span, "outcome", "timeout");
      scope.set_outcome("timeout");
    } else {
      metrics_.RecordError();
      ESHARP_SPAN_ANNOTATE(request_span, "outcome", "error");
    }
    return result;
  }
  QueryResponse response = result.MoveValueUnsafe();
  response.deduplicated = true;
  response.stages = StageTimings{};
  response.total_ms = queue_timer.ElapsedMillis();
  metrics_.RecordRequest(queue_timer.ElapsedSeconds(), response.stages,
                         /*cache_hit=*/false, /*deduplicated=*/true);
  ESHARP_SPAN_ANNOTATE(request_span, "outcome", "deduplicated");
  scope.set_outcome("deduplicated");
  return response;
}

Result<QueryResponse> ServingEngine::ExecuteUncached(
    const std::string& key, const QueryRequest& request,
    const Timer& queue_timer, double deadline_ms,
    const std::shared_ptr<const ServingSnapshot>& snapshot,
    [[maybe_unused]] const obs::Span* trace_parent, uint64_t request_id) {
  if (options_.execution_hook) options_.execution_hook(key);
  const core::ESharp& esharp = snapshot->esharp();
  QueryResponse response;
  response.snapshot_version = snapshot->version();

  // Stage 1: expansion (§5 — the paper's < 100 ms stage).
  Timer stage_timer;
  SetActiveStage(request_id, "expand");
  ESHARP_SPAN(expand_span, options_.tracer, "expand", trace_parent);
  core::QueryExpansion expansion = esharp.Expand(request.query);
  ESHARP_SPAN_ANNOTATE(expand_span, "terms",
                       static_cast<int64_t>(expansion.terms.size()));
  expand_span.End();
  response.stages.expand_ms = stage_timer.ElapsedMillis();

  // Stage 2: candidate collection (shared with the cluster tier's
  // QueryEvidence path; see DetectMerged).
  stage_timer.Reset();
  SetActiveStage(request_id, "detect");
  ESHARP_SPAN(detect_span, options_.tracer, "detect", trace_parent);
  Result<std::vector<expert::CandidateEvidence>> detected = DetectMerged(
      expansion.terms, queue_timer, deadline_ms, snapshot, &detect_span);
  if (!detected.ok()) return detected.status();
  std::vector<expert::CandidateEvidence> merged = detected.MoveValueUnsafe();
  detect_span.End();
  response.stages.detect_ms = stage_timer.ElapsedMillis();

  // Stage 3: ranking (z-scored features over the union pool).
  stage_timer.Reset();
  SetActiveStage(request_id, "rank");
  ESHARP_SPAN(rank_span, options_.tracer, "rank", trace_parent);
  Result<std::vector<expert::RankedExpert>> ranked =
      esharp.detector().RankCandidates(merged);
  if (!ranked.ok()) {
    metrics_.RecordError();
    ESHARP_SPAN_ANNOTATE(rank_span, "outcome", "error");
    return ranked.status();
  }
  response.experts = ranked.MoveValueUnsafe();
  ESHARP_SPAN_ANNOTATE(rank_span, "experts",
                       static_cast<int64_t>(response.experts.size()));
  rank_span.End();
  response.stages.rank_ms = stage_timer.ElapsedMillis();
  response.total_ms = queue_timer.ElapsedMillis();

  if (options_.enable_cache && !request.bypass_cache) {
    cache_.Put(key, CachedResult{response.experts, response.snapshot_version},
               clock_.ElapsedSeconds());
  }
  metrics_.RecordRequest(queue_timer.ElapsedSeconds(), response.stages,
                         /*cache_hit=*/false, /*deduplicated=*/false);
  return response;
}

Result<std::vector<expert::CandidateEvidence>> ServingEngine::DetectMerged(
    const std::vector<std::string>& terms, const Timer& queue_timer,
    double deadline_ms, const std::shared_ptr<const ServingSnapshot>& snapshot,
    obs::Span* detect_span) {
  // In-vocabulary terms resolve to their snapshot-time precomputed pools (a
  // hash lookup); the rest collect live — in parallel on the worker pool
  // when enabled — with the deadline enforced cooperatively *inside* each
  // term's collection, so one term over a head token's postings cannot blow
  // the budget unchecked.
  (void)detect_span;  // only touched through the (disable-able) macros
  const expert::TermEvidenceIndex* evidence =
      options_.use_evidence_index ? snapshot->evidence() : nullptr;
  const size_t num_terms = terms.size();
  std::vector<const std::vector<expert::CandidateEvidence>*> pools(num_terms,
                                                                   nullptr);
  std::vector<size_t> live_terms;
  for (size_t i = 0; i < num_terms; ++i) {
    const std::vector<expert::CandidateEvidence>* pre =
        evidence != nullptr ? evidence->Find(terms[i]) : nullptr;
    if (pre != nullptr) {
      pools[i] = pre;
    } else {
      live_terms.push_back(i);
    }
  }

  std::shared_ptr<LiveDetectState> live;
  if (!live_terms.empty()) {
    // Heap-owned, shared with every helper task: a helper that dequeues
    // after this request finished (pool backlog) finds no work left and
    // touches only this state and the snapshot it co-owns — never the
    // request stack or the engine.
    live = std::make_shared<LiveDetectState>();
    live->snapshot = snapshot;
    live->timer = queue_timer;
    live->deadline_ms = deadline_ms;
    live->tokens.reserve(live_terms.size());
    const microblog::TweetCorpus& corpus =
        *snapshot->esharp().detector().corpus();
    for (size_t i : live_terms) {
      // Expansion terms are already lower-cased: split + intern only.
      live->tokens.push_back(corpus.TokenizeNormalized(terms[i]));
    }
    live->results.resize(live_terms.size());
    size_t helpers =
        options_.parallel_detect && live_terms.size() > 1
            ? std::min(live_terms.size() - 1, pool_->num_threads())
            : 0;
    for (size_t h = 0; h < helpers; ++h) {
      pool_->Submit([live] { live->RunWorker(); });
    }
    // Help-first: this thread collects terms too, so progress never waits
    // on pool capacity; Wait() then covers claims helpers are finishing.
    live->RunWorker();
    live->Wait();
    if (live->cancelled.load(std::memory_order_relaxed)) {
      metrics_.RecordTimeout();
      ESHARP_SPAN_ANNOTATE((*detect_span), "outcome", "timeout");
      return Status::DeadlineExceeded("deadline of ", deadline_ms,
                                      " ms elapsed during detection");
    }
    for (size_t k = 0; k < live_terms.size(); ++k) {
      pools[live_terms[k]] = &live->results[k];
    }
  }

  std::vector<expert::CandidateEvidence> merged =
      expert::MergeEvidenceViews(pools);
  ESHARP_SPAN_ANNOTATE((*detect_span), "terms_precomputed",
                       static_cast<int64_t>(num_terms - live_terms.size()));
  ESHARP_SPAN_ANNOTATE((*detect_span), "terms_live",
                       static_cast<int64_t>(live_terms.size()));
  ESHARP_SPAN_ANNOTATE((*detect_span), "candidates",
                       static_cast<int64_t>(merged.size()));
  return merged;
}

Result<EvidenceResponse> ServingEngine::QueryEvidence(QueryRequest request) {
  if (!TryAdmit()) {
    return Status::Unavailable("overloaded: ", options_.max_in_flight,
                               " requests in flight");
  }
  Timer queue_timer;
  Result<EvidenceResponse> result =
      ExecuteEvidence(request, queue_timer, EffectiveDeadline(request));
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  return result;
}

Result<EvidenceResponse> ServingEngine::ExecuteEvidence(
    const QueryRequest& request, const Timer& queue_timer,
    double deadline_ms) {
  // A leaner Execute(): no result cache and no single-flight — the
  // per-term pools in the snapshot's TermEvidenceIndex already are this
  // path's cache, and deduplication belongs at the router, which sees the
  // whole query stream. Shows up in /tracez like any other request.
  // Adopt the router's trace context when the request carries one; a
  // direct caller (tests, single-node serving) gets a fresh root. Recorded
  // in the response so the router can assert cross-process adoption.
  obs::TraceContext trace_ctx =
      request.trace.valid() ? request.trace : obs::TraceContext::NewRoot();
  double queue_wait_ms = queue_timer.ElapsedMillis();
  obs::Span request_span;
#if ESHARP_OBS_ENABLED
  if (options_.tracer != nullptr) {
    double now = obs::NowSeconds();
    double submitted = now - queue_timer.ElapsedSeconds();
    request_span = options_.tracer->StartSpanAt(
        "shard_request", /*parent=*/nullptr, submitted);
    request_span.SetTrace(trace_ctx.trace_hi, trace_ctx.trace_lo);
    request_span.Annotate("trace", trace_ctx.TraceIdHex());
    options_.tracer->RecordSpan("admission", &request_span, submitted, now);
  }
#endif
  RequestScope scope(this, request, queue_timer);
  if (request.query.empty()) {
    metrics_.RecordError();
    ESHARP_SPAN_ANNOTATE(request_span, "outcome", "invalid");
    scope.set_outcome("invalid");
    return Status::InvalidArgument("empty query");
  }
  std::shared_ptr<const ServingSnapshot> snapshot = snapshots_->Acquire();
  if (snapshot == nullptr) {
    metrics_.RecordError();
    ESHARP_SPAN_ANNOTATE(request_span, "outcome", "error");
    return Status::FailedPrecondition("no snapshot published yet");
  }
  scope.set_version(snapshot->version());

  if (deadline_ms > 0 && queue_timer.ElapsedMillis() > deadline_ms) {
    metrics_.RecordTimeout();
    ESHARP_SPAN_ANNOTATE(request_span, "outcome", "timeout");
    scope.set_outcome("timeout");
    return Status::DeadlineExceeded("deadline of ", deadline_ms,
                                    " ms elapsed in queue");
  }

  EvidenceResponse response;
  response.snapshot_version = snapshot->version();
  response.trace = trace_ctx;
  response.queue_ms = queue_wait_ms;

  Timer stage_timer;
  SetActiveStage(scope.id(), "expand");
  ESHARP_SPAN(expand_span, options_.tracer, "expand", &request_span);
  core::QueryExpansion expansion = snapshot->esharp().Expand(request.query);
  expand_span.End();
  StageTimings stages;
  stages.expand_ms = stage_timer.ElapsedMillis();
  response.terms = expansion.terms.size();

  stage_timer.Reset();
  SetActiveStage(scope.id(), "detect");
  ESHARP_SPAN(detect_span, options_.tracer, "detect", &request_span);
  Result<std::vector<expert::CandidateEvidence>> detected = DetectMerged(
      expansion.terms, queue_timer, deadline_ms, snapshot, &detect_span);
  if (!detected.ok()) {
    const char* outcome =
        detected.status().IsDeadlineExceeded() ? "timeout" : "error";
    ESHARP_SPAN_ANNOTATE(request_span, "outcome", outcome);
    scope.set_outcome(outcome);
    return detected.status();
  }
  response.evidence = detected.MoveValueUnsafe();
  detect_span.End();
  stages.detect_ms = stage_timer.ElapsedMillis();
  response.stages = stages;
  response.total_ms = queue_timer.ElapsedMillis();

  metrics_.RecordRequest(queue_timer.ElapsedSeconds(), stages,
                         /*cache_hit=*/false, /*deduplicated=*/false);
  ESHARP_SPAN_ANNOTATE(request_span, "outcome", "ok");
  scope.set_outcome("ok");
  scope.set_stages(stages);
  return response;
}

}  // namespace esharp::serving
