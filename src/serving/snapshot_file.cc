#include "serving/snapshot_file.h"

#include <cstring>
#include <utility>
#include <vector>

#include "common/file_io.h"
#include "common/simd.h"

namespace esharp::serving {

namespace {

// Section ids, in file order. EVIDENCE is optional.
enum SectionId : uint32_t {
  kMeta = 1,
  kUsers = 2,
  kTweets = 3,
  kTokens = 4,
  kTotals = 5,
  kStore = 6,
  kEvidence = 7,
};

const char* SectionName(uint32_t id) {
  switch (id) {
    case kMeta: return "META";
    case kUsers: return "USERS";
    case kTweets: return "TWEETS";
    case kTokens: return "TOKENS";
    case kTotals: return "TOTALS";
    case kStore: return "STORE";
    case kEvidence: return "EVIDENCE";
  }
  return "?";
}

constexpr size_t kHeaderBytes = 24;       // magic + version + count + cksum
constexpr size_t kSectionEntryBytes = 32; // id + reserved + off + size + cksum
constexpr uint32_t kMaxSections = 64;     // format sanity bound

// ---- writer ---------------------------------------------------------------

void AppendU32(std::string* s, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  s->append(b, 4);
}

void AppendU64(std::string* s, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  s->append(b, 8);
}

void AppendF64(std::string* s, double v) {
  char b[8];
  std::memcpy(b, &v, 8);
  s->append(b, 8);
}

template <typename T>
void AppendArray(std::string* s, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  s->append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
}

/// Writes a string column: offsets[n+1] (u64, into the blob) then the blob.
void AppendStringColumn(std::string* s, const std::vector<std::string>& col) {
  uint64_t off = 0;
  AppendU64(s, off);
  for (const std::string& str : col) {
    off += str.size();
    AppendU64(s, off);
  }
  for (const std::string& str : col) s->append(str);
}

std::string EncodeMeta(const microblog::TweetCorpus& corpus,
                       const community::CommunityStore& store,
                       bool has_evidence) {
  std::string s;
  AppendU64(&s, corpus.num_users());
  AppendU64(&s, corpus.num_tweets());
  AppendU64(&s, corpus.num_tokens());
  AppendU64(&s, store.num_communities());
  AppendU64(&s, has_evidence ? 1 : 0);
  return s;
}

std::string EncodeUsers(const microblog::TweetCorpus& corpus) {
  const size_t n = corpus.num_users();
  std::string s;
  AppendU64(&s, n);
  std::vector<std::string> screen_names(n), descriptions(n);
  std::vector<uint8_t> verified(n), kind(n);
  std::vector<uint64_t> followers(n);
  std::vector<uint32_t> domain(n);
  for (size_t i = 0; i < n; ++i) {
    const microblog::UserProfile& user =
        corpus.user(static_cast<microblog::UserId>(i));
    screen_names[i] = user.screen_name;
    descriptions[i] = user.description;
    verified[i] = user.verified ? 1 : 0;
    kind[i] = static_cast<uint8_t>(user.kind);
    followers[i] = user.followers;
    domain[i] = user.domain;
  }
  AppendStringColumn(&s, screen_names);
  AppendStringColumn(&s, descriptions);
  AppendArray(&s, verified);
  AppendArray(&s, kind);
  AppendArray(&s, followers);
  AppendArray(&s, domain);
  return s;
}

std::string EncodeTweets(const microblog::TweetCorpus& corpus) {
  const size_t n = corpus.num_tweets();
  std::string s;
  AppendU64(&s, n);
  std::vector<uint32_t> author(n), retweets(n);
  std::vector<std::string> text(n);
  std::vector<uint64_t> mention_offsets;
  std::vector<uint32_t> mention_flat;
  mention_offsets.reserve(n + 1);
  mention_offsets.push_back(0);
  for (size_t i = 0; i < n; ++i) {
    const microblog::Tweet& tweet = corpus.tweet(static_cast<uint32_t>(i));
    author[i] = tweet.author;
    retweets[i] = tweet.retweet_count;
    text[i] = tweet.text;
    mention_flat.insert(mention_flat.end(), tweet.mentions.begin(),
                        tweet.mentions.end());
    mention_offsets.push_back(mention_flat.size());
  }
  AppendArray(&s, author);
  AppendArray(&s, retweets);
  AppendStringColumn(&s, text);
  AppendArray(&s, mention_offsets);
  AppendArray(&s, mention_flat);
  return s;
}

std::string EncodeTokens(const microblog::TweetCorpus& corpus) {
  const size_t n = corpus.num_tokens();
  std::string s;
  AppendU64(&s, n);
  AppendStringColumn(&s, corpus.TokenStrings());
  std::vector<uint64_t> postings_offsets;
  postings_offsets.reserve(n + 1);
  postings_offsets.push_back(0);
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += corpus.Postings(static_cast<microblog::TokenId>(i)).size();
    postings_offsets.push_back(total);
  }
  AppendArray(&s, postings_offsets);
  for (size_t i = 0; i < n; ++i) {
    AppendArray(&s, corpus.Postings(static_cast<microblog::TokenId>(i)));
  }
  return s;
}

std::string EncodeTotals(const microblog::TweetCorpus& corpus) {
  const size_t n = corpus.num_users();
  std::string s;
  AppendU64(&s, n);
  for (size_t i = 0; i < n; ++i) {
    AppendU64(&s, corpus.TweetsByUser(static_cast<microblog::UserId>(i)));
  }
  for (size_t i = 0; i < n; ++i) {
    AppendU64(&s, corpus.MentionsOfUser(static_cast<microblog::UserId>(i)));
  }
  for (size_t i = 0; i < n; ++i) {
    AppendU64(&s, corpus.RetweetsOfUser(static_cast<microblog::UserId>(i)));
  }
  return s;
}

std::string EncodeStore(const community::CommunityStore& store) {
  const std::vector<community::Community>& communities = store.communities();
  const size_t n = communities.size();
  std::string s;
  AppendU64(&s, n);
  // Terms of community i live at [term_offsets[i], term_offsets[i+1]) of a
  // flattened string column.
  std::vector<uint64_t> term_offsets;
  std::vector<std::string> terms;
  term_offsets.reserve(n + 1);
  term_offsets.push_back(0);
  for (const community::Community& c : communities) {
    terms.insert(terms.end(), c.terms.begin(), c.terms.end());
    term_offsets.push_back(terms.size());
  }
  AppendArray(&s, term_offsets);
  AppendU64(&s, terms.size());
  AppendStringColumn(&s, terms);
  const std::vector<std::pair<uint64_t, double>> weights =
      store.InterWeights();
  AppendU64(&s, weights.size());
  for (const auto& [key, w] : weights) AppendU64(&s, key);
  for (const auto& [key, w] : weights) AppendF64(&s, w);
  return s;
}

std::string EncodeEvidence(const expert::TermEvidenceIndex& evidence) {
  const size_t n = evidence.num_pools();
  std::string s;
  AppendU64(&s, n);
  AppendStringColumn(&s, evidence.TermStrings());
  std::vector<uint64_t> pool_offsets;
  pool_offsets.reserve(n + 1);
  pool_offsets.push_back(0);
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += evidence.pool(i).size();
    pool_offsets.push_back(total);
  }
  AppendArray(&s, pool_offsets);
  // Columnar pool entries: users, author/mention flags, then the five
  // counters, each as one contiguous array across all pools.
  std::vector<uint32_t> user(total);
  std::vector<uint8_t> flags(total);
  std::vector<uint64_t> tweets(total), mentions(total), retweets(total),
      conversational(total), hashtag(total);
  size_t at = 0;
  for (size_t i = 0; i < n; ++i) {
    for (const expert::CandidateEvidence& e : evidence.pool(i)) {
      user[at] = e.user;
      flags[at] = static_cast<uint8_t>((e.is_author ? 1 : 0) |
                                       (e.is_mentioned ? 2 : 0));
      tweets[at] = e.tweets_on_topic;
      mentions[at] = e.mentions_on_topic;
      retweets[at] = e.retweets_on_topic;
      conversational[at] = e.conversational_on_topic;
      hashtag[at] = e.hashtag_on_topic;
      ++at;
    }
  }
  AppendArray(&s, user);
  AppendArray(&s, flags);
  AppendArray(&s, tweets);
  AppendArray(&s, mentions);
  AppendArray(&s, retweets);
  AppendArray(&s, conversational);
  AppendArray(&s, hashtag);
  return s;
}

// ---- reader ---------------------------------------------------------------

/// Bounds-checked cursor over one section's bytes. Every primitive checks
/// remaining length, so a corrupted count can fail cleanly mid-decode but
/// can never read outside the mapped file.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size, const char* section)
      : p_(data), n_(size), section_(section) {}

  Status ReadU32(uint32_t* v) { return ReadRaw(v, 4); }
  Status ReadU64(uint64_t* v) { return ReadRaw(v, 8); }

  /// Reads `count` fixed-width elements. Guards count*width overflow by
  /// checking against the remaining bytes first.
  template <typename T>
  Status ReadArray(size_t count, std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count > (n_ - pos_) / sizeof(T)) {
      return Status::IOError("snapshot section ", section_,
                             ": array of ", count, " x ", sizeof(T),
                             "B overruns section (", n_ - pos_,
                             " bytes left)");
    }
    out->resize(count);
    std::memcpy(out->data(), p_ + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return Status::OK();
  }

  /// Reads a string column written by AppendStringColumn: offsets[count+1]
  /// then the blob the offsets index into.
  Status ReadStringColumn(size_t count, std::vector<std::string>* out) {
    std::vector<uint64_t> offsets;
    ESHARP_RETURN_NOT_OK(ReadArray(count + 1, &offsets));
    if (offsets[0] != 0) {
      return Status::IOError("snapshot section ", section_,
                             ": string column does not start at 0");
    }
    for (size_t i = 0; i < count; ++i) {
      if (offsets[i + 1] < offsets[i]) {
        return Status::IOError("snapshot section ", section_,
                               ": string offsets not monotone");
      }
    }
    const uint64_t blob = offsets[count];
    if (blob > n_ - pos_) {
      return Status::IOError("snapshot section ", section_, ": string blob (",
                             blob, "B) overruns section");
    }
    out->resize(count);
    for (size_t i = 0; i < count; ++i) {
      (*out)[i].assign(reinterpret_cast<const char*>(p_ + pos_ + offsets[i]),
                       offsets[i + 1] - offsets[i]);
    }
    pos_ += blob;
    return Status::OK();
  }

  size_t remaining() const { return n_ - pos_; }
  const char* section() const { return section_; }

 private:
  Status ReadRaw(void* out, size_t len) {
    if (len > n_ - pos_) {
      return Status::IOError("snapshot section ", section_,
                             ": truncated read at offset ", pos_);
    }
    std::memcpy(out, p_ + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  const uint8_t* p_;
  size_t n_;
  size_t pos_ = 0;
  const char* section_;
};

/// Splits a flattened array back into per-row vectors using an offsets
/// array (offsets[i+1] >= offsets[i], already validated by the caller).
template <typename T>
std::vector<std::vector<T>> Unflatten(const std::vector<uint64_t>& offsets,
                                      const std::vector<T>& flat) {
  const size_t n = offsets.size() - 1;
  std::vector<std::vector<T>> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i].assign(flat.begin() + offsets[i], flat.begin() + offsets[i + 1]);
  }
  return out;
}

Status CheckOffsets(const std::vector<uint64_t>& offsets, uint64_t total,
                    const char* section) {
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != total) {
    return Status::IOError("snapshot section ", section,
                           ": offsets do not span the flat array");
  }
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i + 1] < offsets[i]) {
      return Status::IOError("snapshot section ", section,
                             ": offsets not monotone");
    }
  }
  return Status::OK();
}

struct MetaCounts {
  uint64_t num_users = 0;
  uint64_t num_tweets = 0;
  uint64_t num_tokens = 0;
  uint64_t num_communities = 0;
  bool has_evidence = false;
};

Status DecodeMeta(ByteReader* r, MetaCounts* meta) {
  uint64_t has_evidence = 0;
  ESHARP_RETURN_NOT_OK(r->ReadU64(&meta->num_users));
  ESHARP_RETURN_NOT_OK(r->ReadU64(&meta->num_tweets));
  ESHARP_RETURN_NOT_OK(r->ReadU64(&meta->num_tokens));
  ESHARP_RETURN_NOT_OK(r->ReadU64(&meta->num_communities));
  ESHARP_RETURN_NOT_OK(r->ReadU64(&has_evidence));
  meta->has_evidence = has_evidence != 0;
  return Status::OK();
}

Status DecodeUsers(ByteReader* r, std::vector<microblog::UserProfile>* out) {
  uint64_t n = 0;
  ESHARP_RETURN_NOT_OK(r->ReadU64(&n));
  std::vector<std::string> screen_names, descriptions;
  std::vector<uint8_t> verified, kind;
  std::vector<uint64_t> followers;
  std::vector<uint32_t> domain;
  ESHARP_RETURN_NOT_OK(r->ReadStringColumn(n, &screen_names));
  ESHARP_RETURN_NOT_OK(r->ReadStringColumn(n, &descriptions));
  ESHARP_RETURN_NOT_OK(r->ReadArray(n, &verified));
  ESHARP_RETURN_NOT_OK(r->ReadArray(n, &kind));
  ESHARP_RETURN_NOT_OK(r->ReadArray(n, &followers));
  ESHARP_RETURN_NOT_OK(r->ReadArray(n, &domain));
  out->resize(n);
  for (size_t i = 0; i < n; ++i) {
    microblog::UserProfile& u = (*out)[i];
    u.id = static_cast<microblog::UserId>(i);
    u.screen_name = std::move(screen_names[i]);
    u.description = std::move(descriptions[i]);
    u.verified = verified[i] != 0;
    if (kind[i] > static_cast<uint8_t>(microblog::AccountKind::kSpam)) {
      return Status::IOError("snapshot section USERS: bad account kind ",
                             kind[i], " for user ", i);
    }
    u.kind = static_cast<microblog::AccountKind>(kind[i]);
    u.followers = followers[i];
    u.domain = domain[i];
  }
  return Status::OK();
}

Status DecodeTweets(ByteReader* r, uint64_t num_users,
                    std::vector<microblog::Tweet>* out) {
  uint64_t n = 0;
  ESHARP_RETURN_NOT_OK(r->ReadU64(&n));
  std::vector<uint32_t> author, retweets;
  std::vector<std::string> text;
  std::vector<uint64_t> mention_offsets;
  std::vector<uint32_t> mention_flat;
  ESHARP_RETURN_NOT_OK(r->ReadArray(n, &author));
  ESHARP_RETURN_NOT_OK(r->ReadArray(n, &retweets));
  ESHARP_RETURN_NOT_OK(r->ReadStringColumn(n, &text));
  ESHARP_RETURN_NOT_OK(r->ReadArray(n + 1, &mention_offsets));
  const uint64_t num_mentions = mention_offsets.empty()
                                    ? 0
                                    : mention_offsets.back();
  ESHARP_RETURN_NOT_OK(CheckOffsets(mention_offsets, num_mentions, "TWEETS"));
  ESHARP_RETURN_NOT_OK(r->ReadArray(num_mentions, &mention_flat));
  for (uint32_t a : author) {
    if (a >= num_users) {
      return Status::IOError("snapshot section TWEETS: author ", a,
                             " out of range (", num_users, " users)");
    }
  }
  for (uint32_t m : mention_flat) {
    if (m >= num_users) {
      return Status::IOError("snapshot section TWEETS: mention ", m,
                             " out of range (", num_users, " users)");
    }
  }
  std::vector<std::vector<uint32_t>> mentions =
      Unflatten(mention_offsets, mention_flat);
  out->resize(n);
  for (size_t i = 0; i < n; ++i) {
    microblog::Tweet& t = (*out)[i];
    t.id = static_cast<uint32_t>(i);
    t.author = author[i];
    t.text = std::move(text[i]);
    t.mentions = std::move(mentions[i]);
    t.retweet_count = retweets[i];
  }
  return Status::OK();
}

Status DecodeTokens(ByteReader* r, uint64_t num_tweets,
                    std::vector<std::string>* tokens,
                    std::vector<std::vector<uint32_t>>* postings) {
  uint64_t n = 0;
  ESHARP_RETURN_NOT_OK(r->ReadU64(&n));
  ESHARP_RETURN_NOT_OK(r->ReadStringColumn(n, tokens));
  std::vector<uint64_t> offsets;
  std::vector<uint32_t> flat;
  ESHARP_RETURN_NOT_OK(r->ReadArray(n + 1, &offsets));
  const uint64_t total = offsets.empty() ? 0 : offsets.back();
  ESHARP_RETURN_NOT_OK(CheckOffsets(offsets, total, "TOKENS"));
  ESHARP_RETURN_NOT_OK(r->ReadArray(total, &flat));
  for (uint32_t id : flat) {
    if (id >= num_tweets) {
      return Status::IOError("snapshot section TOKENS: posting ", id,
                             " out of range (", num_tweets, " tweets)");
    }
  }
  *postings = Unflatten(offsets, flat);
  return Status::OK();
}

Status DecodeTotals(ByteReader* r, uint64_t num_users,
                    std::vector<uint64_t>* tweets_by_user,
                    std::vector<uint64_t>* mentions_of_user,
                    std::vector<uint64_t>* retweets_of_user) {
  uint64_t n = 0;
  ESHARP_RETURN_NOT_OK(r->ReadU64(&n));
  if (n != num_users) {
    return Status::IOError("snapshot section TOTALS: ", n,
                           " entries for ", num_users, " users");
  }
  ESHARP_RETURN_NOT_OK(r->ReadArray(n, tweets_by_user));
  ESHARP_RETURN_NOT_OK(r->ReadArray(n, mentions_of_user));
  ESHARP_RETURN_NOT_OK(r->ReadArray(n, retweets_of_user));
  return Status::OK();
}

Status DecodeStore(ByteReader* r,
                   std::shared_ptr<const community::CommunityStore>* out) {
  uint64_t n = 0;
  ESHARP_RETURN_NOT_OK(r->ReadU64(&n));
  std::vector<uint64_t> term_offsets;
  ESHARP_RETURN_NOT_OK(r->ReadArray(n + 1, &term_offsets));
  uint64_t num_terms = 0;
  ESHARP_RETURN_NOT_OK(r->ReadU64(&num_terms));
  ESHARP_RETURN_NOT_OK(CheckOffsets(term_offsets, num_terms, "STORE"));
  std::vector<std::string> terms;
  ESHARP_RETURN_NOT_OK(r->ReadStringColumn(num_terms, &terms));
  uint64_t num_weights = 0;
  ESHARP_RETURN_NOT_OK(r->ReadU64(&num_weights));
  std::vector<uint64_t> keys;
  std::vector<double> weights;
  ESHARP_RETURN_NOT_OK(r->ReadArray(num_weights, &keys));
  ESHARP_RETURN_NOT_OK(r->ReadArray(num_weights, &weights));
  std::vector<community::Community> communities(n);
  for (size_t i = 0; i < n; ++i) {
    communities[i].id = static_cast<community::CommunityId>(i);
    communities[i].terms.assign(
        std::make_move_iterator(terms.begin() + term_offsets[i]),
        std::make_move_iterator(terms.begin() + term_offsets[i + 1]));
  }
  std::vector<std::pair<uint64_t, double>> inter(num_weights);
  for (size_t i = 0; i < num_weights; ++i) inter[i] = {keys[i], weights[i]};
  *out = std::make_shared<const community::CommunityStore>(
      community::CommunityStore::FromSnapshotParts(std::move(communities),
                                                   inter));
  return Status::OK();
}

Status DecodeEvidence(
    ByteReader* r, uint64_t num_users,
    std::shared_ptr<const expert::TermEvidenceIndex>* out) {
  uint64_t n = 0;
  ESHARP_RETURN_NOT_OK(r->ReadU64(&n));
  std::vector<std::string> terms;
  ESHARP_RETURN_NOT_OK(r->ReadStringColumn(n, &terms));
  std::vector<uint64_t> offsets;
  ESHARP_RETURN_NOT_OK(r->ReadArray(n + 1, &offsets));
  const uint64_t total = offsets.empty() ? 0 : offsets.back();
  ESHARP_RETURN_NOT_OK(CheckOffsets(offsets, total, "EVIDENCE"));
  std::vector<uint32_t> user;
  std::vector<uint8_t> flags;
  std::vector<uint64_t> tweets, mentions, retweets, conversational, hashtag;
  ESHARP_RETURN_NOT_OK(r->ReadArray(total, &user));
  ESHARP_RETURN_NOT_OK(r->ReadArray(total, &flags));
  ESHARP_RETURN_NOT_OK(r->ReadArray(total, &tweets));
  ESHARP_RETURN_NOT_OK(r->ReadArray(total, &mentions));
  ESHARP_RETURN_NOT_OK(r->ReadArray(total, &retweets));
  ESHARP_RETURN_NOT_OK(r->ReadArray(total, &conversational));
  ESHARP_RETURN_NOT_OK(r->ReadArray(total, &hashtag));
  std::vector<expert::CandidateEvidence> flat(total);
  for (size_t i = 0; i < total; ++i) {
    if (user[i] >= num_users) {
      return Status::IOError("snapshot section EVIDENCE: user ", user[i],
                             " out of range (", num_users, " users)");
    }
    expert::CandidateEvidence& e = flat[i];
    e.user = user[i];
    e.is_author = (flags[i] & 1) != 0;
    e.is_mentioned = (flags[i] & 2) != 0;
    e.tweets_on_topic = tweets[i];
    e.mentions_on_topic = mentions[i];
    e.retweets_on_topic = retweets[i];
    e.conversational_on_topic = conversational[i];
    e.hashtag_on_topic = hashtag[i];
  }
  std::vector<std::vector<expert::CandidateEvidence>> pools =
      Unflatten(offsets, flat);
  *out = std::make_shared<const expert::TermEvidenceIndex>(
      expert::TermEvidenceIndex::FromSnapshotParts(std::move(terms),
                                                   std::move(pools)));
  return Status::OK();
}

struct SectionEntry {
  uint32_t id = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t checksum = 0;
};

}  // namespace

Status SaveSnapshotFile(const std::string& path,
                        const microblog::TweetCorpus& corpus,
                        const community::CommunityStore& store,
                        const expert::TermEvidenceIndex* evidence) {
  std::vector<std::pair<uint32_t, std::string>> sections;
  sections.emplace_back(kMeta,
                        EncodeMeta(corpus, store, evidence != nullptr));
  sections.emplace_back(kUsers, EncodeUsers(corpus));
  sections.emplace_back(kTweets, EncodeTweets(corpus));
  sections.emplace_back(kTokens, EncodeTokens(corpus));
  sections.emplace_back(kTotals, EncodeTotals(corpus));
  sections.emplace_back(kStore, EncodeStore(store));
  if (evidence != nullptr) {
    sections.emplace_back(kEvidence, EncodeEvidence(*evidence));
  }

  // Lay sections out 8-byte aligned after the header + table.
  const uint32_t count = static_cast<uint32_t>(sections.size());
  uint64_t offset = kHeaderBytes + count * kSectionEntryBytes;
  std::string table;
  for (const auto& [id, body] : sections) {
    offset = (offset + 7) & ~uint64_t{7};
    AppendU32(&table, id);
    AppendU32(&table, 0);  // reserved
    AppendU64(&table, offset);
    AppendU64(&table, body.size());
    AppendU64(&table, simd::Checksum64(body.data(), body.size()));
    offset += body.size();
  }

  std::string file;
  file.reserve(offset);
  AppendU64(&file, kSnapshotMagic);
  AppendU32(&file, kSnapshotFormatVersion);
  AppendU32(&file, count);
  AppendU64(&file, simd::Checksum64(table.data(), table.size()));
  file += table;
  for (const auto& [id, body] : sections) {
    file.resize((file.size() + 7) & ~uint64_t{7}, '\0');  // alignment pad
    file += body;
  }
  return WriteStringToFile(path, file);
}

Result<SnapshotArtifacts> LoadSnapshotFile(const std::string& path) {
  MmapFile file;
  ESHARP_RETURN_NOT_OK(file.Open(path));
  const uint8_t* data = file.data();
  const uint64_t size = file.size();
  if (size < kHeaderBytes) {
    return Status::IOError("snapshot '", path, "': ", size,
                           " bytes is smaller than the header");
  }
  uint64_t magic = 0;
  uint32_t version = 0, count = 0;
  uint64_t table_checksum = 0;
  std::memcpy(&magic, data, 8);
  std::memcpy(&version, data + 8, 4);
  std::memcpy(&count, data + 12, 4);
  std::memcpy(&table_checksum, data + 16, 8);
  if (magic != kSnapshotMagic) {
    return Status::IOError("snapshot '", path, "': bad magic");
  }
  if (version != kSnapshotFormatVersion) {
    return Status::FailedPrecondition(
        "snapshot '", path, "': format version ", version,
        " (this build reads version ", kSnapshotFormatVersion,
        "); regenerate the snapshot");
  }
  if (count == 0 || count > kMaxSections) {
    return Status::IOError("snapshot '", path, "': implausible section count ",
                           count);
  }
  const uint64_t table_bytes = uint64_t{count} * kSectionEntryBytes;
  if (kHeaderBytes + table_bytes > size) {
    return Status::IOError("snapshot '", path,
                           "': section table overruns file");
  }
  if (simd::Checksum64(data + kHeaderBytes, table_bytes) != table_checksum) {
    return Status::IOError("snapshot '", path,
                           "': section table checksum mismatch");
  }

  std::vector<SectionEntry> entries(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint8_t* e = data + kHeaderBytes + i * kSectionEntryBytes;
    std::memcpy(&entries[i].id, e, 4);
    std::memcpy(&entries[i].offset, e + 8, 8);
    std::memcpy(&entries[i].size, e + 16, 8);
    std::memcpy(&entries[i].checksum, e + 24, 8);
    if (entries[i].offset > size || entries[i].size > size - entries[i].offset) {
      return Status::IOError("snapshot '", path, "': section ",
                             SectionName(entries[i].id), " overruns file");
    }
    if (simd::Checksum64(data + entries[i].offset, entries[i].size) !=
        entries[i].checksum) {
      return Status::IOError("snapshot '", path, "': section ",
                             SectionName(entries[i].id),
                             " checksum mismatch");
    }
  }

  auto find = [&](uint32_t id) -> const SectionEntry* {
    for (const SectionEntry& e : entries) {
      if (e.id == id) return &e;
    }
    return nullptr;
  };
  auto reader_for = [&](const SectionEntry* e) {
    return ByteReader(data + e->offset, e->size, SectionName(e->id));
  };
  auto require = [&](uint32_t id, const SectionEntry** e) -> Status {
    *e = find(id);
    if (*e == nullptr) {
      return Status::IOError("snapshot '", path, "': missing section ",
                             SectionName(id));
    }
    return Status::OK();
  };

  const SectionEntry* meta_e = nullptr;
  const SectionEntry* users_e = nullptr;
  const SectionEntry* tweets_e = nullptr;
  const SectionEntry* tokens_e = nullptr;
  const SectionEntry* totals_e = nullptr;
  const SectionEntry* store_e = nullptr;
  ESHARP_RETURN_NOT_OK(require(kMeta, &meta_e));
  ESHARP_RETURN_NOT_OK(require(kUsers, &users_e));
  ESHARP_RETURN_NOT_OK(require(kTweets, &tweets_e));
  ESHARP_RETURN_NOT_OK(require(kTokens, &tokens_e));
  ESHARP_RETURN_NOT_OK(require(kTotals, &totals_e));
  ESHARP_RETURN_NOT_OK(require(kStore, &store_e));

  MetaCounts meta;
  {
    ByteReader r = reader_for(meta_e);
    ESHARP_RETURN_NOT_OK(DecodeMeta(&r, &meta));
  }

  std::vector<microblog::UserProfile> users;
  {
    ByteReader r = reader_for(users_e);
    ESHARP_RETURN_NOT_OK(DecodeUsers(&r, &users));
  }
  if (users.size() != meta.num_users) {
    return Status::IOError("snapshot '", path, "': USERS has ", users.size(),
                           " entries, META says ", meta.num_users);
  }

  std::vector<microblog::Tweet> tweets;
  {
    ByteReader r = reader_for(tweets_e);
    ESHARP_RETURN_NOT_OK(DecodeTweets(&r, users.size(), &tweets));
  }
  if (tweets.size() != meta.num_tweets) {
    return Status::IOError("snapshot '", path, "': TWEETS has ",
                           tweets.size(), " entries, META says ",
                           meta.num_tweets);
  }

  std::vector<std::string> tokens;
  std::vector<std::vector<uint32_t>> postings;
  {
    ByteReader r = reader_for(tokens_e);
    ESHARP_RETURN_NOT_OK(DecodeTokens(&r, tweets.size(), &tokens, &postings));
  }
  if (tokens.size() != meta.num_tokens) {
    return Status::IOError("snapshot '", path, "': TOKENS has ",
                           tokens.size(), " entries, META says ",
                           meta.num_tokens);
  }

  std::vector<uint64_t> tweets_by_user, mentions_of_user, retweets_of_user;
  {
    ByteReader r = reader_for(totals_e);
    ESHARP_RETURN_NOT_OK(DecodeTotals(&r, users.size(), &tweets_by_user,
                                      &mentions_of_user, &retweets_of_user));
  }

  SnapshotArtifacts artifacts;
  {
    ByteReader r = reader_for(store_e);
    ESHARP_RETURN_NOT_OK(DecodeStore(&r, &artifacts.store));
  }
  if (artifacts.store->num_communities() != meta.num_communities) {
    return Status::IOError("snapshot '", path, "': STORE has ",
                           artifacts.store->num_communities(),
                           " communities, META says ", meta.num_communities);
  }

  const SectionEntry* evidence_e = find(kEvidence);
  if (meta.has_evidence != (evidence_e != nullptr)) {
    return Status::IOError("snapshot '", path,
                           "': META/EVIDENCE presence mismatch");
  }
  if (evidence_e != nullptr) {
    ByteReader r = reader_for(evidence_e);
    ESHARP_RETURN_NOT_OK(DecodeEvidence(&r, users.size(),
                                        &artifacts.evidence));
  }

  artifacts.corpus = std::make_shared<microblog::TweetCorpus>(
      microblog::TweetCorpus::FromSnapshotParts(
          std::move(users), std::move(tweets), std::move(tokens),
          std::move(postings), std::move(tweets_by_user),
          std::move(mentions_of_user), std::move(retweets_of_user)));
  artifacts.info.format_version = version;
  artifacts.info.file_bytes = size;
  artifacts.info.num_sections = count;
  artifacts.info.has_evidence = evidence_e != nullptr;
  return artifacts;
}

}  // namespace esharp::serving
