#include "serving/introspect.h"

#include <utility>

#include "common/strings.h"
#include "obs/trace.h"

namespace esharp::serving {

obs::Probe EngineReadiness(const ServingEngine* engine,
                           double max_snapshot_age_seconds) {
  return [engine, max_snapshot_age_seconds]() {
    HealthView health = engine->Health();
    obs::ProbeResult result;
    if (!health.ready) {
      result.ok = false;
      result.detail = health.detail;
      return result;
    }
    if (max_snapshot_age_seconds > 0 &&
        health.snapshot_age_seconds > max_snapshot_age_seconds) {
      result.ok = false;
      result.detail = StrFormat(
          "snapshot v%llu is %.0fs old (bound %.0fs)",
          static_cast<unsigned long long>(health.snapshot_version),
          health.snapshot_age_seconds, max_snapshot_age_seconds);
      return result;
    }
    result.detail = StrFormat(
        "snapshot v%llu, age %.1fs",
        static_cast<unsigned long long>(health.snapshot_version),
        health.snapshot_age_seconds);
    return result;
  };
}

std::vector<obs::SloObjective> DefaultServingObjectives(
    const ServingEngine* engine, ServingSloThresholds thresholds) {
  std::vector<obs::SloObjective> objectives;

  obs::SloObjective p99;
  p99.name = "latency_p99";
  p99.kind = obs::SloObjective::Kind::kValue;
  p99.value = [engine]() {
    return engine->metrics().Report().p99_ms / 1000.0;  // seconds
  };
  p99.target = thresholds.p99_latency_seconds;
  objectives.push_back(std::move(p99));

  obs::SloObjective errors;
  errors.name = "error_rate";
  errors.kind = obs::SloObjective::Kind::kRatio;
  errors.bad = [engine]() {
    MetricsReport report = engine->metrics().Report();
    // A deadline blown is a failed answer from the client's side; count it
    // against the same budget as detector errors.
    return static_cast<double>(report.errors + report.timeouts);
  };
  errors.total = [engine]() {
    return static_cast<double>(engine->metrics().Report().completed);
  };
  errors.target = thresholds.error_rate;
  objectives.push_back(std::move(errors));

  obs::SloObjective shed;
  shed.name = "shed_rate";
  shed.kind = obs::SloObjective::Kind::kRatio;
  shed.bad = [engine]() {
    return static_cast<double>(engine->metrics().Report().shed);
  };
  shed.total = [engine]() {
    // Offered load: everything that reached admission, served or not.
    MetricsReport report = engine->metrics().Report();
    return static_cast<double>(report.completed + report.shed);
  };
  shed.target = thresholds.shed_rate;
  objectives.push_back(std::move(shed));

  return objectives;
}

void MountServingEndpoints(obs::DebugServer* server, ServingEngine* engine,
                           ServingIntrospectionOptions options) {
  obs::StatuszOptions statusz;
  statusz.build_info = std::move(options.build_info);
  statusz.tracer = options.tracer;
  statusz.watchdog = options.watchdog;
  statusz.timeseries = options.timeseries;
  statusz.recorder = options.recorder;
  statusz.readiness.emplace_back(
      "serving", EngineReadiness(engine, options.max_snapshot_age_seconds));
  statusz.overview = [engine]() {
    HealthView health = engine->Health();
    MetricsReport report = engine->metrics().Report();
    std::string out;
    out += StrFormat(
        "snapshot: v%llu (age %.1fs)\n",
        static_cast<unsigned long long>(health.snapshot_version),
        health.snapshot_age_seconds);
    out += StrFormat(
        "requests: %llu completed, %llu shed, %.1f qps (window)\n",
        static_cast<unsigned long long>(report.completed),
        static_cast<unsigned long long>(report.shed), report.window_qps);
    out += StrFormat("latency:  p50 %.2fms  p95 %.2fms  p99 %.2fms\n",
                     report.p50_ms, report.p95_ms, report.p99_ms);
    out += StrFormat("cache:    %.1f%% hit rate\n",
                     report.cache_hit_rate * 100.0);
    out += StrFormat("admission: %zu / %zu in flight (%.0f%% full)\n",
                     health.in_flight, health.max_in_flight,
                     health.queue_fill * 100.0);
    return out;
  };
  statusz.active_requests = [engine]() {
    std::vector<obs::ActiveEntry> entries;
    for (ActiveRequestInfo& info : engine->ActiveRequests()) {
      obs::ActiveEntry entry;
      entry.id = info.id;
      entry.name = std::move(info.query);
      entry.stage = std::move(info.stage);
      entry.elapsed_ms = info.elapsed_ms;
      entries.push_back(std::move(entry));
    }
    return entries;
  };
  statusz.request_samples = [engine]() {
    double now = obs::NowSeconds();
    std::vector<obs::SampleEntry> entries;
    for (RequestSample& sample : engine->SampledRequests()) {
      obs::SampleEntry entry;
      entry.name = std::move(sample.query);
      entry.outcome = std::move(sample.outcome);
      entry.total_ms = sample.total_ms;
      entry.age_seconds = now - sample.finished_seconds;
      entry.detail = StrFormat(
          "expand %.2fms detect %.2fms rank %.2fms (snapshot v%llu)",
          sample.stages.expand_ms, sample.stages.detect_ms,
          sample.stages.rank_ms,
          static_cast<unsigned long long>(sample.snapshot_version));
      entries.push_back(std::move(entry));
    }
    return entries;
  };
  obs::MountStatusz(server, std::move(statusz));
}

}  // namespace esharp::serving
