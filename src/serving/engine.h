#ifndef ESHARP_SERVING_ENGINE_H_
#define ESHARP_SERVING_ENGINE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "obs/obs.h"
#include "obs/trace_context.h"
#include "serving/cache.h"
#include "serving/metrics.h"
#include "serving/snapshot.h"

namespace esharp::serving {

/// \brief Configuration of the query-serving engine.
struct ServingOptions {
  /// Worker threads when the engine owns its pool (pool == nullptr).
  size_t num_threads = 4;
  /// Existing pool to dispatch onto instead of owning one. Must outlive
  /// the engine; the engine's destructor waits for its own admitted
  /// requests to finish, so no extra draining is required of the caller.
  /// This is how serving shares workers with the offline pipeline in a
  /// single process.
  ThreadPool* pool = nullptr;
  /// Admission bound: maximum requests in flight (queued + executing).
  /// Beyond it, requests are shed with Status::Unavailable instead of
  /// queuing without bound — an overloaded service must fail fast, not
  /// collapse under its own backlog.
  size_t max_in_flight = 64;
  /// Default per-request deadline in milliseconds; <= 0 means none.
  /// Measured from submission, so queue wait counts against it.
  double default_deadline_ms = 0;
  /// Result cache; set enable_cache = false to force every request through
  /// the detector (benchmarking, tests).
  bool enable_cache = true;
  CacheOptions cache;
  /// Collapse concurrent identical queries into one detector execution
  /// (the followers wait for the leader's result).
  bool enable_single_flight = true;
  /// Serve in-vocabulary expansion terms from the snapshot's precomputed
  /// term-evidence index (terms outside the vocabulary — ad-hoc queries,
  /// phrase-fallback synthesized terms — always collect live). Off = the
  /// reference serial detector path; results are bit-identical either way
  /// (the `online` test suite enforces it).
  bool use_evidence_index = true;
  /// Fan live-term collection out across the worker pool. The submitting
  /// request always collects terms itself too (help-first), so a saturated
  /// pool degrades to the serial path instead of deadlocking; queued
  /// helpers that arrive late find no work left and return.
  bool parallel_detect = true;
  /// Instrumentation seam: invoked with the cache key at the start of every
  /// uncached execution, on the executing thread. Tests use it to pin a
  /// leader in place and prove single-flight behavior; benches can inject
  /// artificial stage latency or faults. Must be thread-safe.
  std::function<void(const std::string& key)> execution_hook;
  /// Optional request tracing. Each served request becomes a "request" span
  /// (opened retroactively at submission time, so queue wait is visible)
  /// with an "admission" child covering the queue, a "cache" child
  /// annotated with the probe outcome, and — when the detector actually
  /// runs — "expand" / "detect" / "rank" children. Single-flight followers
  /// get a "flight_wait" child instead; shed requests appear as
  /// zero-length "shed" events. Must outlive the engine.
  obs::Tracer* tracer = nullptr;
};

/// \brief One query to serve.
struct QueryRequest {
  std::string query;
  /// Overrides ServingOptions::default_deadline_ms when >= 0.
  double deadline_ms = -1;
  /// Skips cache lookup AND population for this request.
  bool bypass_cache = false;
  /// Distributed trace context to serve under. Invalid (default) = the
  /// engine mints a fresh root at admission; valid = the request joins an
  /// existing trace (the cluster router's scatter sets this, so shard
  /// spans carry the router's trace id across the process boundary).
  obs::TraceContext trace{};
};

/// \brief Point-in-time health of one engine: the signals /healthz and
/// /readyz derive from, exposed as one coherent read. `ready` is the
/// engine's own verdict (a snapshot is published); callers layer policy on
/// the raw signals — staleness bounds, shed-rate objectives via the SLO
/// watchdog — without the engine hard-coding their thresholds.
struct HealthView {
  /// A published snapshot exists, so requests can be served at all.
  bool ready = false;
  std::string detail;  ///< Why not ready ("" when ready).
  uint64_t snapshot_version = 0;
  /// Seconds since the current generation was published (0 when none).
  double snapshot_age_seconds = 0;
  size_t in_flight = 0;
  size_t max_in_flight = 0;
  /// in_flight / max_in_flight — the admission queue's fullness in [0, 1].
  double queue_fill = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  /// Recent request rate (ServingMetrics windowed EWMA).
  double window_qps = 0;
};

/// \brief Live introspection record of one in-flight request (/tracez).
struct ActiveRequestInfo {
  uint64_t id = 0;
  std::string query;
  std::string stage;  ///< "admitted", "cache", "expand", "detect", "rank",
                      ///< "flight_wait".
  double elapsed_ms = 0;
};

/// \brief Retained sample of a recently finished request (/tracez). The
/// engine keeps a few samples per latency bucket so the page always shows
/// both the fast mass and the slow tail, not just whatever finished last.
struct RequestSample {
  std::string query;
  std::string outcome;  ///< "ok", "cache_hit", "deduplicated", "timeout",
                        ///< "error", "invalid".
  double total_ms = 0;
  StageTimings stages;
  uint64_t snapshot_version = 0;
  double finished_seconds = 0;  ///< obs::NowSeconds() time base.
};

/// \brief The shard-side answer of the cluster tier: one query's merged
/// candidate evidence against this engine's corpus partition, *before*
/// ranking. Ranking is not shard-local — the z-scores of §3 are computed
/// over the union candidate pool with union-corpus denominators — so a
/// sharded deployment ships raw evidence to the router and ranks exactly
/// once there (see src/cluster).
struct EvidenceResponse {
  /// Union of the expansion terms' candidate pools over this engine's
  /// corpus; sorted by user with unique users (the MergeEvidence
  /// invariant). Counts are partition-local: integer sums over the tweets
  /// this corpus holds, so pools from disjoint partitions merge exactly.
  std::vector<expert::CandidateEvidence> evidence;
  uint64_t snapshot_version = 0;
  /// Expansion width (the same store is shared across shards, so every
  /// shard reports the same value; the router sanity-checks nothing here,
  /// it is for introspection).
  size_t terms = 0;
  /// End-to-end latency on this shard, including queue wait, milliseconds.
  double total_ms = 0;
  /// Admission-queue wait alone, milliseconds (piggybacked to the router
  /// so cross-shard profiles attribute shard latency to queue vs work).
  double queue_ms = 0;
  /// Expand/detect breakdown of this shard's work (rank_ms stays 0 — the
  /// shard path never ranks).
  StageTimings stages;
  /// The trace context the shard actually served under: the request's when
  /// it was valid, otherwise the fresh root the shard minted. Lets the
  /// router (and tests) confirm cross-process adoption.
  obs::TraceContext trace{};
};

/// \brief One served answer, with provenance.
struct QueryResponse {
  std::vector<expert::RankedExpert> experts;
  /// Generation of the community store that produced the answer.
  uint64_t snapshot_version = 0;
  /// True when the answer came straight from the result cache.
  bool from_cache = false;
  /// True when this request waited on an identical in-flight one.
  bool deduplicated = false;
  /// Per-stage breakdown (zero for cache hits and deduplicated waits).
  StageTimings stages;
  /// End-to-end latency, including queue wait, in milliseconds.
  double total_ms = 0;
};

/// \brief The online query service: ESharp behind admission control, a
/// result cache, single-flight collapsing and hot-swappable snapshots.
///
/// The paper's online stage is a low-latency service over a weekly
/// refreshed index (§6.3); this engine is that stage made concurrent.
/// Request lifecycle:
///
///   Submit -> admission check (shed when over max_in_flight)
///          -> acquire snapshot (lock-free), pinning one generation for
///             the whole request
///          -> cache probe (lower-cased key, TTL check, entry version
///             validated against the pinned generation)
///          -> single-flight: followers wait for an identical leader
///          -> expand / collect / rank against the pinned snapshot, with
///             deadline checks between stages
///          -> populate cache, record metrics
///
/// All public methods are thread-safe. The engine never blocks a swap:
/// SnapshotManager::Publish is wait-free with respect to readers, and
/// requests already executing finish against the generation they acquired.
class ServingEngine {
 public:
  /// `snapshots` must outlive the engine and should already have a
  /// published generation (requests fail FailedPrecondition otherwise).
  explicit ServingEngine(SnapshotManager* snapshots,
                         ServingOptions options = {});

  /// Blocks until no admitted request can still touch the engine: the
  /// owned pool (if any) is drained and joined, then the destructor waits
  /// for the in-flight count to hit zero, which covers requests queued on
  /// an external pool. Submitting new requests concurrently with
  /// destruction is undefined behavior, as for any object.
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Asynchronous entry point: admission control runs inline (so shedding
  /// is immediate and cheap), the rest runs on the worker pool.
  std::future<Result<QueryResponse>> SubmitQuery(QueryRequest request);

  /// Synchronous entry point: same pipeline, executed on the caller's
  /// thread (closed-loop clients and tests).
  Result<QueryResponse> Query(QueryRequest request);

  /// Shard-side entry point of the cluster tier: expansion + candidate
  /// collection against the pinned snapshot, skipping the rank stage and
  /// the result cache (partition-local ranks are meaningless — see
  /// EvidenceResponse). Runs on the caller's thread under the same
  /// admission control, snapshot pinning and cooperative deadline as
  /// Query(); in-vocabulary terms are served from the snapshot's
  /// TermEvidenceIndex, which is this path's per-shard cache.
  Result<EvidenceResponse> QueryEvidence(QueryRequest request);

  /// Version of the current snapshot generation without acquiring it — a
  /// single atomic load, cheap enough for per-request cluster cache
  /// validation (0 before the first publish).
  uint64_t snapshot_version() const { return snapshots_->version(); }

  /// Snapshot-safe domain lookup (returns the community by value; see
  /// CommunityStore::FindCopy). NotFound when the term matches nothing.
  Result<community::Community> LookupDomain(const std::string& term) const;

  /// Drops every cached result (also happens lazily on snapshot swaps).
  void InvalidateCache() { cache_.InvalidateAll(); }

  const ServingMetrics& metrics() const { return metrics_; }
  ServingMetrics* mutable_metrics() { return &metrics_; }
  CacheStats cache_stats() const { return cache_.stats(); }
  size_t cache_size() const { return cache_.size(); }
  const ServingOptions& options() const { return options_; }

  /// Requests currently admitted and not yet finished.
  size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  /// The health signals /readyz-style probes consume. Thread-safe, cheap
  /// enough to poll per scrape (one snapshot acquire + metric reads).
  HealthView Health() const;

  /// In-flight requests with their current stage and elapsed time, for
  /// /tracez. Ordered by request id (admission order).
  std::vector<ActiveRequestInfo> ActiveRequests() const;

  /// Recently finished requests, a few per latency bucket, newest first
  /// within each bucket.
  std::vector<RequestSample> SampledRequests() const;

 private:
  /// Shared state of one single-flight group: the leader publishes its
  /// result here and wakes the followers.
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Result<QueryResponse> result = Status::Internal("flight not finished");
  };

  /// Admission: returns false (and records the shed) when over capacity.
  bool TryAdmit();

  /// Full pipeline for one admitted request. `queue_timer` started at
  /// submission; deadline_ms <= 0 means no deadline.
  Result<QueryResponse> Execute(const QueryRequest& request,
                                const Timer& queue_timer, double deadline_ms);

  /// The detector work proper, against one pinned snapshot. `trace_parent`
  /// is the enclosing "request" span (inert when tracing is off);
  /// `request_id` keys the active-registry stage updates.
  Result<QueryResponse> ExecuteUncached(
      const std::string& key, const QueryRequest& request,
      const Timer& queue_timer, double deadline_ms,
      const std::shared_ptr<const ServingSnapshot>& snapshot,
      const obs::Span* trace_parent, uint64_t request_id);

  /// The detect stage shared by ExecuteUncached and QueryEvidence: resolve
  /// each expansion term to its precomputed pool or collect it live (in
  /// parallel on the pool, deadline enforced cooperatively inside the
  /// collection loops), then k-way-merge the pools. Records the timeout
  /// metric and returns DeadlineExceeded when the deadline fires
  /// mid-collection. `detect_span` receives the terms/candidates
  /// annotations (inert when tracing is off).
  Result<std::vector<expert::CandidateEvidence>> DetectMerged(
      const std::vector<std::string>& terms, const Timer& queue_timer,
      double deadline_ms, const std::shared_ptr<const ServingSnapshot>& snapshot,
      obs::Span* detect_span);

  /// Pipeline of one admitted QueryEvidence request.
  Result<EvidenceResponse> ExecuteEvidence(const QueryRequest& request,
                                           const Timer& queue_timer,
                                           double deadline_ms);

  /// Drops stale cache entries when the snapshot generation moved.
  void MaybeInvalidateOnSwap(uint64_t current_version);

  /// RAII registration of one request in the active-request registry;
  /// records a finished sample on destruction. Defined in engine.cc.
  class RequestScope;

  /// One active-registry entry (guarded by introspect_mu_).
  struct ActiveRecord {
    std::string query;
    const char* stage = "admitted";
    double start_seconds = 0;
  };

  void SetActiveStage(uint64_t id, const char* stage);
  void FinishActive(uint64_t id, const char* outcome, double total_ms,
                    const StageTimings& stages, uint64_t snapshot_version);

  double EffectiveDeadline(const QueryRequest& request) const {
    return request.deadline_ms >= 0 ? request.deadline_ms
                                    : options_.default_deadline_ms;
  }

  SnapshotManager* snapshots_;
  ServingOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;  // owned_pool_.get() or options_.pool
  ShardedResultCache cache_;
  ServingMetrics metrics_;
  Timer clock_;  // monotonic time base for cache TTLs
  std::atomic<size_t> in_flight_{0};
  std::atomic<uint64_t> last_seen_version_{0};

  std::mutex flights_mu_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;

  // ---- /tracez introspection state ----------------------------------------
  /// Latency-bucket boundaries of the finished-request samples, ms.
  static constexpr double kSampleBucketUpperMs[] = {1.0, 10.0, 100.0, 1e300};
  static constexpr size_t kSampleBuckets =
      sizeof(kSampleBucketUpperMs) / sizeof(kSampleBucketUpperMs[0]);
  static constexpr size_t kSamplesPerBucket = 8;

  std::atomic<uint64_t> next_request_id_{1};
  mutable std::mutex introspect_mu_;
  std::map<uint64_t, ActiveRecord> active_;  // ordered = admission order
  std::array<std::vector<RequestSample>, kSampleBuckets> samples_;
  std::array<size_t, kSampleBuckets> sample_pos_{};
};

}  // namespace esharp::serving

#endif  // ESHARP_SERVING_ENGINE_H_
