#ifndef ESHARP_QUERYLOG_VARIANTS_H_
#define ESHARP_QUERYLOG_VARIANTS_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace esharp::querylog {

/// \brief Kinds of surface variant a canonical term appears under in a real
/// query log (§4.1: "the same term can appear with dozens, sometimes
/// hundreds of variants (e.g., san francisco, #sanfrancisco, sf, ...)").
enum class VariantKind {
  kCanonical,
  kHashtag,       // "#sanfrancisco"
  kNoSpace,       // "sanfrancisco"
  kAbbreviation,  // "sf" (first letters of each word)
  kTypoSwap,      // adjacent transposition
  kTypoDrop,      // dropped character
  kTypoDouble,    // doubled character
};

/// \brief One derived query string with its kind.
struct Variant {
  std::string text;
  VariantKind kind = VariantKind::kCanonical;
};

/// \brief Options for variant derivation.
struct VariantOptions {
  /// Expected number of variants per canonical term (Poisson).
  double mean_variants_per_term = 2.0;
  /// Maximum variants retained per term.
  size_t max_variants_per_term = 8;
};

/// \brief Derives surface variants of a canonical term. The canonical term
/// itself is always first in the returned list. Deterministic in *rng.
/// Variants are deduplicated and never equal the canonical form.
std::vector<Variant> DeriveVariants(const std::string& term,
                                    const VariantOptions& options, Rng* rng);

/// \brief Applies one specific variant transformation (exposed for tests).
std::string ApplyVariant(const std::string& term, VariantKind kind, Rng* rng);

}  // namespace esharp::querylog

#endif  // ESHARP_QUERYLOG_VARIANTS_H_
