#include "querylog/universe.h"

#include <map>
#include <unordered_map>

#include "common/strings.h"

namespace esharp::querylog {

namespace {

// Seed vocabulary per category so examples and qualitative benches print
// recognizable terms (the paper's Tables 1-7 revolve around these). Synthetic
// terms take over once the seeds run out.
const std::vector<std::vector<std::string>>& SeedHeads() {
  static const std::vector<std::vector<std::string>> kSeeds = {
      // sports
      {"49ers", "nfl", "buffalo bills", "nascar", "baltimore ravens",
       "red sox", "lakers", "serena williams", "tour de france",
       "world cup", "colin kaepernick", "super bowl"},
      // electronics
      {"bluetooth speakers", "ipad mini", "garmin", "xbox", "vacuum cleaners",
       "smart watch", "vr glasses", "android phone", "drone camera",
       "wireless earbuds", "gaming laptop", "4k tv"},
      // finance
      {"nasdaq", "dow futures", "msft", "stock quotes", "bloomberg",
       "mortgage rates", "gold price", "sp 500", "bitcoin",
       "retirement planning", "credit score", "exchange rate"},
      // health
      {"scoliosis", "asthma", "diabetes", "bmi", "bulimia", "flu symptoms",
       "blood pressure", "migraine", "allergy", "back pain",
       "cholesterol", "insomnia"},
      // wikipedia
      {"world war i", "world war ii", "aashiqui 2", "lycos", "beyonce",
       "albert einstein", "star wars vii", "french revolution",
       "roman empire", "solar system", "shakespeare", "apollo 11"},
      // misc / top-250 style head queries
      {"sarah palin", "mapquest", "honda", "antonov225", "saudi arabia",
       "weather", "pizza near me", "taylor swift", "game of thrones",
       "minecraft", "craigslist", "powerball"},
  };
  return kSeeds;
}

// Qualifier suffixes appended to head terms to form sibling terms of the
// same domain ("49ers draft", "49ers news", ...).
const std::vector<std::string>& Qualifiers() {
  static const std::vector<std::string> kQualifiers = {
      "news", "draft", "schedule", "score", "rumors", "review", "price",
      "forum", "tickets", "live", "update", "stats", "guide", "history",
  };
  return kQualifiers;
}

}  // namespace

std::vector<std::string> DefaultCategoryNames(size_t num_categories) {
  static const std::vector<std::string> kNames = {
      "sports", "electronics", "finance", "health", "wikipedia", "top250",
  };
  std::vector<std::string> out;
  for (size_t i = 0; i < num_categories; ++i) {
    if (i < kNames.size()) {
      out.push_back(kNames[i]);
    } else {
      out.push_back(StrFormat("category%zu", i));
    }
  }
  return out;
}

Result<TopicUniverse> TopicUniverse::Generate(const UniverseOptions& options) {
  if (options.num_categories == 0 || options.domains_per_category == 0) {
    return Status::InvalidArgument("universe must have categories and domains");
  }
  if (options.min_terms_per_domain == 0 ||
      options.min_terms_per_domain > options.max_terms_per_domain) {
    return Status::InvalidArgument("invalid terms_per_domain range");
  }
  if (options.min_urls_per_domain == 0 ||
      options.min_urls_per_domain > options.max_urls_per_domain) {
    return Status::InvalidArgument("invalid urls_per_domain range");
  }

  TopicUniverse u;
  u.options_ = options;
  u.num_categories_ = options.num_categories;
  Rng rng(options.seed);

  uint32_t next_url = 0;
  const auto& seeds = SeedHeads();
  std::unordered_map<std::string, DomainId> term_owner;

  u.category_urls_.resize(options.num_categories);
  for (size_t cat = 0; cat < options.num_categories; ++cat) {
    for (size_t i = 0; i < options.shared_urls_per_category; ++i) {
      u.category_urls_[cat].push_back(next_url++);
    }
  }
  for (size_t i = 0; i < options.global_noise_urls; ++i) {
    u.noise_urls_.push_back(next_url++);
  }

  DomainId next_domain = 0;
  for (uint32_t cat = 0; cat < options.num_categories; ++cat) {
    const std::vector<std::string>* seed_list =
        cat < seeds.size() ? &seeds[cat] : nullptr;
    for (size_t d = 0; d < options.domains_per_category; ++d) {
      TopicDomain dom;
      dom.id = next_domain++;
      dom.category = cat;

      // Head term: a seed if available, otherwise synthetic.
      std::string head;
      if (seed_list != nullptr && d < seed_list->size()) {
        head = (*seed_list)[d];
      } else {
        head = StrFormat("topic%u x%zu", cat, d);
      }
      dom.terms.push_back(head);

      // Sibling terms: head + qualifier. The shortness of microposts means
      // an expert rarely uses two siblings in one tweet — this is exactly
      // the recall gap e# closes. Seeded (head-of-category) domains are the
      // popular topics and get the full sibling complement, like the rich
      // "49ers" community of the paper's Fig. 7; the tail is sparser.
      size_t n_terms;
      if (seed_list != nullptr && d < seed_list->size()) {
        n_terms = options.max_terms_per_domain;
      } else {
        n_terms = static_cast<size_t>(rng.UniformInt(
            static_cast<int64_t>(options.min_terms_per_domain),
            static_cast<int64_t>(options.max_terms_per_domain)));
      }
      const auto& quals = Qualifiers();
      std::vector<size_t> pick(quals.size());
      for (size_t i = 0; i < pick.size(); ++i) pick[i] = i;
      rng.Shuffle(&pick);
      for (size_t i = 0; i + 1 < n_terms && i < pick.size(); ++i) {
        dom.terms.push_back(head + " " + quals[pick[i]]);
      }

      // Every canonical term is owned by exactly one domain. If a seed list
      // collides (it should not), suffix to disambiguate.
      for (std::string& t : dom.terms) {
        t = ToLowerAscii(t);
        while (term_owner.count(t)) t += " alt";
        term_owner.emplace(t, dom.id);
      }

      // Domain-owned URLs.
      size_t n_urls = static_cast<size_t>(rng.UniformInt(
          static_cast<int64_t>(options.min_urls_per_domain),
          static_cast<int64_t>(options.max_urls_per_domain)));
      for (size_t i = 0; i < n_urls; ++i) dom.urls.push_back(next_url++);

      u.domains_.push_back(std::move(dom));
    }
  }

  // Relate each domain to its nearest same-category neighbors (ring order),
  // giving Fig. 7 its "closest communities" structure.
  for (uint32_t cat = 0; cat < options.num_categories; ++cat) {
    std::vector<DomainId> ids = u.DomainsInCategory(cat);
    for (size_t i = 0; i < ids.size(); ++i) {
      TopicDomain& dom = u.domains_[ids[i]];
      for (size_t k = 1; k <= options.related_per_domain && k < ids.size();
           ++k) {
        dom.related.push_back(ids[(i + k) % ids.size()]);
      }
    }
  }

  u.num_urls_ = next_url;
  return u;
}

std::vector<DomainId> TopicUniverse::DomainsInCategory(uint32_t category) const {
  std::vector<DomainId> out;
  for (const TopicDomain& d : domains_) {
    if (d.category == category) out.push_back(d.id);
  }
  return out;
}

Result<DomainId> TopicUniverse::DomainOfTerm(const std::string& term) const {
  std::string needle = ToLowerAscii(term);
  for (const TopicDomain& d : domains_) {
    for (const std::string& t : d.terms) {
      if (t == needle) return d.id;
    }
  }
  return Status::NotFound("term '", term, "' is not a canonical term");
}

}  // namespace esharp::querylog
