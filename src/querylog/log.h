#ifndef ESHARP_QUERYLOG_LOG_H_
#define ESHARP_QUERYLOG_LOG_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/sparse_vector.h"
#include "querylog/universe.h"
#include "sqlengine/table.h"

namespace esharp::querylog {

/// \brief Metadata of one distinct query string in the log.
struct QueryInfo {
  uint32_t id = 0;
  std::string text;
  /// Latent domain the query belongs to (kNoDomain for noise).
  DomainId true_domain = kNoDomain;
  /// True when the string is a derived variant rather than a canonical term.
  bool is_variant = false;
  /// Total searches of this query over the simulated month.
  uint64_t total_count = 0;
};

/// \brief Aggregated click edge: this query led to `clicks` clicks on `url`.
struct ClickRecord {
  uint32_t query_id = 0;
  uint32_t url_id = 0;
  uint64_t clicks = 0;
};

/// \brief One month of aggregated search behavior: distinct queries and
/// their per-URL click counts. This is the only interface the offline
/// pipeline sees — swapping in a real log would be a drop-in change.
class QueryLog {
 public:
  /// Registers a query string; returns its id. Re-registration of the same
  /// text returns the existing id.
  uint32_t AddQuery(const std::string& text, DomainId true_domain,
                    bool is_variant);

  /// Adds clicks for (query, url), accumulating duplicates.
  void AddClicks(uint32_t query_id, uint32_t url_id, uint64_t clicks);

  /// Adds to a query's total search count.
  void AddSearches(uint32_t query_id, uint64_t count);

  size_t num_queries() const { return queries_.size(); }
  size_t num_records() const { return records_.size(); }
  const QueryInfo& query(uint32_t id) const { return queries_[id]; }
  const std::vector<QueryInfo>& queries() const { return queries_; }
  const std::vector<ClickRecord>& records() const { return records_; }

  /// Id of a query string, if present.
  Result<uint32_t> FindQuery(const std::string& text) const;

  /// Returns a copy containing only queries searched at least `min_count`
  /// times — the paper's noise filter ("we remove all the queries which
  /// appear less than 50 times per month", §4.1). Query ids are re-assigned
  /// densely.
  QueryLog FilterByMinCount(uint64_t min_count) const;

  /// Builds one sparse click vector per query (indexed by query id) — the
  /// vector-space representation of §4.1/Fig. 2.
  std::vector<SparseVector> BuildClickVectors() const;

  /// Exports the click records as a relational table
  /// `clicks(query:STRING, url:INT64, clicks:INT64)`.
  sql::Table ToClickTable() const;

  /// Serializes to TSV ("query<TAB>url<TAB>clicks" lines); the byte count of
  /// this representation is what the Table 9 bench reports as stage input.
  std::string SerializeTsv() const;

  /// Parses the TSV form (ground-truth domain metadata is not round-tripped;
  /// parsed logs carry kNoDomain).
  static Result<QueryLog> ParseTsv(const std::string& tsv);

  /// Approximate in-memory size of the aggregated log.
  uint64_t SizeBytes() const;

 private:
  std::vector<QueryInfo> queries_;
  std::vector<ClickRecord> records_;
  std::unordered_map<std::string, uint32_t> query_index_;
  // (query_id, url_id) -> index into records_, for click accumulation.
  std::unordered_map<uint64_t, size_t> record_index_;
};

}  // namespace esharp::querylog

#endif  // ESHARP_QUERYLOG_LOG_H_
