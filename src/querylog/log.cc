#include "querylog/log.h"

#include "common/hash.h"
#include "common/strings.h"

namespace esharp::querylog {

uint32_t QueryLog::AddQuery(const std::string& text, DomainId true_domain,
                            bool is_variant) {
  auto it = query_index_.find(text);
  if (it != query_index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(queries_.size());
  queries_.push_back(QueryInfo{id, text, true_domain, is_variant, 0});
  query_index_.emplace(text, id);
  return id;
}

void QueryLog::AddClicks(uint32_t query_id, uint32_t url_id, uint64_t clicks) {
  if (clicks == 0) return;
  uint64_t key = (static_cast<uint64_t>(query_id) << 32) | url_id;
  auto it = record_index_.find(key);
  if (it != record_index_.end()) {
    records_[it->second].clicks += clicks;
    return;
  }
  record_index_.emplace(key, records_.size());
  records_.push_back(ClickRecord{query_id, url_id, clicks});
}

void QueryLog::AddSearches(uint32_t query_id, uint64_t count) {
  queries_[query_id].total_count += count;
}

Result<uint32_t> QueryLog::FindQuery(const std::string& text) const {
  auto it = query_index_.find(text);
  if (it == query_index_.end()) {
    return Status::NotFound("query '", text, "' not in log");
  }
  return it->second;
}

QueryLog QueryLog::FilterByMinCount(uint64_t min_count) const {
  QueryLog out;
  std::vector<uint32_t> remap(queries_.size(), UINT32_MAX);
  for (const QueryInfo& q : queries_) {
    if (q.total_count < min_count) continue;
    uint32_t nid = out.AddQuery(q.text, q.true_domain, q.is_variant);
    out.AddSearches(nid, q.total_count);
    remap[q.id] = nid;
  }
  for (const ClickRecord& r : records_) {
    if (remap[r.query_id] == UINT32_MAX) continue;
    out.AddClicks(remap[r.query_id], r.url_id, r.clicks);
  }
  return out;
}

std::vector<SparseVector> QueryLog::BuildClickVectors() const {
  std::vector<SparseVector> out(queries_.size());
  for (const ClickRecord& r : records_) {
    out[r.query_id].Add(r.url_id, static_cast<double>(r.clicks));
  }
  return out;
}

sql::Table QueryLog::ToClickTable() const {
  sql::TableBuilder b({{"query", sql::DataType::kString},
                       {"url", sql::DataType::kInt64},
                       {"clicks", sql::DataType::kInt64}});
  for (const ClickRecord& r : records_) {
    b.AddRow({sql::Value::String(queries_[r.query_id].text),
              sql::Value::Int(static_cast<int64_t>(r.url_id)),
              sql::Value::Int(static_cast<int64_t>(r.clicks))});
  }
  return b.Build();
}

std::string QueryLog::SerializeTsv() const {
  std::string out;
  for (const ClickRecord& r : records_) {
    out += queries_[r.query_id].text;
    out += '\t';
    out += std::to_string(r.url_id);
    out += '\t';
    out += std::to_string(r.clicks);
    out += '\n';
  }
  return out;
}

Result<QueryLog> QueryLog::ParseTsv(const std::string& tsv) {
  QueryLog log;
  for (std::string_view line : SplitChar(tsv, '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitChar(line, '\t');
    if (fields.size() != 3) {
      return Status::IOError("malformed TSV line: '", std::string(line), "'");
    }
    uint32_t qid = log.AddQuery(fields[0], kNoDomain, false);
    uint64_t url = 0, clicks = 0;
    try {
      url = std::stoull(fields[1]);
      clicks = std::stoull(fields[2]);
    } catch (const std::exception&) {
      return Status::IOError("non-numeric TSV field in line: '",
                             std::string(line), "'");
    }
    log.AddClicks(qid, static_cast<uint32_t>(url), clicks);
    log.AddSearches(qid, clicks);
  }
  return log;
}

uint64_t QueryLog::SizeBytes() const {
  uint64_t total = 0;
  for (const QueryInfo& q : queries_) total += q.text.size() + 16;
  total += records_.size() * sizeof(ClickRecord);
  return total;
}

}  // namespace esharp::querylog
