#ifndef ESHARP_QUERYLOG_UNIVERSE_H_
#define ESHARP_QUERYLOG_UNIVERSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace esharp::querylog {

/// \brief Identifier of a latent expertise domain.
using DomainId = uint32_t;

/// \brief Sentinel for "no ground-truth domain" (pure noise).
inline constexpr DomainId kNoDomain = static_cast<DomainId>(-1);

/// \brief A latent domain of expertise (e.g. "the 49ers", "diabetes").
///
/// Domains are the hidden ground truth of the simulation: the query-log
/// generator derives queries and click behavior from them, the microblog
/// generator derives expert accounts and tweets from them, and the
/// evaluation harness scores clustering and retrieval against them. The
/// paper's real-world counterpart is unobservable; making it explicit here
/// is what lets us measure recall exactly.
struct TopicDomain {
  DomainId id = 0;
  /// Category index (e.g. sports/electronics/finance/health/wiki/misc).
  uint32_t category = 0;
  /// Canonical query terms of the domain, head term first. Variants
  /// (misspellings, hashtags) are derived downstream and are NOT listed.
  std::vector<std::string> terms;
  /// URL ids owned by this domain (clicks concentrate here).
  std::vector<uint32_t> urls;
  /// Ids of semantically nearby domains (share category URLs; used to
  /// validate Fig. 7's "closest communities" behavior).
  std::vector<DomainId> related;
};

/// \brief Options for universe generation.
struct UniverseOptions {
  /// Number of query categories; the first five mimic the paper's Sports,
  /// Electronics, Finance, Health and Wikipedia sets, the rest are misc.
  size_t num_categories = 6;
  /// Domains per category.
  size_t domains_per_category = 60;
  /// Min/max canonical terms per domain (before variants). The paper's
  /// Fig. 6 finds most communities hold 2-10 queries; canonical terms plus
  /// variants land in that range.
  size_t min_terms_per_domain = 1;
  size_t max_terms_per_domain = 4;
  /// URLs owned by each domain.
  size_t min_urls_per_domain = 3;
  size_t max_urls_per_domain = 8;
  /// Category-level shared URLs (e.g. espn.com for sports).
  size_t shared_urls_per_category = 12;
  /// Global noise URLs clicked by everything (portals, social networks).
  size_t global_noise_urls = 150;
  /// Neighbors each domain is related to within its category.
  size_t related_per_domain = 3;
  uint64_t seed = 42;
};

/// \brief Human-readable names of the default categories (aligned with the
/// paper's Table 1 sets).
std::vector<std::string> DefaultCategoryNames(size_t num_categories);

/// \brief The complete latent world shared by the query-log and microblog
/// simulators.
class TopicUniverse {
 public:
  /// Generates a universe. Deterministic in `options.seed`.
  static Result<TopicUniverse> Generate(const UniverseOptions& options);

  const std::vector<TopicDomain>& domains() const { return domains_; }
  const TopicDomain& domain(DomainId id) const { return domains_[id]; }
  size_t num_domains() const { return domains_.size(); }
  size_t num_categories() const { return num_categories_; }
  /// Total number of distinct URL ids (domain-owned + shared + noise).
  uint32_t num_urls() const { return num_urls_; }
  /// Shared URLs of a category.
  const std::vector<uint32_t>& category_urls(uint32_t category) const {
    return category_urls_[category];
  }
  /// Global noise URLs.
  const std::vector<uint32_t>& noise_urls() const { return noise_urls_; }
  /// Category of a domain.
  uint32_t CategoryOf(DomainId id) const { return domains_[id].category; }
  /// Domains of one category.
  std::vector<DomainId> DomainsInCategory(uint32_t category) const;
  /// Ground-truth domain of a canonical term, or error if unknown.
  Result<DomainId> DomainOfTerm(const std::string& term) const;

  const UniverseOptions& options() const { return options_; }

 private:
  UniverseOptions options_;
  std::vector<TopicDomain> domains_;
  std::vector<std::vector<uint32_t>> category_urls_;
  std::vector<uint32_t> noise_urls_;
  size_t num_categories_ = 0;
  uint32_t num_urls_ = 0;
};

}  // namespace esharp::querylog

#endif  // ESHARP_QUERYLOG_UNIVERSE_H_
