#ifndef ESHARP_QUERYLOG_GENERATOR_H_
#define ESHARP_QUERYLOG_GENERATOR_H_

#include "common/result.h"
#include "querylog/log.h"
#include "querylog/universe.h"
#include "querylog/variants.h"

namespace esharp::querylog {

/// \brief Options shaping the synthetic month of search behavior.
struct GeneratorOptions {
  /// Searches of the most popular domain's head term for the month.
  uint64_t head_impressions = 50000;
  /// Zipf exponent of domain popularity within a category.
  double domain_zipf_exponent = 1.05;
  /// Popularity decay per sibling-term rank within a domain.
  double sibling_decay = 0.55;
  /// Variant popularity as a fraction of its canonical term, drawn
  /// uniformly from [min, max].
  double variant_share_min = 0.03;
  double variant_share_max = 0.30;
  /// Click mass routed to the query's own domain URLs.
  double domain_click_share = 0.69;
  /// Click mass routed to URLs of semantically related domains (the "SF
  /// Gate covers both the 49ers and San Francisco tourism" effect) — this
  /// is what places related communities near each other in the similarity
  /// graph (Fig. 7's closest-communities structure).
  double related_click_share = 0.07;
  /// Click mass routed to category-shared URLs.
  double category_click_share = 0.08;
  /// Remaining mass goes to global noise URLs.
  /// Fraction of canonical terms that are ambiguous (half their clicks go
  /// to a second, unrelated domain — e.g. "football" across continents).
  double ambiguity_rate = 0.02;
  /// Noise-only junk queries (spam, navigational one-offs) added to the log
  /// with clicks only on noise URLs; most fall below the min-count filter.
  size_t noise_queries = 400;
  /// Overall clicks-per-search ratio.
  double click_through_rate = 0.6;
  /// Variant derivation knobs.
  VariantOptions variants;
  uint64_t seed = 7;
};

/// \brief Ground truth retained alongside the generated log (which queries
/// are variants of what, and which domain owns each query).
struct GeneratedLog {
  QueryLog log;
  /// Canonical head term per domain, convenient for benches.
  std::vector<std::string> domain_head_terms;
};

/// \brief Simulates one month of search-engine behavior over a universe.
///
/// The output reproduces the statistical features the pipeline depends on:
/// Zipfian query popularity, click vectors concentrated on domain URLs (so
/// same-domain queries have high cosine similarity), surface variants with
/// correlated clicks, category-level co-clicks (so related domains end up
/// near each other in the similarity graph, Fig. 7), ambiguity and noise.
Result<GeneratedLog> GenerateQueryLog(const TopicUniverse& universe,
                                      const GeneratorOptions& options);

}  // namespace esharp::querylog

#endif  // ESHARP_QUERYLOG_GENERATOR_H_
