#include "querylog/variants.h"

#include <unordered_set>

#include "common/strings.h"

namespace esharp::querylog {

std::string ApplyVariant(const std::string& term, VariantKind kind, Rng* rng) {
  switch (kind) {
    case VariantKind::kCanonical:
      return term;
    case VariantKind::kHashtag: {
      std::string out = "#";
      for (char c : term) {
        if (c != ' ') out += c;
      }
      return out;
    }
    case VariantKind::kNoSpace: {
      std::string out;
      for (char c : term) {
        if (c != ' ') out += c;
      }
      return out;
    }
    case VariantKind::kAbbreviation: {
      std::vector<std::string> words = SplitWhitespace(term);
      if (words.size() < 2) return term;  // no useful abbreviation
      std::string out;
      for (const std::string& w : words) out += w[0];
      return out;
    }
    case VariantKind::kTypoSwap: {
      if (term.size() < 3) return term;
      std::string out = term;
      size_t i = rng->Uniform(out.size() - 1);
      if (out[i] == ' ' || out[i + 1] == ' ') return term;
      std::swap(out[i], out[i + 1]);
      return out;
    }
    case VariantKind::kTypoDrop: {
      if (term.size() < 4) return term;
      std::string out = term;
      size_t i = rng->Uniform(out.size());
      if (out[i] == ' ') return term;
      out.erase(i, 1);
      return out;
    }
    case VariantKind::kTypoDouble: {
      if (term.size() < 3) return term;
      std::string out = term;
      size_t i = rng->Uniform(out.size());
      if (out[i] == ' ') return term;
      out.insert(i, 1, out[i]);
      return out;
    }
  }
  return term;
}

std::vector<Variant> DeriveVariants(const std::string& term,
                                    const VariantOptions& options, Rng* rng) {
  std::vector<Variant> out;
  out.push_back(Variant{term, VariantKind::kCanonical});
  std::unordered_set<std::string> seen = {term};

  static const VariantKind kDerivable[] = {
      VariantKind::kHashtag,  VariantKind::kNoSpace,
      VariantKind::kAbbreviation, VariantKind::kTypoSwap,
      VariantKind::kTypoDrop, VariantKind::kTypoDouble,
  };

  size_t target = static_cast<size_t>(
      rng->Poisson(options.mean_variants_per_term));
  target = std::min(target, options.max_variants_per_term);

  // Try a bounded number of draws; some kinds are no-ops for short or
  // single-word terms and are skipped via the dedup set.
  size_t attempts = 0;
  while (out.size() - 1 < target && attempts < 4 * (target + 1)) {
    ++attempts;
    VariantKind kind = kDerivable[rng->Uniform(std::size(kDerivable))];
    std::string text = ApplyVariant(term, kind, rng);
    if (seen.insert(text).second) {
      out.push_back(Variant{std::move(text), kind});
    }
  }
  return out;
}

}  // namespace esharp::querylog
