#include "querylog/generator.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace esharp::querylog {

namespace {

// Distributes `total` clicks over `urls` with a geometric-ish profile
// (first URLs of a domain absorb most clicks, like a navigational homepage).
void SpreadClicks(QueryLog* log, uint32_t query_id,
                  const std::vector<uint32_t>& urls, uint64_t total,
                  double concentration, Rng* rng) {
  if (urls.empty() || total == 0) return;
  double remaining = static_cast<double>(total);
  for (size_t i = 0; i + 1 < urls.size() && remaining >= 1.0; ++i) {
    double share = concentration * (0.8 + 0.4 * rng->NextDouble());
    share = std::min(share, 1.0);
    uint64_t clicks = static_cast<uint64_t>(remaining * share);
    if (clicks > 0) log->AddClicks(query_id, urls[i], clicks);
    remaining -= static_cast<double>(clicks);
  }
  uint64_t last = static_cast<uint64_t>(remaining);
  if (last > 0) log->AddClicks(query_id, urls.back(), last);
}

// Picks up to k distinct random elements of `pool`.
std::vector<uint32_t> PickSome(const std::vector<uint32_t>& pool, size_t k,
                               Rng* rng) {
  std::vector<uint32_t> out;
  if (pool.empty()) return out;
  k = std::min(k, pool.size());
  std::vector<size_t> idx(pool.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng->Shuffle(&idx);
  for (size_t i = 0; i < k; ++i) out.push_back(pool[idx[i]]);
  return out;
}

}  // namespace

Result<GeneratedLog> GenerateQueryLog(const TopicUniverse& universe,
                                      const GeneratorOptions& options) {
  if (options.domain_click_share + options.related_click_share +
          options.category_click_share > 1.0) {
    return Status::InvalidArgument("click shares exceed 1.0");
  }
  if (options.head_impressions == 0) {
    return Status::InvalidArgument("head_impressions must be > 0");
  }

  GeneratedLog out;
  Rng rng(options.seed);
  QueryLog& log = out.log;

  // Per-category domain popularity: Zipf over the domain's rank inside its
  // category, so every category has head and tail domains.
  const size_t dpc = universe.options().domains_per_category;
  ZipfSampler domain_zipf(std::max<size_t>(dpc, 1),
                          options.domain_zipf_exponent);
  const double zipf_head = domain_zipf.Pmf(0);

  out.domain_head_terms.resize(universe.num_domains());

  for (const TopicDomain& dom : universe.domains()) {
    out.domain_head_terms[dom.id] = dom.terms.empty() ? "" : dom.terms[0];
    // Rank of this domain within its category (generation order is rank).
    size_t rank_in_cat = dom.id % dpc;
    double dom_weight = domain_zipf.Pmf(rank_in_cat) / zipf_head;
    double dom_impressions =
        static_cast<double>(options.head_impressions) * dom_weight;

    bool ambiguous_domain = rng.Bernoulli(options.ambiguity_rate);
    const TopicDomain* alias_dom = nullptr;
    if (ambiguous_domain && universe.num_domains() > 1) {
      DomainId other;
      do {
        other = static_cast<DomainId>(rng.Uniform(universe.num_domains()));
      } while (other == dom.id);
      alias_dom = &universe.domain(other);
    }

    double sibling_weight = 1.0;
    for (size_t t = 0; t < dom.terms.size(); ++t) {
      const std::string& term = dom.terms[t];
      double term_impressions = dom_impressions * sibling_weight;
      sibling_weight *= options.sibling_decay;

      // Popular topics accumulate more surface variants in a real log
      // ("dozens, sometimes hundreds of variants", §4.1): scale the variant
      // budget with domain popularity.
      VariantOptions variant_options = options.variants;
      variant_options.mean_variants_per_term *= (0.5 + 1.5 * dom_weight);
      std::vector<Variant> variants =
          DeriveVariants(term, variant_options, &rng);

      for (size_t v = 0; v < variants.size(); ++v) {
        double share =
            v == 0 ? 1.0
                   : options.variant_share_min +
                         (options.variant_share_max -
                          options.variant_share_min) *
                             rng.NextDouble();
        uint64_t searches =
            static_cast<uint64_t>(term_impressions * share + 0.5);
        if (searches == 0) continue;

        uint32_t qid = log.AddQuery(variants[v].text, dom.id, v != 0);
        log.AddSearches(qid, searches);

        uint64_t clicks = static_cast<uint64_t>(
            static_cast<double>(searches) * options.click_through_rate);
        if (clicks == 0) continue;

        // Ambiguous canonical terms split their click mass between two
        // unrelated domains (only the canonical surface form is ambiguous;
        // hashtag/typo variants stay specific).
        uint64_t alias_clicks = 0;
        if (v == 0 && alias_dom != nullptr) {
          alias_clicks = clicks / 2;
          clicks -= alias_clicks;
        }

        uint64_t dom_clicks = static_cast<uint64_t>(
            static_cast<double>(clicks) * options.domain_click_share);
        // Popular topics co-click with their neighbors far more (49ers <->
        // Kaepernick <-> SF tourism in the paper's Fig. 7); tail topics
        // barely leak. Scaling by popularity keeps head communities
        // richly connected without gluing the tail together.
        double rel_share = options.related_click_share * (0.6 + dom_weight);
        uint64_t rel_clicks = static_cast<uint64_t>(
            static_cast<double>(clicks) * rel_share);
        uint64_t cat_clicks = static_cast<uint64_t>(
            static_cast<double>(clicks) * options.category_click_share);
        uint64_t noise_clicks = clicks - dom_clicks - rel_clicks - cat_clicks;

        SpreadClicks(&log, qid, dom.urls, dom_clicks, 0.45, &rng);
        if (!dom.related.empty() && rel_clicks > 0) {
          // Clicks leak onto the URLs of nearby topics; the first related
          // domain absorbs most of it so Fig. 7's "closest community" is a
          // stable, meaningful neighbor.
          const TopicDomain& rel =
              universe.domain(dom.related[rng.Uniform(
                  std::min<size_t>(dom.related.size(), 2))]);
          SpreadClicks(&log, qid, PickSome(rel.urls, 3, &rng), rel_clicks,
                       0.5, &rng);
        }
        SpreadClicks(&log, qid,
                     PickSome(universe.category_urls(dom.category), 3, &rng),
                     cat_clicks, 0.5, &rng);
        SpreadClicks(&log, qid, PickSome(universe.noise_urls(), 2, &rng),
                     noise_clicks, 0.6, &rng);
        if (alias_clicks > 0) {
          SpreadClicks(&log, qid, alias_dom->urls, alias_clicks, 0.45, &rng);
        }
      }
    }
  }

  // Junk queries: tiny counts, each clicking mostly its own navigational
  // URL plus a little shared-noise mass. Most fall below the min-count
  // filter; the survivors become the orphan communities of Fig. 6 (the
  // paper reports ~20% orphans) because their click vectors resemble
  // nothing else.
  uint32_t next_junk_url = universe.num_urls();
  for (size_t i = 0; i < options.noise_queries; ++i) {
    std::string text = StrFormat("junkquery%zu z%llu", i,
                                 static_cast<unsigned long long>(
                                     rng.Uniform(1000000)));
    uint32_t qid = log.AddQuery(text, kNoDomain, false);
    // Long-tailed counts: most below 50, a meaningful tail above.
    uint64_t searches = 1 + static_cast<uint64_t>(rng.LogNormal(2.45, 1.4));
    log.AddSearches(qid, searches);
    uint64_t clicks = static_cast<uint64_t>(
        static_cast<double>(searches) * options.click_through_rate);
    uint64_t own = static_cast<uint64_t>(static_cast<double>(clicks) * 0.8);
    log.AddClicks(qid, next_junk_url++, own);
    SpreadClicks(&log, qid, PickSome(universe.noise_urls(), 2, &rng),
                 clicks - own, 0.7, &rng);
  }

  return out;
}

}  // namespace esharp::querylog
