#ifndef ESHARP_QNA_CORPUS_H_
#define ESHARP_QNA_CORPUS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "querylog/universe.h"

namespace esharp::qna {

/// \brief Account identifier on the Q&A platform.
using UserId = uint32_t;

/// \brief Account archetypes (mirrors the microblog simulator).
enum class AccountKind { kExpert, kCasual };

/// \brief A Q&A platform profile.
struct UserProfile {
  UserId id = 0;
  std::string display_name;
  std::string bio;
  AccountKind kind = AccountKind::kCasual;
  querylog::DomainId domain = querylog::kNoDomain;
};

/// \brief A question; the title carries the topical terms.
struct Question {
  uint32_t id = 0;
  UserId asker = 0;
  std::string title;  // lower-cased
};

/// \brief An answer to a question.
struct Answer {
  uint32_t id = 0;
  uint32_t question = 0;
  UserId author = 0;
  uint32_t upvotes = 0;
  bool accepted = false;
};

/// \brief An indexed Quora-style corpus — the "other social network" of the
/// paper's future-work section (§8: "expanding into other social networks
/// such as Quora and Facebook").
///
/// Structurally a Q&A site differs from a microblog: content is anchored to
/// questions, authority flows through answers, upvotes and accepted marks
/// rather than retweets and mentions. What stays identical is the shape the
/// e# online stage needs — "find candidates for a term, count their
/// topical vs total activity" — which is why the expansion layer transfers
/// unchanged (see qna::QnaExpertDetector).
class QnaCorpus {
 public:
  void AddUser(UserProfile user);
  uint32_t AddQuestion(UserId asker, std::string title);
  uint32_t AddAnswer(uint32_t question, UserId author, uint32_t upvotes,
                     bool accepted);

  size_t num_users() const { return users_.size(); }
  size_t num_questions() const { return questions_.size(); }
  size_t num_answers() const { return answers_.size(); }
  const UserProfile& user(UserId id) const { return users_[id]; }
  const Question& question(uint32_t id) const { return questions_[id]; }
  const Answer& answer(uint32_t id) const { return answers_[id]; }

  /// Question ids whose title contains every token (lower-cased whole-word
  /// match — the same predicate the microblog uses, §3).
  std::vector<uint32_t> MatchQuestions(
      const std::vector<std::string>& tokens) const;

  /// Answer ids attached to a question.
  const std::vector<uint32_t>& AnswersOf(uint32_t question) const;

  /// Per-user totals (feature denominators).
  uint64_t AnswersByUser(UserId id) const { return answers_by_user_[id]; }
  uint64_t UpvotesOfUser(UserId id) const { return upvotes_of_user_[id]; }
  uint64_t AcceptsOfUser(UserId id) const { return accepts_of_user_[id]; }

 private:
  std::vector<UserProfile> users_;
  std::vector<Question> questions_;
  std::vector<Answer> answers_;
  std::unordered_map<std::string, std::vector<uint32_t>> token_index_;
  std::vector<std::vector<uint32_t>> answers_of_question_;
  std::vector<uint64_t> answers_by_user_;
  std::vector<uint64_t> upvotes_of_user_;
  std::vector<uint64_t> accepts_of_user_;
};

/// \brief Options of the Q&A population generator.
struct QnaOptions {
  double mean_experts_per_domain = 3.0;
  size_t casual_users = 600;
  double questions_per_casual_mean = 4.0;
  /// Probability a domain expert answers a question of their domain.
  double expert_answer_rate = 0.5;
  uint64_t seed = 404;
};

/// \brief Generates a Q&A corpus over the shared topic universe: casual
/// users ask questions phrased with domain terms; experts of the domain
/// answer and collect upvotes/accepted marks.
Result<QnaCorpus> GenerateQnaCorpus(const querylog::TopicUniverse& universe,
                                    const QnaOptions& options);

}  // namespace esharp::qna

#endif  // ESHARP_QNA_CORPUS_H_
