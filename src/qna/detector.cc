#include "qna/detector.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/stats.h"
#include "common/strings.h"

namespace esharp::qna {

std::vector<AnswererEvidence> QnaExpertDetector::CollectCandidates(
    const std::string& query) const {
  std::vector<std::string> tokens = SplitWhitespace(ToLowerAscii(query));
  std::vector<uint32_t> questions = corpus_->MatchQuestions(tokens);

  std::unordered_map<UserId, AnswererEvidence> by_user;
  for (uint32_t qid : questions) {
    for (uint32_t aid : corpus_->AnswersOf(qid)) {
      const Answer& a = corpus_->answer(aid);
      AnswererEvidence& ev = by_user[a.author];
      ev.user = a.author;
      ev.answers_on_topic += 1;
      ev.upvotes_on_topic += a.upvotes;
      if (a.accepted) ev.accepts_on_topic += 1;
    }
  }
  std::vector<AnswererEvidence> out;
  out.reserve(by_user.size());
  for (const auto& [uid, ev] : by_user) out.push_back(ev);
  std::sort(out.begin(), out.end(),
            [](const AnswererEvidence& a, const AnswererEvidence& b) {
              return a.user < b.user;
            });
  return out;
}

Result<std::vector<RankedAnswerer>> QnaExpertDetector::RankCandidates(
    const std::vector<AnswererEvidence>& candidates) const {
  if (candidates.empty()) return std::vector<RankedAnswerer>{};
  const double eps = options_.smoothing;
  if (eps <= 0) {
    return Status::InvalidArgument("smoothing must be positive");
  }

  struct Raw {
    double log_as, log_vi, log_ai;
  };
  std::vector<Raw> feats(candidates.size());
  OnlineStats as_stats, vi_stats, ai_stats;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const AnswererEvidence& c = candidates[i];
    double total_answers = static_cast<double>(corpus_->AnswersByUser(c.user));
    double total_upvotes = static_cast<double>(corpus_->UpvotesOfUser(c.user));
    double total_accepts = static_cast<double>(corpus_->AcceptsOfUser(c.user));
    feats[i].log_as = std::log(
        (static_cast<double>(c.answers_on_topic) + eps) / (total_answers + eps));
    feats[i].log_vi = std::log(
        (static_cast<double>(c.upvotes_on_topic) + eps) / (total_upvotes + eps));
    feats[i].log_ai = std::log(
        (static_cast<double>(c.accepts_on_topic) + eps) / (total_accepts + eps));
    as_stats.Add(feats[i].log_as);
    vi_stats.Add(feats[i].log_vi);
    ai_stats.Add(feats[i].log_ai);
  }

  std::vector<RankedAnswerer> ranked;
  ranked.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    RankedAnswerer r;
    r.user = candidates[i].user;
    r.z_answer_share = as_stats.ZScore(feats[i].log_as);
    r.z_vote_impact = vi_stats.ZScore(feats[i].log_vi);
    r.z_accept_impact = ai_stats.ZScore(feats[i].log_ai);
    r.score = options_.weight_answer_share * r.z_answer_share +
              options_.weight_vote_impact * r.z_vote_impact +
              options_.weight_accept_impact * r.z_accept_impact;
    ranked.push_back(r);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedAnswerer& a, const RankedAnswerer& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.user < b.user;
            });
  std::vector<RankedAnswerer> out;
  for (const RankedAnswerer& r : ranked) {
    if (r.score < options_.min_z_score) continue;
    out.push_back(r);
    if (out.size() >= options_.max_experts) break;
  }
  return out;
}

Result<std::vector<RankedAnswerer>> QnaExpertDetector::FindExperts(
    const std::string& query) const {
  return RankCandidates(CollectCandidates(query));
}

Result<std::vector<RankedAnswerer>> QnaExpertDetector::FindExpertsExpanded(
    const community::CommunityStore& store, const std::string& query,
    size_t max_expansion_terms) const {
  std::vector<std::string> terms = {ToLowerAscii(query)};
  Result<const community::Community*> found = store.Find(query);
  if (found.ok()) {
    for (const std::string& term : (*found)->terms) {
      if (terms.size() >= max_expansion_terms) break;
      if (ToLowerAscii(term) == terms[0]) continue;
      terms.push_back(ToLowerAscii(term));
    }
  }
  std::vector<std::vector<AnswererEvidence>> pools;
  pools.reserve(terms.size());
  for (const std::string& term : terms) {
    pools.push_back(CollectCandidates(term));
  }
  return RankCandidates(MergeQnaEvidence(pools));
}

std::vector<AnswererEvidence> MergeQnaEvidence(
    const std::vector<std::vector<AnswererEvidence>>& lists) {
  std::unordered_map<UserId, AnswererEvidence> by_user;
  for (const auto& list : lists) {
    for (const AnswererEvidence& c : list) {
      AnswererEvidence& acc = by_user[c.user];
      acc.user = c.user;
      acc.answers_on_topic += c.answers_on_topic;
      acc.upvotes_on_topic += c.upvotes_on_topic;
      acc.accepts_on_topic += c.accepts_on_topic;
    }
  }
  std::vector<AnswererEvidence> out;
  out.reserve(by_user.size());
  for (const auto& [uid, ev] : by_user) out.push_back(ev);
  std::sort(out.begin(), out.end(),
            [](const AnswererEvidence& a, const AnswererEvidence& b) {
              return a.user < b.user;
            });
  return out;
}

}  // namespace esharp::qna
