#ifndef ESHARP_QNA_DETECTOR_H_
#define ESHARP_QNA_DETECTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "community/store.h"
#include "qna/corpus.h"

namespace esharp::qna {

/// \brief A ranked Q&A expert.
struct RankedAnswerer {
  UserId user = 0;
  double score = 0;
  double z_answer_share = 0;   // AS: on-topic answers / total answers
  double z_vote_impact = 0;    // VI: on-topic upvotes / total upvotes
  double z_accept_impact = 0;  // AI: on-topic accepted / total accepted
};

/// \brief Options of the Q&A detector (weights mirror §3's guidance:
/// topical concentration dominates, influence seconds it).
struct QnaDetectorOptions {
  double weight_answer_share = 0.4;
  double weight_vote_impact = 0.4;
  double weight_accept_impact = 0.2;
  double min_z_score = 0.0;
  size_t max_experts = 15;
  double smoothing = 0.01;
};

/// \brief Per-candidate raw evidence for one topic.
struct AnswererEvidence {
  UserId user = 0;
  uint64_t answers_on_topic = 0;
  uint64_t upvotes_on_topic = 0;
  uint64_t accepts_on_topic = 0;
};

/// \brief Pal & Counts' recipe transplanted to a Q&A network: candidates
/// are the answerers of questions matching the query; features are the
/// on-topic shares of their answers, upvotes and accepted marks,
/// log-transformed, z-scored over the pool and combined by weighted sum.
///
/// Because the class exposes the same collect/merge/rank decomposition as
/// the microblog detector, e#'s expansion layer applies verbatim — the
/// paper's claim that "our system can work with any Expertise Retrieval
/// system" (§7.1), exercised on a second substrate.
class QnaExpertDetector {
 public:
  explicit QnaExpertDetector(const QnaCorpus* corpus,
                             QnaDetectorOptions options = {})
      : corpus_(corpus), options_(options) {}

  std::vector<AnswererEvidence> CollectCandidates(
      const std::string& query) const;

  Result<std::vector<RankedAnswerer>> RankCandidates(
      const std::vector<AnswererEvidence>& candidates) const;

  Result<std::vector<RankedAnswerer>> FindExperts(
      const std::string& query) const;

  /// e#'s online stage on the Q&A substrate: expand the query against the
  /// community store, union the per-term candidate pools, rank once.
  Result<std::vector<RankedAnswerer>> FindExpertsExpanded(
      const community::CommunityStore& store, const std::string& query,
      size_t max_expansion_terms = 30) const;

  const QnaDetectorOptions& options() const { return options_; }

 private:
  const QnaCorpus* corpus_;
  QnaDetectorOptions options_;
};

/// \brief Union of evidence pools by user (the §5 merge).
std::vector<AnswererEvidence> MergeQnaEvidence(
    const std::vector<std::vector<AnswererEvidence>>& lists);

}  // namespace esharp::qna

#endif  // ESHARP_QNA_DETECTOR_H_
