#include "qna/corpus.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "common/rng.h"
#include "common/strings.h"

namespace esharp::qna {

void QnaCorpus::AddUser(UserProfile user) {
  assert(user.id == users_.size());
  users_.push_back(std::move(user));
  answers_by_user_.push_back(0);
  upvotes_of_user_.push_back(0);
  accepts_of_user_.push_back(0);
}

uint32_t QnaCorpus::AddQuestion(UserId asker, std::string title) {
  assert(asker < users_.size());
  uint32_t id = static_cast<uint32_t>(questions_.size());
  Question q;
  q.id = id;
  q.asker = asker;
  q.title = ToLowerAscii(title);
  std::vector<std::string> tokens = SplitWhitespace(q.title);
  std::unordered_set<std::string> unique(tokens.begin(), tokens.end());
  for (const std::string& tok : unique) token_index_[tok].push_back(id);
  questions_.push_back(std::move(q));
  answers_of_question_.emplace_back();
  return id;
}

uint32_t QnaCorpus::AddAnswer(uint32_t question, UserId author,
                              uint32_t upvotes, bool accepted) {
  assert(question < questions_.size());
  assert(author < users_.size());
  uint32_t id = static_cast<uint32_t>(answers_.size());
  answers_.push_back(Answer{id, question, author, upvotes, accepted});
  answers_of_question_[question].push_back(id);
  ++answers_by_user_[author];
  upvotes_of_user_[author] += upvotes;
  if (accepted) ++accepts_of_user_[author];
  return id;
}

std::vector<uint32_t> QnaCorpus::MatchQuestions(
    const std::vector<std::string>& tokens) const {
  if (tokens.empty()) return {};
  std::vector<const std::vector<uint32_t>*> postings;
  for (const std::string& tok : tokens) {
    auto it = token_index_.find(ToLowerAscii(tok));
    if (it == token_index_.end()) return {};
    postings.push_back(&it->second);
  }
  std::sort(postings.begin(), postings.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<uint32_t> result = *postings[0];
  for (size_t i = 1; i < postings.size() && !result.empty(); ++i) {
    std::vector<uint32_t> next;
    std::set_intersection(result.begin(), result.end(), postings[i]->begin(),
                          postings[i]->end(), std::back_inserter(next));
    result = std::move(next);
  }
  return result;
}

const std::vector<uint32_t>& QnaCorpus::AnswersOf(uint32_t question) const {
  return answers_of_question_[question];
}

Result<QnaCorpus> GenerateQnaCorpus(const querylog::TopicUniverse& universe,
                                    const QnaOptions& options) {
  if (options.mean_experts_per_domain <= 0) {
    return Status::InvalidArgument("mean_experts_per_domain must be > 0");
  }
  Rng rng(options.seed);
  QnaCorpus corpus;

  // Experts per domain, with the same popularity skew as the microblog.
  const size_t dpc = universe.options().domains_per_category;
  ZipfSampler domain_zipf(std::max<size_t>(dpc, 1), 1.05);
  std::vector<std::vector<UserId>> experts_by_domain(universe.num_domains());
  std::vector<double> reputation;

  UserId next_user = 0;
  for (const querylog::TopicDomain& dom : universe.domains()) {
    double weight = domain_zipf.Pmf(dom.id % dpc) / domain_zipf.Pmf(0);
    uint64_t n = rng.Poisson(options.mean_experts_per_domain *
                             (0.15 + 1.5 * weight));
    for (uint64_t e = 0; e < n; ++e) {
      UserProfile u;
      u.id = next_user++;
      u.kind = AccountKind::kExpert;
      u.domain = dom.id;
      u.display_name =
          StrFormat("%s_answers_%llu", dom.terms[0].c_str(),
                    static_cast<unsigned long long>(e));
      u.bio = "Answering everything about " + dom.terms[0] + ".";
      corpus.AddUser(u);
      experts_by_domain[dom.id].push_back(u.id);
      reputation.push_back(rng.LogNormal(0.0, 1.0));
    }
  }
  const UserId first_casual = next_user;
  for (size_t i = 0; i < options.casual_users; ++i) {
    UserProfile u;
    u.id = next_user++;
    u.kind = AccountKind::kCasual;
    u.display_name = StrFormat("curious_%zu", i);
    u.bio = "Just asking questions.";
    corpus.AddUser(u);
    reputation.push_back(0.1);
  }

  // Casual users ask; domain experts answer.
  static const std::vector<std::string> kQuestionTemplates = {
      "what should i know about %s",
      "how do i get started with %s",
      "is %s worth following this year",
      "best resources to learn about %s",
      "why is %s trending",
  };
  for (UserId asker = first_casual; asker < corpus.num_users(); ++asker) {
    uint64_t n_questions =
        1 + rng.Poisson(options.questions_per_casual_mean - 1);
    for (uint64_t k = 0; k < n_questions; ++k) {
      const querylog::TopicDomain& dom = universe.domain(
          static_cast<querylog::DomainId>(
              (rng.Uniform(universe.num_categories()) * dpc) +
              domain_zipf.Sample(&rng)));
      const std::string& term =
          rng.Bernoulli(0.7) ? dom.terms[0]
                             : dom.terms[rng.Uniform(dom.terms.size())];
      std::string title = StrFormat(
          kQuestionTemplates[rng.Uniform(kQuestionTemplates.size())].c_str(),
          term.c_str());
      uint32_t qid = corpus.AddQuestion(asker, title);

      // Experts of the domain answer with some probability; the best
      // answer (highest reputation) tends to be accepted.
      UserId best_author = 0;
      uint32_t best_upvotes = 0;
      bool any = false;
      for (UserId expert : experts_by_domain[dom.id]) {
        if (!rng.Bernoulli(options.expert_answer_rate)) continue;
        uint32_t upvotes = static_cast<uint32_t>(
            reputation[expert] * rng.LogNormal(1.0, 0.8));
        corpus.AddAnswer(qid, expert, upvotes, false);
        if (!any || upvotes > best_upvotes) {
          best_upvotes = upvotes;
          best_author = expert;
          any = true;
        }
      }
      // Accepted mark goes to the strongest answer (modeled as one extra
      // accepted answer by the same author).
      if (any && rng.Bernoulli(0.6)) {
        corpus.AddAnswer(qid, best_author, 1 + best_upvotes / 4, true);
      }
      // Occasionally a casual user chimes in with a weak answer.
      if (rng.Bernoulli(0.3)) {
        UserId other =
            first_casual + static_cast<UserId>(rng.Uniform(
                               options.casual_users));
        corpus.AddAnswer(qid, other, rng.Bernoulli(0.3) ? 1 : 0, false);
      }
    }
  }
  return corpus;
}

}  // namespace esharp::qna
