#ifndef ESHARP_SQLENGINE_TABLE_H_
#define ESHARP_SQLENGINE_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sqlengine/schema.h"
#include "sqlengine/value.h"

namespace esharp::sql {

/// \brief One tuple; values are positionally aligned with a Schema.
using Row = std::vector<Value>;

/// \brief In-memory row-store relation: a Schema plus a vector of Rows.
///
/// The engine is batch-oriented (table-at-a-time operators), matching the
/// map-reduce relational execution model the paper targets: each operator
/// materializes its output, and the parallel executor splits tables into
/// hash partitions.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return schema_.num_columns(); }

  const Row& row(size_t i) const { return rows_[i]; }
  Row& mutable_row(size_t i) { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }

  /// Appends a row after checking arity (type checking is left to operators;
  /// generators construct well-typed rows by design).
  Status AppendRow(Row row);

  /// Appends without arity checking (hot path for operator outputs).
  void AppendRowUnchecked(Row row) { rows_.push_back(std::move(row)); }

  /// Reserves capacity.
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Value at (row, column-name); error if the column is missing.
  Result<Value> GetValue(size_t row_index, const std::string& column) const;

  /// Approximate in-memory footprint in bytes (sum of value sizes).
  uint64_t SizeBytes() const;

  /// Renders at most `max_rows` rows as an aligned text table (debugging,
  /// example programs).
  std::string ToString(size_t max_rows = 20) const;

  /// Sorts rows lexicographically by all columns — canonical form used by
  /// tests to compare results regardless of operator output order.
  void SortLexicographic();

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

/// \brief Convenience builder used by tests and generators.
///
///   TableBuilder b({{"query", DataType::kString}, {"count", DataType::kInt64}});
///   b.AddRow({Value::String("49ers"), Value::Int(12)});
class TableBuilder {
 public:
  explicit TableBuilder(std::vector<Column> columns)
      : table_(Schema(std::move(columns))) {}

  /// Adds a row; aborts on arity mismatch (builder misuse is a programming
  /// error, not a runtime condition).
  TableBuilder& AddRow(Row row);

  /// Finalizes the table.
  Table Build() { return std::move(table_); }

 private:
  Table table_;
};

}  // namespace esharp::sql

#endif  // ESHARP_SQLENGINE_TABLE_H_
