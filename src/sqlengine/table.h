#ifndef ESHARP_SQLENGINE_TABLE_H_
#define ESHARP_SQLENGINE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sqlengine/column.h"
#include "sqlengine/schema.h"
#include "sqlengine/value.h"

namespace esharp::sql {

/// \brief One tuple; values are positionally aligned with a Schema.
using Row = std::vector<Value>;

/// \brief In-memory relation: a Schema plus rows, with an optional columnar
/// payload.
///
/// The engine is batch-oriented (table-at-a-time operators), matching the
/// map-reduce relational execution model the paper targets: each operator
/// materializes its output, and the parallel executor splits tables into
/// hash partitions.
///
/// A Table can carry its data in either or both of two representations:
/// the row store (`rows_`) and a shared immutable ColumnTable payload.
/// Columnar operator outputs are wrapped via FromColumnar() without
/// materializing rows; the row representation is then built lazily on first
/// row access. Conversely EnsureColumnar() converts (and caches) the
/// columnar form of a row table. Lazy materialization and conversion are
/// NOT thread-safe: they must happen on the coordinating thread, never from
/// partition workers (workers operate on the immutable ColumnTable).
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  /// Wraps a columnar result without materializing rows. The payload is
  /// shared (copy-free) and must not be mutated afterwards.
  static Table FromColumnar(std::shared_ptr<const ColumnTable> columnar);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const {
    return rows_valid_ ? rows_.size() : columnar_->num_rows();
  }
  size_t num_columns() const { return schema_.num_columns(); }

  const Row& row(size_t i) const {
    EnsureRows();
    return rows_[i];
  }
  Row& mutable_row(size_t i) {
    EnsureRows();
    InvalidateDerived();
    return rows_[i];
  }
  const std::vector<Row>& rows() const {
    EnsureRows();
    return rows_;
  }
  std::vector<Row>& mutable_rows() {
    EnsureRows();
    InvalidateDerived();
    return rows_;
  }

  /// Appends a row after checking arity (type checking is left to operators;
  /// generators construct well-typed rows by design).
  Status AppendRow(Row row);

  /// Appends without arity checking (hot path for operator outputs). Keeps
  /// the cached SizeBytes total current instead of invalidating it.
  void AppendRowUnchecked(Row row) {
    EnsureRows();
    columnar_.reset();
    if (size_cache_valid_) {
      for (const Value& v : row) size_bytes_cache_ += v.SizeBytes();
    }
    rows_.push_back(std::move(row));
  }

  /// Reserves capacity.
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Value at (row, column-name); error if the column is missing.
  Result<Value> GetValue(size_t row_index, const std::string& column) const;

  /// Approximate in-memory footprint in bytes (sum of value sizes). Cached;
  /// appends maintain the total incrementally, mutations invalidate it.
  uint64_t SizeBytes() const;

  /// Returns (converting and caching on first use) the columnar form.
  /// kNotImplemented when a column mixes non-null cell types (no columnar
  /// equivalent); callers then stay on the row path. Coordinator-only.
  Result<std::shared_ptr<const ColumnTable>> EnsureColumnar() const;

  /// The cached columnar payload, or null if none has been attached/built.
  const std::shared_ptr<const ColumnTable>& columnar() const {
    return columnar_;
  }

  /// Renders at most `max_rows` rows as an aligned text table (debugging,
  /// example programs).
  std::string ToString(size_t max_rows = 20) const;

  /// Sorts rows lexicographically by all columns — canonical form used by
  /// tests to compare results regardless of operator output order.
  void SortLexicographic();

 private:
  /// Materializes rows from the columnar payload (coordinator-only).
  void EnsureRows() const {
    if (!rows_valid_) MaterializeFromColumnar();
  }
  void MaterializeFromColumnar() const;
  /// Row mutation drops the cached columnar payload and size total.
  void InvalidateDerived() {
    columnar_.reset();
    size_cache_valid_ = false;
  }

  Schema schema_;
  mutable std::vector<Row> rows_;
  /// Shared immutable columnar payload; see class comment.
  mutable std::shared_ptr<const ColumnTable> columnar_;
  /// False while rows_ has not yet been materialized from columnar_.
  mutable bool rows_valid_ = true;
  mutable uint64_t size_bytes_cache_ = 0;
  mutable bool size_cache_valid_ = false;
};

/// \brief Convenience builder used by tests and generators.
///
///   TableBuilder b({{"query", DataType::kString}, {"count", DataType::kInt64}});
///   b.AddRow({Value::String("49ers"), Value::Int(12)});
class TableBuilder {
 public:
  explicit TableBuilder(std::vector<Column> columns)
      : table_(Schema(std::move(columns))) {}

  /// Adds a row; aborts on arity mismatch (builder misuse is a programming
  /// error, not a runtime condition).
  TableBuilder& AddRow(Row row);

  /// Finalizes the table.
  Table Build() { return std::move(table_); }

 private:
  Table table_;
};

}  // namespace esharp::sql

#endif  // ESHARP_SQLENGINE_TABLE_H_
