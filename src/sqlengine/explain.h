#ifndef ESHARP_SQLENGINE_EXPLAIN_H_
#define ESHARP_SQLENGINE_EXPLAIN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace esharp::sql {

/// \brief Per-operator execution profile: one node per plan operator,
/// mirroring the plan tree shape. Filled in by
/// `Executor::Execute(plan, catalog, &stats)`; serial kernels account via
/// the executor, parallel kernels (parallel.cc) account exact row counts
/// and partition batches themselves through `ExecContext::stats`.
///
/// Row counts are exact (measured on materialized inputs/outputs on the
/// coordinating thread), `batches` is the number of partitions the
/// operator actually processed (1 for serial execution), and `wall_ms` is
/// inclusive wall time (operator plus its inputs), like the "actual time"
/// of a Postgres EXPLAIN ANALYZE.
///
/// Not thread-safe across plan executions: one ExplainStats tree belongs
/// to one Execute call at a time.
struct ExplainStats {
  std::string op;       ///< Operator label, e.g. "HashJoin(a = b)".
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  size_t batches = 1;
  double wall_ms = 0;
  std::vector<std::unique_ptr<ExplainStats>> children;

  /// Appends (and returns) a child node; pointer stays valid for the
  /// lifetime of this tree.
  ExplainStats* AddChild();

  /// Drops all recorded data, returning the node to a fresh state.
  void Clear();

  /// Total operators in this subtree (including this node).
  size_t NodeCount() const;

  /// EXPLAIN ANALYZE-style report:
  ///   Aggregate(by c)  (rows_in=100 rows_out=10 batches=8 time=1.234 ms)
  ///     Scan(edges)  (rows_in=100 rows_out=100 batches=1 time=0.011 ms)
  std::string ToString() const;
};

}  // namespace esharp::sql

#endif  // ESHARP_SQLENGINE_EXPLAIN_H_
