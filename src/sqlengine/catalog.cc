#include "sqlengine/catalog.h"

namespace esharp::sql {

void Catalog::Register(const std::string& name, Table table) {
  tables_.insert_or_assign(name, std::move(table));
}

Result<const Table*> Catalog::Get(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '", name, "' in catalog");
  }
  return &it->second;
}

void Catalog::Drop(const std::string& name) { tables_.erase(name); }

bool Catalog::Contains(const std::string& name) const {
  return tables_.count(name) > 0;
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

}  // namespace esharp::sql
