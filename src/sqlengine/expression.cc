#include "sqlengine/expression.h"

#include <cmath>

namespace esharp::sql {

namespace {

class ColumnExpr final : public Expr {
 public:
  explicit ColumnExpr(std::string name)
      : Expr(Kind::kColumn), name_(std::move(name)) {}

  Status Bind(const Schema& schema) const override {
    // Idempotent for a given schema, so pre-bound expressions can be shared
    // by parallel partition workers without rebinding races.
    uint64_t fp = Fnv1a64(schema.ToString());
    if (bound_ && fp == schema_fp_) return Status::OK();
    ESHARP_ASSIGN_OR_RETURN(index_, schema.IndexOf(name_));
    schema_fp_ = fp;
    bound_ = true;
    return Status::OK();
  }

  Result<Value> Eval(const Row& row) const override {
    if (!bound_) return Status::FailedPrecondition("column '", name_, "' not bound");
    if (index_ >= row.size()) {
      return Status::Internal("bound index ", index_, " out of row arity ",
                              row.size());
    }
    return row[index_];
  }

  Result<ColumnVec> EvalColumn(const ColumnTable& table) const override {
    if (!bound_) {
      return Status::FailedPrecondition("column '", name_, "' not bound");
    }
    if (index_ >= table.num_columns()) {
      return Status::Internal("bound index ", index_, " out of row arity ",
                              table.num_columns());
    }
    return table.col(index_);
  }

  std::string ToString() const override { return name_; }

 private:
  std::string name_;
  mutable size_t index_ = 0;
  mutable uint64_t schema_fp_ = 0;
  mutable bool bound_ = false;
};

class FlexibleColumnExpr final : public Expr {
 public:
  explicit FlexibleColumnExpr(std::string name)
      : Expr(Kind::kColumn), name_(std::move(name)) {}

  Status Bind(const Schema& schema) const override {
    uint64_t fp = Fnv1a64(schema.ToString());
    if (bound_ && fp == schema_fp_) return Status::OK();
    schema_fp_ = fp;
    // Exact match wins.
    if (schema.Contains(name_)) {
      ESHARP_ASSIGN_OR_RETURN(index_, schema.IndexOf(name_));
      bound_ = true;
      return Status::OK();
    }
    // Otherwise a unique ".name" suffix (bare reference to aliased column).
    std::string suffix = "." + name_;
    size_t found = SIZE_MAX;
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      const std::string& col = schema.column(i).name;
      if (col.size() > suffix.size() &&
          col.compare(col.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        if (found != SIZE_MAX) {
          return Status::InvalidArgument("ambiguous column reference '",
                                         name_, "' in schema [",
                                         schema.ToString(), "]");
        }
        found = i;
      }
    }
    if (found == SIZE_MAX) {
      return Status::NotFound("no column matching '", name_, "' in schema [",
                              schema.ToString(), "]");
    }
    index_ = found;
    bound_ = true;
    return Status::OK();
  }

  Result<Value> Eval(const Row& row) const override {
    if (!bound_) {
      return Status::FailedPrecondition("column '", name_, "' not bound");
    }
    return row[index_];
  }

  Result<ColumnVec> EvalColumn(const ColumnTable& table) const override {
    if (!bound_) {
      return Status::FailedPrecondition("column '", name_, "' not bound");
    }
    if (index_ >= table.num_columns()) {
      return Status::Internal("bound index ", index_, " out of row arity ",
                              table.num_columns());
    }
    return table.col(index_);
  }

  std::string ToString() const override { return name_; }

 private:
  std::string name_;
  mutable size_t index_ = 0;
  mutable uint64_t schema_fp_ = 0;
  mutable bool bound_ = false;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value v) : Expr(Kind::kLiteral), value_(std::move(v)) {}

  Status Bind(const Schema&) const override { return Status::OK(); }
  Result<Value> Eval(const Row&) const override { return value_; }

  Result<ColumnVec> EvalColumn(const ColumnTable& table) const override {
    // Broadcast the constant across the batch.
    const size_t n = table.num_rows();
    ColumnVec c;
    c.type = value_.type();
    switch (c.type) {
      case DataType::kNull:
        c.null_length = n;
        break;
      case DataType::kBool:
        c.bools.assign(n, value_.bool_value() ? 1 : 0);
        break;
      case DataType::kInt64:
        c.ints.assign(n, value_.int_value());
        break;
      case DataType::kDouble:
        c.doubles.assign(n, value_.double_value());
        break;
      case DataType::kString: {
        auto dict = std::make_shared<StringDict>();
        uint32_t id = dict->Intern(value_.string_value());
        c.str_ids.assign(n, id);
        c.dict = std::move(dict);
        break;
      }
    }
    return c;
  }

  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

class BinaryExprNode final : public Expr {
 public:
  BinaryExprNode(BinaryOp op, ExprPtr left, ExprPtr right)
      : Expr(Kind::kBinary), op_(op), left_(std::move(left)),
        right_(std::move(right)) {}

  Status Bind(const Schema& schema) const override {
    ESHARP_RETURN_NOT_OK(left_->Bind(schema));
    return right_->Bind(schema);
  }

  Result<Value> Eval(const Row& row) const override {
    // Short-circuit boolean connectives.
    if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
      ESHARP_ASSIGN_OR_RETURN(Value lv, left_->Eval(row));
      if (lv.type() != DataType::kBool) {
        return Status::InvalidArgument("AND/OR operand is not BOOL: ",
                                       lv.ToString());
      }
      if (op_ == BinaryOp::kAnd && !lv.bool_value()) return Value::Bool(false);
      if (op_ == BinaryOp::kOr && lv.bool_value()) return Value::Bool(true);
      ESHARP_ASSIGN_OR_RETURN(Value rv, right_->Eval(row));
      if (rv.type() != DataType::kBool) {
        return Status::InvalidArgument("AND/OR operand is not BOOL: ",
                                       rv.ToString());
      }
      return rv;
    }

    ESHARP_ASSIGN_OR_RETURN(Value lv, left_->Eval(row));
    ESHARP_ASSIGN_OR_RETURN(Value rv, right_->Eval(row));

    switch (op_) {
      case BinaryOp::kEq: return Value::Bool(lv.Compare(rv) == 0);
      case BinaryOp::kNe: return Value::Bool(lv.Compare(rv) != 0);
      case BinaryOp::kLt: return Value::Bool(lv.Compare(rv) < 0);
      case BinaryOp::kLe: return Value::Bool(lv.Compare(rv) <= 0);
      case BinaryOp::kGt: return Value::Bool(lv.Compare(rv) > 0);
      case BinaryOp::kGe: return Value::Bool(lv.Compare(rv) >= 0);
      default: break;
    }

    // Arithmetic: exact on int64 pairs (except division), double otherwise.
    if (lv.type() == DataType::kInt64 && rv.type() == DataType::kInt64 &&
        op_ != BinaryOp::kDiv) {
      int64_t a = lv.int_value(), b = rv.int_value();
      switch (op_) {
        case BinaryOp::kAdd: return Value::Int(a + b);
        case BinaryOp::kSub: return Value::Int(a - b);
        case BinaryOp::kMul: return Value::Int(a * b);
        default: break;
      }
    }
    ESHARP_ASSIGN_OR_RETURN(double a, lv.AsDouble());
    ESHARP_ASSIGN_OR_RETURN(double b, rv.AsDouble());
    switch (op_) {
      case BinaryOp::kAdd: return Value::Double(a + b);
      case BinaryOp::kSub: return Value::Double(a - b);
      case BinaryOp::kMul: return Value::Double(a * b);
      case BinaryOp::kDiv:
        if (b == 0.0) return Status::InvalidArgument("division by zero");
        return Value::Double(a / b);
      default:
        return Status::Internal("unhandled binary op");
    }
  }

  Result<ColumnVec> EvalColumn(const ColumnTable& table) const override {
    ESHARP_ASSIGN_OR_RETURN(ColumnVec l, left_->EvalColumn(table));
    ESHARP_ASSIGN_OR_RETURN(ColumnVec r, right_->EvalColumn(table));
    const size_t n = table.num_rows();

    if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
      // Both operand columns are evaluated in full (no short-circuit; see
      // the header note) and must be all-BOOL, matching the row path's
      // per-value type check.
      for (const ColumnVec* side : {&l, &r}) {
        if (n == 0) break;
        if (side->type != DataType::kBool || side->nulls.AnyNull()) {
          size_t bad = 0;
          if (side->type == DataType::kBool) {
            while (bad < n && !side->nulls.IsNull(bad)) ++bad;
          }
          return Status::InvalidArgument("AND/OR operand is not BOOL: ",
                                         side->ValueAt(bad).ToString());
        }
      }
      ColumnVec out;
      out.type = DataType::kBool;
      out.bools.resize(n);
      if (op_ == BinaryOp::kAnd) {
        for (size_t i = 0; i < n; ++i) out.bools[i] = l.bools[i] & r.bools[i];
      } else {
        for (size_t i = 0; i < n; ++i) out.bools[i] = l.bools[i] | r.bools[i];
      }
      return out;
    }

    switch (op_) {
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe: {
        ColumnVec out;
        out.type = DataType::kBool;
        out.bools.resize(n);
        const auto cmp_to_bool = [op = op_](int c) -> uint8_t {
          switch (op) {
            case BinaryOp::kEq: return c == 0;
            case BinaryOp::kNe: return c != 0;
            case BinaryOp::kLt: return c < 0;
            case BinaryOp::kLe: return c <= 0;
            case BinaryOp::kGt: return c > 0;
            default: return c >= 0;  // kGe
          }
        };
        const bool no_nulls = !l.nulls.AnyNull() && !r.nulls.AnyNull();
        if (no_nulls && l.type == DataType::kInt64 &&
            r.type == DataType::kInt64) {
          const int64_t* a = l.ints.data();
          const int64_t* b = r.ints.data();
          for (size_t i = 0; i < n; ++i) {
            out.bools[i] = cmp_to_bool(a[i] == b[i] ? 0 : (a[i] < b[i] ? -1 : 1));
          }
        } else if (no_nulls && l.type == DataType::kDouble &&
                   r.type == DataType::kDouble) {
          const double* a = l.doubles.data();
          const double* b = r.doubles.data();
          for (size_t i = 0; i < n; ++i) {
            out.bools[i] = cmp_to_bool(a[i] == b[i] ? 0 : (a[i] < b[i] ? -1 : 1));
          }
        } else if (no_nulls && l.type == DataType::kString &&
                   r.type == DataType::kString && l.dict == r.dict &&
                   (op_ == BinaryOp::kEq || op_ == BinaryOp::kNe)) {
          // Interned ids decide equality without touching the bytes.
          for (size_t i = 0; i < n; ++i) {
            out.bools[i] = cmp_to_bool(l.str_ids[i] == r.str_ids[i] ? 0 : 1);
          }
        } else {
          for (size_t i = 0; i < n; ++i) {
            out.bools[i] = cmp_to_bool(CompareCells(l, i, r, i));
          }
        }
        return out;
      }
      default:
        break;
    }

    // Arithmetic. Coercion failures mirror the row path's evaluation order:
    // the left operand's error is what row 0 would have produced.
    if (n == 0) {
      ColumnVec out;
      out.type = (l.type == DataType::kInt64 && r.type == DataType::kInt64 &&
                  op_ != BinaryOp::kDiv)
                     ? DataType::kInt64
                     : DataType::kDouble;
      return out;
    }
    const auto coercible = [](DataType ty) {
      return ty == DataType::kBool || ty == DataType::kInt64 ||
             ty == DataType::kDouble;
    };
    for (const ColumnVec* side : {&l, &r}) {
      if (!coercible(side->type)) {
        return Status::InvalidArgument("cannot coerce ",
                                       DataTypeToString(side->type),
                                       " to double");
      }
    }
    if (l.nulls.AnyNull() || r.nulls.AnyNull()) {
      return Status::InvalidArgument("cannot coerce NULL to double");
    }
    if (l.type == DataType::kInt64 && r.type == DataType::kInt64 &&
        op_ != BinaryOp::kDiv) {
      ColumnVec out;
      out.type = DataType::kInt64;
      out.ints.resize(n);
      const int64_t* a = l.ints.data();
      const int64_t* b = r.ints.data();
      switch (op_) {
        case BinaryOp::kAdd:
          for (size_t i = 0; i < n; ++i) out.ints[i] = a[i] + b[i];
          break;
        case BinaryOp::kSub:
          for (size_t i = 0; i < n; ++i) out.ints[i] = a[i] - b[i];
          break;
        case BinaryOp::kMul:
          for (size_t i = 0; i < n; ++i) out.ints[i] = a[i] * b[i];
          break;
        default:
          return Status::Internal("unhandled binary op");
      }
      return out;
    }
    const auto cell_as_double = [](const ColumnVec& c, size_t i) -> double {
      switch (c.type) {
        case DataType::kBool: return c.bools[i] ? 1.0 : 0.0;
        case DataType::kInt64: return static_cast<double>(c.ints[i]);
        default: return c.doubles[i];
      }
    };
    ColumnVec out;
    out.type = DataType::kDouble;
    out.doubles.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const double a = cell_as_double(l, i);
      const double b = cell_as_double(r, i);
      switch (op_) {
        case BinaryOp::kAdd: out.doubles[i] = a + b; break;
        case BinaryOp::kSub: out.doubles[i] = a - b; break;
        case BinaryOp::kMul: out.doubles[i] = a * b; break;
        case BinaryOp::kDiv:
          if (b == 0.0) return Status::InvalidArgument("division by zero");
          out.doubles[i] = a / b;
          break;
        default:
          return Status::Internal("unhandled binary op");
      }
    }
    return out;
  }

  std::string ToString() const override {
    static const char* names[] = {"+", "-", "*", "/", "=", "!=", "<", "<=",
                                  ">", ">=", "AND", "OR"};
    return "(" + left_->ToString() + " " +
           names[static_cast<int>(op_)] + " " + right_->ToString() + ")";
  }

 private:
  BinaryOp op_;
  ExprPtr left_, right_;
};

class UnaryExprNode final : public Expr {
 public:
  UnaryExprNode(UnaryOp op, ExprPtr operand)
      : Expr(Kind::kUnary), op_(op), operand_(std::move(operand)) {}

  Status Bind(const Schema& schema) const override {
    return operand_->Bind(schema);
  }

  Result<Value> Eval(const Row& row) const override {
    ESHARP_ASSIGN_OR_RETURN(Value v, operand_->Eval(row));
    switch (op_) {
      case UnaryOp::kNot:
        if (v.type() != DataType::kBool) {
          return Status::InvalidArgument("NOT operand is not BOOL");
        }
        return Value::Bool(!v.bool_value());
      case UnaryOp::kNeg: {
        if (v.type() == DataType::kInt64) return Value::Int(-v.int_value());
        ESHARP_ASSIGN_OR_RETURN(double d, v.AsDouble());
        return Value::Double(-d);
      }
    }
    return Status::Internal("unhandled unary op");
  }

  Result<ColumnVec> EvalColumn(const ColumnTable& table) const override {
    ESHARP_ASSIGN_OR_RETURN(ColumnVec v, operand_->EvalColumn(table));
    const size_t n = table.num_rows();
    if (op_ == UnaryOp::kNot) {
      if (n > 0 && (v.type != DataType::kBool || v.nulls.AnyNull())) {
        return Status::InvalidArgument("NOT operand is not BOOL");
      }
      ColumnVec out;
      out.type = DataType::kBool;
      out.bools.resize(n);
      for (size_t i = 0; i < n; ++i) out.bools[i] = v.bools[i] ? 0 : 1;
      return out;
    }
    // kNeg
    if (v.type == DataType::kInt64 && !v.nulls.AnyNull()) {
      ColumnVec out;
      out.type = DataType::kInt64;
      out.ints.resize(n);
      for (size_t i = 0; i < n; ++i) out.ints[i] = -v.ints[i];
      return out;
    }
    if (n == 0) {
      ColumnVec out;
      out.type = DataType::kDouble;
      return out;
    }
    if (v.type == DataType::kString || v.type == DataType::kNull) {
      return Status::InvalidArgument("cannot coerce ",
                                     DataTypeToString(v.type), " to double");
    }
    if (v.nulls.AnyNull()) {
      return Status::InvalidArgument("cannot coerce NULL to double");
    }
    ColumnVec out;
    out.type = DataType::kDouble;
    out.doubles.resize(n);
    if (v.type == DataType::kBool) {
      for (size_t i = 0; i < n; ++i) out.doubles[i] = v.bools[i] ? -1.0 : -0.0;
    } else {
      for (size_t i = 0; i < n; ++i) out.doubles[i] = -v.doubles[i];
    }
    return out;
  }

  std::string ToString() const override {
    return (op_ == UnaryOp::kNot ? "NOT " : "-") + operand_->ToString();
  }

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

class UdfExpr final : public Expr {
 public:
  UdfExpr(std::string name, ScalarUdf fn, std::vector<ExprPtr> args)
      : Expr(Kind::kUdf), name_(std::move(name)), fn_(std::move(fn)),
        args_(std::move(args)) {}

  Status Bind(const Schema& schema) const override {
    for (const ExprPtr& a : args_) ESHARP_RETURN_NOT_OK(a->Bind(schema));
    return Status::OK();
  }

  Result<Value> Eval(const Row& row) const override {
    std::vector<Value> vals;
    vals.reserve(args_.size());
    for (const ExprPtr& a : args_) {
      ESHARP_ASSIGN_OR_RETURN(Value v, a->Eval(row));
      vals.push_back(std::move(v));
    }
    return fn_(vals);
  }

  Result<ColumnVec> EvalColumn(const ColumnTable& table) const override {
    // Arguments evaluate column-at-a-time; the scalar function itself runs
    // per row (UDFs are opaque).
    std::vector<ColumnVec> arg_cols;
    arg_cols.reserve(args_.size());
    for (const ExprPtr& a : args_) {
      ESHARP_ASSIGN_OR_RETURN(ColumnVec c, a->EvalColumn(table));
      arg_cols.push_back(std::move(c));
    }
    const size_t n = table.num_rows();
    ColumnBuilder builder(n);
    std::vector<Value> vals(args_.size());
    for (size_t i = 0; i < n; ++i) {
      for (size_t k = 0; k < arg_cols.size(); ++k) {
        vals[k] = arg_cols[k].ValueAt(i);
      }
      ESHARP_ASSIGN_OR_RETURN(Value v, fn_(vals));
      ESHARP_RETURN_NOT_OK(builder.Append(v));
    }
    return builder.Finish();
  }

  std::string ToString() const override {
    std::string out = name_ + "(";
    for (size_t i = 0; i < args_.size(); ++i) {
      if (i > 0) out += ", ";
      out += args_[i]->ToString();
    }
    return out + ")";
  }

 private:
  std::string name_;
  ScalarUdf fn_;
  std::vector<ExprPtr> args_;
};

}  // namespace

Result<ColumnVec> Expr::EvalColumn(const ColumnTable& table) const {
  // Reference fallback: evaluate row-at-a-time and rebuild a typed column.
  const size_t n = table.num_rows();
  ColumnBuilder builder(n);
  for (size_t i = 0; i < n; ++i) {
    ESHARP_ASSIGN_OR_RETURN(Value v, Eval(table.MaterializeRow(i)));
    ESHARP_RETURN_NOT_OK(builder.Append(v));
  }
  return builder.Finish();
}

ExprPtr Col(std::string name) {
  return std::make_shared<ColumnExpr>(std::move(name));
}
ExprPtr ColFlexible(std::string name) {
  return std::make_shared<FlexibleColumnExpr>(std::move(name));
}
ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr LitInt(int64_t v) { return Lit(Value::Int(v)); }
ExprPtr LitDouble(double v) { return Lit(Value::Double(v)); }
ExprPtr LitString(std::string v) { return Lit(Value::String(std::move(v))); }
ExprPtr LitBool(bool v) { return Lit(Value::Bool(v)); }
ExprPtr BinaryExpr(Expr::BinaryOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<BinaryExprNode>(op, std::move(left), std::move(right));
}
ExprPtr UnaryExpr(Expr::UnaryOp op, ExprPtr operand) {
  return std::make_shared<UnaryExprNode>(op, std::move(operand));
}
ExprPtr Udf(std::string name, ScalarUdf fn, std::vector<ExprPtr> args) {
  return std::make_shared<UdfExpr>(std::move(name), std::move(fn),
                                   std::move(args));
}

}  // namespace esharp::sql
