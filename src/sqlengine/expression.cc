#include "sqlengine/expression.h"

#include <cmath>

namespace esharp::sql {

namespace {

class ColumnExpr final : public Expr {
 public:
  explicit ColumnExpr(std::string name)
      : Expr(Kind::kColumn), name_(std::move(name)) {}

  Status Bind(const Schema& schema) const override {
    // Idempotent for a given schema, so pre-bound expressions can be shared
    // by parallel partition workers without rebinding races.
    uint64_t fp = Fnv1a64(schema.ToString());
    if (bound_ && fp == schema_fp_) return Status::OK();
    ESHARP_ASSIGN_OR_RETURN(index_, schema.IndexOf(name_));
    schema_fp_ = fp;
    bound_ = true;
    return Status::OK();
  }

  Result<Value> Eval(const Row& row) const override {
    if (!bound_) return Status::FailedPrecondition("column '", name_, "' not bound");
    if (index_ >= row.size()) {
      return Status::Internal("bound index ", index_, " out of row arity ",
                              row.size());
    }
    return row[index_];
  }

  std::string ToString() const override { return name_; }

 private:
  std::string name_;
  mutable size_t index_ = 0;
  mutable uint64_t schema_fp_ = 0;
  mutable bool bound_ = false;
};

class FlexibleColumnExpr final : public Expr {
 public:
  explicit FlexibleColumnExpr(std::string name)
      : Expr(Kind::kColumn), name_(std::move(name)) {}

  Status Bind(const Schema& schema) const override {
    uint64_t fp = Fnv1a64(schema.ToString());
    if (bound_ && fp == schema_fp_) return Status::OK();
    schema_fp_ = fp;
    // Exact match wins.
    if (schema.Contains(name_)) {
      ESHARP_ASSIGN_OR_RETURN(index_, schema.IndexOf(name_));
      bound_ = true;
      return Status::OK();
    }
    // Otherwise a unique ".name" suffix (bare reference to aliased column).
    std::string suffix = "." + name_;
    size_t found = SIZE_MAX;
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      const std::string& col = schema.column(i).name;
      if (col.size() > suffix.size() &&
          col.compare(col.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        if (found != SIZE_MAX) {
          return Status::InvalidArgument("ambiguous column reference '",
                                         name_, "' in schema [",
                                         schema.ToString(), "]");
        }
        found = i;
      }
    }
    if (found == SIZE_MAX) {
      return Status::NotFound("no column matching '", name_, "' in schema [",
                              schema.ToString(), "]");
    }
    index_ = found;
    bound_ = true;
    return Status::OK();
  }

  Result<Value> Eval(const Row& row) const override {
    if (!bound_) {
      return Status::FailedPrecondition("column '", name_, "' not bound");
    }
    return row[index_];
  }

  std::string ToString() const override { return name_; }

 private:
  std::string name_;
  mutable size_t index_ = 0;
  mutable uint64_t schema_fp_ = 0;
  mutable bool bound_ = false;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value v) : Expr(Kind::kLiteral), value_(std::move(v)) {}

  Status Bind(const Schema&) const override { return Status::OK(); }
  Result<Value> Eval(const Row&) const override { return value_; }
  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

class BinaryExprNode final : public Expr {
 public:
  BinaryExprNode(BinaryOp op, ExprPtr left, ExprPtr right)
      : Expr(Kind::kBinary), op_(op), left_(std::move(left)),
        right_(std::move(right)) {}

  Status Bind(const Schema& schema) const override {
    ESHARP_RETURN_NOT_OK(left_->Bind(schema));
    return right_->Bind(schema);
  }

  Result<Value> Eval(const Row& row) const override {
    // Short-circuit boolean connectives.
    if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
      ESHARP_ASSIGN_OR_RETURN(Value lv, left_->Eval(row));
      if (lv.type() != DataType::kBool) {
        return Status::InvalidArgument("AND/OR operand is not BOOL: ",
                                       lv.ToString());
      }
      if (op_ == BinaryOp::kAnd && !lv.bool_value()) return Value::Bool(false);
      if (op_ == BinaryOp::kOr && lv.bool_value()) return Value::Bool(true);
      ESHARP_ASSIGN_OR_RETURN(Value rv, right_->Eval(row));
      if (rv.type() != DataType::kBool) {
        return Status::InvalidArgument("AND/OR operand is not BOOL: ",
                                       rv.ToString());
      }
      return rv;
    }

    ESHARP_ASSIGN_OR_RETURN(Value lv, left_->Eval(row));
    ESHARP_ASSIGN_OR_RETURN(Value rv, right_->Eval(row));

    switch (op_) {
      case BinaryOp::kEq: return Value::Bool(lv.Compare(rv) == 0);
      case BinaryOp::kNe: return Value::Bool(lv.Compare(rv) != 0);
      case BinaryOp::kLt: return Value::Bool(lv.Compare(rv) < 0);
      case BinaryOp::kLe: return Value::Bool(lv.Compare(rv) <= 0);
      case BinaryOp::kGt: return Value::Bool(lv.Compare(rv) > 0);
      case BinaryOp::kGe: return Value::Bool(lv.Compare(rv) >= 0);
      default: break;
    }

    // Arithmetic: exact on int64 pairs (except division), double otherwise.
    if (lv.type() == DataType::kInt64 && rv.type() == DataType::kInt64 &&
        op_ != BinaryOp::kDiv) {
      int64_t a = lv.int_value(), b = rv.int_value();
      switch (op_) {
        case BinaryOp::kAdd: return Value::Int(a + b);
        case BinaryOp::kSub: return Value::Int(a - b);
        case BinaryOp::kMul: return Value::Int(a * b);
        default: break;
      }
    }
    ESHARP_ASSIGN_OR_RETURN(double a, lv.AsDouble());
    ESHARP_ASSIGN_OR_RETURN(double b, rv.AsDouble());
    switch (op_) {
      case BinaryOp::kAdd: return Value::Double(a + b);
      case BinaryOp::kSub: return Value::Double(a - b);
      case BinaryOp::kMul: return Value::Double(a * b);
      case BinaryOp::kDiv:
        if (b == 0.0) return Status::InvalidArgument("division by zero");
        return Value::Double(a / b);
      default:
        return Status::Internal("unhandled binary op");
    }
  }

  std::string ToString() const override {
    static const char* names[] = {"+", "-", "*", "/", "=", "!=", "<", "<=",
                                  ">", ">=", "AND", "OR"};
    return "(" + left_->ToString() + " " +
           names[static_cast<int>(op_)] + " " + right_->ToString() + ")";
  }

 private:
  BinaryOp op_;
  ExprPtr left_, right_;
};

class UnaryExprNode final : public Expr {
 public:
  UnaryExprNode(UnaryOp op, ExprPtr operand)
      : Expr(Kind::kUnary), op_(op), operand_(std::move(operand)) {}

  Status Bind(const Schema& schema) const override {
    return operand_->Bind(schema);
  }

  Result<Value> Eval(const Row& row) const override {
    ESHARP_ASSIGN_OR_RETURN(Value v, operand_->Eval(row));
    switch (op_) {
      case UnaryOp::kNot:
        if (v.type() != DataType::kBool) {
          return Status::InvalidArgument("NOT operand is not BOOL");
        }
        return Value::Bool(!v.bool_value());
      case UnaryOp::kNeg: {
        if (v.type() == DataType::kInt64) return Value::Int(-v.int_value());
        ESHARP_ASSIGN_OR_RETURN(double d, v.AsDouble());
        return Value::Double(-d);
      }
    }
    return Status::Internal("unhandled unary op");
  }

  std::string ToString() const override {
    return (op_ == UnaryOp::kNot ? "NOT " : "-") + operand_->ToString();
  }

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

class UdfExpr final : public Expr {
 public:
  UdfExpr(std::string name, ScalarUdf fn, std::vector<ExprPtr> args)
      : Expr(Kind::kUdf), name_(std::move(name)), fn_(std::move(fn)),
        args_(std::move(args)) {}

  Status Bind(const Schema& schema) const override {
    for (const ExprPtr& a : args_) ESHARP_RETURN_NOT_OK(a->Bind(schema));
    return Status::OK();
  }

  Result<Value> Eval(const Row& row) const override {
    std::vector<Value> vals;
    vals.reserve(args_.size());
    for (const ExprPtr& a : args_) {
      ESHARP_ASSIGN_OR_RETURN(Value v, a->Eval(row));
      vals.push_back(std::move(v));
    }
    return fn_(vals);
  }

  std::string ToString() const override {
    std::string out = name_ + "(";
    for (size_t i = 0; i < args_.size(); ++i) {
      if (i > 0) out += ", ";
      out += args_[i]->ToString();
    }
    return out + ")";
  }

 private:
  std::string name_;
  ScalarUdf fn_;
  std::vector<ExprPtr> args_;
};

}  // namespace

ExprPtr Col(std::string name) {
  return std::make_shared<ColumnExpr>(std::move(name));
}
ExprPtr ColFlexible(std::string name) {
  return std::make_shared<FlexibleColumnExpr>(std::move(name));
}
ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr LitInt(int64_t v) { return Lit(Value::Int(v)); }
ExprPtr LitDouble(double v) { return Lit(Value::Double(v)); }
ExprPtr LitString(std::string v) { return Lit(Value::String(std::move(v))); }
ExprPtr LitBool(bool v) { return Lit(Value::Bool(v)); }
ExprPtr BinaryExpr(Expr::BinaryOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<BinaryExprNode>(op, std::move(left), std::move(right));
}
ExprPtr UnaryExpr(Expr::UnaryOp op, ExprPtr operand) {
  return std::make_shared<UnaryExprNode>(op, std::move(operand));
}
ExprPtr Udf(std::string name, ScalarUdf fn, std::vector<ExprPtr> args) {
  return std::make_shared<UdfExpr>(std::move(name), std::move(fn),
                                   std::move(args));
}

}  // namespace esharp::sql
