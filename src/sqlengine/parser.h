#ifndef ESHARP_SQLENGINE_PARSER_H_
#define ESHARP_SQLENGINE_PARSER_H_

#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "sqlengine/plan.h"

namespace esharp::sql {

/// \brief Named scalar functions available to parsed queries.
///
/// The paper's Fig. 4 calls a UDF (`ModulGain(query1, query2)`) from inside
/// its WHERE clause; the registry is how a driver supplies such functions to
/// the text front end.
class FunctionRegistry {
 public:
  /// Registers (or replaces) a scalar function; names are case-insensitive.
  void RegisterScalar(const std::string& name, ScalarUdf fn);

  /// Looks up a scalar function.
  Result<ScalarUdf> LookupScalar(const std::string& name) const;

  /// True iff a scalar of this name exists.
  bool HasScalar(const std::string& name) const;

 private:
  std::map<std::string, ScalarUdf> scalars_;  // keys lower-cased
};

/// \brief Compiles one SQL SELECT statement into an executable Plan.
///
/// Supported grammar (case-insensitive keywords):
///
///   SELECT <expr [AS name]>, ...           -- or SELECT *
///   FROM <table [AS alias]> | (subquery) alias
///   [INNER | LEFT [OUTER]] JOIN <table [alias]> ON a.x = b.y [AND ...]
///   [WHERE <expr>]
///   [GROUP BY col, ...]
///   [ORDER BY col [ASC|DESC], ...]
///   [LIMIT n]
///
/// Expressions: arithmetic (+ - * /), comparisons (= != <> < <= > >=),
/// AND/OR/NOT, literals (numbers, 'strings', TRUE/FALSE/NULL), column
/// references (bare or alias-qualified), scalar UDF calls from `registry`,
/// and — in the SELECT list of a grouped query — the aggregates COUNT(*),
/// COUNT(e), SUM, MIN, MAX, AVG, ARGMAX(order, output), ARGMIN.
///
/// Alias semantics: a FROM/JOIN item with an alias exposes its columns as
/// `alias.column`; bare references resolve to an exact column name first,
/// then to a unique `*.column` suffix (ambiguity is an error at execution).
/// This mirrors how Fig. 4 reads: `communities c1 ... c1.comm_name`.
Result<Plan> ParseSql(std::string_view sql,
                      const FunctionRegistry& registry = {});

/// \brief Convenience: parse and immediately execute against a catalog.
Result<Table> ExecuteSql(std::string_view sql, const Catalog& catalog,
                         const FunctionRegistry& registry = {},
                         const ExecutorOptions& options = {});

}  // namespace esharp::sql

#endif  // ESHARP_SQLENGINE_PARSER_H_
