#ifndef ESHARP_SQLENGINE_OPERATORS_H_
#define ESHARP_SQLENGINE_OPERATORS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sqlengine/aggregates.h"
#include "sqlengine/expression.h"
#include "sqlengine/table.h"

namespace esharp::sql {

/// \brief One output column of a projection: an expression plus its name.
struct ProjectedColumn {
  ExprPtr expr;
  std::string name;
};

/// \brief Join flavors. The pipeline uses inner joins; left-outer exists for
/// the evaluation harness (queries with zero experts must still be counted).
enum class JoinType { kInner, kLeftOuter };

/// \name Single-threaded operator kernels
///
/// Each kernel consumes materialized tables and produces a materialized
/// table — the execution model of a map-reduce relational stage. The
/// parallel wrappers in parallel.h split inputs into hash partitions and run
/// these kernels per partition.
/// @{

/// SELECT * FROM t WHERE pred. `pred` must evaluate to BOOL.
Result<Table> Filter(const Table& t, const ExprPtr& pred);

/// SELECT exprs AS names FROM t. Output column types are inferred from the
/// first row (kNull for empty inputs).
Result<Table> Project(const Table& t, const std::vector<ProjectedColumn>& cols);

/// Hash join on equality of the key columns. Right-side columns whose names
/// clash with left-side names are prefixed with "r_" in the output schema.
/// For kLeftOuter, unmatched left rows emit NULLs for the right columns.
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<std::string>& left_keys,
                       const std::vector<std::string>& right_keys,
                       JoinType type = JoinType::kInner);

/// GROUP BY group_keys with the given aggregates. With empty group_keys,
/// produces exactly one row (global aggregate).
Result<Table> HashAggregate(const Table& t,
                            const std::vector<std::string>& group_keys,
                            const std::vector<AggSpec>& aggs);

/// Concatenation of two relations with identical schemas.
Result<Table> UnionAll(const Table& a, const Table& b);

/// Duplicate elimination over whole rows.
Result<Table> Distinct(const Table& t);

/// Stable sort by the given key columns. `ascending` is per-key and may be
/// shorter than `keys` (missing entries default to ascending).
Result<Table> SortBy(const Table& t, const std::vector<std::string>& keys,
                     const std::vector<bool>& ascending = {});

/// First n rows.
Result<Table> Limit(const Table& t, size_t n);

/// @}

/// \brief Key extractor shared by join/aggregate/partitioning: evaluates the
/// key columns of a row and hashes them into one 64-bit value.
Result<std::vector<size_t>> ResolveKeyIndexes(
    const Schema& schema, const std::vector<std::string>& keys);

/// Hashes the selected columns of a row.
uint64_t HashRowKeys(const Row& row, const std::vector<size_t>& key_indexes);

/// True iff the selected columns of two rows are pairwise equal.
bool RowKeysEqual(const Row& a, const std::vector<size_t>& a_idx,
                  const Row& b, const std::vector<size_t>& b_idx);

}  // namespace esharp::sql

#endif  // ESHARP_SQLENGINE_OPERATORS_H_
