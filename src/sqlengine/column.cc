#include "sqlengine/column.h"

#include <algorithm>
#include <numeric>

#include "common/simd.h"
#include "sqlengine/table.h"

namespace esharp::sql {

uint32_t StringDict::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  hashes_.push_back(Fnv1a64(s));
  payload_bytes_ += s.size();
  index_.emplace(strings_.back(), id);
  return id;
}

Value ColumnVec::ValueAt(size_t i) const {
  if (nulls.IsNull(i) || type == DataType::kNull) return Value::Null();
  switch (type) {
    case DataType::kBool: return Value::Bool(bools[i] != 0);
    case DataType::kInt64: return Value::Int(ints[i]);
    case DataType::kDouble: return Value::Double(doubles[i]);
    case DataType::kString: return Value::String(dict->at(str_ids[i]));
    case DataType::kNull: break;
  }
  return Value::Null();
}

uint64_t ColumnVec::HashAt(size_t i) const {
  // Must stay bit-identical to Value::Hash() so row and columnar execution
  // agree on partition routing.
  if (nulls.IsNull(i) || type == DataType::kNull) return 0x9ae16a3b2f90404fULL;
  switch (type) {
    case DataType::kBool:
      return Mix64(bools[i] != 0 ? 1 : 2);
    case DataType::kInt64:
      return HashF64(static_cast<double>(ints[i]));
    case DataType::kDouble:
      return HashF64(doubles[i]);
    case DataType::kString:
      return dict->hash(str_ids[i]);
    case DataType::kNull:
      break;
  }
  return 0;
}

void ColumnVec::Reserve(size_t n) {
  switch (type) {
    case DataType::kBool: bools.reserve(n); break;
    case DataType::kInt64: ints.reserve(n); break;
    case DataType::kDouble: doubles.reserve(n); break;
    case DataType::kString: str_ids.reserve(n); break;
    case DataType::kNull: break;
  }
}

namespace {

// Type-family rank, mirroring value.cc's TypeRank.
inline int FamilyRank(DataType t) {
  switch (t) {
    case DataType::kNull: return 0;
    case DataType::kBool: return 1;
    case DataType::kInt64:
    case DataType::kDouble: return 2;
    case DataType::kString: return 3;
  }
  return 4;
}

inline int Sign(int64_t a, int64_t b) { return a == b ? 0 : (a < b ? -1 : 1); }
inline int Sign(double a, double b) { return a == b ? 0 : (a < b ? -1 : 1); }

}  // namespace

int CompareCells(const ColumnVec& a, size_t i, const ColumnVec& b, size_t j) {
  const bool an = a.nulls.IsNull(i) || a.type == DataType::kNull;
  const bool bn = b.nulls.IsNull(j) || b.type == DataType::kNull;
  if (an || bn) return an == bn ? 0 : (an ? -1 : 1);
  int ra = FamilyRank(a.type), rb = FamilyRank(b.type);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (a.type) {
    case DataType::kBool:
      return Sign(static_cast<int64_t>(a.bools[i]),
                  static_cast<int64_t>(b.bools[j]));
    case DataType::kInt64:
      if (b.type == DataType::kInt64) return Sign(a.ints[i], b.ints[j]);
      return Sign(static_cast<double>(a.ints[i]), b.doubles[j]);
    case DataType::kDouble:
      if (b.type == DataType::kInt64) {
        return Sign(a.doubles[i], static_cast<double>(b.ints[j]));
      }
      return Sign(a.doubles[i], b.doubles[j]);
    case DataType::kString: {
      if (a.dict == b.dict && a.str_ids[i] == b.str_ids[j]) return 0;
      int c = a.dict->at(a.str_ids[i]).compare(b.dict->at(b.str_ids[j]));
      return c < 0 ? -1 : (c == 0 ? 0 : 1);
    }
    case DataType::kNull:
      break;
  }
  return 0;
}

Result<ColumnTable> ColumnTable::FromTable(const Table& t) {
  ColumnTable out(t.schema());
  const size_t n = t.num_rows();
  const size_t width = t.schema().num_columns();
  out.cols_.resize(width);
  out.num_rows_ = n;
  for (size_t c = 0; c < width; ++c) {
    // Column type = the unique non-null cell type (kNull if all cells are).
    DataType type = DataType::kNull;
    for (size_t r = 0; r < n; ++r) {
      DataType cell = t.row(r)[c].type();
      if (cell == DataType::kNull) continue;
      if (type == DataType::kNull) {
        type = cell;
      } else if (type != cell) {
        return Status::NotImplemented(
            "columnar: column '", t.schema().column(c).name,
            "' mixes ", DataTypeToString(type), " and ",
            DataTypeToString(cell));
      }
    }
    ColumnVec& col = out.cols_[c];
    col.type = type;
    col.null_length = n;
    col.Reserve(n);
    std::shared_ptr<StringDict> dict;
    if (type == DataType::kString) {
      dict = std::make_shared<StringDict>();
      col.dict = dict;
    }
    for (size_t r = 0; r < n; ++r) {
      const Value& v = t.row(r)[c];
      const bool is_null = v.is_null();
      switch (type) {
        case DataType::kBool:
          col.bools.push_back(is_null ? 0 : (v.bool_value() ? 1 : 0));
          break;
        case DataType::kInt64:
          col.ints.push_back(is_null ? 0 : v.int_value());
          break;
        case DataType::kDouble:
          col.doubles.push_back(is_null ? 0.0 : v.double_value());
          break;
        case DataType::kString:
          col.str_ids.push_back(is_null ? 0 : dict->Intern(v.string_value()));
          break;
        case DataType::kNull:
          break;
      }
      if (is_null && type != DataType::kNull) col.nulls.SetNull(r, n);
    }
    if (type == DataType::kString && dict->size() == 0) {
      // All-null string column can't leave id 0 dangling on null slots.
      dict->Intern("");
    }
  }
  return out;
}

std::vector<Row> ColumnTable::MaterializeRows() const {
  std::vector<Row> rows(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    rows[r].reserve(cols_.size());
  }
  for (const ColumnVec& col : cols_) {
    for (size_t r = 0; r < num_rows_; ++r) {
      rows[r].push_back(col.ValueAt(r));
    }
  }
  return rows;
}

Row ColumnTable::MaterializeRow(size_t i) const {
  Row row;
  row.reserve(cols_.size());
  for (const ColumnVec& col : cols_) row.push_back(col.ValueAt(i));
  return row;
}

uint64_t ColumnTable::SizeBytes() const {
  uint64_t total = 0;
  for (const ColumnVec& col : cols_) {
    switch (col.type) {
      case DataType::kBool:
        total += col.size();
        break;
      case DataType::kInt64:
      case DataType::kDouble:
        total += 8 * col.size();
        break;
      case DataType::kString:
        for (size_t r = 0; r < col.str_ids.size(); ++r) {
          total += col.nulls.IsNull(r) ? 1 : col.dict->at(col.str_ids[r]).size() + 8;
        }
        break;
      case DataType::kNull:
        total += col.size();
        break;
    }
    if (col.type != DataType::kString && col.nulls.AnyNull()) {
      // Null cells account as 1 byte, like Value::SizeBytes; subtract the
      // full-width accounting added above.
      for (size_t r = 0; r < col.size(); ++r) {
        if (col.nulls.IsNull(r)) {
          total -= (col.type == DataType::kBool ? 1 : 8);
          total += 1;
        }
      }
    }
  }
  return total;
}

namespace {
constexpr uint32_t kNullRow = UINT32_MAX;
}

ColumnTable ColumnTable::Gather(const std::vector<uint32_t>& idx) const {
  ColumnTable out(schema_);
  out.cols_.resize(cols_.size());
  out.num_rows_ = idx.size();
  const size_t n = idx.size();
  for (size_t c = 0; c < cols_.size(); ++c) {
    const ColumnVec& src = cols_[c];
    ColumnVec& dst = out.cols_[c];
    dst.type = src.type;
    dst.dict = src.dict;
    dst.null_length = n;
    dst.Reserve(n);
    const bool src_nulls = src.nulls.AnyNull();
    for (size_t r = 0; r < n; ++r) {
      const uint32_t s = idx[r];
      const bool is_null =
          s == kNullRow || (src_nulls && src.nulls.IsNull(s));
      switch (dst.type) {
        case DataType::kBool:
          dst.bools.push_back(is_null ? 0 : src.bools[s]);
          break;
        case DataType::kInt64:
          dst.ints.push_back(is_null ? 0 : src.ints[s]);
          break;
        case DataType::kDouble:
          dst.doubles.push_back(is_null ? 0.0 : src.doubles[s]);
          break;
        case DataType::kString:
          dst.str_ids.push_back(is_null ? 0 : src.str_ids[s]);
          break;
        case DataType::kNull:
          break;
      }
      if (is_null && dst.type != DataType::kNull) dst.nulls.SetNull(r, n);
    }
  }
  return out;
}

ColumnTable ColumnTable::Slice(size_t begin, size_t count) const {
  ColumnTable out(schema_);
  out.cols_.resize(cols_.size());
  const size_t end = std::min(num_rows_, begin + count);
  const size_t n = begin >= end ? 0 : end - begin;
  out.num_rows_ = n;
  for (size_t c = 0; c < cols_.size(); ++c) {
    const ColumnVec& src = cols_[c];
    ColumnVec& dst = out.cols_[c];
    dst.type = src.type;
    dst.dict = src.dict;
    dst.null_length = n;
    switch (src.type) {
      case DataType::kBool:
        dst.bools.assign(src.bools.begin() + begin, src.bools.begin() + end);
        break;
      case DataType::kInt64:
        dst.ints.assign(src.ints.begin() + begin, src.ints.begin() + end);
        break;
      case DataType::kDouble:
        dst.doubles.assign(src.doubles.begin() + begin,
                           src.doubles.begin() + end);
        break;
      case DataType::kString:
        dst.str_ids.assign(src.str_ids.begin() + begin,
                           src.str_ids.begin() + end);
        break;
      case DataType::kNull:
        break;
    }
    if (src.nulls.AnyNull()) {
      for (size_t r = begin; r < end; ++r) {
        if (src.nulls.IsNull(r)) dst.nulls.SetNull(r - begin, n);
      }
    }
  }
  return out;
}

void HashKeyColumns(const ColumnTable& t, const std::vector<size_t>& key_idx,
                    std::vector<uint64_t>* hashes) {
  const size_t n = t.num_rows();
  hashes->assign(n, 0x87c37b91114253d5ULL);  // HashRowKeys seed
  uint64_t* h = hashes->data();
  // Numeric key columns stage canonical f64 bits and fold them in with the
  // batched SIMD Mix64+combine kernel (bit-identical to the scalar chain,
  // so partition routing matches Value::Hash / HashAt). String and
  // null-bearing columns stay fused: their per-cell hash is a gather /
  // branchy lookup that dominates the combine, and staging it through a
  // scratch column only adds a memory pass.
  std::vector<uint64_t> cell;
  for (size_t idx : key_idx) {
    const ColumnVec& col = t.col(idx);
    const bool has_nulls = col.nulls.AnyNull();
    const bool numeric = !has_nulls && (col.type == DataType::kInt64 ||
                                        col.type == DataType::kDouble);
    if (numeric) {
      cell.resize(n);
      if (col.type == DataType::kInt64) {
        for (size_t r = 0; r < n; ++r) {
          cell[r] = CanonicalF64Bits(static_cast<double>(col.ints[r]));
        }
      } else {
        for (size_t r = 0; r < n; ++r) {
          cell[r] = CanonicalF64Bits(col.doubles[r]);
        }
      }
      simd::HashCombineMix64Batch(h, cell.data(), n);
    } else if (!has_nulls && col.type == DataType::kString) {
      const StringDict& dict = *col.dict;
      for (size_t r = 0; r < n; ++r) {
        h[r] = HashCombine(h[r], dict.hash(col.str_ids[r]));
      }
    } else {
      for (size_t r = 0; r < n; ++r) {
        h[r] = HashCombine(h[r], col.HashAt(r));
      }
    }
  }
}

namespace {

// Appends an index-aligned zero payload slot for a null cell.
void PushZeroSlot(ColumnVec* col) {
  switch (col->type) {
    case DataType::kBool: col->bools.push_back(0); break;
    case DataType::kInt64: col->ints.push_back(0); break;
    case DataType::kDouble: col->doubles.push_back(0.0); break;
    case DataType::kString: col->str_ids.push_back(0); break;
    case DataType::kNull: break;
  }
}

}  // namespace

Status ColumnBuilder::Append(const Value& v) {
  const size_t i = rows_++;
  if (v.is_null()) {
    if (col_.type == DataType::kNull) {
      ++col_.null_length;
    } else {
      PushZeroSlot(&col_);
      col_.nulls.SetNull(i, expected_rows_);
    }
    return Status::OK();
  }
  const DataType vt = v.type();
  if (col_.type == DataType::kNull) {
    // First non-null value fixes the type; backfill the prior all-null
    // prefix with zero slots and bitmap bits.
    const size_t prior = col_.null_length;
    col_.type = vt;
    col_.null_length = 0;
    col_.Reserve(std::max(expected_rows_, rows_));
    if (vt == DataType::kString) {
      dict_ = std::make_shared<StringDict>();
      col_.dict = dict_;
    }
    for (size_t r = 0; r < prior; ++r) {
      PushZeroSlot(&col_);
      col_.nulls.SetNull(r, expected_rows_);
    }
  } else if (col_.type != vt) {
    return Status::NotImplemented("columnar: value stream mixes ",
                                  DataTypeToString(col_.type), " and ",
                                  DataTypeToString(vt));
  }
  switch (vt) {
    case DataType::kBool: col_.bools.push_back(v.bool_value() ? 1 : 0); break;
    case DataType::kInt64: col_.ints.push_back(v.int_value()); break;
    case DataType::kDouble: col_.doubles.push_back(v.double_value()); break;
    case DataType::kString:
      col_.str_ids.push_back(dict_->Intern(v.string_value()));
      break;
    case DataType::kNull: break;
  }
  return Status::OK();
}

ColumnVec ColumnBuilder::Finish() {
  if (col_.type == DataType::kNull) col_.null_length = rows_;
  return std::move(col_);
}

bool ColumnTablesEqualAsMultisets(const ColumnTable& a, const ColumnTable& b) {
  if (a.num_rows() != b.num_rows()) return false;
  if (a.num_columns() != b.num_columns()) return false;
  const size_t n = a.num_rows();
  const size_t width = a.num_columns();
  auto sorted_perm = [width](const ColumnTable& t) {
    std::vector<uint32_t> perm(t.num_rows());
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(), [&](uint32_t x, uint32_t y) {
      for (size_t c = 0; c < width; ++c) {
        int cmp = CompareCells(t.col(c), x, t.col(c), y);
        if (cmp != 0) return cmp < 0;
      }
      return false;
    });
    return perm;
  };
  std::vector<uint32_t> pa = sorted_perm(a), pb = sorted_perm(b);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < width; ++c) {
      if (CompareCells(a.col(c), pa[r], b.col(c), pb[r]) != 0) return false;
    }
  }
  return true;
}

}  // namespace esharp::sql
