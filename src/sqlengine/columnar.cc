#include "sqlengine/columnar.h"

#include <algorithm>
#include <unordered_map>

#include "common/simd.h"
#include "sqlengine/table.h"

namespace esharp::sql {

namespace {

constexpr uint32_t kNullRow = UINT32_MAX;

// Appends an index-aligned zero payload slot for a null cell.
void PushZeroSlot(ColumnVec* col) {
  switch (col->type) {
    case DataType::kBool: col->bools.push_back(0); break;
    case DataType::kInt64: col->ints.push_back(0); break;
    case DataType::kDouble: col->doubles.push_back(0.0); break;
    case DataType::kString: col->str_ids.push_back(0); break;
    case DataType::kNull: break;
  }
}

// Gathers one column by row index (kNullRow emits NULL), sharing the dict.
ColumnVec GatherColumn(const ColumnVec& src, const std::vector<uint32_t>& idx) {
  ColumnVec dst;
  dst.type = src.type;
  dst.dict = src.dict;
  const size_t n = idx.size();
  dst.null_length = n;
  dst.Reserve(n);
  const bool src_nulls = src.nulls.AnyNull();
  for (size_t r = 0; r < n; ++r) {
    const uint32_t s = idx[r];
    const bool is_null = s == kNullRow || (src_nulls && src.nulls.IsNull(s));
    switch (dst.type) {
      case DataType::kBool: dst.bools.push_back(is_null ? 0 : src.bools[s]); break;
      case DataType::kInt64: dst.ints.push_back(is_null ? 0 : src.ints[s]); break;
      case DataType::kDouble:
        dst.doubles.push_back(is_null ? 0.0 : src.doubles[s]);
        break;
      case DataType::kString:
        dst.str_ids.push_back(is_null ? 0 : src.str_ids[s]);
        break;
      case DataType::kNull: break;
    }
    if (is_null && dst.type != DataType::kNull) dst.nulls.SetNull(r, n);
  }
  return dst;
}

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Result<ColumnTable> ColumnarFilter(const ColumnTable& t, const ExprPtr& pred) {
  ESHARP_RETURN_NOT_OK(pred->Bind(t.schema()));
  ESHARP_ASSIGN_OR_RETURN(ColumnVec sel, pred->EvalColumn(t));
  const size_t n = t.num_rows();
  if (n > 0 && (sel.type != DataType::kBool || sel.nulls.AnyNull())) {
    return Status::InvalidArgument("filter predicate is not BOOL: ",
                                   pred->ToString());
  }
  // Selection-vector compaction: the BOOL column is already a byte-per-row
  // flag array, so the movemask-based SIMD kernel turns it into packed row
  // indices without the per-row branch. +7: the kernel's compress-store
  // emulation clobbers up to 7 slots past the returned count.
  std::vector<uint32_t> idx(n + 7);
  const size_t k = n == 0 ? 0 : simd::CompactSelection(sel.bools.data(), n,
                                                       idx.data());
  idx.resize(k);
  return t.Gather(idx);
}

Result<ColumnTable> ColumnarProject(const ColumnTable& t,
                                    const std::vector<ProjectedColumn>& cols) {
  for (const ProjectedColumn& c : cols) {
    ESHARP_RETURN_NOT_OK(c.expr->Bind(t.schema()));
  }
  Schema schema;
  ColumnTable out;
  if (t.num_rows() == 0) {
    // The row kernel infers kNull types on empty input; match its schema.
    for (const ProjectedColumn& c : cols) {
      schema.AddColumn({c.name, DataType::kNull});
      out.AddColumn(ColumnVec{});
    }
    out.mutable_schema() = schema;
    out.set_num_rows(0);
    return out;
  }
  for (const ProjectedColumn& c : cols) {
    ESHARP_ASSIGN_OR_RETURN(ColumnVec v, c.expr->EvalColumn(t));
    schema.AddColumn({c.name, v.type});
    out.AddColumn(std::move(v));
  }
  out.mutable_schema() = schema;
  if (cols.empty()) out.set_num_rows(t.num_rows());
  return out;
}

Result<ColumnarJoinIndex> ColumnarJoinIndex::Build(
    const ColumnTable& t, const std::vector<std::string>& keys) {
  ColumnarJoinIndex index;
  ESHARP_ASSIGN_OR_RETURN(index.key_idx,
                          ResolveKeyIndexes(t.schema(), keys));
  const size_t n = t.num_rows();
  HashKeyColumns(t, index.key_idx, &index.hashes);
  const size_t buckets = NextPow2(std::max<size_t>(1, n * 2));
  index.heads.assign(buckets, kEmpty);
  index.next.assign(n, kEmpty);
  for (size_t i = 0; i < n; ++i) {
    const size_t b = index.hashes[i] & (buckets - 1);
    index.next[i] = index.heads[b];
    index.heads[b] = static_cast<uint32_t>(i);
  }
  return index;
}

Result<ColumnTable> ColumnarHashJoinProbe(const ColumnTable& left,
                                          const std::vector<std::string>& left_keys,
                                          const ColumnTable& build,
                                          const ColumnarJoinIndex& index,
                                          JoinType type) {
  ESHARP_ASSIGN_OR_RETURN(std::vector<size_t> lidx,
                          ResolveKeyIndexes(left.schema(), left_keys));
  std::vector<uint64_t> hashes;
  HashKeyColumns(left, lidx, &hashes);

  const size_t n = left.num_rows();
  const size_t mask = index.heads.size() - 1;
  std::vector<uint32_t> lsel, rsel;
  lsel.reserve(n);
  rsel.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = hashes[i];
    bool matched = false;
    for (uint32_t j = index.heads[h & mask]; j != ColumnarJoinIndex::kEmpty;
         j = index.next[j]) {
      if (index.hashes[j] != h) continue;
      bool equal = true;
      for (size_t k = 0; k < lidx.size(); ++k) {
        if (CompareCells(left.col(lidx[k]), i, build.col(index.key_idx[k]),
                         j) != 0) {
          equal = false;
          break;
        }
      }
      if (!equal) continue;
      matched = true;
      lsel.push_back(static_cast<uint32_t>(i));
      rsel.push_back(j);
    }
    if (!matched && type == JoinType::kLeftOuter) {
      lsel.push_back(static_cast<uint32_t>(i));
      rsel.push_back(kNullRow);  // all-NULL right padding
    }
  }

  ColumnTable out(Schema::Concat(left.schema(), build.schema(), "r_"));
  for (size_t c = 0; c < left.num_columns(); ++c) {
    out.AddColumn(GatherColumn(left.col(c), lsel));
  }
  for (size_t c = 0; c < build.num_columns(); ++c) {
    out.AddColumn(GatherColumn(build.col(c), rsel));
  }
  out.set_num_rows(lsel.size());
  return out;
}

Result<ColumnTable> ColumnarHashJoin(const ColumnTable& left,
                                     const ColumnTable& right,
                                     const std::vector<std::string>& left_keys,
                                     const std::vector<std::string>& right_keys,
                                     JoinType type) {
  if (left_keys.size() != right_keys.size()) {
    return Status::InvalidArgument("join key arity mismatch: ",
                                   left_keys.size(), " vs ",
                                   right_keys.size());
  }
  ESHARP_ASSIGN_OR_RETURN(ColumnarJoinIndex index,
                          ColumnarJoinIndex::Build(right, right_keys));
  return ColumnarHashJoinProbe(left, left_keys, right, index, type);
}

namespace {

// Per-group accumulator state mirroring AggAccumulator's fields; typed
// column loops below reproduce its Add() semantics exactly (including the
// int-until-double SUM promotion and ARGMAX/ARGMIN tie-breaks).
struct GroupAggState {
  int64_t count = 0;
  double sum = 0;
  bool sum_is_int = true;
  int64_t isum = 0;
  bool has = false;
  uint32_t best = 0;
};

inline bool CellIsNull(const ColumnVec& c, size_t i) {
  return c.type == DataType::kNull || c.nulls.IsNull(i);
}

}  // namespace

Result<ColumnTable> ColumnarHashAggregate(const ColumnTable& t,
                                          const std::vector<std::string>& group_keys,
                                          const std::vector<AggSpec>& aggs) {
  ESHARP_ASSIGN_OR_RETURN(std::vector<size_t> kidx,
                          ResolveKeyIndexes(t.schema(), group_keys));
  for (const AggSpec& a : aggs) {
    if (a.arg) ESHARP_RETURN_NOT_OK(a.arg->Bind(t.schema()));
    if (a.output) ESHARP_RETURN_NOT_OK(a.output->Bind(t.schema()));
  }

  const size_t n = t.num_rows();
  std::vector<uint64_t> hashes;
  HashKeyColumns(t, kidx, &hashes);

  // Group discovery over precomputed hashes; reps keep first-seen order.
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  buckets.reserve(n * 2);
  std::vector<uint32_t> rep;   // group -> first row index
  std::vector<uint32_t> gid(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint32_t>& cand = buckets[hashes[i]];
    uint32_t found = kNullRow;
    for (uint32_t g : cand) {
      bool equal = true;
      for (size_t k : kidx) {
        if (CompareCells(t.col(k), i, t.col(k), rep[g]) != 0) {
          equal = false;
          break;
        }
      }
      if (equal) {
        found = g;
        break;
      }
    }
    if (found == kNullRow) {
      found = static_cast<uint32_t>(rep.size());
      rep.push_back(static_cast<uint32_t>(i));
      cand.push_back(found);
    }
    gid[i] = found;
  }

  // Global aggregate over empty input still yields one (empty) group.
  bool empty_global = false;
  if (group_keys.empty() && rep.empty()) {
    rep.push_back(0);
    empty_global = true;
  }
  const size_t num_groups = rep.size();

  // Output schema: key columns typed from the input schema (by exact name,
  // like the row kernel), aggregate columns refined from their values.
  Schema out_schema;
  for (size_t i = 0; i < group_keys.size(); ++i) {
    ESHARP_ASSIGN_OR_RETURN(size_t idx, t.schema().IndexOf(group_keys[i]));
    out_schema.AddColumn({group_keys[i], t.schema().column(idx).type});
  }

  ColumnTable out;
  for (size_t i = 0; i < kidx.size(); ++i) {
    out.AddColumn(GatherColumn(t.col(kidx[i]), rep));
  }

  for (const AggSpec& a : aggs) {
    ColumnVec argcol, outcol;
    bool have_arg = false, have_out = false;
    if (a.arg) {
      ESHARP_ASSIGN_OR_RETURN(argcol, a.arg->EvalColumn(t));
      have_arg = true;
    }
    if (a.output) {
      ESHARP_ASSIGN_OR_RETURN(outcol, a.output->EvalColumn(t));
      have_out = true;
    }
    std::vector<GroupAggState> st(num_groups);
    if (!empty_global) {
      switch (a.kind) {
        case AggKind::kCount:
          if (!have_arg) {
            // COUNT(*): every row counts (the row kernel feeds Bool(true)).
            for (size_t i = 0; i < n; ++i) ++st[gid[i]].count;
          } else {
            for (size_t i = 0; i < n; ++i) {
              if (!CellIsNull(argcol, i)) ++st[gid[i]].count;
            }
          }
          break;
        case AggKind::kSum:
        case AggKind::kAvg:
          switch (have_arg ? argcol.type : DataType::kBool) {
            case DataType::kInt64:
              for (size_t i = 0; i < n; ++i) {
                if (CellIsNull(argcol, i)) continue;
                GroupAggState& s = st[gid[i]];
                ++s.count;
                if (s.sum_is_int) {
                  s.isum += argcol.ints[i];
                } else {
                  s.sum += static_cast<double>(argcol.ints[i]);
                }
              }
              break;
            case DataType::kDouble:
              for (size_t i = 0; i < n; ++i) {
                if (CellIsNull(argcol, i)) continue;
                GroupAggState& s = st[gid[i]];
                ++s.count;
                if (s.sum_is_int) {
                  s.sum = static_cast<double>(s.isum);
                  s.sum_is_int = false;
                }
                s.sum += argcol.doubles[i];
              }
              break;
            case DataType::kBool:
              // SUM over a missing arg cannot occur (factories always set
              // one); over a BOOL column it widens 0/1 like AsDouble.
              for (size_t i = 0; i < n; ++i) {
                if (!have_arg || CellIsNull(argcol, i)) continue;
                GroupAggState& s = st[gid[i]];
                ++s.count;
                if (s.sum_is_int) {
                  s.sum = static_cast<double>(s.isum);
                  s.sum_is_int = false;
                }
                s.sum += argcol.bools[i] ? 1.0 : 0.0;
              }
              break;
            case DataType::kString:
              // Matches AggAccumulator: the count advances, the failed
              // coercion contributes nothing, and the sum goes double.
              for (size_t i = 0; i < n; ++i) {
                if (CellIsNull(argcol, i)) continue;
                GroupAggState& s = st[gid[i]];
                ++s.count;
                if (s.sum_is_int) {
                  s.sum = static_cast<double>(s.isum);
                  s.sum_is_int = false;
                }
              }
              break;
            case DataType::kNull:
              break;
          }
          break;
        case AggKind::kMin:
          for (size_t i = 0; i < n; ++i) {
            if (!have_arg || CellIsNull(argcol, i)) continue;
            GroupAggState& s = st[gid[i]];
            if (!s.has || CompareCells(argcol, i, argcol, s.best) < 0) {
              s.best = static_cast<uint32_t>(i);
            }
            s.has = true;
          }
          break;
        case AggKind::kMax:
          for (size_t i = 0; i < n; ++i) {
            if (!have_arg || CellIsNull(argcol, i)) continue;
            GroupAggState& s = st[gid[i]];
            if (!s.has || CompareCells(argcol, i, argcol, s.best) > 0) {
              s.best = static_cast<uint32_t>(i);
            }
            s.has = true;
          }
          break;
        case AggKind::kArgMax:
        case AggKind::kArgMin:
          for (size_t i = 0; i < n; ++i) {
            if (!have_arg || CellIsNull(argcol, i)) continue;
            GroupAggState& s = st[gid[i]];
            if (!s.has) {
              s.best = static_cast<uint32_t>(i);
              s.has = true;
              continue;
            }
            const int c = CompareCells(argcol, i, argcol, s.best);
            const bool better = a.kind == AggKind::kArgMax ? c > 0 : c < 0;
            // Ties break toward the smaller output value (determinism).
            const bool tie_wins =
                c == 0 && have_out && CompareCells(outcol, i, outcol, s.best) < 0;
            if (better || tie_wins) s.best = static_cast<uint32_t>(i);
          }
          break;
      }
    }

    ColumnBuilder builder(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      const GroupAggState& s = st[g];
      Value v;
      switch (a.kind) {
        case AggKind::kCount:
          v = Value::Int(s.count);
          break;
        case AggKind::kSum:
          if (s.count == 0) break;  // NULL
          v = s.sum_is_int ? Value::Int(s.isum) : Value::Double(s.sum);
          break;
        case AggKind::kAvg: {
          if (s.count == 0) break;  // NULL
          double total = s.sum_is_int ? static_cast<double>(s.isum) : s.sum;
          v = Value::Double(total / static_cast<double>(s.count));
          break;
        }
        case AggKind::kMin:
        case AggKind::kMax:
          if (s.has) v = argcol.ValueAt(s.best);
          break;
        case AggKind::kArgMax:
        case AggKind::kArgMin:
          if (s.has && have_out) v = outcol.ValueAt(s.best);
          break;
      }
      ESHARP_RETURN_NOT_OK(builder.Append(v));
    }
    ColumnVec agg_out = builder.Finish();
    out_schema.AddColumn({a.name, agg_out.type});
    out.AddColumn(std::move(agg_out));
  }

  out.mutable_schema() = out_schema;
  out.set_num_rows(num_groups);
  return out;
}

Result<std::vector<ColumnTable>> ColumnarHashPartition(
    const ColumnTable& t, const std::vector<std::string>& keys,
    size_t num_partitions) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be > 0");
  }
  ESHARP_ASSIGN_OR_RETURN(std::vector<size_t> kidx,
                          ResolveKeyIndexes(t.schema(), keys));
  std::vector<uint64_t> hashes;
  HashKeyColumns(t, kidx, &hashes);
  // Selection vectors per partition, then one gather each: rows route to
  // h % p exactly like the row-store HashPartition.
  std::vector<std::vector<uint32_t>> sel(num_partitions);
  const size_t n = t.num_rows();
  for (size_t i = 0; i < n; ++i) {
    sel[hashes[i] % num_partitions].push_back(static_cast<uint32_t>(i));
  }
  std::vector<ColumnTable> parts;
  parts.reserve(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    parts.push_back(t.Gather(sel[p]));
  }
  return parts;
}

std::vector<ColumnTable> ColumnarRoundRobinPartition(const ColumnTable& t,
                                                     size_t num_partitions) {
  num_partitions = std::max<size_t>(1, num_partitions);
  // Same contiguous chunking as the row-store RoundRobinPartition.
  const size_t n = t.num_rows();
  const size_t per = (n + num_partitions - 1) / num_partitions;
  std::vector<ColumnTable> parts;
  parts.reserve(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    const size_t begin = std::min(n, p * per);
    parts.push_back(t.Slice(begin, per));
  }
  return parts;
}

Result<ColumnTable> ColumnarConcat(const std::vector<ColumnTable>& parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("no partitions to concat");
  }
  // Empty partitions carry kNull inferred types; a non-empty partition's
  // schema is canonical (mirrors the row-store wrappers).
  size_t canonical = 0;
  size_t total = 0;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].num_rows() > 0 && total == 0) canonical = i;
    total += parts[i].num_rows();
  }
  const size_t width = parts[canonical].num_columns();
  for (const ColumnTable& p : parts) {
    if (p.num_columns() != width) {
      return Status::Internal("partition schema mismatch in concat");
    }
  }

  ColumnTable out(parts[canonical].schema());
  for (size_t c = 0; c < width; ++c) {
    // Resolve the output type: first non-kNull column type among non-empty
    // parts; two distinct concrete types have no columnar concatenation.
    DataType type = DataType::kNull;
    for (const ColumnTable& p : parts) {
      if (p.num_rows() == 0) continue;
      const DataType pt = p.col(c).type;
      if (pt == DataType::kNull) continue;
      if (type == DataType::kNull) {
        type = pt;
      } else if (type != pt) {
        return Status::NotImplemented(
            "columnar: concat mixes ", DataTypeToString(type), " and ",
            DataTypeToString(pt), " in column ", c);
      }
    }

    ColumnVec dst;
    dst.type = type;
    dst.null_length = total;
    dst.Reserve(total);

    // Dictionary: shared copy-free when every string part uses the same
    // dictionary object (the common case — Gather/Slice share pointers);
    // otherwise ids are remapped through a merged dictionary.
    std::shared_ptr<StringDict> merged;
    if (type == DataType::kString) {
      std::shared_ptr<const StringDict> shared;
      bool shareable = true;
      for (const ColumnTable& p : parts) {
        if (p.num_rows() == 0 || p.col(c).type != DataType::kString) continue;
        if (!shared) {
          shared = p.col(c).dict;
        } else if (shared != p.col(c).dict) {
          shareable = false;
          break;
        }
      }
      if (shareable && shared) {
        dst.dict = shared;
      } else {
        merged = std::make_shared<StringDict>();
        dst.dict = merged;
      }
    }

    size_t offset = 0;
    for (const ColumnTable& p : parts) {
      const size_t pn = p.num_rows();
      if (pn == 0) continue;
      const ColumnVec& src = p.col(c);
      if (src.type == DataType::kNull && type != DataType::kNull) {
        // All-null contribution into a typed column.
        for (size_t r = 0; r < pn; ++r) {
          PushZeroSlot(&dst);
          dst.nulls.SetNull(offset + r, total);
        }
        offset += pn;
        continue;
      }
      switch (type) {
        case DataType::kBool:
          dst.bools.insert(dst.bools.end(), src.bools.begin(), src.bools.end());
          break;
        case DataType::kInt64:
          dst.ints.insert(dst.ints.end(), src.ints.begin(), src.ints.end());
          break;
        case DataType::kDouble:
          dst.doubles.insert(dst.doubles.end(), src.doubles.begin(),
                             src.doubles.end());
          break;
        case DataType::kString:
          if (merged == nullptr) {
            dst.str_ids.insert(dst.str_ids.end(), src.str_ids.begin(),
                               src.str_ids.end());
          } else {
            // Per-part translation cache: each distinct source id interns
            // its string once.
            std::vector<uint32_t> translate(src.dict->size(), kNullRow);
            for (uint32_t id : src.str_ids) {
              if (translate[id] == kNullRow) {
                translate[id] = merged->Intern(src.dict->at(id));
              }
              dst.str_ids.push_back(translate[id]);
            }
          }
          break;
        case DataType::kNull:
          break;
      }
      if (src.nulls.AnyNull()) {
        for (size_t r = 0; r < pn; ++r) {
          if (src.nulls.IsNull(r)) dst.nulls.SetNull(offset + r, total);
        }
      }
      offset += pn;
    }
    out.AddColumn(std::move(dst));
  }
  out.set_num_rows(total);
  return out;
}

}  // namespace esharp::sql
