#include "sqlengine/parallel.h"

#include <atomic>
#include <mutex>

#include "sqlengine/columnar.h"
#include "sqlengine/explain.h"

namespace esharp::sql {

namespace {

// Runs fn(i) for every partition on the context's pool (or inline when no
// pool is configured), collecting the first error.
Status RunPartitioned(const ExecContext& ctx, size_t n,
                      const std::function<Status(size_t)>& fn) {
  if (ctx.pool == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) ESHARP_RETURN_NOT_OK(fn(i));
    return Status::OK();
  }
  std::mutex mu;
  Status first_error;
  ctx.pool->ParallelFor(n, [&](size_t i) {
    Status st = fn(i);
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      if (first_error.ok()) first_error = st;
    }
  });
  return first_error;
}

// Exact operator accounting, always on the coordinating thread after the
// partitions have joined: Table 9 row totals into the meter, and the
// EXPLAIN ANALYZE profile (rows in/out plus how many partition batches ran)
// into the plan node's ExplainStats.
void MeterRows(const ExecContext& ctx, uint64_t in, uint64_t out,
               size_t batches = 1) {
  if (ctx.meter != nullptr) ctx.meter->AddRows(ctx.stage, in, out);
  if (ctx.stats != nullptr) {
    ctx.stats->rows_in += in;
    ctx.stats->rows_out += out;
    ctx.stats->batches = batches;
  }
}

// Wraps a finished columnar result without materializing rows.
Table WrapColumnar(ColumnTable out) {
  return Table::FromColumnar(
      std::make_shared<const ColumnTable>(std::move(out)));
}

// ---------------------------------------------------------------------------
// Columnar drivers. Each mirrors its row-store wrapper below: identical
// partition routing (bit-identical key hashes), identical batch counts and
// rows in/out for EXPLAIN ANALYZE, and the same error surface. They return
// kNotImplemented when the input has no columnar form (mixed-type columns),
// in which case the public wrapper falls back to the row kernels.
// ---------------------------------------------------------------------------

Result<Table> ColumnarParallelFilter(const ExecContext& ctx, const Table& t,
                                     const ExprPtr& pred) {
  ESHARP_ASSIGN_OR_RETURN(std::shared_ptr<const ColumnTable> ct,
                          t.EnsureColumnar());
  // Pre-bind on the coordinator; workers' Bind calls become no-ops.
  ESHARP_RETURN_NOT_OK(pred->Bind(t.schema()));
  const size_t p = std::max<size_t>(1, ctx.num_partitions);
  std::vector<ColumnTable> parts = ColumnarRoundRobinPartition(*ct, p);
  std::vector<ColumnTable> results(p);
  ESHARP_RETURN_NOT_OK(RunPartitioned(ctx, p, [&](size_t i) -> Status {
    ESHARP_ASSIGN_OR_RETURN(results[i], ColumnarFilter(parts[i], pred));
    return Status::OK();
  }));
  ESHARP_ASSIGN_OR_RETURN(ColumnTable out, ColumnarConcat(results));
  MeterRows(ctx, t.num_rows(), out.num_rows(), p);
  return WrapColumnar(std::move(out));
}

Result<Table> ColumnarParallelProject(const ExecContext& ctx, const Table& t,
                                      const std::vector<ProjectedColumn>& cols) {
  ESHARP_ASSIGN_OR_RETURN(std::shared_ptr<const ColumnTable> ct,
                          t.EnsureColumnar());
  for (const ProjectedColumn& c : cols) {
    ESHARP_RETURN_NOT_OK(c.expr->Bind(t.schema()));
  }
  const size_t p = std::max<size_t>(1, ctx.num_partitions);
  std::vector<ColumnTable> parts = ColumnarRoundRobinPartition(*ct, p);
  std::vector<ColumnTable> results(p);
  ESHARP_RETURN_NOT_OK(RunPartitioned(ctx, p, [&](size_t i) -> Status {
    ESHARP_ASSIGN_OR_RETURN(results[i], ColumnarProject(parts[i], cols));
    return Status::OK();
  }));
  ESHARP_ASSIGN_OR_RETURN(ColumnTable out, ColumnarConcat(results));
  MeterRows(ctx, t.num_rows(), out.num_rows(), p);
  return WrapColumnar(std::move(out));
}

Result<Table> ColumnarParallelHashJoin(const ExecContext& ctx,
                                       const Table& left, const Table& right,
                                       const std::vector<std::string>& left_keys,
                                       const std::vector<std::string>& right_keys,
                                       JoinType type, JoinStrategy strategy) {
  if (left_keys.size() != right_keys.size()) {
    return Status::InvalidArgument("join key arity mismatch: ",
                                   left_keys.size(), " vs ",
                                   right_keys.size());
  }
  ESHARP_ASSIGN_OR_RETURN(std::shared_ptr<const ColumnTable> lct,
                          left.EnsureColumnar());
  ESHARP_ASSIGN_OR_RETURN(std::shared_ptr<const ColumnTable> rct,
                          right.EnsureColumnar());
  const size_t p = std::max<size_t>(1, ctx.num_partitions);
  std::vector<ColumnTable> results(p);
  if (strategy == JoinStrategy::kReplicated) {
    // Key win over the row path: the build side is hashed and indexed ONCE
    // on the coordinator; every worker probes the shared read-only index
    // instead of rebuilding its own hash table.
    ESHARP_ASSIGN_OR_RETURN(ColumnarJoinIndex index,
                            ColumnarJoinIndex::Build(*rct, right_keys));
    std::vector<ColumnTable> lparts = ColumnarRoundRobinPartition(*lct, p);
    ESHARP_RETURN_NOT_OK(RunPartitioned(ctx, p, [&](size_t i) -> Status {
      ESHARP_ASSIGN_OR_RETURN(
          results[i],
          ColumnarHashJoinProbe(lparts[i], left_keys, *rct, index, type));
      return Status::OK();
    }));
  } else {
    ESHARP_ASSIGN_OR_RETURN(std::vector<ColumnTable> lparts,
                            ColumnarHashPartition(*lct, left_keys, p));
    ESHARP_ASSIGN_OR_RETURN(std::vector<ColumnTable> rparts,
                            ColumnarHashPartition(*rct, right_keys, p));
    ESHARP_RETURN_NOT_OK(RunPartitioned(ctx, p, [&](size_t i) -> Status {
      ESHARP_ASSIGN_OR_RETURN(
          results[i],
          ColumnarHashJoin(lparts[i], rparts[i], left_keys, right_keys, type));
      return Status::OK();
    }));
  }
  ESHARP_ASSIGN_OR_RETURN(ColumnTable out, ColumnarConcat(results));
  MeterRows(ctx, left.num_rows() + right.num_rows(), out.num_rows(), p);
  return WrapColumnar(std::move(out));
}

Result<Table> ColumnarParallelHashAggregate(
    const ExecContext& ctx, const Table& t,
    const std::vector<std::string>& group_keys,
    const std::vector<AggSpec>& aggs) {
  ESHARP_ASSIGN_OR_RETURN(std::shared_ptr<const ColumnTable> ct,
                          t.EnsureColumnar());
  if (group_keys.empty()) {
    // Single global batch, like the row wrapper.
    ESHARP_ASSIGN_OR_RETURN(ColumnTable out,
                            ColumnarHashAggregate(*ct, group_keys, aggs));
    MeterRows(ctx, t.num_rows(), out.num_rows());
    return WrapColumnar(std::move(out));
  }
  for (const AggSpec& a : aggs) {
    if (a.arg) ESHARP_RETURN_NOT_OK(a.arg->Bind(t.schema()));
    if (a.output) ESHARP_RETURN_NOT_OK(a.output->Bind(t.schema()));
  }
  const size_t p = std::max<size_t>(1, ctx.num_partitions);
  ESHARP_ASSIGN_OR_RETURN(std::vector<ColumnTable> parts,
                          ColumnarHashPartition(*ct, group_keys, p));
  std::vector<ColumnTable> results(p);
  ESHARP_RETURN_NOT_OK(RunPartitioned(ctx, p, [&](size_t i) -> Status {
    ESHARP_ASSIGN_OR_RETURN(results[i],
                            ColumnarHashAggregate(parts[i], group_keys, aggs));
    return Status::OK();
  }));
  ESHARP_ASSIGN_OR_RETURN(ColumnTable out, ColumnarConcat(results));
  MeterRows(ctx, t.num_rows(), out.num_rows(), p);
  return WrapColumnar(std::move(out));
}

}  // namespace

Result<std::vector<Table>> HashPartition(const Table& t,
                                         const std::vector<std::string>& keys,
                                         size_t num_partitions) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be > 0");
  }
  ESHARP_ASSIGN_OR_RETURN(std::vector<size_t> kidx,
                          ResolveKeyIndexes(t.schema(), keys));
  std::vector<Table> parts;
  parts.reserve(num_partitions);
  for (size_t i = 0; i < num_partitions; ++i) parts.emplace_back(t.schema());
  for (const Row& row : t.rows()) {
    uint64_t h = HashRowKeys(row, kidx);
    parts[h % num_partitions].AppendRowUnchecked(row);
  }
  return parts;
}

std::vector<Table> RoundRobinPartition(const Table& t, size_t num_partitions) {
  num_partitions = std::max<size_t>(1, num_partitions);
  std::vector<Table> parts;
  parts.reserve(num_partitions);
  for (size_t i = 0; i < num_partitions; ++i) parts.emplace_back(t.schema());
  // Contiguous ranges rather than strict round-robin: preserves input order
  // within a chunk, which keeps ConcatTables deterministic.
  size_t per = (t.num_rows() + num_partitions - 1) / num_partitions;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    parts[per == 0 ? 0 : i / per].AppendRowUnchecked(t.row(i));
  }
  return parts;
}

Result<Table> ConcatTables(const std::vector<Table>& parts) {
  if (parts.empty()) return Status::InvalidArgument("no partitions to concat");
  Table out(parts[0].schema());
  size_t total = 0;
  for (const Table& p : parts) total += p.num_rows();
  out.Reserve(total);
  for (const Table& p : parts) {
    if (p.num_columns() != out.num_columns()) {
      return Status::Internal("partition schema mismatch in concat");
    }
    for (const Row& r : p.rows()) out.AppendRowUnchecked(r);
  }
  return out;
}

Result<Table> ParallelHashJoin(const ExecContext& ctx, const Table& left,
                               const Table& right,
                               const std::vector<std::string>& left_keys,
                               const std::vector<std::string>& right_keys,
                               JoinType type, JoinStrategy strategy) {
  if (ctx.use_columnar) {
    Result<Table> columnar = ColumnarParallelHashJoin(
        ctx, left, right, left_keys, right_keys, type, strategy);
    if (columnar.ok() || !IsColumnarUnsupported(columnar.status())) {
      return columnar;
    }
  }
  const size_t p = std::max<size_t>(1, ctx.num_partitions);
  std::vector<Table> left_parts, right_parts;
  if (strategy == JoinStrategy::kReplicated) {
    // Probe side split arbitrarily; build side replicated to every worker.
    // Touch the build side's rows on the coordinator first: lazy columnar
    // tables materialize on first access, which must not race across the
    // workers that share `right`.
    (void)right.rows();
    left_parts = RoundRobinPartition(left, p);
  } else {
    ESHARP_ASSIGN_OR_RETURN(left_parts, HashPartition(left, left_keys, p));
    ESHARP_ASSIGN_OR_RETURN(right_parts, HashPartition(right, right_keys, p));
  }

  std::vector<Table> results(p);
  ESHARP_RETURN_NOT_OK(RunPartitioned(ctx, p, [&](size_t i) -> Status {
    const Table& build =
        strategy == JoinStrategy::kReplicated ? right : right_parts[i];
    ESHARP_ASSIGN_OR_RETURN(
        results[i], HashJoin(left_parts[i], build, left_keys, right_keys, type));
    return Status::OK();
  }));
  ESHARP_ASSIGN_OR_RETURN(Table out, ConcatTables(results));
  MeterRows(ctx, left.num_rows() + right.num_rows(), out.num_rows(), p);
  return out;
}

Result<Table> ParallelHashAggregate(const ExecContext& ctx, const Table& t,
                                    const std::vector<std::string>& group_keys,
                                    const std::vector<AggSpec>& aggs) {
  if (ctx.use_columnar) {
    Result<Table> columnar =
        ColumnarParallelHashAggregate(ctx, t, group_keys, aggs);
    if (columnar.ok() || !IsColumnarUnsupported(columnar.status())) {
      return columnar;
    }
  }
  const size_t p = std::max<size_t>(1, ctx.num_partitions);
  if (group_keys.empty()) {
    // Two-phase: local partial aggregation over arbitrary chunks, then a
    // final single-row aggregate over the partials. For simplicity we merge
    // by recomputing over concatenated partials only for mergeable shapes;
    // the global case in this codebase is only used with COUNT/SUM/MIN/MAX,
    // which re-aggregate correctly when SUM is applied to partial SUMs etc.
    // To stay fully general we simply run the kernel single-threaded here.
    ESHARP_ASSIGN_OR_RETURN(Table out, HashAggregate(t, group_keys, aggs));
    MeterRows(ctx, t.num_rows(), out.num_rows());  // single batch
    return out;
  }
  for (const AggSpec& a : aggs) {
    if (a.arg) ESHARP_RETURN_NOT_OK(a.arg->Bind(t.schema()));
    if (a.output) ESHARP_RETURN_NOT_OK(a.output->Bind(t.schema()));
  }
  ESHARP_ASSIGN_OR_RETURN(std::vector<Table> parts,
                          HashPartition(t, group_keys, p));
  std::vector<Table> results(p);
  ESHARP_RETURN_NOT_OK(RunPartitioned(ctx, p, [&](size_t i) -> Status {
    ESHARP_ASSIGN_OR_RETURN(results[i],
                            HashAggregate(parts[i], group_keys, aggs));
    return Status::OK();
  }));
  // Empty partitions may have kNull aggregate column types; pick a non-empty
  // partition's schema as canonical.
  size_t canonical = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (results[i].num_rows() > 0) {
      canonical = i;
      break;
    }
  }
  Table out(results[canonical].schema());
  for (const Table& part : results) {
    for (const Row& r : part.rows()) out.AppendRowUnchecked(r);
  }
  MeterRows(ctx, t.num_rows(), out.num_rows(), p);
  return out;
}

Result<Table> ParallelFilter(const ExecContext& ctx, const Table& t,
                             const ExprPtr& pred) {
  if (ctx.use_columnar) {
    Result<Table> columnar = ColumnarParallelFilter(ctx, t, pred);
    if (columnar.ok() || !IsColumnarUnsupported(columnar.status())) {
      return columnar;
    }
  }
  // Pre-bind against the shared schema so workers' Bind calls are no-ops
  // (expression binding caches are not thread-safe to populate).
  ESHARP_RETURN_NOT_OK(pred->Bind(t.schema()));
  const size_t p = std::max<size_t>(1, ctx.num_partitions);
  std::vector<Table> parts = RoundRobinPartition(t, p);
  std::vector<Table> results(p);
  ESHARP_RETURN_NOT_OK(RunPartitioned(ctx, p, [&](size_t i) -> Status {
    ESHARP_ASSIGN_OR_RETURN(results[i], Filter(parts[i], pred));
    return Status::OK();
  }));
  ESHARP_ASSIGN_OR_RETURN(Table out, ConcatTables(results));
  MeterRows(ctx, t.num_rows(), out.num_rows(), p);
  return out;
}

Result<Table> ParallelProject(const ExecContext& ctx, const Table& t,
                              const std::vector<ProjectedColumn>& cols) {
  if (ctx.use_columnar) {
    Result<Table> columnar = ColumnarParallelProject(ctx, t, cols);
    if (columnar.ok() || !IsColumnarUnsupported(columnar.status())) {
      return columnar;
    }
  }
  for (const ProjectedColumn& c : cols) {
    ESHARP_RETURN_NOT_OK(c.expr->Bind(t.schema()));
  }
  const size_t p = std::max<size_t>(1, ctx.num_partitions);
  std::vector<Table> parts = RoundRobinPartition(t, p);
  std::vector<Table> results(p);
  ESHARP_RETURN_NOT_OK(RunPartitioned(ctx, p, [&](size_t i) -> Status {
    ESHARP_ASSIGN_OR_RETURN(results[i], Project(parts[i], cols));
    return Status::OK();
  }));
  // Empty chunks infer kNull types; use a non-empty chunk's schema.
  size_t canonical = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (results[i].num_rows() > 0) {
      canonical = i;
      break;
    }
  }
  Table out(results[canonical].schema());
  for (const Table& part : results) {
    for (const Row& r : part.rows()) out.AppendRowUnchecked(r);
  }
  MeterRows(ctx, t.num_rows(), out.num_rows(), p);
  return out;
}

}  // namespace esharp::sql
