#ifndef ESHARP_SQLENGINE_SCHEMA_H_
#define ESHARP_SQLENGINE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sqlengine/value.h"

namespace esharp::sql {

/// \brief A named, typed column.
struct Column {
  std::string name;
  DataType type = DataType::kNull;
};

/// \brief Ordered list of columns describing a table's rows.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  /// Number of columns.
  size_t num_columns() const { return columns_.size(); }

  /// Column at ordinal i.
  const Column& column(size_t i) const { return columns_[i]; }

  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column with the given name, or error if absent/duplicated
  /// lookups are by the first match (join outputs may carry prefixed names).
  Result<size_t> IndexOf(const std::string& name) const;

  /// True iff a column with the given name exists.
  bool Contains(const std::string& name) const;

  /// Appends a column.
  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  /// Concatenates two schemas, prefixing clashing right-side names with
  /// `rightPrefix` (used by joins).
  static Schema Concat(const Schema& left, const Schema& right,
                       const std::string& right_prefix);

  /// "name:TYPE, name:TYPE, ..." rendering.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace esharp::sql

#endif  // ESHARP_SQLENGINE_SCHEMA_H_
