#include "sqlengine/schema.h"

namespace esharp::sql {

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '", name, "' in schema [",
                          ToString(), "]");
}

bool Schema::Contains(const std::string& name) const {
  for (const Column& c : columns_) {
    if (c.name == name) return true;
  }
  return false;
}

Schema Schema::Concat(const Schema& left, const Schema& right,
                      const std::string& right_prefix) {
  Schema out = left;
  for (const Column& c : right.columns()) {
    Column copy = c;
    if (left.Contains(c.name)) copy.name = right_prefix + c.name;
    out.AddColumn(std::move(copy));
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += DataTypeToString(columns_[i].type);
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace esharp::sql
