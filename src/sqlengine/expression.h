#ifndef ESHARP_SQLENGINE_EXPRESSION_H_
#define ESHARP_SQLENGINE_EXPRESSION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sqlengine/column.h"
#include "sqlengine/schema.h"
#include "sqlengine/table.h"

namespace esharp::sql {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// \brief Scalar expression tree evaluated against one row.
///
/// Supports column references, literals, arithmetic, comparisons, boolean
/// connectives and scalar UDFs. UDFs are the hook through which community
/// detection injects ModulGain(query1, query2) into the WHERE clause, exactly
/// as the paper's Fig. 4 pseudo-SQL does.
class Expr {
 public:
  enum class Kind {
    kColumn,   // reference by name, bound to an index before evaluation
    kLiteral,  // constant Value
    kBinary,   // arithmetic / comparison / boolean op
    kUnary,    // NOT, negate
    kUdf,      // scalar user-defined function
  };

  enum class BinaryOp {
    kAdd, kSub, kMul, kDiv,
    kEq, kNe, kLt, kLe, kGt, kGe,
    kAnd, kOr,
  };

  enum class UnaryOp { kNot, kNeg };

  virtual ~Expr() = default;

  Kind kind() const { return kind_; }

  /// Resolves all column references against `schema`; must be called before
  /// Eval. Binding is idempotent and cheap.
  virtual Status Bind(const Schema& schema) const = 0;

  /// Evaluates against a row of the schema passed to Bind().
  virtual Result<Value> Eval(const Row& row) const = 0;

  /// Evaluates column-at-a-time against a table whose schema was passed to
  /// Bind(), producing one value per row. The base implementation walks rows
  /// through Eval() (correct for any expression); the concrete nodes
  /// override it with vectorized loops. Returns kNotImplemented when the
  /// result stream has no single-typed column representation, in which case
  /// callers fall back to the row kernels. Note that AND/OR do not
  /// short-circuit column-at-a-time: both operand columns are evaluated and
  /// type-checked in full, so a predicate relying on short-circuiting to
  /// hide a typing error on skipped rows errors here instead (well-typed
  /// queries — everything the pipeline generates — are unaffected).
  virtual Result<ColumnVec> EvalColumn(const ColumnTable& table) const;

  /// Debug rendering ("(a + 1) > b").
  virtual std::string ToString() const = 0;

 protected:
  explicit Expr(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

/// Scalar UDF: receives the evaluated argument values.
using ScalarUdf = std::function<Result<Value>(const std::vector<Value>&)>;

/// \name Expression factories
/// @{
ExprPtr Col(std::string name);
/// \brief SQL-style column reference: binds to the exact column name if it
/// exists, otherwise to a UNIQUE column whose name ends in ".name" (i.e. a
/// bare reference into an aliased table). Ambiguity is a binding error.
ExprPtr ColFlexible(std::string name);
ExprPtr Lit(Value v);
ExprPtr LitInt(int64_t v);
ExprPtr LitDouble(double v);
ExprPtr LitString(std::string v);
ExprPtr LitBool(bool v);
ExprPtr BinaryExpr(Expr::BinaryOp op, ExprPtr left, ExprPtr right);
ExprPtr UnaryExpr(Expr::UnaryOp op, ExprPtr operand);
ExprPtr Udf(std::string name, ScalarUdf fn, std::vector<ExprPtr> args);

inline ExprPtr Add(ExprPtr a, ExprPtr b) { return BinaryExpr(Expr::BinaryOp::kAdd, a, b); }
inline ExprPtr Sub(ExprPtr a, ExprPtr b) { return BinaryExpr(Expr::BinaryOp::kSub, a, b); }
inline ExprPtr Mul(ExprPtr a, ExprPtr b) { return BinaryExpr(Expr::BinaryOp::kMul, a, b); }
inline ExprPtr Div(ExprPtr a, ExprPtr b) { return BinaryExpr(Expr::BinaryOp::kDiv, a, b); }
inline ExprPtr Eq(ExprPtr a, ExprPtr b) { return BinaryExpr(Expr::BinaryOp::kEq, a, b); }
inline ExprPtr Ne(ExprPtr a, ExprPtr b) { return BinaryExpr(Expr::BinaryOp::kNe, a, b); }
inline ExprPtr Lt(ExprPtr a, ExprPtr b) { return BinaryExpr(Expr::BinaryOp::kLt, a, b); }
inline ExprPtr Le(ExprPtr a, ExprPtr b) { return BinaryExpr(Expr::BinaryOp::kLe, a, b); }
inline ExprPtr Gt(ExprPtr a, ExprPtr b) { return BinaryExpr(Expr::BinaryOp::kGt, a, b); }
inline ExprPtr Ge(ExprPtr a, ExprPtr b) { return BinaryExpr(Expr::BinaryOp::kGe, a, b); }
inline ExprPtr And(ExprPtr a, ExprPtr b) { return BinaryExpr(Expr::BinaryOp::kAnd, a, b); }
inline ExprPtr Or(ExprPtr a, ExprPtr b) { return BinaryExpr(Expr::BinaryOp::kOr, a, b); }
inline ExprPtr Not(ExprPtr a) { return UnaryExpr(Expr::UnaryOp::kNot, a); }
/// @}

}  // namespace esharp::sql

#endif  // ESHARP_SQLENGINE_EXPRESSION_H_
