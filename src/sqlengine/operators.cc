#include "sqlengine/operators.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace esharp::sql {

Result<std::vector<size_t>> ResolveKeyIndexes(
    const Schema& schema, const std::vector<std::string>& keys) {
  std::vector<size_t> out;
  out.reserve(keys.size());
  for (const std::string& k : keys) {
    // Exact name first; otherwise a UNIQUE ".k" suffix, so bare SQL key
    // references resolve against alias-qualified schemas.
    if (schema.Contains(k)) {
      ESHARP_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(k));
      out.push_back(idx);
      continue;
    }
    std::string suffix = "." + k;
    size_t found = SIZE_MAX;
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      const std::string& col = schema.column(i).name;
      if (col.size() > suffix.size() &&
          col.compare(col.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        if (found != SIZE_MAX) {
          return Status::InvalidArgument("ambiguous key '", k,
                                         "' in schema [", schema.ToString(),
                                         "]");
        }
        found = i;
      }
    }
    if (found == SIZE_MAX) {
      return Status::NotFound("no column matching key '", k,
                              "' in schema [", schema.ToString(), "]");
    }
    out.push_back(found);
  }
  return out;
}

uint64_t HashRowKeys(const Row& row, const std::vector<size_t>& key_indexes) {
  uint64_t h = 0x87c37b91114253d5ULL;
  for (size_t idx : key_indexes) {
    h = HashCombine(h, row[idx].Hash());
  }
  return h;
}

bool RowKeysEqual(const Row& a, const std::vector<size_t>& a_idx,
                  const Row& b, const std::vector<size_t>& b_idx) {
  for (size_t i = 0; i < a_idx.size(); ++i) {
    if (a[a_idx[i]].Compare(b[b_idx[i]]) != 0) return false;
  }
  return true;
}

Result<Table> Filter(const Table& t, const ExprPtr& pred) {
  ESHARP_RETURN_NOT_OK(pred->Bind(t.schema()));
  Table out(t.schema());
  for (const Row& row : t.rows()) {
    ESHARP_ASSIGN_OR_RETURN(Value v, pred->Eval(row));
    if (v.type() != DataType::kBool) {
      return Status::InvalidArgument("filter predicate is not BOOL: ",
                                     pred->ToString());
    }
    if (v.bool_value()) out.AppendRowUnchecked(row);
  }
  return out;
}

Result<Table> Project(const Table& t, const std::vector<ProjectedColumn>& cols) {
  for (const ProjectedColumn& c : cols) {
    ESHARP_RETURN_NOT_OK(c.expr->Bind(t.schema()));
  }
  std::vector<Row> rows;
  rows.reserve(t.num_rows());
  Schema schema;
  bool schema_set = false;
  for (const Row& row : t.rows()) {
    Row out_row;
    out_row.reserve(cols.size());
    for (const ProjectedColumn& c : cols) {
      ESHARP_ASSIGN_OR_RETURN(Value v, c.expr->Eval(row));
      out_row.push_back(std::move(v));
    }
    if (!schema_set) {
      for (size_t i = 0; i < cols.size(); ++i) {
        schema.AddColumn({cols[i].name, out_row[i].type()});
      }
      schema_set = true;
    }
    rows.push_back(std::move(out_row));
  }
  if (!schema_set) {
    for (const ProjectedColumn& c : cols) {
      schema.AddColumn({c.name, DataType::kNull});
    }
  }
  return Table(std::move(schema), std::move(rows));
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<std::string>& left_keys,
                       const std::vector<std::string>& right_keys,
                       JoinType type) {
  if (left_keys.size() != right_keys.size()) {
    return Status::InvalidArgument("join key arity mismatch: ",
                                   left_keys.size(), " vs ",
                                   right_keys.size());
  }
  ESHARP_ASSIGN_OR_RETURN(std::vector<size_t> lidx,
                          ResolveKeyIndexes(left.schema(), left_keys));
  ESHARP_ASSIGN_OR_RETURN(std::vector<size_t> ridx,
                          ResolveKeyIndexes(right.schema(), right_keys));

  Schema out_schema = Schema::Concat(left.schema(), right.schema(), "r_");
  Table out(out_schema);

  // Build side: the right table.
  std::unordered_multimap<uint64_t, size_t> build;
  build.reserve(right.num_rows() * 2);
  for (size_t i = 0; i < right.num_rows(); ++i) {
    build.emplace(HashRowKeys(right.row(i), ridx), i);
  }

  const size_t right_width = right.schema().num_columns();
  for (const Row& lrow : left.rows()) {
    uint64_t h = HashRowKeys(lrow, lidx);
    auto range = build.equal_range(h);
    bool matched = false;
    for (auto it = range.first; it != range.second; ++it) {
      const Row& rrow = right.row(it->second);
      if (!RowKeysEqual(lrow, lidx, rrow, ridx)) continue;
      matched = true;
      Row out_row = lrow;
      out_row.insert(out_row.end(), rrow.begin(), rrow.end());
      out.AppendRowUnchecked(std::move(out_row));
    }
    if (!matched && type == JoinType::kLeftOuter) {
      Row out_row = lrow;
      out_row.resize(out_row.size() + right_width);  // NULL padding
      out.AppendRowUnchecked(std::move(out_row));
    }
  }
  return out;
}

namespace {

// A group key materialized as a vector of values, hashable and comparable.
struct GroupKey {
  std::vector<Value> values;

  bool operator==(const GroupKey& other) const {
    if (values.size() != other.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (values[i].Compare(other.values[i]) != 0) return false;
    }
    return true;
  }
};

struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const {
    uint64_t h = 0x2545F4914F6CDD1DULL;
    for (const Value& v : k.values) h = HashCombine(h, v.Hash());
    return static_cast<size_t>(h);
  }
};

}  // namespace

Result<Table> HashAggregate(const Table& t,
                            const std::vector<std::string>& group_keys,
                            const std::vector<AggSpec>& aggs) {
  ESHARP_ASSIGN_OR_RETURN(std::vector<size_t> kidx,
                          ResolveKeyIndexes(t.schema(), group_keys));
  for (const AggSpec& a : aggs) {
    if (a.arg) ESHARP_RETURN_NOT_OK(a.arg->Bind(t.schema()));
    if (a.output) ESHARP_RETURN_NOT_OK(a.output->Bind(t.schema()));
  }

  std::unordered_map<GroupKey, std::vector<AggAccumulator>, GroupKeyHash>
      groups;
  std::vector<GroupKey> order;  // first-seen order for deterministic output

  for (const Row& row : t.rows()) {
    GroupKey key;
    key.values.reserve(kidx.size());
    for (size_t i : kidx) key.values.push_back(row[i]);
    auto it = groups.find(key);
    if (it == groups.end()) {
      std::vector<AggAccumulator> accs;
      accs.reserve(aggs.size());
      for (const AggSpec& a : aggs) accs.emplace_back(a.kind);
      it = groups.emplace(key, std::move(accs)).first;
      order.push_back(key);
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      Value arg = Value::Bool(true);  // COUNT(*) counts every row
      if (aggs[a].arg) {
        ESHARP_ASSIGN_OR_RETURN(arg, aggs[a].arg->Eval(row));
      }
      Value output;
      if (aggs[a].output) {
        ESHARP_ASSIGN_OR_RETURN(output, aggs[a].output->Eval(row));
      }
      it->second[a].Add(arg, output);
    }
  }

  // Global aggregate over empty input still yields one row of empty accs.
  if (group_keys.empty() && groups.empty()) {
    std::vector<AggAccumulator> accs;
    for (const AggSpec& a : aggs) accs.emplace_back(a.kind);
    groups.emplace(GroupKey{}, std::move(accs));
    order.push_back(GroupKey{});
  }

  Schema out_schema;
  for (size_t i = 0; i < group_keys.size(); ++i) {
    ESHARP_ASSIGN_OR_RETURN(size_t idx, t.schema().IndexOf(group_keys[i]));
    out_schema.AddColumn({group_keys[i], t.schema().column(idx).type});
  }
  // Aggregate output types are data-dependent; declared after the first
  // group's Finish() below, defaulting to kNull.
  size_t agg_col_start = out_schema.num_columns();
  for (const AggSpec& a : aggs) out_schema.AddColumn({a.name, DataType::kNull});

  Table out(out_schema);
  out.Reserve(order.size());
  bool types_set = false;
  for (const GroupKey& key : order) {
    Row row = key.values;
    const std::vector<AggAccumulator>& accs = groups.at(key);
    for (size_t a = 0; a < accs.size(); ++a) {
      ESHARP_ASSIGN_OR_RETURN(Value v, accs[a].Finish());
      row.push_back(std::move(v));
    }
    if (!types_set) {
      Schema refined = out.schema();
      // Rebuild the schema with observed aggregate types.
      Schema s2;
      for (size_t c = 0; c < refined.num_columns(); ++c) {
        Column col = refined.column(c);
        if (c >= agg_col_start) col.type = row[c].type();
        s2.AddColumn(col);
      }
      out = Table(s2, {});
      out.Reserve(order.size());
      types_set = true;
    }
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

Result<Table> UnionAll(const Table& a, const Table& b) {
  if (a.num_columns() != b.num_columns()) {
    return Status::InvalidArgument("UNION ALL arity mismatch: ",
                                   a.num_columns(), " vs ", b.num_columns());
  }
  Table out = a;
  for (const Row& r : b.rows()) out.AppendRowUnchecked(r);
  return out;
}

Result<Table> Distinct(const Table& t) {
  std::unordered_set<GroupKey, GroupKeyHash> seen;
  seen.reserve(t.num_rows() * 2);
  Table out(t.schema());
  for (const Row& row : t.rows()) {
    GroupKey key{row};
    if (seen.insert(std::move(key)).second) out.AppendRowUnchecked(row);
  }
  return out;
}

Result<Table> SortBy(const Table& t, const std::vector<std::string>& keys,
                     const std::vector<bool>& ascending) {
  ESHARP_ASSIGN_OR_RETURN(std::vector<size_t> kidx,
                          ResolveKeyIndexes(t.schema(), keys));
  Table out = t;
  std::stable_sort(
      out.mutable_rows().begin(), out.mutable_rows().end(),
      [&](const Row& a, const Row& b) {
        for (size_t i = 0; i < kidx.size(); ++i) {
          bool asc = i < ascending.size() ? ascending[i] : true;
          int c = a[kidx[i]].Compare(b[kidx[i]]);
          if (c != 0) return asc ? c < 0 : c > 0;
        }
        return false;
      });
  return out;
}

Result<Table> Limit(const Table& t, size_t n) {
  if (n >= t.num_rows()) return t;
  std::vector<Row> rows(t.rows().begin(), t.rows().begin() + n);
  return Table(t.schema(), std::move(rows));
}

}  // namespace esharp::sql
