#ifndef ESHARP_SQLENGINE_COLUMNAR_H_
#define ESHARP_SQLENGINE_COLUMNAR_H_

#include <vector>

#include "common/result.h"
#include "sqlengine/column.h"
#include "sqlengine/operators.h"

namespace esharp::sql {

/// \name Vectorized operator kernels
///
/// Column-at-a-time counterparts of the row kernels in operators.h, used by
/// the parallel wrappers in parallel.cc on the clustering hot path. Every
/// kernel produces exactly the same multiset of rows (and the same
/// partition routing) as its row-store reference implementation; the
/// randomized suite in tests/sqlengine_columnar_test.cc holds them to that.
///
/// Kernels return kNotImplemented (IsColumnarUnsupported) when the input
/// has no columnar equivalent — mixed-type columns — in which case the
/// caller falls back to the row kernel. Genuine errors (mistyped
/// predicates, division by zero, unknown keys) use the same codes and
/// messages as the row kernels.
/// @{

/// Filter via a selection vector: evaluates `pred` column-at-a-time into a
/// BOOL column, collects the indexes of true rows, and gathers them.
Result<ColumnTable> ColumnarFilter(const ColumnTable& t, const ExprPtr& pred);

/// Projection: evaluates every expression column-at-a-time. Output column
/// types are the evaluated column types (kNull for empty inputs), matching
/// the row kernel's first-row inference on type-stable expressions.
Result<ColumnTable> ColumnarProject(const ColumnTable& t,
                                    const std::vector<ProjectedColumn>& cols);

/// \brief Reusable build-side index for the columnar hash join: per-row key
/// hashes plus a bucket chain. Built once and probed by many workers
/// concurrently (read-only), so the replicated-join strategy indexes the
/// build side one time instead of once per partition.
struct ColumnarJoinIndex {
  std::vector<size_t> key_idx;
  std::vector<uint64_t> hashes;
  /// heads[h % mask+1] -> first row with that hash bucket, chained via next.
  std::vector<uint32_t> heads;  // power-of-two bucket table, kEmpty sentinel
  std::vector<uint32_t> next;
  static constexpr uint32_t kEmpty = UINT32_MAX;

  static Result<ColumnarJoinIndex> Build(const ColumnTable& t,
                                         const std::vector<std::string>& keys);
};

/// Hash join of `left` against an indexed build side. `out_schema` must be
/// Schema::Concat(left.schema(), build.schema(), "r_").
Result<ColumnTable> ColumnarHashJoinProbe(const ColumnTable& left,
                                          const std::vector<std::string>& left_keys,
                                          const ColumnTable& build,
                                          const ColumnarJoinIndex& index,
                                          JoinType type);

/// Self-contained join (builds the index internally); reference entry point.
Result<ColumnTable> ColumnarHashJoin(const ColumnTable& left,
                                     const ColumnTable& right,
                                     const std::vector<std::string>& left_keys,
                                     const std::vector<std::string>& right_keys,
                                     JoinType type = JoinType::kInner);

/// GROUP BY over precomputed per-row key hashes; aggregates accumulate into
/// typed arrays column-at-a-time. Groups appear in first-seen order like
/// the row kernel. Aggregate expressions must be pre-bound by the caller
/// when sharing across threads (same contract as the row kernels).
Result<ColumnTable> ColumnarHashAggregate(const ColumnTable& t,
                                          const std::vector<std::string>& group_keys,
                                          const std::vector<AggSpec>& aggs);

/// Hash partitioning by scattering column slices: routes every row to the
/// same partition as the row-store HashPartition (identical hash), but
/// copies typed payload cells instead of Rows; dictionaries are shared.
Result<std::vector<ColumnTable>> ColumnarHashPartition(
    const ColumnTable& t, const std::vector<std::string>& keys,
    size_t num_partitions);

/// Contiguous-range split, identical chunking to RoundRobinPartition.
std::vector<ColumnTable> ColumnarRoundRobinPartition(const ColumnTable& t,
                                                     size_t num_partitions);

/// Concatenates partitions. Columns whose dictionaries are pointer-equal
/// share them copy-free; otherwise ids are remapped through a merged
/// dictionary. Empty partitions (with kNull column types) adopt the
/// canonical non-empty schema like the row path.
Result<ColumnTable> ColumnarConcat(const std::vector<ColumnTable>& parts);

/// @}

}  // namespace esharp::sql

#endif  // ESHARP_SQLENGINE_COLUMNAR_H_
