#ifndef ESHARP_SQLENGINE_COLUMN_H_
#define ESHARP_SQLENGINE_COLUMN_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "sqlengine/schema.h"
#include "sqlengine/value.h"

namespace esharp::sql {

class Table;
using Row = std::vector<Value>;

/// \brief Append-only interned string storage shared by dictionary-encoded
/// columns.
///
/// Interning maps each distinct string to a dense uint32 id and caches its
/// Fnv1a64 hash, so hashing a string column costs one table lookup per row
/// instead of re-hashing the bytes, and equality within one dictionary is an
/// id compare. Dictionaries are shared across tables via shared_ptr;
/// mutation (Intern) is only legal on the coordinating thread while the
/// dictionary is still exclusively owned — operator kernels treat them as
/// read-only.
class StringDict {
 public:
  /// Returns the id of `s`, interning it on first sight.
  uint32_t Intern(std::string_view s);

  const std::string& at(uint32_t id) const { return strings_[id]; }
  uint64_t hash(uint32_t id) const { return hashes_[id]; }
  size_t size() const { return strings_.size(); }

  /// Total bytes of interned string payload.
  uint64_t PayloadBytes() const { return payload_bytes_; }

 private:
  struct SvHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };
  std::vector<std::string> strings_;
  std::vector<uint64_t> hashes_;
  std::unordered_map<std::string, uint32_t, SvHash, SvEq> index_;
  uint64_t payload_bytes_ = 0;
};

/// \brief Validity bitmap: bit i set means row i is NULL. An empty bitmap
/// means "no nulls", so the common all-valid case costs nothing.
class NullBitmap {
 public:
  bool AnyNull() const { return null_count_ > 0; }
  size_t null_count() const { return null_count_; }

  bool IsNull(size_t i) const {
    if (null_count_ == 0) return false;
    size_t w = i >> 6;
    if (w >= words_.size()) return false;  // rows appended after last null
    return (words_[w] >> (i & 63)) & 1;
  }

  /// Marks row i as NULL; `n` is a capacity hint (total rows when known).
  /// Words grow lazily, so incrementally built columns may set bits past n.
  void SetNull(size_t i, size_t n) {
    size_t need = (std::max(i + 1, n) + 63) / 64;
    if (words_.size() < need) words_.resize(need, 0);
    uint64_t& w = words_[i >> 6];
    uint64_t bit = uint64_t{1} << (i & 63);
    if (!(w & bit)) {
      w |= bit;
      ++null_count_;
    }
  }

  void Clear() {
    words_.clear();
    null_count_ = 0;
  }

 private:
  std::vector<uint64_t> words_;
  size_t null_count_ = 0;
};

/// \brief One typed column: exactly one of the payload vectors is populated
/// according to `type`, plus an optional null bitmap (null cells hold a
/// zero/empty payload slot so the vectors stay index-aligned).
///
///   kBool   -> bools (0/1)
///   kInt64  -> ints
///   kDouble -> doubles
///   kString -> str_ids into `dict`
///   kNull   -> no payload; every row is NULL (length tracks the row count)
struct ColumnVec {
  DataType type = DataType::kNull;
  std::vector<uint8_t> bools;
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<uint32_t> str_ids;
  std::shared_ptr<const StringDict> dict;
  NullBitmap nulls;
  /// Row count for kNull columns (typed columns use their payload size).
  size_t null_length = 0;

  size_t size() const {
    switch (type) {
      case DataType::kBool: return bools.size();
      case DataType::kInt64: return ints.size();
      case DataType::kDouble: return doubles.size();
      case DataType::kString: return str_ids.size();
      case DataType::kNull: return null_length;
    }
    return 0;
  }

  /// Cell as a row-store Value (materialization / slow paths).
  Value ValueAt(size_t i) const;

  /// Stable cell hash, identical to Value::Hash() of ValueAt(i).
  uint64_t HashAt(size_t i) const;

  /// Reserves payload capacity for `n` rows of this column's type.
  void Reserve(size_t n);
};

/// \brief Builds one typed ColumnVec from a stream of row-store Values — the
/// bridge used by expression fallback paths and UDF results. The first
/// non-null value fixes the column type; a later non-null value of a
/// different type yields kNotImplemented (no single-typed representation),
/// which callers treat as "use the row kernels".
class ColumnBuilder {
 public:
  explicit ColumnBuilder(size_t expected_rows = 0) {
    expected_rows_ = expected_rows;
  }

  Status Append(const Value& v);

  /// Finalizes the column (kNull type when every value was NULL).
  ColumnVec Finish();

 private:
  ColumnVec col_;
  std::shared_ptr<StringDict> dict_;  // mutable while building
  size_t rows_ = 0;
  size_t expected_rows_ = 0;
};

/// \brief Three-way comparison of two cells with exactly Value::Compare
/// semantics (NULL < BOOL < numeric family < STRING; int/double compare
/// numerically) but without constructing Values. Same-dictionary string
/// cells equality-check by id first.
int CompareCells(const ColumnVec& a, size_t i, const ColumnVec& b, size_t j);

/// \brief Column-store relation: a Schema plus one typed ColumnVec per
/// schema column, all of equal length.
///
/// This is the execution format of the vectorized kernels in columnar.h.
/// Tables convert losslessly to/from the row store (Table::EnsureColumnar /
/// ToTable) with one caveat: a row-store column whose non-null cells mix
/// types (legal in the dynamically-typed row store, never produced by the
/// clustering pipeline) has no columnar equivalent — FromTable returns
/// kNotImplemented and the caller falls back to the row kernels.
class ColumnTable {
 public:
  ColumnTable() = default;
  explicit ColumnTable(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  Schema& mutable_schema() { return schema_; }
  size_t num_columns() const { return cols_.size(); }
  /// Explicit row count, so zero-column relations keep their cardinality.
  size_t num_rows() const { return num_rows_; }
  void set_num_rows(size_t n) { num_rows_ = n; }

  const ColumnVec& col(size_t i) const { return cols_[i]; }
  ColumnVec& mutable_col(size_t i) { return cols_[i]; }
  void AddColumn(ColumnVec c) {
    num_rows_ = c.size();
    cols_.push_back(std::move(c));
  }

  /// Lossless conversion from the row store; kNotImplemented for mixed-type
  /// columns (see class comment).
  static Result<ColumnTable> FromTable(const Table& t);

  /// Materializes the row-store representation.
  std::vector<Row> MaterializeRows() const;
  Row MaterializeRow(size_t i) const;

  /// Approximate logical footprint using the row-store per-cell accounting
  /// (Value::SizeBytes), so ResourceMeter IO totals stay comparable across
  /// the two execution paths.
  uint64_t SizeBytes() const;

  /// New table with the rows selected by `idx`, in order. An index of
  /// UINT32_MAX emits an all-NULL row (left-outer join padding).
  /// Dictionaries are shared, not copied.
  ColumnTable Gather(const std::vector<uint32_t>& idx) const;

  /// Contiguous row range [begin, begin+count), dictionaries shared.
  ColumnTable Slice(size_t begin, size_t count) const;

 private:
  Schema schema_;
  std::vector<ColumnVec> cols_;
  size_t num_rows_ = 0;
};

/// \brief Per-row combined hash of the selected columns, identical to
/// HashRowKeys over the materialized rows — row and columnar execution
/// therefore route every row to the same hash partition.
void HashKeyColumns(const ColumnTable& t, const std::vector<size_t>& key_idx,
                    std::vector<uint64_t>* hashes);

/// \brief Exact multiset equality of two relations (same rows up to order),
/// comparing columns directly — the columnar replacement for
/// sort-rows-and-compare convergence checks.
bool ColumnTablesEqualAsMultisets(const ColumnTable& a, const ColumnTable& b);

/// \brief True iff `s` is the "no columnar equivalent, use the row kernels"
/// signal (as opposed to a genuine execution error that must propagate).
inline bool IsColumnarUnsupported(const Status& s) {
  return s.IsNotImplemented();
}

}  // namespace esharp::sql

#endif  // ESHARP_SQLENGINE_COLUMN_H_
