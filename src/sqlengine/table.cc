#include "sqlengine/table.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace esharp::sql {

Table Table::FromColumnar(std::shared_ptr<const ColumnTable> columnar) {
  Table t(columnar->schema());
  t.columnar_ = std::move(columnar);
  t.rows_valid_ = false;
  return t;
}

void Table::MaterializeFromColumnar() const {
  rows_ = columnar_->MaterializeRows();
  rows_valid_ = true;
}

Result<std::shared_ptr<const ColumnTable>> Table::EnsureColumnar() const {
  if (columnar_ != nullptr) return columnar_;
  // Invariant: a null payload implies rows_ is valid.
  ESHARP_ASSIGN_OR_RETURN(ColumnTable ct, ColumnTable::FromTable(*this));
  columnar_ = std::make_shared<const ColumnTable>(std::move(ct));
  return columnar_;
}

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity ", row.size(),
                                   " does not match schema arity ",
                                   schema_.num_columns());
  }
  AppendRowUnchecked(std::move(row));
  return Status::OK();
}

Result<Value> Table::GetValue(size_t row_index,
                              const std::string& column) const {
  if (row_index >= num_rows()) {
    return Status::OutOfRange("row ", row_index, " >= ", num_rows());
  }
  ESHARP_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column));
  return row(row_index)[col];
}

uint64_t Table::SizeBytes() const {
  if (size_cache_valid_) return size_bytes_cache_;
  uint64_t total = 0;
  if (!rows_valid_) {
    // ColumnTable::SizeBytes uses the same per-cell accounting.
    total = columnar_->SizeBytes();
  } else {
    for (const Row& r : rows_) {
      for (const Value& v : r) total += v.SizeBytes();
    }
  }
  size_bytes_cache_ = total;
  size_cache_valid_ = true;
  return total;
}

std::string Table::ToString(size_t max_rows) const {
  EnsureRows();
  // Compute column widths over the rendered prefix.
  size_t shown = std::min(max_rows, rows_.size());
  std::vector<size_t> widths(schema_.num_columns());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    widths[c] = schema_.column(c).name.size();
  }
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(schema_.num_columns());
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      cells[r][c] = rows_[r][c].ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::string out;
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    out += StrFormat("%-*s  ", static_cast<int>(widths[c]),
                     schema_.column(c).name.c_str());
  }
  out += "\n";
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      out += StrFormat("%-*s  ", static_cast<int>(widths[c]),
                       cells[r][c].c_str());
    }
    out += "\n";
  }
  if (shown < rows_.size()) {
    out += StrFormat("... (%zu more rows)\n", rows_.size() - shown);
  }
  return out;
}

void Table::SortLexicographic() {
  EnsureRows();
  columnar_.reset();  // payload row order no longer matches
  std::sort(rows_.begin(), rows_.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
}

TableBuilder& TableBuilder::AddRow(Row row) {
  assert(row.size() == table_.schema().num_columns());
  table_.AppendRowUnchecked(std::move(row));
  return *this;
}

}  // namespace esharp::sql
