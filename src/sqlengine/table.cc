#include "sqlengine/table.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace esharp::sql {

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity ", row.size(),
                                   " does not match schema arity ",
                                   schema_.num_columns());
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<Value> Table::GetValue(size_t row_index,
                              const std::string& column) const {
  if (row_index >= rows_.size()) {
    return Status::OutOfRange("row ", row_index, " >= ", rows_.size());
  }
  ESHARP_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column));
  return rows_[row_index][col];
}

uint64_t Table::SizeBytes() const {
  uint64_t total = 0;
  for (const Row& r : rows_) {
    for (const Value& v : r) total += v.SizeBytes();
  }
  return total;
}

std::string Table::ToString(size_t max_rows) const {
  // Compute column widths over the rendered prefix.
  size_t shown = std::min(max_rows, rows_.size());
  std::vector<size_t> widths(schema_.num_columns());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    widths[c] = schema_.column(c).name.size();
  }
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(schema_.num_columns());
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      cells[r][c] = rows_[r][c].ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::string out;
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    out += StrFormat("%-*s  ", static_cast<int>(widths[c]),
                     schema_.column(c).name.c_str());
  }
  out += "\n";
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      out += StrFormat("%-*s  ", static_cast<int>(widths[c]),
                       cells[r][c].c_str());
    }
    out += "\n";
  }
  if (shown < rows_.size()) {
    out += StrFormat("... (%zu more rows)\n", rows_.size() - shown);
  }
  return out;
}

void Table::SortLexicographic() {
  std::sort(rows_.begin(), rows_.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
}

TableBuilder& TableBuilder::AddRow(Row row) {
  assert(row.size() == table_.schema().num_columns());
  table_.AppendRowUnchecked(std::move(row));
  return *this;
}

}  // namespace esharp::sql
