#ifndef ESHARP_SQLENGINE_PLAN_H_
#define ESHARP_SQLENGINE_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sqlengine/catalog.h"
#include "sqlengine/explain.h"
#include "sqlengine/parallel.h"

namespace esharp::sql {

/// \brief Node of a logical query plan.
///
/// The plan layer is what makes the engine "declarative": callers compose
/// scans, joins, filters, projections and aggregations as a tree; the
/// Executor chooses between single-threaded kernels and partitioned parallel
/// execution. This is precisely the property §4.2.2 of the paper claims for
/// its algorithm — it "can directly be implemented in a SQL-like language"
/// and parallelized "with standard map-reduce relational operators".
struct PlanNode {
  enum class Kind {
    kScan,       // read a named table from the catalog
    kValues,     // literal table embedded in the plan
    kFilter,
    kProject,
    kJoin,
    kAggregate,
    kDistinct,
    kSort,
    kLimit,
    kUnionAll,
    kAlias,  // expose child's columns as "alias.column"
  };

  Kind kind;
  std::vector<std::shared_ptr<const PlanNode>> children;

  // kScan
  std::string table_name;
  // kValues
  std::shared_ptr<const Table> literal_table;
  // kFilter
  ExprPtr predicate;
  // kProject
  std::vector<ProjectedColumn> projections;
  // kJoin
  std::vector<std::string> left_keys, right_keys;
  JoinType join_type = JoinType::kInner;
  // kAggregate
  std::vector<std::string> group_keys;
  std::vector<AggSpec> aggregates;
  // kSort
  std::vector<std::string> sort_keys;
  std::vector<bool> sort_ascending;
  // kLimit
  size_t limit = 0;
  // kAlias
  std::string alias;
};

/// \brief Fluent builder over PlanNode trees.
class Plan {
 public:
  /// Leaf: scan a catalog table.
  static Plan Scan(std::string table_name);

  /// Leaf: wrap a literal table (tests).
  static Plan Values(Table table);

  Plan Where(ExprPtr predicate) const;
  Plan Select(std::vector<ProjectedColumn> projections) const;
  Plan Join(const Plan& right, std::vector<std::string> left_keys,
            std::vector<std::string> right_keys,
            JoinType type = JoinType::kInner) const;
  Plan GroupBy(std::vector<std::string> keys,
               std::vector<AggSpec> aggregates) const;
  Plan Distinct() const;
  Plan OrderBy(std::vector<std::string> keys,
               std::vector<bool> ascending = {}) const;
  Plan Take(size_t n) const;
  Plan Union(const Plan& other) const;

  /// SQL table alias: renames every output column to "alias.column"
  /// (stripping any previous qualifier). Used by the text front end.
  Plan As(std::string alias) const;

  const std::shared_ptr<const PlanNode>& root() const { return root_; }

  /// Textual EXPLAIN of the plan tree.
  std::string Explain() const;

 private:
  explicit Plan(std::shared_ptr<const PlanNode> root) : root_(std::move(root)) {}
  std::shared_ptr<const PlanNode> root_;
};

/// \brief Options controlling plan execution.
struct ExecutorOptions {
  /// Thread pool; null executes single-threaded.
  ThreadPool* pool = nullptr;
  /// Hash-partition fan-out for parallel operators (the "VM count").
  size_t num_partitions = 8;
  /// Join strategy for parallel joins (§4.2.3 discusses both).
  JoinStrategy join_strategy = JoinStrategy::kReplicated;
  /// Optional resource accounting.
  ResourceMeter* meter = nullptr;
  std::string stage = "sql";
  /// Parallel operators execute on the vectorized columnar kernels (typed
  /// column batches, selection vectors, copy-free partitioning); the row
  /// kernels remain as reference and as the automatic fallback for inputs
  /// with no columnar form. Results are identical either way.
  bool use_columnar = true;
};

/// \brief Evaluates plans against a catalog.
class Executor {
 public:
  explicit Executor(ExecutorOptions options = {}) : options_(options) {}

  /// Executes a plan, materializing its result.
  Result<Table> Execute(const Plan& plan, const Catalog& catalog) const;

  /// Executes a plan while profiling every operator into `stats`
  /// (EXPLAIN ANALYZE): exact rows in/out, partition batch counts, and
  /// inclusive wall time, one ExplainStats node per plan node. `stats` is
  /// cleared first; `stats->ToString()` renders the report.
  Result<Table> Execute(const Plan& plan, const Catalog& catalog,
                        ExplainStats* stats) const;

  const ExecutorOptions& options() const { return options_; }

 private:
  Result<Table> ExecuteNode(const PlanNode& node, const Catalog& catalog,
                            ExplainStats* stats) const;

  ExecutorOptions options_;
};

/// \brief One-line operator label shared by EXPLAIN and EXPLAIN ANALYZE,
/// e.g. "HashJoin(a = b)".
std::string DescribeNode(const PlanNode& node);

}  // namespace esharp::sql

#endif  // ESHARP_SQLENGINE_PLAN_H_
