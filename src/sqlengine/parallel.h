#ifndef ESHARP_SQLENGINE_PARALLEL_H_
#define ESHARP_SQLENGINE_PARALLEL_H_

#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "sqlengine/operators.h"

namespace esharp::sql {

struct ExplainStats;

/// \brief Execution context shared by the parallel operators.
///
/// `num_partitions` plays the role of the paper's VM count: every parallel
/// stage splits its input into this many hash partitions and processes them
/// on the thread pool. `meter` (optional) accumulates Table 9-style stats.
struct ExecContext {
  ThreadPool* pool = nullptr;
  size_t num_partitions = 8;
  ResourceMeter* meter = nullptr;
  /// Stage name under which meter stats are recorded.
  std::string stage = "sql";
  /// Per-operator profile for this plan node (EXPLAIN ANALYZE); parallel
  /// kernels record exact rows in/out and the partition batch count here.
  /// Owned by the Execute(plan, catalog, stats) caller; may be null.
  ExplainStats* stats = nullptr;
  /// Execute with the vectorized columnar kernels (typed column batches,
  /// selection vectors, copy-free partitioning). Row counts, partition
  /// routing, and batch counts are identical to the row path; operators
  /// whose input has no columnar form (mixed-type columns) fall back to the
  /// row kernels automatically.
  bool use_columnar = true;
};

/// \brief Strategy for the parallel join, mirroring §4.2.3 of the paper.
enum class JoinStrategy {
  /// "Replicated join": replicate (and index) the build side at every
  /// worker, split the probe side, join each split against the full build
  /// side. Best when the build side fits in memory at each node.
  kReplicated,
  /// "Chained map-side joins": co-partition both sides on the join key and
  /// join partition-wise. Used when replication is not possible.
  kPartitioned,
};

/// \brief Splits a table into `num_partitions` hash partitions on the given
/// key columns; co-partitioned inputs join correctly partition-wise.
Result<std::vector<Table>> HashPartition(const Table& t,
                                         const std::vector<std::string>& keys,
                                         size_t num_partitions);

/// \brief Splits a table into round-robin chunks (for stateless per-row maps
/// and local pre-aggregation).
std::vector<Table> RoundRobinPartition(const Table& t, size_t num_partitions);

/// \brief Concatenates partitions back into one table.
Result<Table> ConcatTables(const std::vector<Table>& parts);

/// \brief Parallel hash join; result rows equal the single-threaded
/// HashJoin up to row order.
Result<Table> ParallelHashJoin(const ExecContext& ctx, const Table& left,
                               const Table& right,
                               const std::vector<std::string>& left_keys,
                               const std::vector<std::string>& right_keys,
                               JoinType type = JoinType::kInner,
                               JoinStrategy strategy = JoinStrategy::kReplicated);

/// \brief Parallel GROUP BY: partitions rows by group key, aggregates each
/// partition independently, and concatenates (keys never straddle
/// partitions). With empty group keys, falls back to a two-phase
/// local-aggregate + merge plan.
Result<Table> ParallelHashAggregate(const ExecContext& ctx, const Table& t,
                                    const std::vector<std::string>& group_keys,
                                    const std::vector<AggSpec>& aggs);

/// \brief Parallel filter (round-robin split, per-chunk kernel, concat).
Result<Table> ParallelFilter(const ExecContext& ctx, const Table& t,
                             const ExprPtr& pred);

/// \brief Parallel projection.
Result<Table> ParallelProject(const ExecContext& ctx, const Table& t,
                              const std::vector<ProjectedColumn>& cols);

}  // namespace esharp::sql

#endif  // ESHARP_SQLENGINE_PARALLEL_H_
