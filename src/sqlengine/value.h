#ifndef ESHARP_SQLENGINE_VALUE_H_
#define ESHARP_SQLENGINE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/hash.h"
#include "common/result.h"

namespace esharp::sql {

/// \brief Column data types supported by the engine.
///
/// The pipeline needs exactly these: strings for query terms and community
/// names, integers for counts/degrees, doubles for distances and modularity
/// gains, booleans for predicates.
enum class DataType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
};

/// \brief Name of a DataType ("INT64", ...).
std::string_view DataTypeToString(DataType t);

/// \brief A single SQL value: NULL, BOOL, INT64, DOUBLE, or STRING.
///
/// Comparison follows SQL-ish semantics except that NULL compares equal to
/// NULL and sorts first — the engine is used for deterministic dataflow, not
/// three-valued logic.
class Value {
 public:
  /// Constructs NULL.
  Value() : rep_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }

  DataType type() const {
    switch (rep_.index()) {
      case 0: return DataType::kNull;
      case 1: return DataType::kBool;
      case 2: return DataType::kInt64;
      case 3: return DataType::kDouble;
      default: return DataType::kString;
    }
  }

  bool is_null() const { return rep_.index() == 0; }

  /// Typed accessors; the caller must check type() first.
  bool bool_value() const { return std::get<bool>(rep_); }
  int64_t int_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const { return std::get<std::string>(rep_); }

  /// Numeric coercion: INT64 and DOUBLE widen to double; BOOL to 0/1.
  /// Returns an error for STRING/NULL.
  Result<double> AsDouble() const;

  /// Total order across values: NULL < BOOL < INT64/DOUBLE (numeric order
  /// intermixed) < STRING.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable 64-bit hash (equal values hash equal, across int/double when
  /// they compare equal).
  uint64_t Hash() const;

  /// Debug/CSV rendering.
  std::string ToString() const;

  /// Approximate in-memory footprint in bytes (for ResourceMeter IO stats).
  uint64_t SizeBytes() const;

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

}  // namespace esharp::sql

#endif  // ESHARP_SQLENGINE_VALUE_H_
