#ifndef ESHARP_SQLENGINE_CATALOG_H_
#define ESHARP_SQLENGINE_CATALOG_H_

#include <map>
#include <string>

#include "common/result.h"
#include "sqlengine/table.h"

namespace esharp::sql {

/// \brief Named-table registry: the engine's view of the "database".
///
/// The community-detection driver registers `graph` and `communities` here
/// and re-points `communities` at each iteration's output, mirroring how the
/// production pipeline rewrites its SCOPE tables between passes.
class Catalog {
 public:
  /// Registers (or replaces) a table under a name.
  void Register(const std::string& name, Table table);

  /// Looks up a table by name.
  Result<const Table*> Get(const std::string& name) const;

  /// Removes a table; missing names are ignored.
  void Drop(const std::string& name);

  /// True iff a table with this name exists.
  bool Contains(const std::string& name) const;

  /// Registered table names (sorted).
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Table> tables_;
};

}  // namespace esharp::sql

#endif  // ESHARP_SQLENGINE_CATALOG_H_
