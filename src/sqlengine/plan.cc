#include "sqlengine/plan.h"

#include "common/strings.h"
#include "common/timer.h"

namespace esharp::sql {

namespace {
std::shared_ptr<PlanNode> NewNode(PlanNode::Kind kind) {
  auto node = std::make_shared<PlanNode>();
  node->kind = kind;
  return node;
}
}  // namespace

Plan Plan::Scan(std::string table_name) {
  auto node = NewNode(PlanNode::Kind::kScan);
  node->table_name = std::move(table_name);
  return Plan(node);
}

Plan Plan::Values(Table table) {
  auto node = NewNode(PlanNode::Kind::kValues);
  node->literal_table = std::make_shared<const Table>(std::move(table));
  return Plan(node);
}

Plan Plan::Where(ExprPtr predicate) const {
  auto node = NewNode(PlanNode::Kind::kFilter);
  node->children = {root_};
  node->predicate = std::move(predicate);
  return Plan(node);
}

Plan Plan::Select(std::vector<ProjectedColumn> projections) const {
  auto node = NewNode(PlanNode::Kind::kProject);
  node->children = {root_};
  node->projections = std::move(projections);
  return Plan(node);
}

Plan Plan::Join(const Plan& right, std::vector<std::string> left_keys,
                std::vector<std::string> right_keys, JoinType type) const {
  auto node = NewNode(PlanNode::Kind::kJoin);
  node->children = {root_, right.root_};
  node->left_keys = std::move(left_keys);
  node->right_keys = std::move(right_keys);
  node->join_type = type;
  return Plan(node);
}

Plan Plan::GroupBy(std::vector<std::string> keys,
                   std::vector<AggSpec> aggregates) const {
  auto node = NewNode(PlanNode::Kind::kAggregate);
  node->children = {root_};
  node->group_keys = std::move(keys);
  node->aggregates = std::move(aggregates);
  return Plan(node);
}

Plan Plan::Distinct() const {
  auto node = NewNode(PlanNode::Kind::kDistinct);
  node->children = {root_};
  return Plan(node);
}

Plan Plan::OrderBy(std::vector<std::string> keys,
                   std::vector<bool> ascending) const {
  auto node = NewNode(PlanNode::Kind::kSort);
  node->children = {root_};
  node->sort_keys = std::move(keys);
  node->sort_ascending = std::move(ascending);
  return Plan(node);
}

Plan Plan::Take(size_t n) const {
  auto node = NewNode(PlanNode::Kind::kLimit);
  node->children = {root_};
  node->limit = n;
  return Plan(node);
}

Plan Plan::Union(const Plan& other) const {
  auto node = NewNode(PlanNode::Kind::kUnionAll);
  node->children = {root_, other.root_};
  return Plan(node);
}

Plan Plan::As(std::string alias) const {
  auto node = NewNode(PlanNode::Kind::kAlias);
  node->children = {root_};
  node->alias = std::move(alias);
  return Plan(node);
}

std::string DescribeNode(const PlanNode& node) {
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      return "Scan(" + node.table_name + ")";
    case PlanNode::Kind::kValues:
      return StrFormat("Values(%zu rows)", node.literal_table->num_rows());
    case PlanNode::Kind::kFilter:
      return "Filter(" + node.predicate->ToString() + ")";
    case PlanNode::Kind::kProject: {
      std::string cols;
      for (size_t i = 0; i < node.projections.size(); ++i) {
        if (i > 0) cols += ", ";
        cols += node.projections[i].expr->ToString() + " AS " +
                node.projections[i].name;
      }
      return "Project(" + cols + ")";
    }
    case PlanNode::Kind::kJoin:
      return "HashJoin(" + Join(node.left_keys, ",") + " = " +
             Join(node.right_keys, ",") + ")";
    case PlanNode::Kind::kAggregate:
      return "Aggregate(by " + Join(node.group_keys, ",") + ")";
    case PlanNode::Kind::kDistinct:
      return "Distinct";
    case PlanNode::Kind::kSort:
      return "Sort(" + Join(node.sort_keys, ",") + ")";
    case PlanNode::Kind::kLimit:
      return StrFormat("Limit(%zu)", node.limit);
    case PlanNode::Kind::kUnionAll:
      return "UnionAll";
    case PlanNode::Kind::kAlias:
      return "Alias(" + node.alias + ")";
  }
  return "?";
}

namespace {
void ExplainNode(const PlanNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(DescribeNode(node));
  out->push_back('\n');
  for (const auto& child : node.children) {
    ExplainNode(*child, depth + 1, out);
  }
}
}  // namespace

std::string Plan::Explain() const {
  std::string out;
  ExplainNode(*root_, 0, &out);
  return out;
}

Result<Table> Executor::Execute(const Plan& plan, const Catalog& catalog) const {
  return ExecuteNode(*plan.root(), catalog, nullptr);
}

Result<Table> Executor::Execute(const Plan& plan, const Catalog& catalog,
                                ExplainStats* stats) const {
  if (stats != nullptr) stats->Clear();
  return ExecuteNode(*plan.root(), catalog, stats);
}

namespace {

/// Profiles one operator: label and inclusive wall time always; exact
/// rows in/out for the serial kernels (the parallel kernels in parallel.cc
/// account rows and batch counts themselves through ExecContext::stats, so
/// Finish leaves already-recorded rows alone).
class NodeProfile {
 public:
  NodeProfile(ExplainStats* stats, const PlanNode& node) : stats_(stats) {
    if (stats_ != nullptr) stats_->op = DescribeNode(node);
  }

  ExplainStats* child() {
    return stats_ != nullptr ? stats_->AddChild() : nullptr;
  }

  void RecordRows(uint64_t rows_in, uint64_t rows_out) {
    if (stats_ == nullptr) return;
    stats_->rows_in = rows_in;
    stats_->rows_out = rows_out;
  }

  Result<Table> Finish(Result<Table> result) {
    if (stats_ != nullptr) {
      stats_->wall_ms = timer_.ElapsedMillis();
      if (result.ok() && stats_->rows_in == 0 && stats_->rows_out == 0) {
        stats_->rows_out = result.ValueOrDie().num_rows();
      }
    }
    return result;
  }

 private:
  ExplainStats* stats_;
  Timer timer_;
};

}  // namespace

Result<Table> Executor::ExecuteNode(const PlanNode& node,
                                    const Catalog& catalog,
                                    ExplainStats* stats) const {
  NodeProfile profile(stats, node);
  ExecContext ctx{options_.pool,  options_.num_partitions,
                  options_.meter, options_.stage,
                  stats,          options_.use_columnar};
  switch (node.kind) {
    case PlanNode::Kind::kScan: {
      ESHARP_ASSIGN_OR_RETURN(const Table* t, catalog.Get(node.table_name));
      profile.RecordRows(t->num_rows(), t->num_rows());
      // Columnar execution scans copy-free: the cached columnar payload is
      // shared instead of deep-copying every row. The conversion happens
      // once per catalog table and is reused across queries/iterations.
      if (options_.use_columnar) {
        Result<std::shared_ptr<const ColumnTable>> ct = t->EnsureColumnar();
        if (ct.ok()) {
          return profile.Finish(Table::FromColumnar(*ct));
        }
        if (!IsColumnarUnsupported(ct.status())) return ct.status();
      }
      return profile.Finish(*t);
    }
    case PlanNode::Kind::kValues:
      profile.RecordRows(node.literal_table->num_rows(),
                         node.literal_table->num_rows());
      if (options_.use_columnar) {
        Result<std::shared_ptr<const ColumnTable>> ct =
            node.literal_table->EnsureColumnar();
        if (ct.ok()) {
          return profile.Finish(Table::FromColumnar(*ct));
        }
        if (!IsColumnarUnsupported(ct.status())) return ct.status();
      }
      return profile.Finish(*node.literal_table);
    case PlanNode::Kind::kFilter: {
      ESHARP_ASSIGN_OR_RETURN(
          Table in, ExecuteNode(*node.children[0], catalog, profile.child()));
      if (options_.pool != nullptr) {
        return profile.Finish(ParallelFilter(ctx, in, node.predicate));
      }
      Result<Table> out = Filter(in, node.predicate);
      if (out.ok()) profile.RecordRows(in.num_rows(), out.ValueOrDie().num_rows());
      return profile.Finish(std::move(out));
    }
    case PlanNode::Kind::kProject: {
      ESHARP_ASSIGN_OR_RETURN(
          Table in, ExecuteNode(*node.children[0], catalog, profile.child()));
      if (options_.pool != nullptr) {
        return profile.Finish(ParallelProject(ctx, in, node.projections));
      }
      Result<Table> out = Project(in, node.projections);
      if (out.ok()) profile.RecordRows(in.num_rows(), out.ValueOrDie().num_rows());
      return profile.Finish(std::move(out));
    }
    case PlanNode::Kind::kJoin: {
      ESHARP_ASSIGN_OR_RETURN(
          Table left, ExecuteNode(*node.children[0], catalog, profile.child()));
      ESHARP_ASSIGN_OR_RETURN(
          Table right,
          ExecuteNode(*node.children[1], catalog, profile.child()));
      if (options_.pool != nullptr) {
        return profile.Finish(ParallelHashJoin(ctx, left, right,
                                               node.left_keys, node.right_keys,
                                               node.join_type,
                                               options_.join_strategy));
      }
      Result<Table> out = HashJoin(left, right, node.left_keys,
                                   node.right_keys, node.join_type);
      if (out.ok()) {
        profile.RecordRows(left.num_rows() + right.num_rows(),
                           out.ValueOrDie().num_rows());
      }
      return profile.Finish(std::move(out));
    }
    case PlanNode::Kind::kAggregate: {
      ESHARP_ASSIGN_OR_RETURN(
          Table in, ExecuteNode(*node.children[0], catalog, profile.child()));
      if (options_.pool != nullptr) {
        return profile.Finish(
            ParallelHashAggregate(ctx, in, node.group_keys, node.aggregates));
      }
      Result<Table> out = HashAggregate(in, node.group_keys, node.aggregates);
      if (out.ok()) profile.RecordRows(in.num_rows(), out.ValueOrDie().num_rows());
      return profile.Finish(std::move(out));
    }
    case PlanNode::Kind::kDistinct: {
      ESHARP_ASSIGN_OR_RETURN(
          Table in, ExecuteNode(*node.children[0], catalog, profile.child()));
      Result<Table> out = sql::Distinct(in);
      if (out.ok()) profile.RecordRows(in.num_rows(), out.ValueOrDie().num_rows());
      return profile.Finish(std::move(out));
    }
    case PlanNode::Kind::kSort: {
      ESHARP_ASSIGN_OR_RETURN(
          Table in, ExecuteNode(*node.children[0], catalog, profile.child()));
      Result<Table> out = SortBy(in, node.sort_keys, node.sort_ascending);
      if (out.ok()) profile.RecordRows(in.num_rows(), out.ValueOrDie().num_rows());
      return profile.Finish(std::move(out));
    }
    case PlanNode::Kind::kLimit: {
      ESHARP_ASSIGN_OR_RETURN(
          Table in, ExecuteNode(*node.children[0], catalog, profile.child()));
      Result<Table> out = sql::Limit(in, node.limit);
      if (out.ok()) profile.RecordRows(in.num_rows(), out.ValueOrDie().num_rows());
      return profile.Finish(std::move(out));
    }
    case PlanNode::Kind::kUnionAll: {
      ESHARP_ASSIGN_OR_RETURN(
          Table left, ExecuteNode(*node.children[0], catalog, profile.child()));
      ESHARP_ASSIGN_OR_RETURN(
          Table right,
          ExecuteNode(*node.children[1], catalog, profile.child()));
      Result<Table> out = UnionAll(left, right);
      if (out.ok()) {
        profile.RecordRows(left.num_rows() + right.num_rows(),
                           out.ValueOrDie().num_rows());
      }
      return profile.Finish(std::move(out));
    }
    case PlanNode::Kind::kAlias: {
      ESHARP_ASSIGN_OR_RETURN(
          Table in, ExecuteNode(*node.children[0], catalog, profile.child()));
      Schema renamed;
      for (const Column& c : in.schema().columns()) {
        // Strip any previous qualifier, then apply the new one.
        size_t dot = c.name.rfind('.');
        std::string base =
            dot == std::string::npos ? c.name : c.name.substr(dot + 1);
        renamed.AddColumn({node.alias + "." + base, c.type});
      }
      profile.RecordRows(in.num_rows(), in.num_rows());
      if (options_.use_columnar && in.columnar() != nullptr) {
        // Rename on the columnar payload: copies typed vectors, not Values.
        ColumnTable renamed_ct = *in.columnar();
        renamed_ct.mutable_schema() = renamed;
        return profile.Finish(Table::FromColumnar(
            std::make_shared<const ColumnTable>(std::move(renamed_ct))));
      }
      return profile.Finish(Table(renamed, in.rows()));
    }
  }
  return Status::Internal("unhandled plan node kind");
}

}  // namespace esharp::sql
