#include "sqlengine/plan.h"

#include "common/strings.h"

namespace esharp::sql {

namespace {
std::shared_ptr<PlanNode> NewNode(PlanNode::Kind kind) {
  auto node = std::make_shared<PlanNode>();
  node->kind = kind;
  return node;
}
}  // namespace

Plan Plan::Scan(std::string table_name) {
  auto node = NewNode(PlanNode::Kind::kScan);
  node->table_name = std::move(table_name);
  return Plan(node);
}

Plan Plan::Values(Table table) {
  auto node = NewNode(PlanNode::Kind::kValues);
  node->literal_table = std::make_shared<const Table>(std::move(table));
  return Plan(node);
}

Plan Plan::Where(ExprPtr predicate) const {
  auto node = NewNode(PlanNode::Kind::kFilter);
  node->children = {root_};
  node->predicate = std::move(predicate);
  return Plan(node);
}

Plan Plan::Select(std::vector<ProjectedColumn> projections) const {
  auto node = NewNode(PlanNode::Kind::kProject);
  node->children = {root_};
  node->projections = std::move(projections);
  return Plan(node);
}

Plan Plan::Join(const Plan& right, std::vector<std::string> left_keys,
                std::vector<std::string> right_keys, JoinType type) const {
  auto node = NewNode(PlanNode::Kind::kJoin);
  node->children = {root_, right.root_};
  node->left_keys = std::move(left_keys);
  node->right_keys = std::move(right_keys);
  node->join_type = type;
  return Plan(node);
}

Plan Plan::GroupBy(std::vector<std::string> keys,
                   std::vector<AggSpec> aggregates) const {
  auto node = NewNode(PlanNode::Kind::kAggregate);
  node->children = {root_};
  node->group_keys = std::move(keys);
  node->aggregates = std::move(aggregates);
  return Plan(node);
}

Plan Plan::Distinct() const {
  auto node = NewNode(PlanNode::Kind::kDistinct);
  node->children = {root_};
  return Plan(node);
}

Plan Plan::OrderBy(std::vector<std::string> keys,
                   std::vector<bool> ascending) const {
  auto node = NewNode(PlanNode::Kind::kSort);
  node->children = {root_};
  node->sort_keys = std::move(keys);
  node->sort_ascending = std::move(ascending);
  return Plan(node);
}

Plan Plan::Take(size_t n) const {
  auto node = NewNode(PlanNode::Kind::kLimit);
  node->children = {root_};
  node->limit = n;
  return Plan(node);
}

Plan Plan::Union(const Plan& other) const {
  auto node = NewNode(PlanNode::Kind::kUnionAll);
  node->children = {root_, other.root_};
  return Plan(node);
}

Plan Plan::As(std::string alias) const {
  auto node = NewNode(PlanNode::Kind::kAlias);
  node->children = {root_};
  node->alias = std::move(alias);
  return Plan(node);
}

namespace {
void ExplainNode(const PlanNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      out->append("Scan(" + node.table_name + ")\n");
      break;
    case PlanNode::Kind::kValues:
      out->append(StrFormat("Values(%zu rows)\n",
                            node.literal_table->num_rows()));
      break;
    case PlanNode::Kind::kFilter:
      out->append("Filter(" + node.predicate->ToString() + ")\n");
      break;
    case PlanNode::Kind::kProject: {
      std::string cols;
      for (size_t i = 0; i < node.projections.size(); ++i) {
        if (i > 0) cols += ", ";
        cols += node.projections[i].expr->ToString() + " AS " +
                node.projections[i].name;
      }
      out->append("Project(" + cols + ")\n");
      break;
    }
    case PlanNode::Kind::kJoin:
      out->append("HashJoin(" + Join(node.left_keys, ",") + " = " +
                  Join(node.right_keys, ",") + ")\n");
      break;
    case PlanNode::Kind::kAggregate:
      out->append("Aggregate(by " + Join(node.group_keys, ",") + ")\n");
      break;
    case PlanNode::Kind::kDistinct:
      out->append("Distinct\n");
      break;
    case PlanNode::Kind::kSort:
      out->append("Sort(" + Join(node.sort_keys, ",") + ")\n");
      break;
    case PlanNode::Kind::kLimit:
      out->append(StrFormat("Limit(%zu)\n", node.limit));
      break;
    case PlanNode::Kind::kUnionAll:
      out->append("UnionAll\n");
      break;
    case PlanNode::Kind::kAlias:
      out->append("Alias(" + node.alias + ")\n");
      break;
  }
  for (const auto& child : node.children) {
    ExplainNode(*child, depth + 1, out);
  }
}
}  // namespace

std::string Plan::Explain() const {
  std::string out;
  ExplainNode(*root_, 0, &out);
  return out;
}

Result<Table> Executor::Execute(const Plan& plan, const Catalog& catalog) const {
  return ExecuteNode(*plan.root(), catalog);
}

Result<Table> Executor::ExecuteNode(const PlanNode& node,
                                    const Catalog& catalog) const {
  ExecContext ctx{options_.pool, options_.num_partitions, options_.meter,
                  options_.stage};
  switch (node.kind) {
    case PlanNode::Kind::kScan: {
      ESHARP_ASSIGN_OR_RETURN(const Table* t, catalog.Get(node.table_name));
      return *t;
    }
    case PlanNode::Kind::kValues:
      return *node.literal_table;
    case PlanNode::Kind::kFilter: {
      ESHARP_ASSIGN_OR_RETURN(Table in, ExecuteNode(*node.children[0], catalog));
      if (options_.pool != nullptr) {
        return ParallelFilter(ctx, in, node.predicate);
      }
      return Filter(in, node.predicate);
    }
    case PlanNode::Kind::kProject: {
      ESHARP_ASSIGN_OR_RETURN(Table in, ExecuteNode(*node.children[0], catalog));
      if (options_.pool != nullptr) {
        return ParallelProject(ctx, in, node.projections);
      }
      return Project(in, node.projections);
    }
    case PlanNode::Kind::kJoin: {
      ESHARP_ASSIGN_OR_RETURN(Table left, ExecuteNode(*node.children[0], catalog));
      ESHARP_ASSIGN_OR_RETURN(Table right,
                              ExecuteNode(*node.children[1], catalog));
      if (options_.pool != nullptr) {
        return ParallelHashJoin(ctx, left, right, node.left_keys,
                                node.right_keys, node.join_type,
                                options_.join_strategy);
      }
      return HashJoin(left, right, node.left_keys, node.right_keys,
                      node.join_type);
    }
    case PlanNode::Kind::kAggregate: {
      ESHARP_ASSIGN_OR_RETURN(Table in, ExecuteNode(*node.children[0], catalog));
      if (options_.pool != nullptr) {
        return ParallelHashAggregate(ctx, in, node.group_keys, node.aggregates);
      }
      return HashAggregate(in, node.group_keys, node.aggregates);
    }
    case PlanNode::Kind::kDistinct: {
      ESHARP_ASSIGN_OR_RETURN(Table in, ExecuteNode(*node.children[0], catalog));
      return sql::Distinct(in);
    }
    case PlanNode::Kind::kSort: {
      ESHARP_ASSIGN_OR_RETURN(Table in, ExecuteNode(*node.children[0], catalog));
      return SortBy(in, node.sort_keys, node.sort_ascending);
    }
    case PlanNode::Kind::kLimit: {
      ESHARP_ASSIGN_OR_RETURN(Table in, ExecuteNode(*node.children[0], catalog));
      return sql::Limit(in, node.limit);
    }
    case PlanNode::Kind::kUnionAll: {
      ESHARP_ASSIGN_OR_RETURN(Table left, ExecuteNode(*node.children[0], catalog));
      ESHARP_ASSIGN_OR_RETURN(Table right,
                              ExecuteNode(*node.children[1], catalog));
      return UnionAll(left, right);
    }
    case PlanNode::Kind::kAlias: {
      ESHARP_ASSIGN_OR_RETURN(Table in, ExecuteNode(*node.children[0], catalog));
      Schema renamed;
      for (const Column& c : in.schema().columns()) {
        // Strip any previous qualifier, then apply the new one.
        size_t dot = c.name.rfind('.');
        std::string base =
            dot == std::string::npos ? c.name : c.name.substr(dot + 1);
        renamed.AddColumn({node.alias + "." + base, c.type});
      }
      return Table(renamed, in.rows());
    }
  }
  return Status::Internal("unhandled plan node kind");
}

}  // namespace esharp::sql
