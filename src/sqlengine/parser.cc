#include "sqlengine/parser.h"

#include <cctype>
#include <optional>

#include "common/strings.h"

namespace esharp::sql {

void FunctionRegistry::RegisterScalar(const std::string& name, ScalarUdf fn) {
  scalars_[ToLowerAscii(name)] = std::move(fn);
}

Result<ScalarUdf> FunctionRegistry::LookupScalar(const std::string& name) const {
  auto it = scalars_.find(ToLowerAscii(name));
  if (it == scalars_.end()) {
    return Status::NotFound("unknown function '", name, "'");
  }
  return it->second;
}

bool FunctionRegistry::HasScalar(const std::string& name) const {
  return scalars_.count(ToLowerAscii(name)) > 0;
}

namespace {

// --------------------------------------------------------------- Lexer ----

enum class TokenKind {
  kIdent,
  kNumber,
  kString,
  kSymbol,  // punctuation and operators
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifiers lower-cased; symbols verbatim
  std::string raw;    // original spelling (for error messages)
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '-' && pos_ + 1 < sql_.size() && sql_[pos_ + 1] == '-') {
        // Line comment.
        while (pos_ < sql_.size() && sql_[pos_] != '\n') ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
          c == '#') {
        out.push_back(LexIdent());
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && pos_ + 1 < sql_.size() &&
           std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
        ESHARP_ASSIGN_OR_RETURN(Token t, LexNumber());
        out.push_back(std::move(t));
        continue;
      }
      if (c == '\'') {
        ESHARP_ASSIGN_OR_RETURN(Token t, LexString());
        out.push_back(std::move(t));
        continue;
      }
      ESHARP_ASSIGN_OR_RETURN(Token t, LexSymbol());
      out.push_back(std::move(t));
    }
    out.push_back(Token{TokenKind::kEnd, "", "", pos_});
    return out;
  }

 private:
  Token LexIdent() {
    size_t start = pos_;
    while (pos_ < sql_.size() &&
           (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
            sql_[pos_] == '_' || sql_[pos_] == '#')) {
      ++pos_;
    }
    std::string raw(sql_.substr(start, pos_ - start));
    return Token{TokenKind::kIdent, ToLowerAscii(raw), raw, start};
  }

  Result<Token> LexNumber() {
    size_t start = pos_;
    bool saw_dot = false;
    while (pos_ < sql_.size() &&
           (std::isdigit(static_cast<unsigned char>(sql_[pos_])) ||
            sql_[pos_] == '.')) {
      if (sql_[pos_] == '.') {
        if (saw_dot) break;  // "1.2.3": stop at second dot
        saw_dot = true;
      }
      ++pos_;
    }
    std::string raw(sql_.substr(start, pos_ - start));
    return Token{TokenKind::kNumber, raw, raw, start};
  }

  Result<Token> LexString() {
    size_t start = pos_;
    ++pos_;  // opening quote
    std::string value;
    while (pos_ < sql_.size()) {
      if (sql_[pos_] == '\'') {
        if (pos_ + 1 < sql_.size() && sql_[pos_ + 1] == '\'') {
          value += '\'';  // doubled quote escape
          pos_ += 2;
          continue;
        }
        ++pos_;
        return Token{TokenKind::kString, value,
                     std::string(sql_.substr(start, pos_ - start)), start};
      }
      value += sql_[pos_++];
    }
    return Status::InvalidArgument("unterminated string literal at offset ",
                                   start);
  }

  Result<Token> LexSymbol() {
    static const char* kTwoChar[] = {"<=", ">=", "!=", "<>"};
    size_t start = pos_;
    for (const char* two : kTwoChar) {
      if (sql_.substr(pos_, 2) == two) {
        pos_ += 2;
        return Token{TokenKind::kSymbol, two, two, start};
      }
    }
    static const std::string kOneChar = "(),.*=<>+-/";
    char c = sql_[pos_];
    if (kOneChar.find(c) != std::string::npos) {
      ++pos_;
      return Token{TokenKind::kSymbol, std::string(1, c), std::string(1, c),
                   start};
    }
    return Status::InvalidArgument("unexpected character '",
                                   std::string(1, c), "' at offset ", pos_);
  }

  std::string_view sql_;
  size_t pos_ = 0;
};

// -------------------------------------------------------------- Parser ----

bool IsAggregateName(const std::string& name) {
  return name == "count" || name == "sum" || name == "min" ||
         name == "max" || name == "avg" || name == "argmax" ||
         name == "argmin";
}

// One SELECT-list item: either a scalar expression or an aggregate call.
struct SelectItem {
  ExprPtr expr;                  // null when aggregate
  std::optional<AggSpec> agg;    // set when aggregate
  std::string name;              // output column name
  std::string source_text;       // rendered expression (group-key matching)
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const FunctionRegistry& registry)
      : tokens_(std::move(tokens)), registry_(registry) {}

  Result<Plan> ParseStatement() {
    ESHARP_ASSIGN_OR_RETURN(Plan plan, ParseSelect());
    if (!AtEnd()) {
      return Status::InvalidArgument("trailing input after statement: '",
                                     Peek().raw, "'");
    }
    return plan;
  }

 private:
  // --- token helpers ---
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(index_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  Token Next() { return tokens_[std::min(index_++, tokens_.size() - 1)]; }
  bool PeekKeyword(const std::string& kw, size_t ahead = 0) const {
    return Peek(ahead).kind == TokenKind::kIdent && Peek(ahead).text == kw;
  }
  bool ConsumeKeyword(const std::string& kw) {
    if (PeekKeyword(kw)) {
      Next();
      return true;
    }
    return false;
  }
  bool PeekSymbol(const std::string& sym) const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == sym;
  }
  bool ConsumeSymbol(const std::string& sym) {
    if (PeekSymbol(sym)) {
      Next();
      return true;
    }
    return false;
  }
  Status Expect(const std::string& what, bool ok) const {
    if (ok) return Status::OK();
    return Status::InvalidArgument("expected ", what, " but found '",
                                   Peek().raw.empty() ? "<end>" : Peek().raw,
                                   "'");
  }
  Status ExpectSymbol(const std::string& sym) {
    ESHARP_RETURN_NOT_OK(Expect("'" + sym + "'", PeekSymbol(sym)));
    Next();
    return Status::OK();
  }
  Status ExpectKeyword(const std::string& kw) {
    ESHARP_RETURN_NOT_OK(Expect("keyword " + kw, PeekKeyword(kw)));
    Next();
    return Status::OK();
  }

  static bool IsReserved(const std::string& word) {
    static const char* kReserved[] = {
        "select", "from",  "where", "group", "order", "by",    "limit",
        "join",   "inner", "left",  "outer", "on",    "as",    "and",
        "or",     "not",   "true",  "false", "null",  "asc",   "desc",
        "distinct", "union", "all", "having",
    };
    for (const char* r : kReserved) {
      if (word == r) return true;
    }
    return false;
  }

  // --- expressions (precedence climbing) ---
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    ESHARP_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (ConsumeKeyword("or")) {
      ESHARP_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Or(left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    ESHARP_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (ConsumeKeyword("and")) {
      ESHARP_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = And(left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (ConsumeKeyword("not")) {
      ESHARP_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Not(operand);
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    ESHARP_ASSIGN_OR_RETURN(ExprPtr left, ParseAddSub());
    struct OpMap {
      const char* sym;
      Expr::BinaryOp op;
    };
    static const OpMap kOps[] = {
        {"=", Expr::BinaryOp::kEq},  {"!=", Expr::BinaryOp::kNe},
        {"<>", Expr::BinaryOp::kNe}, {"<=", Expr::BinaryOp::kLe},
        {">=", Expr::BinaryOp::kGe}, {"<", Expr::BinaryOp::kLt},
        {">", Expr::BinaryOp::kGt},
    };
    for (const OpMap& m : kOps) {
      if (PeekSymbol(m.sym)) {
        Next();
        ESHARP_ASSIGN_OR_RETURN(ExprPtr right, ParseAddSub());
        return BinaryExpr(m.op, left, right);
      }
    }
    return left;
  }

  Result<ExprPtr> ParseAddSub() {
    ESHARP_ASSIGN_OR_RETURN(ExprPtr left, ParseMulDiv());
    while (PeekSymbol("+") || PeekSymbol("-")) {
      bool add = Next().text == "+";
      ESHARP_ASSIGN_OR_RETURN(ExprPtr right, ParseMulDiv());
      left = add ? Add(left, right) : Sub(left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseMulDiv() {
    ESHARP_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (PeekSymbol("*") || PeekSymbol("/")) {
      bool mul = Next().text == "*";
      ESHARP_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = mul ? Mul(left, right) : Div(left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (ConsumeSymbol("-")) {
      ESHARP_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return UnaryExpr(Expr::UnaryOp::kNeg, operand);
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kNumber: {
        Token tok = Next();
        if (tok.text.find('.') != std::string::npos) {
          return LitDouble(std::stod(tok.text));
        }
        return LitInt(std::stoll(tok.text));
      }
      case TokenKind::kString: {
        Token tok = Next();
        return LitString(tok.text);
      }
      case TokenKind::kSymbol:
        if (ConsumeSymbol("(")) {
          ESHARP_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          ESHARP_RETURN_NOT_OK(ExpectSymbol(")"));
          return inner;
        }
        break;
      case TokenKind::kIdent: {
        if (ConsumeKeyword("true")) return LitBool(true);
        if (ConsumeKeyword("false")) return LitBool(false);
        if (ConsumeKeyword("null")) return Lit(Value::Null());
        Token ident = Next();
        // Function call?
        if (PeekSymbol("(")) {
          if (IsAggregateName(ident.text)) {
            return Status::InvalidArgument(
                "aggregate '", ident.raw,
                "' is only allowed in the SELECT list of a grouped query");
          }
          ESHARP_ASSIGN_OR_RETURN(ScalarUdf fn,
                                  registry_.LookupScalar(ident.text));
          Next();  // '('
          std::vector<ExprPtr> args;
          if (!PeekSymbol(")")) {
            for (;;) {
              ESHARP_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              args.push_back(arg);
              if (!ConsumeSymbol(",")) break;
            }
          }
          ESHARP_RETURN_NOT_OK(ExpectSymbol(")"));
          return Udf(ident.text, fn, args);
        }
        // Qualified column: alias.column
        if (ConsumeSymbol(".")) {
          ESHARP_RETURN_NOT_OK(
              Expect("column name", Peek().kind == TokenKind::kIdent));
          Token col = Next();
          return ColFlexible(ident.text + "." + col.text);
        }
        return ColFlexible(ident.text);
      }
      default:
        break;
    }
    return Status::InvalidArgument("unexpected token '",
                                   t.raw.empty() ? "<end>" : t.raw,
                                   "' in expression");
  }

  // --- SELECT-list items (expressions or aggregate calls) ---
  Result<SelectItem> ParseSelectItem(size_t ordinal) {
    SelectItem item;
    // Aggregate call?
    if (Peek().kind == TokenKind::kIdent && IsAggregateName(Peek().text) &&
        Peek(1).kind == TokenKind::kSymbol && Peek(1).text == "(") {
      Token fn = Next();
      Next();  // '('
      if (fn.text == "count" && ConsumeSymbol("*")) {
        ESHARP_RETURN_NOT_OK(ExpectSymbol(")"));
        item.agg = CountStar("");
      } else if (fn.text == "argmax" || fn.text == "argmin") {
        ESHARP_ASSIGN_OR_RETURN(ExprPtr order, ParseExpr());
        ESHARP_RETURN_NOT_OK(ExpectSymbol(","));
        ESHARP_ASSIGN_OR_RETURN(ExprPtr output, ParseExpr());
        ESHARP_RETURN_NOT_OK(ExpectSymbol(")"));
        item.agg = fn.text == "argmax" ? ArgMaxOf(order, output, "")
                                       : ArgMinOf(order, output, "");
      } else {
        ESHARP_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        ESHARP_RETURN_NOT_OK(ExpectSymbol(")"));
        if (fn.text == "count") {
          item.agg = AggSpec{AggKind::kCount, arg, nullptr, ""};
        } else if (fn.text == "sum") {
          item.agg = SumOf(arg, "");
        } else if (fn.text == "min") {
          item.agg = MinOf(arg, "");
        } else if (fn.text == "max") {
          item.agg = MaxOf(arg, "");
        } else {
          item.agg = AvgOf(arg, "");
        }
      }
      item.source_text = fn.text;
    } else {
      ESHARP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      item.source_text = item.expr->ToString();
    }
    // Alias: AS name | bare name.
    if (ConsumeKeyword("as")) {
      ESHARP_RETURN_NOT_OK(
          Expect("output name", Peek().kind == TokenKind::kIdent));
      item.name = Next().text;
    } else if (Peek().kind == TokenKind::kIdent && !IsReserved(Peek().text)) {
      item.name = Next().text;
    } else {
      item.name = item.expr != nullptr ? item.source_text
                                       : StrFormat("column%zu", ordinal);
    }
    if (item.agg.has_value()) item.agg->name = item.name;
    return item;
  }

  // --- FROM items and joins ---
  Result<Plan> ParseFromItem() {
    if (ConsumeSymbol("(")) {
      ESHARP_ASSIGN_OR_RETURN(Plan sub, ParseSelect());
      ESHARP_RETURN_NOT_OK(ExpectSymbol(")"));
      ConsumeKeyword("as");
      ESHARP_RETURN_NOT_OK(
          Expect("subquery alias", Peek().kind == TokenKind::kIdent));
      std::string alias = Next().text;
      return sub.As(alias);
    }
    ESHARP_RETURN_NOT_OK(
        Expect("table name", Peek().kind == TokenKind::kIdent));
    std::string table = Next().text;
    Plan plan = Plan::Scan(table);
    if (ConsumeKeyword("as")) {
      ESHARP_RETURN_NOT_OK(
          Expect("alias", Peek().kind == TokenKind::kIdent));
      return plan.As(Next().text);
    }
    if (Peek().kind == TokenKind::kIdent && !IsReserved(Peek().text)) {
      return plan.As(Next().text);
    }
    // Standard SQL: an unaliased table is qualified by its own name.
    return plan.As(table);
  }

  // ON a.x = b.y [AND c = d ...]: split equalities into key column lists.
  Status ParseJoinCondition(std::vector<std::string>* left_keys,
                            std::vector<std::string>* right_keys) {
    for (;;) {
      ESHARP_ASSIGN_OR_RETURN(std::string a, ParseColumnRefText());
      ESHARP_RETURN_NOT_OK(ExpectSymbol("="));
      ESHARP_ASSIGN_OR_RETURN(std::string b, ParseColumnRefText());
      left_keys->push_back(a);
      right_keys->push_back(b);
      if (!ConsumeKeyword("and")) break;
    }
    return Status::OK();
  }

  Result<std::string> ParseColumnRefText() {
    ESHARP_RETURN_NOT_OK(
        Expect("column reference", Peek().kind == TokenKind::kIdent));
    std::string name = Next().text;
    if (ConsumeSymbol(".")) {
      ESHARP_RETURN_NOT_OK(
          Expect("column name", Peek().kind == TokenKind::kIdent));
      name += "." + Next().text;
    }
    return name;
  }

  // --- the SELECT statement ---
  Result<Plan> ParseSelect() {
    ESHARP_RETURN_NOT_OK(ExpectKeyword("select"));
    bool distinct = ConsumeKeyword("distinct");

    bool select_star = false;
    std::vector<SelectItem> items;
    if (ConsumeSymbol("*")) {
      select_star = true;
    } else {
      for (;;) {
        ESHARP_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem(items.size()));
        items.push_back(std::move(item));
        if (!ConsumeSymbol(",")) break;
      }
    }

    ESHARP_RETURN_NOT_OK(ExpectKeyword("from"));
    ESHARP_ASSIGN_OR_RETURN(Plan plan, ParseFromItem());

    // Joins.
    for (;;) {
      JoinType join_type = JoinType::kInner;
      if (ConsumeKeyword("inner")) {
        ESHARP_RETURN_NOT_OK(ExpectKeyword("join"));
      } else if (ConsumeKeyword("left")) {
        ConsumeKeyword("outer");
        ESHARP_RETURN_NOT_OK(ExpectKeyword("join"));
        join_type = JoinType::kLeftOuter;
      } else if (ConsumeKeyword("join")) {
        // plain JOIN == INNER JOIN
      } else {
        break;
      }
      ESHARP_ASSIGN_OR_RETURN(Plan right, ParseFromItem());
      ESHARP_RETURN_NOT_OK(ExpectKeyword("on"));
      std::vector<std::string> left_keys, right_keys;
      ESHARP_RETURN_NOT_OK(ParseJoinCondition(&left_keys, &right_keys));
      plan = plan.Join(right, left_keys, right_keys, join_type);
    }

    // WHERE.
    if (ConsumeKeyword("where")) {
      ESHARP_ASSIGN_OR_RETURN(ExprPtr pred, ParseExpr());
      plan = plan.Where(pred);
    }

    // GROUP BY ... [HAVING ...].
    std::vector<std::string> group_keys;
    bool grouped = false;
    ExprPtr having;
    if (ConsumeKeyword("group")) {
      ESHARP_RETURN_NOT_OK(ExpectKeyword("by"));
      grouped = true;
      for (;;) {
        ESHARP_ASSIGN_OR_RETURN(std::string key, ParseColumnRefText());
        group_keys.push_back(key);
        if (!ConsumeSymbol(",")) break;
      }
      if (ConsumeKeyword("having")) {
        // HAVING references the SELECT output names (aliases), which is
        // where aggregates are visible after the rewrite below.
        ESHARP_ASSIGN_OR_RETURN(having, ParseExpr());
      }
    }

    bool has_aggregates = false;
    for (const SelectItem& item : items) {
      if (item.agg.has_value()) has_aggregates = true;
    }

    if (grouped || has_aggregates) {
      if (select_star) {
        return Status::InvalidArgument("SELECT * cannot be grouped");
      }
      ESHARP_ASSIGN_OR_RETURN(
          plan, BuildAggregate(plan, items, group_keys));
      if (having != nullptr) plan = plan.Where(having);
    } else if (!select_star) {
      std::vector<ProjectedColumn> cols;
      cols.reserve(items.size());
      for (const SelectItem& item : items) {
        cols.push_back({item.expr, item.name});
      }
      plan = plan.Select(cols);
    }

    if (distinct) plan = plan.Distinct();

    // ORDER BY (over the select-list output names).
    if (ConsumeKeyword("order")) {
      ESHARP_RETURN_NOT_OK(ExpectKeyword("by"));
      std::vector<std::string> keys;
      std::vector<bool> ascending;
      for (;;) {
        ESHARP_ASSIGN_OR_RETURN(std::string key, ParseColumnRefText());
        keys.push_back(key);
        if (ConsumeKeyword("desc")) {
          ascending.push_back(false);
        } else {
          ConsumeKeyword("asc");
          ascending.push_back(true);
        }
        if (!ConsumeSymbol(",")) break;
      }
      plan = plan.OrderBy(keys, ascending);
    }

    // LIMIT.
    if (ConsumeKeyword("limit")) {
      ESHARP_RETURN_NOT_OK(
          Expect("limit count", Peek().kind == TokenKind::kNumber));
      plan = plan.Take(static_cast<size_t>(std::stoull(Next().text)));
    }

    // UNION ALL chains whole selects.
    if (ConsumeKeyword("union")) {
      ESHARP_RETURN_NOT_OK(ExpectKeyword("all"));
      ESHARP_ASSIGN_OR_RETURN(Plan rest, ParseSelect());
      plan = plan.Union(rest);
    }
    return plan;
  }

  // Grouped query: rewrite into Project(keys + agg args) -> Aggregate ->
  // Project(select order), so the engine's column-name-keyed aggregate
  // kernel is sufficient.
  Result<Plan> BuildAggregate(const Plan& input,
                              const std::vector<SelectItem>& items,
                              const std::vector<std::string>& group_keys) {
    std::vector<ProjectedColumn> pre;
    // Group keys first, under canonical names "__key_<i>".
    std::vector<std::string> key_names;
    for (size_t i = 0; i < group_keys.size(); ++i) {
      std::string name = StrFormat("__key_%zu", i);
      pre.push_back({ColFlexible(group_keys[i]), name});
      key_names.push_back(name);
    }
    // Aggregate inputs as synthetic columns.
    std::vector<AggSpec> aggs;
    for (size_t i = 0; i < items.size(); ++i) {
      if (!items[i].agg.has_value()) continue;
      AggSpec spec = *items[i].agg;
      if (spec.arg) {
        std::string arg_name = StrFormat("__agg_arg_%zu", i);
        pre.push_back({spec.arg, arg_name});
        spec.arg = Col(arg_name);
      }
      if (spec.output) {
        std::string out_name = StrFormat("__agg_out_%zu", i);
        pre.push_back({spec.output, out_name});
        spec.output = Col(out_name);
      }
      aggs.push_back(std::move(spec));
    }

    Plan plan = input.Select(pre).GroupBy(key_names, aggs);

    // Final projection in SELECT order: group keys by matching source text,
    // aggregates by their assigned output names.
    std::vector<ProjectedColumn> final_cols;
    for (const SelectItem& item : items) {
      if (item.agg.has_value()) {
        final_cols.push_back({Col(item.agg->name), item.name});
        continue;
      }
      // Non-aggregate item must match a group key expression.
      bool matched = false;
      for (size_t k = 0; k < group_keys.size(); ++k) {
        if (item.source_text == group_keys[k]) {
          final_cols.push_back({Col(key_names[k]), item.name});
          matched = true;
          break;
        }
      }
      if (!matched) {
        return Status::InvalidArgument(
            "SELECT item '", item.source_text,
            "' is neither an aggregate nor listed in GROUP BY");
      }
    }
    return plan.Select(final_cols);
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
  const FunctionRegistry& registry_;
};

}  // namespace

Result<Plan> ParseSql(std::string_view sql, const FunctionRegistry& registry) {
  Lexer lexer(sql);
  ESHARP_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), registry);
  return parser.ParseStatement();
}

Result<Table> ExecuteSql(std::string_view sql, const Catalog& catalog,
                         const FunctionRegistry& registry,
                         const ExecutorOptions& options) {
  ESHARP_ASSIGN_OR_RETURN(Plan plan, ParseSql(sql, registry));
  Executor executor(options);
  return executor.Execute(plan, catalog);
}

}  // namespace esharp::sql
