#ifndef ESHARP_SQLENGINE_AGGREGATES_H_
#define ESHARP_SQLENGINE_AGGREGATES_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "sqlengine/expression.h"
#include "sqlengine/value.h"

namespace esharp::sql {

/// \brief Kinds of aggregate function supported by the GROUP BY operator.
///
/// ARGMAX is the one the paper's algorithm actually needs: Fig. 4 uses
/// `argmax(distance, query1)` to keep, per community, the neighbor with the
/// highest gain (the "neighborhood separation" step). The rest exist because
/// extraction and the statistics benches need them.
enum class AggKind {
  kCount,    // COUNT(*) if no argument, else COUNT(expr != NULL)
  kSum,
  kMin,
  kMax,
  kAvg,
  kArgMax,   // value of `output` expr at the row maximizing `order` expr
  kArgMin,
};

/// \brief Specification of one aggregate column in a GROUP BY.
struct AggSpec {
  AggKind kind;
  /// Expression aggregated over (for ARGMAX/ARGMIN: the ordering key).
  /// Null for COUNT(*).
  ExprPtr arg;
  /// Only for ARGMAX/ARGMIN: the expression whose value is emitted.
  ExprPtr output;
  /// Output column name.
  std::string name;
};

/// Convenience factories.
AggSpec CountStar(std::string name);
AggSpec SumOf(ExprPtr arg, std::string name);
AggSpec MinOf(ExprPtr arg, std::string name);
AggSpec MaxOf(ExprPtr arg, std::string name);
AggSpec AvgOf(ExprPtr arg, std::string name);
AggSpec ArgMaxOf(ExprPtr order, ExprPtr output, std::string name);
AggSpec ArgMinOf(ExprPtr order, ExprPtr output, std::string name);

/// \brief Incremental accumulator for one aggregate over one group.
///
/// Accumulators are mergeable, which is what makes the GROUP BY operator
/// parallelizable with a local-aggregate + shuffle + final-merge plan — the
/// standard map-reduce aggregation the paper relies on (§4.2.3).
class AggAccumulator {
 public:
  explicit AggAccumulator(AggKind kind) : kind_(kind) {}

  /// Feeds one row's evaluated argument (and, for ARGMAX/ARGMIN, output).
  void Add(const Value& arg, const Value& output);

  /// Merges a partial accumulator computed on another partition.
  void Merge(const AggAccumulator& other);

  /// Final value of the aggregate.
  Result<Value> Finish() const;

 private:
  AggKind kind_;
  int64_t count_ = 0;
  double sum_ = 0;
  bool sum_is_int_ = true;
  int64_t isum_ = 0;
  bool has_value_ = false;
  Value best_arg_;     // MIN/MAX: extremum; ARGMAX/ARGMIN: best ordering key
  Value best_output_;  // ARGMAX/ARGMIN: output at the extremum
};

}  // namespace esharp::sql

#endif  // ESHARP_SQLENGINE_AGGREGATES_H_
