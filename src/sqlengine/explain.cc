#include "sqlengine/explain.h"

#include "common/strings.h"

namespace esharp::sql {

ExplainStats* ExplainStats::AddChild() {
  children.push_back(std::make_unique<ExplainStats>());
  return children.back().get();
}

void ExplainStats::Clear() {
  op.clear();
  rows_in = 0;
  rows_out = 0;
  batches = 1;
  wall_ms = 0;
  children.clear();
}

size_t ExplainStats::NodeCount() const {
  size_t n = 1;
  for (const auto& child : children) n += child->NodeCount();
  return n;
}

namespace {
void Render(const ExplainStats& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(StrFormat(
      "%s  (rows_in=%llu rows_out=%llu batches=%zu time=%.3f ms)\n",
      node.op.c_str(), static_cast<unsigned long long>(node.rows_in),
      static_cast<unsigned long long>(node.rows_out), node.batches,
      node.wall_ms));
  for (const auto& child : node.children) {
    Render(*child, depth + 1, out);
  }
}
}  // namespace

std::string ExplainStats::ToString() const {
  std::string out;
  Render(*this, 0, &out);
  return out;
}

}  // namespace esharp::sql
