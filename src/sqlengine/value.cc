#include "sqlengine/value.h"

#include <cmath>

#include "common/strings.h"

namespace esharp::sql {

std::string_view DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kNull: return "NULL";
    case DataType::kBool: return "BOOL";
    case DataType::kInt64: return "INT64";
    case DataType::kDouble: return "DOUBLE";
    case DataType::kString: return "STRING";
  }
  return "UNKNOWN";
}

Result<double> Value::AsDouble() const {
  switch (type()) {
    case DataType::kBool: return bool_value() ? 1.0 : 0.0;
    case DataType::kInt64: return static_cast<double>(int_value());
    case DataType::kDouble: return double_value();
    default:
      return Status::InvalidArgument("cannot coerce ",
                                     DataTypeToString(type()), " to double");
  }
}

namespace {
// Rank used to order values of different type families.
int TypeRank(DataType t) {
  switch (t) {
    case DataType::kNull: return 0;
    case DataType::kBool: return 1;
    case DataType::kInt64:
    case DataType::kDouble: return 2;
    case DataType::kString: return 3;
  }
  return 4;
}
}  // namespace

int Value::Compare(const Value& other) const {
  // Fetch both types once; every branch below works off the locals instead
  // of re-dispatching on the variant.
  const DataType ta = type(), tb = other.type();
  const int ra = TypeRank(ta), rb = TypeRank(tb);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ta) {
    case DataType::kNull:
      return 0;
    case DataType::kBool: {
      const bool a = bool_value(), b = other.bool_value();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case DataType::kInt64:
    case DataType::kDouble: {
      // Numeric family: compare as doubles, but keep exact int comparison
      // when both sides are ints.
      if (ta == DataType::kInt64 && tb == DataType::kInt64) {
        const int64_t a = int_value(), b = other.int_value();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      const double a =
          ta == DataType::kInt64 ? static_cast<double>(int_value())
                                 : double_value();
      const double b = tb == DataType::kInt64
                           ? static_cast<double>(other.int_value())
                           : other.double_value();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case DataType::kString: {
      const int c = string_value().compare(other.string_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

uint64_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x9ae16a3b2f90404fULL;
    case DataType::kBool:
      return Mix64(bool_value() ? 1 : 2);
    case DataType::kInt64:
      // Hash ints via their double image so 1 and 1.0 collide (they compare
      // equal in the numeric family). HashF64 is the engine-defined double
      // hash; std::hash<double> would tie partition routing to stdlib
      // internals the SIMD batch kernels cannot reproduce.
      return HashF64(static_cast<double>(int_value()));
    case DataType::kDouble:
      return HashF64(double_value());
    case DataType::kString:
      return Fnv1a64(string_value());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull: return "NULL";
    case DataType::kBool: return bool_value() ? "true" : "false";
    case DataType::kInt64: return std::to_string(int_value());
    case DataType::kDouble: return StrFormat("%.6g", double_value());
    case DataType::kString: return string_value();
  }
  return "?";
}

uint64_t Value::SizeBytes() const {
  switch (type()) {
    case DataType::kNull: return 1;
    case DataType::kBool: return 1;
    case DataType::kInt64: return 8;
    case DataType::kDouble: return 8;
    case DataType::kString: return string_value().size() + 8;
  }
  return 0;
}

}  // namespace esharp::sql
