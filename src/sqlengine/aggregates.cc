#include "sqlengine/aggregates.h"

namespace esharp::sql {

AggSpec CountStar(std::string name) {
  return AggSpec{AggKind::kCount, nullptr, nullptr, std::move(name)};
}
AggSpec SumOf(ExprPtr arg, std::string name) {
  return AggSpec{AggKind::kSum, std::move(arg), nullptr, std::move(name)};
}
AggSpec MinOf(ExprPtr arg, std::string name) {
  return AggSpec{AggKind::kMin, std::move(arg), nullptr, std::move(name)};
}
AggSpec MaxOf(ExprPtr arg, std::string name) {
  return AggSpec{AggKind::kMax, std::move(arg), nullptr, std::move(name)};
}
AggSpec AvgOf(ExprPtr arg, std::string name) {
  return AggSpec{AggKind::kAvg, std::move(arg), nullptr, std::move(name)};
}
AggSpec ArgMaxOf(ExprPtr order, ExprPtr output, std::string name) {
  return AggSpec{AggKind::kArgMax, std::move(order), std::move(output),
                 std::move(name)};
}
AggSpec ArgMinOf(ExprPtr order, ExprPtr output, std::string name) {
  return AggSpec{AggKind::kArgMin, std::move(order), std::move(output),
                 std::move(name)};
}

void AggAccumulator::Add(const Value& arg, const Value& output) {
  switch (kind_) {
    case AggKind::kCount:
      if (!arg.is_null()) ++count_;
      break;
    case AggKind::kSum:
    case AggKind::kAvg: {
      if (arg.is_null()) break;
      ++count_;
      if (arg.type() == DataType::kInt64 && sum_is_int_) {
        isum_ += arg.int_value();
      } else {
        if (sum_is_int_) {
          sum_ = static_cast<double>(isum_);
          sum_is_int_ = false;
        }
        auto d = arg.AsDouble();
        if (d.ok()) sum_ += *d;
      }
      break;
    }
    case AggKind::kMin:
      if (arg.is_null()) break;
      if (!has_value_ || arg.Compare(best_arg_) < 0) best_arg_ = arg;
      has_value_ = true;
      break;
    case AggKind::kMax:
      if (arg.is_null()) break;
      if (!has_value_ || arg.Compare(best_arg_) > 0) best_arg_ = arg;
      has_value_ = true;
      break;
    case AggKind::kArgMax:
      if (arg.is_null()) break;
      // Ties broken toward the smaller output value so results are
      // deterministic regardless of partitioning and input order.
      if (!has_value_ || arg.Compare(best_arg_) > 0 ||
          (arg.Compare(best_arg_) == 0 && output.Compare(best_output_) < 0)) {
        best_arg_ = arg;
        best_output_ = output;
      }
      has_value_ = true;
      break;
    case AggKind::kArgMin:
      if (arg.is_null()) break;
      if (!has_value_ || arg.Compare(best_arg_) < 0 ||
          (arg.Compare(best_arg_) == 0 && output.Compare(best_output_) < 0)) {
        best_arg_ = arg;
        best_output_ = output;
      }
      has_value_ = true;
      break;
  }
}

void AggAccumulator::Merge(const AggAccumulator& other) {
  switch (kind_) {
    case AggKind::kCount:
      count_ += other.count_;
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      count_ += other.count_;
      if (sum_is_int_ && other.sum_is_int_) {
        isum_ += other.isum_;
      } else {
        if (sum_is_int_) {
          sum_ = static_cast<double>(isum_);
          sum_is_int_ = false;
        }
        sum_ += other.sum_is_int_ ? static_cast<double>(other.isum_)
                                  : other.sum_;
      }
      break;
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kArgMax:
    case AggKind::kArgMin:
      if (other.has_value_) {
        // Re-use Add's comparison logic by feeding the other side's extremum.
        Add(other.best_arg_, other.best_output_);
      }
      break;
  }
}

Result<Value> AggAccumulator::Finish() const {
  switch (kind_) {
    case AggKind::kCount:
      return Value::Int(count_);
    case AggKind::kSum:
      if (count_ == 0) return Value::Null();
      return sum_is_int_ ? Value::Int(isum_) : Value::Double(sum_);
    case AggKind::kAvg: {
      if (count_ == 0) return Value::Null();
      double total = sum_is_int_ ? static_cast<double>(isum_) : sum_;
      return Value::Double(total / static_cast<double>(count_));
    }
    case AggKind::kMin:
    case AggKind::kMax:
      return has_value_ ? best_arg_ : Value::Null();
    case AggKind::kArgMax:
    case AggKind::kArgMin:
      return has_value_ ? best_output_ : Value::Null();
  }
  return Status::Internal("unhandled aggregate kind");
}

}  // namespace esharp::sql
