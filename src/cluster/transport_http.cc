#include "cluster/transport_http.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/strings.h"

namespace esharp::cluster {

namespace {

int StatusToHttp(const Status& status) {
  if (status.IsInvalidArgument()) return 400;
  if (status.IsUnavailable() || status.IsFailedPrecondition()) return 503;
  if (status.IsDeadlineExceeded()) return 504;
  return 500;
}

Status HttpToStatus(int http_status, const std::string& body) {
  // The body is the shard's Status::ToString() ("<Code name>: <message>"),
  // so the real failure cause — "no snapshot published yet", the shard's
  // own deadline detail — survives the wire into the router's health
  // tracker and /statusz instead of flattening to a bare HTTP code.
  switch (http_status) {
    case 400:
      return Status::InvalidArgument("shard rejected request: ", body);
    case 503:
      // 503 covers two shard states; tell them apart by the code name the
      // shard serialized, so "not ready yet" is not misread as "down".
      if (body.rfind("Failed precondition", 0) == 0) {
        return Status::FailedPrecondition("shard not ready: ", body);
      }
      return Status::Unavailable("shard unavailable: ", body);
    case 504:
      return Status::DeadlineExceeded("shard deadline: ", body);
    default:
      return Status::Internal("shard returned HTTP ", http_status, ": ",
                              body);
  }
}

}  // namespace

std::string EncodeShardEvidence(const ShardEvidence& evidence) {
  std::string out = StrFormat(
      "version=%llu terms=%llu candidates=%llu ms=%.6f\n",
      static_cast<unsigned long long>(evidence.snapshot_version),
      static_cast<unsigned long long>(evidence.terms),
      static_cast<unsigned long long>(evidence.evidence.size()),
      evidence.shard_ms);
  // Optional profile line: trace adoption proof plus the shard-side timing
  // breakdown the router stitches into its per-query profile. Decoders
  // that predate it skip nothing — it is only written when there is a
  // trace to report, and DecodeShardEvidence tolerates its absence.
  if (evidence.trace.valid()) {
    out += StrFormat("profile trace=%s queue=%.6f expand=%.6f detect=%.6f\n",
                     evidence.trace.ToHeader().c_str(), evidence.queue_ms,
                     evidence.expand_ms, evidence.detect_ms);
  }
  out.reserve(out.size() + evidence.evidence.size() * 32);
  for (const expert::CandidateEvidence& c : evidence.evidence) {
    unsigned flags = (c.is_author ? 1u : 0u) | (c.is_mentioned ? 2u : 0u);
    out += StrFormat("%u %u %llu %llu %llu %llu %llu\n", c.user, flags,
                     static_cast<unsigned long long>(c.tweets_on_topic),
                     static_cast<unsigned long long>(c.mentions_on_topic),
                     static_cast<unsigned long long>(c.retweets_on_topic),
                     static_cast<unsigned long long>(c.conversational_on_topic),
                     static_cast<unsigned long long>(c.hashtag_on_topic));
  }
  return out;
}

Result<ShardEvidence> DecodeShardEvidence(const std::string& body) {
  ShardEvidence evidence;
  unsigned long long version = 0, terms = 0, candidates = 0;
  double ms = 0;
  const char* p = body.c_str();
  int header_len = 0;
  if (std::sscanf(p, "version=%llu terms=%llu candidates=%llu ms=%lf\n%n",
                  &version, &terms, &candidates, &ms, &header_len) < 4) {
    return Status::Internal("malformed shard evidence header");
  }
  evidence.snapshot_version = version;
  evidence.terms = static_cast<size_t>(terms);
  evidence.shard_ms = ms;
  evidence.evidence.reserve(static_cast<size_t>(candidates));
  p += header_len;
  // Optional profile line (see EncodeShardEvidence). A malformed one is
  // dropped, not fatal: the candidate payload is still good, and the
  // evidence's trace simply stays invalid.
  if (std::strncmp(p, "profile ", 8) == 0) {
    char trace_buf[64] = {0};
    double queue = 0, expand = 0, detect = 0;
    int line_len = 0;
    if (std::sscanf(p, "profile trace=%63s queue=%lf expand=%lf detect=%lf\n%n",
                    trace_buf, &queue, &expand, &detect, &line_len) == 4 &&
        line_len > 0) {
      Result<obs::TraceContext> trace =
          obs::TraceContext::FromHeader(trace_buf);
      if (trace.ok()) {
        evidence.trace = trace.ValueOrDie();
        evidence.queue_ms = queue;
        evidence.expand_ms = expand;
        evidence.detect_ms = detect;
      }
    } else {
      // Skip the unparseable line so the candidate loop starts clean.
      const char* nl = std::strchr(p, '\n');
      if (nl == nullptr) {
        return Status::Internal("malformed shard evidence profile line");
      }
      line_len = static_cast<int>(nl - p) + 1;
    }
    p += line_len;
  }
  for (unsigned long long i = 0; i < candidates; ++i) {
    expert::CandidateEvidence c;
    unsigned user = 0, flags = 0;
    unsigned long long tweets = 0, mentions = 0, retweets = 0;
    unsigned long long conversational = 0, hashtag = 0;
    int line_len = 0;
    if (std::sscanf(p, "%u %u %llu %llu %llu %llu %llu\n%n", &user, &flags,
                    &tweets, &mentions, &retweets, &conversational, &hashtag,
                    &line_len) < 7) {
      return Status::Internal("malformed shard evidence line ", i, " of ",
                              candidates);
    }
    c.user = user;
    c.is_author = (flags & 1u) != 0;
    c.is_mentioned = (flags & 2u) != 0;
    c.tweets_on_topic = tweets;
    c.mentions_on_topic = mentions;
    c.retweets_on_topic = retweets;
    c.conversational_on_topic = conversational;
    c.hashtag_on_topic = hashtag;
    evidence.evidence.push_back(c);
    p += line_len;
  }
  return evidence;
}

std::string UrlEncode(const std::string& value) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(value.size());
  for (unsigned char c : value) {
    bool unreserved = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.' || c == '~';
    if (unreserved) {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xF]);
    }
  }
  return out;
}

void MountShardEndpoint(obs::DebugServer* server,
                        serving::ServingEngine* engine) {
  server->Handle("/shard/evidence", [engine](const obs::HttpRequest& request) {
    obs::HttpResponse response;
    serving::QueryRequest query;
    query.query = request.Param("q");
    std::string deadline = request.Param("deadline_ms");
    // 0 = explicit none: the router's budget replaces any engine default.
    query.deadline_ms =
        deadline.empty() ? 0 : std::strtod(deadline.c_str(), nullptr);
    // Lenient by design: a missing, truncated or corrupt trace header
    // yields a fresh root on the engine side, never a rejected request or
    // a poisoned id.
    std::string trace_header = request.Param("trace");
    if (!trace_header.empty()) {
      query.trace = obs::TraceContext::FromHeaderOrRoot(trace_header);
    }
    Result<serving::EvidenceResponse> result =
        engine->QueryEvidence(std::move(query));
    if (!result.ok()) {
      response.status = StatusToHttp(result.status());
      response.body = result.status().ToString();
      return response;
    }
    serving::EvidenceResponse evidence = result.MoveValueUnsafe();
    ShardEvidence wire;
    wire.evidence = std::move(evidence.evidence);
    wire.snapshot_version = evidence.snapshot_version;
    wire.terms = evidence.terms;
    wire.shard_ms = evidence.total_ms;
    wire.trace = evidence.trace;
    wire.queue_ms = evidence.queue_ms;
    wire.expand_ms = evidence.stages.expand_ms;
    wire.detect_ms = evidence.stages.detect_ms;
    response.body = EncodeShardEvidence(wire);
    return response;
  });
  server->Handle("/shard/health", [engine](const obs::HttpRequest&) {
    obs::HttpResponse response;
    serving::HealthView health = engine->Health();
    response.status = health.ready ? 200 : 503;
    response.body = StrFormat(
        "ready=%d version=%llu in_flight=%llu\n", health.ready ? 1 : 0,
        static_cast<unsigned long long>(health.snapshot_version),
        static_cast<unsigned long long>(health.in_flight));
    return response;
  });
}

HttpShardTransport::HttpShardTransport(std::string name, std::string host,
                                       int port, Options options)
    : name_(std::move(name)),
      host_(std::move(host)),
      port_(port),
      options_(options) {}

Result<ShardEvidence> HttpShardTransport::Collect(
    const ShardRequest& request) {
  std::string path = "/shard/evidence?q=" + UrlEncode(request.query);
  double timeout = options_.default_timeout_seconds;
  if (request.deadline_ms > 0) {
    path += StrFormat("&deadline_ms=%.3f", request.deadline_ms);
    timeout = request.deadline_ms / 1e3 + options_.timeout_slack_seconds;
  }
  if (request.trace.valid()) {
    // ToHeader() is pure unreserved characters — no encoding needed.
    path += "&trace=" + request.trace.ToHeader();
  }
  Result<obs::HttpResponseData> http =
      obs::HttpGet(host_, port_, path, timeout);
  if (!http.ok()) {
    // Connection refused / socket timeout: the shard process is gone or
    // unreachably slow — either way, this attempt failed.
    return Status::Unavailable("shard ", name_, " unreachable: ",
                               http.status().ToString());
  }
  const obs::HttpResponseData& data = http.ValueOrDie();
  if (data.status != 200) return HttpToStatus(data.status, data.body);
  Result<ShardEvidence> decoded = DecodeShardEvidence(data.body);
  if (decoded.ok()) {
    last_version_.store(decoded.ValueOrDie().snapshot_version,
                        std::memory_order_release);
  }
  return decoded;
}

}  // namespace esharp::cluster
