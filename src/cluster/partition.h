#ifndef ESHARP_CLUSTER_PARTITION_H_
#define ESHARP_CLUSTER_PARTITION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/partitioner.h"
#include "microblog/corpus.h"

namespace esharp::cluster {

/// \brief A corpus split into disjoint per-shard sub-corpora.
///
/// Invariants the sharded tier's rank-equivalence rests on (cluster_test
/// enforces them on randomized worlds):
///  * Tweets partition: every tweet of the source corpus lives in exactly
///    one shard, assigned by Partitioner::ShardOfId over its *source*
///    tweet id (shard-local ids are re-assigned densely — evidence is
///    keyed by user, never by tweet id, so the renumbering is invisible).
///  * Users replicate: every shard holds every user profile under its
///    original dense id, so shard evidence pools all speak global UserIds
///    and merge without translation.
///  * Per-user counts sum: TweetsByUser / MentionsOfUser / RetweetsOfUser
///    are per-tweet additive, so summed over shards they equal the source
///    corpus exactly (integer arithmetic — no rounding to drift).
struct PartitionedCorpus {
  std::vector<std::unique_ptr<microblog::TweetCorpus>> shards;

  size_t num_shards() const { return shards.size(); }
};

/// \brief Splits `corpus` into `num_shards` sub-corpora (see
/// PartitionedCorpus for the invariants). Deterministic: same corpus +
/// same shard count = same partition, on every platform — both the
/// snapshot builder and the router derive placement from the same
/// Partitioner, so they can never disagree.
PartitionedCorpus PartitionCorpus(const microblog::TweetCorpus& corpus,
                                  uint32_t num_shards);

}  // namespace esharp::cluster

#endif  // ESHARP_CLUSTER_PARTITION_H_
