#ifndef ESHARP_CLUSTER_INTROSPECT_H_
#define ESHARP_CLUSTER_INTROSPECT_H_

/// \file Glue between the cluster router and the obs/debugz endpoint
/// family, mirroring serving/introspect.h one tier up: quorum readiness
/// from the shard health tracker, the /statusz shard table, and the
/// default SLO objectives a sharded deployment should watch.

#include <string>
#include <vector>

#include "cluster/router.h"
#include "obs/debugz.h"
#include "obs/slo.h"

namespace esharp::cluster {

/// \brief Thresholds behind DefaultClusterObjectives.
struct ClusterSloThresholds {
  double p99_latency_seconds = 1.0;  ///< kValue target for "latency_p99".
  double error_rate = 0.01;          ///< kRatio target for "error_rate".
  /// kValue target for "shard_down_ratio": tolerated fraction of shards
  /// in kDown. The default tolerates one shard of a 4-shard cluster but
  /// burns budget the moment a second drops.
  double shard_down_ratio = 0.26;
};

/// \brief Readiness probe over the router's shard health: passes while at
/// least `quorum` shards are not kDown (quorum 0 = majority, n/2 + 1).
/// One dead shard in a 4-shard cluster keeps /readyz green — the router
/// still serves (degraded) answers — but losing quorum flips it, which is
/// what should pull the router out of a load balancer. The router must
/// outlive the probe.
obs::Probe ClusterQuorumReadiness(const ClusterRouter* router,
                                  size_t quorum = 0);

/// \brief Standard objectives for one router, ready for
/// SloWatchdog::AddObjective:
///   latency_p99       kValue — routed p99 vs. p99_latency_seconds
///   error_rate        kRatio — (errors + timeouts) / completed
///   shard_down_ratio  kValue — down shards / total shards
/// The router must outlive the watchdog the objectives are added to.
std::vector<obs::SloObjective> DefaultClusterObjectives(
    const ClusterRouter* router, ClusterSloThresholds thresholds = {});

/// \brief Wiring of MountClusterEndpoints.
struct ClusterIntrospectionOptions {
  std::string build_info;                ///< /statusz header line.
  obs::Tracer* tracer = nullptr;         ///< /tracez?format=json source.
  obs::SloWatchdog* watchdog = nullptr;  ///< /readyz + /statusz SLO table.
  /// Readiness quorum (0 = majority).
  size_t quorum = 0;
  /// /graphz source (null disables). Must outlive the server.
  obs::TimeSeriesStore* timeseries = nullptr;
  /// /incidentz source (null disables). Must outlive the server.
  obs::FlightRecorder* recorder = nullptr;
};

/// \brief Mounts the statusz family on `server`, wired to `router`:
/// /readyz from ClusterQuorumReadiness (plus the watchdog when given) and
/// a /statusz overview with routed qps/latency, cache hit rate, and the
/// per-shard table (snapshot version, state, qps, p50/p99, failures,
/// hedges). The router (and watchdog/tracer) must outlive the server.
void MountClusterEndpoints(obs::DebugServer* server, ClusterRouter* router,
                           ClusterIntrospectionOptions options = {});

}  // namespace esharp::cluster

#endif  // ESHARP_CLUSTER_INTROSPECT_H_
